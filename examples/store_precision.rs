//! Filter-store precision end to end: index one clustered database under
//! the exact `f64` store and the compact `f32` / `u8` backends, and show
//! (a) how much retrieval quality the exact refine step preserves over a
//! lossy filter (all or nearly all queries return the `f64` pipeline's
//! neighbors, even for uniform off-cluster queries), (b) the 2× / 8×
//! smaller store footprint, and (c) how `with_p_scale` widens a quantized
//! filter's net when `p` is tight.
//!
//! ```sh
//! cargo run --release --example store_precision
//! ```

use query_sensitive_embeddings::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(9);
    let database: Vec<Vec<f64>> = (0..2_000)
        .map(|_| {
            let c = rng.gen_range(0..9);
            vec![
                (c % 3) as f64 * 14.0 + rng.gen_range(-1.0..1.0),
                (c / 3) as f64 * 14.0 + rng.gen_range(-1.0..1.0),
            ]
        })
        .collect();
    let queries: Vec<Vec<f64>> = (0..100)
        .map(|_| vec![rng.gen_range(-1.0..29.0), rng.gen_range(-1.0..29.0)])
        .collect();
    let distance = LpDistance::l2();

    // Train one query-sensitive model; every index below shares it.
    let pools: Vec<Vec<f64>> = database.iter().take(80).cloned().collect();
    let data = TrainingData::precompute(pools.clone(), pools, &distance, 8);
    let triples = TripleSampler::selective(4).sample(&data.train_to_train, 800, &mut rng);
    let model = BoostMapTrainer::new(TrainerConfig::quick()).train(&data, &triples, &mut rng);
    let dim = model.dim();
    println!(
        "model: {} rounds, {} coordinates, query-sensitive = {}",
        model.rounds(),
        dim,
        model.is_query_sensitive()
    );

    let (k, p) = (5, 50);
    let exact = FilterRefineIndex::build_query_sensitive(model.clone(), &database, &distance);
    let compact = FilterRefineIndex::<_, f32>::build_query_sensitive_with_store(
        model.clone(),
        &database,
        &distance,
    );
    let quantized = FilterRefineIndex::<_, u8>::build_query_sensitive_with_store(
        model.clone(),
        &database,
        &distance,
    );

    let baseline = exact.retrieve_batch(&queries, &database, &distance, k, p);
    for (name, batch) in [
        (
            "f32",
            compact.retrieve_batch(&queries, &database, &distance, k, p),
        ),
        (
            "u8",
            quantized.retrieve_batch(&queries, &database, &distance, k, p),
        ),
    ] {
        let agreeing = batch
            .iter()
            .zip(&baseline)
            .filter(|(a, b)| a.neighbors == b.neighbors)
            .count();
        let bytes = |b: usize| database.len() * dim * b;
        println!(
            "{name:>4} store: {agreeing}/{} queries return the f64 pipeline's neighbors, \
             store footprint {} -> {} bytes",
            queries.len(),
            bytes(8),
            bytes(match name {
                "f32" => 4,
                _ => 1,
            }),
        );
    }

    // With a tight p, oversample the quantized filter instead of paying for
    // a wider exact one: refine still reorders exactly.
    let tight_p = k;
    let oversampled =
        FilterRefineIndex::<_, u8>::build_query_sensitive_with_store(model, &database, &distance)
            .with_p_scale(4.0);
    let plain_hits = queries
        .iter()
        .zip(&baseline)
        .filter(|(q, base)| {
            quantized
                .retrieve(q, &database, &distance, k, tight_p)
                .neighbors
                == base.neighbors
        })
        .count();
    let oversampled_hits = queries
        .iter()
        .zip(&baseline)
        .filter(|(q, base)| {
            oversampled
                .retrieve(q, &database, &distance, k, tight_p)
                .neighbors
                == base.neighbors
        })
        .count();
    println!(
        "u8 at p = k = {tight_p}: {plain_hits}/{} queries match f64 without oversampling, \
         {oversampled_hits}/{} with p_scale = 4",
        queries.len(),
        queries.len()
    );
}
