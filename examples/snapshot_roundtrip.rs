//! Cross-process snapshot round-trip: `save` builds a routed `u8` index
//! over a 100k-row dim-64 Gaussian workload, writes the snapshot plus an
//! `<file>.expected.json` of its retrieval results; `load` — run in a
//! **fresh process** — loads the snapshot, replays the same queries and
//! asserts the outcomes (neighbors, exact distances, `probe_cells`) are
//! bit-identical to what the saving process recorded. This is the CI
//! step behind the "snapshots survive process exit" guarantee:
//!
//! ```sh
//! cargo run --release --example snapshot_roundtrip -- save /tmp/qse.snap
//! cargo run --release --example snapshot_roundtrip -- load /tmp/qse.snap
//! cargo run --release --example snapshot_roundtrip -- load-mmap /tmp/qse.snap
//! ```
//!
//! `load-mmap` exercises the zero-copy path in the fresh process: it
//! loads through `load_mmap`, asserts the store is actually mapped with
//! zero element heap bytes, replays the same bit-identity checks, and
//! prints the owned-vs-mapped startup times side by side (CI tees this
//! into its bench-logs artifact).
//!
//! With no arguments all phases run in one process against a temp file.

use query_sensitive_embeddings::core::json::{JsonCodec, JsonValue};
use query_sensitive_embeddings::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const ROWS: usize = 100_000;
const DIM: usize = 64;
const QUERIES: usize = 32;
const K: usize = 10;
const P: usize = 100;

/// The deterministic workload both processes regenerate independently —
/// nothing about the data rides along with the snapshot.
fn workload() -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let mix = GaussianMixture::generate(GaussianMixtureConfig {
        rows: ROWS,
        dim: DIM,
        clusters: 32,
        center_box: 10.0,
        spread: 0.5,
        seed: 0x5EED_CAFE,
    });
    let queries = mix.queries(QUERIES, 0xBEEF);
    (mix.points, queries)
}

fn train_model(database: &[Vec<f64>], distance: &LpDistance) -> QseModel<Vec<f64>> {
    let pool: Vec<Vec<f64>> = database.iter().take(80).cloned().collect();
    let data = TrainingData::precompute(pool.clone(), pool, distance, 6);
    let mut rng = StdRng::seed_from_u64(1717);
    let triples = TripleSampler::selective(4).sample(&data.train_to_train, 600, &mut rng);
    BoostMapTrainer::new(TrainerConfig::quick()).train(&data, &triples, &mut rng)
}

/// What the saving process pins for the loading process to replay.
struct Expected {
    probe_cells: Vec<Vec<usize>>,
    neighbors: Vec<Vec<usize>>,
    distances: Vec<Vec<f64>>,
}

impl Expected {
    fn record(
        index: &RoutedIndex<Vec<f64>, u8>,
        queries: &[Vec<f64>],
        database: &[Vec<f64>],
        distance: &LpDistance,
    ) -> Self {
        let outcomes = index.retrieve_batch(queries, database, distance, K, P);
        Self {
            probe_cells: queries
                .iter()
                .map(|q| index.probe_cells(q, distance))
                .collect(),
            neighbors: outcomes.iter().map(|o| o.neighbors.clone()).collect(),
            distances: outcomes.iter().map(|o| o.distances.clone()).collect(),
        }
    }

    fn to_json(&self) -> String {
        JsonValue::Object(vec![
            ("probe_cells".into(), self.probe_cells.to_json_value()),
            ("neighbors".into(), self.neighbors.to_json_value()),
            ("distances".into(), self.distances.to_json_value()),
        ])
        .dump()
    }

    fn from_json(text: &str) -> Self {
        let value = JsonValue::parse(text).expect("expected-results JSON must parse");
        let field = |name: &str| match &value {
            JsonValue::Object(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .unwrap_or_else(|| panic!("missing field `{name}`")),
            _ => panic!("expected-results JSON must be an object"),
        };
        Self {
            probe_cells: Vec::from_json_value(field("probe_cells")).unwrap(),
            neighbors: Vec::from_json_value(field("neighbors")).unwrap(),
            distances: Vec::from_json_value(field("distances")).unwrap(),
        }
    }
}

fn expected_path(snapshot: &str) -> String {
    format!("{snapshot}.expected.json")
}

fn save(path: &str) {
    let (database, queries) = workload();
    let distance = LpDistance::l2();
    let model = train_model(&database, &distance);

    let start = Instant::now();
    let index = RoutedIndex::<_, u8>::build_query_sensitive_with_store(
        model,
        &database,
        &distance,
        RoutedConfig {
            cells: 64,
            n_probe: 8,
            ..RoutedConfig::default()
        },
    );
    println!(
        "built routed u8 index over {ROWS} rows (dim {DIM}) in {:.2?}",
        start.elapsed()
    );

    index.save(path).expect("snapshot save must succeed");
    let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    println!("snapshot: {path} ({bytes} bytes)");

    let expected = Expected::record(&index, &queries, &database, &distance);
    std::fs::write(expected_path(path), expected.to_json())
        .expect("expected-results write must succeed");
    println!("expected results: {}", expected_path(path));
}

fn load(path: &str, mapped: bool) {
    let (database, queries) = workload();
    let distance = LpDistance::l2();

    // Time the owned load first either way: the `load-mmap` run then
    // prints both durations side by side — the startup comparison CI
    // tees into its bench-logs artifact.
    let owned_start = Instant::now();
    let owned = RoutedIndex::<Vec<f64>, u8>::load(path).unwrap_or_else(|e| {
        eprintln!("failed to load snapshot {path}: {e}");
        std::process::exit(1);
    });
    let owned_time = owned_start.elapsed();

    let (index, start) = if mapped {
        let start = Instant::now();
        let index = RoutedIndex::<Vec<f64>, u8>::load_mmap(path).unwrap_or_else(|e| {
            eprintln!("failed to mmap snapshot {path}: {e}");
            std::process::exit(1);
        });
        let mmap_time = start.elapsed();
        println!(
            "startup: owned load {owned_time:.2?} | load_mmap {mmap_time:.2?} ({:.1}x) | \
             element heap owned {} B, mapped {} B",
            owned_time.as_secs_f64() / mmap_time.as_secs_f64().max(1e-9),
            owned.store_heap_bytes(),
            index.store_heap_bytes(),
        );
        if cfg!(all(
            unix,
            target_pointer_width = "64",
            target_endian = "little"
        )) {
            assert!(index.store_is_mapped(), "load-mmap must map on this target");
            assert_eq!(index.store_heap_bytes(), 0, "mapped element heap must be 0");
        }
        (index, mmap_time)
    } else {
        (owned, owned_time)
    };
    println!(
        "loaded routed u8 index ({} rows, {} cells, n_probe {}) in {:.2?}{}",
        index.len(),
        index.cells(),
        index.n_probe(),
        start,
        if mapped { " [mapped]" } else { "" }
    );
    assert_eq!(index.len(), ROWS);

    let text = std::fs::read_to_string(expected_path(path))
        .expect("expected-results JSON must be readable");
    let expected = Expected::from_json(&text);

    let outcomes = index.retrieve_batch(&queries, &database, &distance, K, P);
    for (q, (query, outcome)) in queries.iter().zip(&outcomes).enumerate() {
        assert_eq!(
            index.probe_cells(query, &distance),
            expected.probe_cells[q],
            "query {q}: routing diverged across processes"
        );
        assert_eq!(
            outcome.neighbors, expected.neighbors[q],
            "query {q}: neighbors diverged across processes"
        );
        // Bit-level equality, deliberately not approximate.
        assert_eq!(
            outcome.distances, expected.distances[q],
            "query {q}: exact distances diverged across processes"
        );
        // Sequential retrieval agrees with the batch it was pinned from.
        let solo = index.retrieve(query, &database, &distance, K, P);
        assert_eq!(solo.neighbors, expected.neighbors[q], "query {q}");
    }
    println!(
        "{} queries replayed bit-identically (top-{K}, probe_cells included) ✓",
        queries.len()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [cmd, path] if cmd == "save" => save(path),
        [cmd, path] if cmd == "load" => load(path, false),
        [cmd, path] if cmd == "load-mmap" => load(path, true),
        [] => {
            let path = std::env::temp_dir().join(format!("qse-snapshot-{}", std::process::id()));
            let path = path.to_string_lossy().into_owned();
            save(&path);
            load(&path, false);
            load(&path, true);
            let _ = std::fs::remove_file(&path);
            let _ = std::fs::remove_file(expected_path(&path));
        }
        _ => {
            eprintln!("usage: snapshot_roundtrip [save <file> | load <file> | load-mmap <file>]");
            std::process::exit(2);
        }
    }
}
