//! Quickstart: train a query-sensitive embedding on a toy vector space and
//! use it for filter-and-refine nearest-neighbor retrieval.
//!
//! Run with: `cargo run --release --example quickstart`

use query_sensitive_embeddings::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // --- 1. A "database" in a toy space -------------------------------------
    // Five Gaussian clusters of 2-D points under the Euclidean distance. The
    // point of the library is of course expensive distances (DTW, shape
    // context, edit distance, ...) — see the other examples — but the API is
    // identical for any `DistanceMeasure`.
    let mut rng = StdRng::seed_from_u64(42);
    let cluster_point = |c: usize, rng: &mut StdRng| -> Vec<f64> {
        let cx = (c % 3) as f64 * 12.0;
        let cy = (c / 3) as f64 * 12.0;
        vec![cx + rng.gen_range(-1.5..1.5), cy + rng.gen_range(-1.5..1.5)]
    };
    let database: Vec<Vec<f64>> = (0..400).map(|i| cluster_point(i % 5, &mut rng)).collect();
    let queries: Vec<Vec<f64>> = (0..50).map(|i| cluster_point(i % 5, &mut rng)).collect();
    // Count every exact distance evaluation so we can report honest costs.
    let distance = CountingDistance::new(LpDistance::l2());

    // --- 2. Preprocessing: distance matrices + training triples -------------
    let pools: Vec<Vec<f64>> = database.iter().take(120).cloned().collect();
    let data = TrainingData::precompute(pools.clone(), pools, &distance, 4);
    let mut train_rng = StdRng::seed_from_u64(7);
    let triples = TripleSampler::selective(5).sample(&data.train_to_train, 2_000, &mut train_rng);
    println!(
        "preprocessing: {} exact distances, {} training triples",
        distance.reset(),
        triples.len()
    );

    // --- 3. Train the query-sensitive embedding (the paper's Se-QS) ---------
    let config = TrainerConfig {
        rounds: 24,
        candidates_per_round: 60,
        ..TrainerConfig::default()
    };
    let model = BoostMapTrainer::new(config).train(&data, &triples, &mut train_rng);
    println!(
        "trained model: {} boosting rounds, {} distinct coordinates, query-sensitive = {}",
        model.rounds(),
        model.dim(),
        model.is_query_sensitive()
    );
    println!(
        "final training-triple error: {:.3}",
        model.history().strong_errors.last().copied().unwrap_or(1.0)
    );

    // --- 4. Index the database and answer queries ---------------------------
    let index = FilterRefineIndex::build_query_sensitive(model, &database, &distance);
    println!(
        "indexing cost: {} exact distances (offline)",
        distance.reset()
    );

    let k = 3;
    let p = 25;
    let mut correct = 0usize;
    let mut total_cost = 0usize;
    for query in &queries {
        let truth = ground_truth(std::slice::from_ref(query), &database, &distance, k, 1);
        distance.reset();
        let result = index.retrieve(query, &database, &distance, k, p);
        total_cost += result.total_cost();
        if result.neighbors == truth[0].neighbors {
            correct += 1;
        }
    }
    println!(
        "retrieved all {k} true nearest neighbors for {}/{} queries",
        correct,
        queries.len()
    );
    println!(
        "average cost: {:.1} exact distances per query (brute force = {})",
        total_cost as f64 / queries.len() as f64,
        database.len()
    );
}
