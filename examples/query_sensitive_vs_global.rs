//! The Figure 1 toy example: why a query-sensitive distance measure helps.
//!
//! Twenty database points and ten queries in the unit square, three
//! reference objects defining a 3-D embedding. Globally the 3-D embedding
//! (with a plain L1 distance) classifies object triples better than any
//! single coordinate — but near each reference object, that reference's own
//! coordinate is the better judge. A query-sensitive weighted L1 distance
//! exploits exactly that.
//!
//! Run with: `cargo run --release --example query_sensitive_vs_global`

use query_sensitive_embeddings::retrieval::experiments::fig1::run_fig1;

fn main() {
    for seed in [1u64, 2, 3] {
        let result = run_fig1(seed);
        println!("=== toy configuration (seed {seed}) ===");
        print!("{}", result.to_text());
        println!(
            "query-sensitivity pays off: {}\n",
            if result.query_sensitivity_pays_off() {
                "yes"
            } else {
                "no"
            }
        );
    }
    println!(
        "Interpretation: the global 3-D embedding is the best *average* classifier,\n\
         but for queries that sit close to a reference object the corresponding 1-D\n\
         coordinate alone is more reliable — which is exactly the behaviour the\n\
         query-sensitive distance D_out of the paper encodes via its splitters."
    );
}
