//! Time-series retrieval under constrained Dynamic Time Warping — the
//! paper's second experimental scenario at reproduction scale.
//!
//! Shows the speed-up over brute force that the query-sensitive embedding
//! achieves at 1-NN retrieval, mirroring the speed-up discussion of
//! Section 9.
//!
//! Run with: `cargo run --release --example timeseries_retrieval`

use query_sensitive_embeddings::prelude::*;
use query_sensitive_embeddings::retrieval::experiments::runner::WorkloadScale;
use query_sensitive_embeddings::retrieval::experiments::speedup::run_speedup;
use rand::SeedableRng;

fn main() {
    let database_size = 400;
    let query_count = 40;
    let series_length = 64;

    let scale = WorkloadScale {
        candidate_pool: 100,
        training_pool: 100,
        training_triples: 2_000,
        rounds: 28,
        candidates_per_round: 40,
        intervals_per_candidate: 8,
        kmax: 5,
        dims_to_evaluate: vec![4, 8, 16, 28],
        threads: 8,
    };

    println!("building a {database_size}-sequence cDTW workload and training FastMap + Se-QS ...");
    let report = run_speedup(database_size, query_count, series_length, &scale, 11);
    print!("{}", report.to_text());

    if let (Some(seqs), Some(fm)) = (
        report.speedup_of("Se-QS", 95.0),
        report.speedup_of("FastMap", 95.0),
    ) {
        println!(
            "\nAt 95% accuracy Se-QS is {:.1}x faster than brute force and {:.1}x faster than FastMap.",
            seqs,
            seqs / fm
        );
    }

    // Also demonstrate a single end-to-end query through the public API.
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let generator = TimeSeriesGenerator::with_default_config(&mut rng);
    let database = generator.generate_unlabeled(200, &mut rng);
    let query = generator.variation(3, &mut rng);
    let distance = CountingDistance::new(ConstrainedDtw::paper());

    let pools: Vec<TimeSeries> = database.iter().take(60).cloned().collect();
    let data = TrainingData::precompute(pools.clone(), pools, &distance, 4);
    let triples = TripleSampler::selective(4).sample(&data.train_to_train, 800, &mut rng);
    let model = BoostMapTrainer::new(TrainerConfig::quick()).train(&data, &triples, &mut rng);
    let index = FilterRefineIndex::build_query_sensitive(model, &database, &distance);
    distance.reset();
    let outcome = index.retrieve(&query, &database, &distance, 1, 15);
    println!(
        "\nsingle query: nearest neighbor = #{} at cDTW distance {:.3}, using {} exact distances",
        outcome.neighbors[0],
        outcome.distances[0],
        outcome.total_cost()
    );
}
