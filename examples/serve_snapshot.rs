//! The serving cold-start path end to end: load a routed `u8` snapshot
//! into the [`QseApi`] facade, start the HTTP/1.1 front end with
//! admission batching, then drive it with concurrent in-process clients —
//! well-formed queries checked bit-identical against direct retrieval
//! *and* a malformed-request fuzz loop (bad `k`/`p`, wrong
//! dimensionality, broken JSON, raw garbage) that must come back as
//! typed errors with the process still serving. This is the CI
//! integration leg:
//!
//! ```sh
//! cargo run --release --example snapshot_roundtrip -- save /tmp/qse.snap
//! cargo run --release --example serve_snapshot -- /tmp/qse.snap
//! ```
//!
//! With no arguments a smaller index is built, snapshotted and served in
//! one process. Either way the run prints measured p50/p99 latency and
//! QPS for the served endpoint.

use query_sensitive_embeddings::core::json::JsonValue;
use query_sensitive_embeddings::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

const K: usize = 10;
const P: usize = 100;
const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 64;

/// The CI snapshot's deterministic workload — must match the
/// `snapshot_roundtrip` example that wrote the file.
fn ci_workload() -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let mix = GaussianMixture::generate(GaussianMixtureConfig {
        rows: 100_000,
        dim: 64,
        clusters: 32,
        center_box: 10.0,
        spread: 0.5,
        seed: 0x5EED_CAFE,
    });
    let queries = mix.queries(256, 0xBEEF);
    (mix.points, queries)
}

/// The self-contained workload for argument-less runs.
fn local_workload() -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let mix = GaussianMixture::generate(GaussianMixtureConfig {
        rows: 20_000,
        dim: 32,
        clusters: 16,
        center_box: 10.0,
        spread: 0.5,
        seed: 0x5EED_F00D,
    });
    let queries = mix.queries(256, 0xBEEF);
    (mix.points, queries)
}

fn train_model(database: &[Vec<f64>], distance: &LpDistance) -> QseModel<Vec<f64>> {
    let pool: Vec<Vec<f64>> = database.iter().take(80).cloned().collect();
    let data = TrainingData::precompute(pool.clone(), pool, distance, 6);
    let mut rng = StdRng::seed_from_u64(1717);
    let triples = TripleSampler::selective(4).sample(&data.train_to_train, 600, &mut rng);
    BoostMapTrainer::new(TrainerConfig::quick()).train(&data, &triples, &mut rng)
}

fn post(stream: &mut TcpStream, body: &str) -> (u16, String) {
    stream
        .write_all(
            format!(
                "POST /query HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .expect("request write");
    read_response(stream)
}

/// Read one keep-alive response off the stream: head, then
/// `Content-Length` body bytes.
fn read_response(stream: &mut TcpStream) -> (u16, String) {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        stream.read_exact(&mut byte).expect("response head");
        head.push(byte[0]);
    }
    let head = String::from_utf8_lossy(&head).to_string();
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let len: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .and_then(|v| v.trim().parse().ok())
        .expect("Content-Length header");
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body).expect("response body");
    (status, String::from_utf8(body).expect("UTF-8 body"))
}

fn query_body(query: &[f64], k: usize, p: usize) -> String {
    let coords: Vec<String> = query.iter().map(|x| format!("{x:?}")).collect();
    format!(r#"{{"query":[{}],"k":{k},"p":{p}}}"#, coords.join(","))
}

fn neighbors_of(body: &str) -> Vec<usize> {
    JsonValue::parse(body)
        .expect("response JSON")
        .get("neighbors")
        .expect("neighbors field")
        .as_array()
        .expect("neighbors array")
        .iter()
        .map(|v| v.as_f64().expect("neighbor id") as usize)
        .collect()
}

fn percentile(sorted: &[Duration], q: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx]
}

/// Fire the well-formed load: `CLIENTS` threads, each with its own
/// keep-alive connection, replaying its share of `queries` and checking
/// every answer against `expected`. Returns per-request latencies.
fn drive_load(addr: SocketAddr, queries: &[Vec<f64>], expected: &[QueryResult]) -> Vec<Duration> {
    let mut latencies = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                scope.spawn(move || {
                    let mut stream = TcpStream::connect(addr).expect("connect");
                    stream
                        .set_read_timeout(Some(Duration::from_secs(30)))
                        .unwrap();
                    let mut local = Vec::with_capacity(REQUESTS_PER_CLIENT);
                    for i in 0..REQUESTS_PER_CLIENT {
                        let qi = (c * REQUESTS_PER_CLIENT + i) % queries.len();
                        let body = query_body(&queries[qi], K, P);
                        let start = Instant::now();
                        let (status, response) = post(&mut stream, &body);
                        local.push(start.elapsed());
                        assert_eq!(status, 200, "client {c} request {i}: {response}");
                        assert_eq!(
                            neighbors_of(&response),
                            expected[qi].neighbors,
                            "client {c} request {i} diverged from direct retrieval"
                        );
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            latencies.extend(handle.join().expect("client thread"));
        }
    });
    latencies
}

/// The malformed barrage: every case must answer a typed error (4xx, a
/// JSON `error.kind`) and leave the server serving.
fn fuzz_malformed(addr: SocketAddr, dim: usize) {
    let good = vec![0.0; dim];
    let cases = [
        query_body(&good, 0, 10),
        query_body(&good, 5, 2),
        query_body(&good, 1, usize::MAX / 2),
        query_body(&[1.0, 2.0, 3.0], K, P),
        r#"{"query":"x","k":1,"p":10}"#.to_string(),
        r#"{"k":1,"p":10}"#.to_string(),
        "not json".to_string(),
        String::new(),
    ];
    for body in &cases {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let (status, response) = post(&mut stream, body);
        assert!(
            (400..500).contains(&status),
            "malformed request must be a typed 4xx, got {status}: {response}"
        );
        JsonValue::parse(&response)
            .expect("error body must be JSON")
            .get("error")
            .expect("error body must carry `error`");
    }
    // Raw garbage that is not HTTP at all.
    for garbage in ["\0\0\0\0", "GARBAGE\r\n\r\n", "POST /query HTTP/2\r\n\r\n"] {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.write_all(garbage.as_bytes()).expect("write");
        let mut response = Vec::new();
        let _ = stream.read_to_end(&mut response);
        let text = String::from_utf8_lossy(&response);
        assert!(
            text.starts_with("HTTP/1.1 400"),
            "garbage must answer 400, got: {text:?}"
        );
    }
    println!(
        "fuzz: {} malformed + 3 garbage requests all answered typed errors, server alive ✓",
        cases.len()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let distance = LpDistance::l2();

    let (api, database, queries) = match args.as_slice() {
        [snapshot] => {
            let (database, queries) = ci_workload();
            let start = Instant::now();
            let api =
                QseApi::load_snapshot(snapshot, Some(database.clone()), Box::new(LpDistance::l2()))
                    .unwrap_or_else(|e| {
                        eprintln!("failed to load snapshot {snapshot}: {e}");
                        std::process::exit(1);
                    });
            println!(
                "loaded {} snapshot ({} rows, dim {}) into the serving facade in {:.2?}",
                api.backend(),
                api.len(),
                api.dim(),
                start.elapsed()
            );
            (api, database, queries)
        }
        [] => {
            let (database, queries) = local_workload();
            let model = train_model(&database, &distance);
            let index = RoutedIndex::<_, u8>::build_query_sensitive_with_store(
                model,
                &database,
                &distance,
                RoutedConfig {
                    cells: 32,
                    n_probe: 6,
                    ..RoutedConfig::default()
                },
            );
            // Round-trip through snapshot bytes even locally — the point
            // is the deployment path, not the in-process object.
            let bytes = index.to_snapshot_bytes().expect("snapshot bytes");
            let api = QseApi::load_snapshot_bytes(
                &bytes,
                Some(database.clone()),
                Box::new(LpDistance::l2()),
            )
            .expect("facade from bytes");
            println!(
                "built + byte-round-tripped a {} backend ({} rows, dim {})",
                api.backend(),
                api.len(),
                api.dim()
            );
            (api, database, queries)
        }
        _ => {
            eprintln!("usage: serve_snapshot [snapshot-file]");
            std::process::exit(2);
        }
    };
    drop(database);

    // Ground truth before the server takes ownership of the facade.
    let expected: Vec<QueryResult> = api
        .try_query_batch(&queries, K, P)
        .expect("ground-truth batch");

    let mut server = QseServer::start(
        api,
        ServeConfig {
            batcher: BatcherConfig {
                latency_budget: Duration::from_micros(500),
                max_batch: 64,
                workers: 2,
            },
            ..ServeConfig::default()
        },
    )
    .expect("server start");
    let addr = server.addr();
    println!("serving on {addr} ({CLIENTS} clients × {REQUESTS_PER_CLIENT} requests)");

    let wall = Instant::now();
    let mut latencies = drive_load(addr, &queries, &expected);
    let wall = wall.elapsed();
    latencies.sort();
    let total = latencies.len();
    let stats = server.batcher_stats();
    println!("{total} well-formed requests, every answer bit-identical to direct retrieval ✓");
    println!(
        "latency p50 {:.2?}  p99 {:.2?}  |  {:.0} req/s",
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.99),
        total as f64 / wall.as_secs_f64()
    );
    println!(
        "admission batching: {} batches over {} queries (mean batch {:.1}), {} deduped",
        stats.batches,
        stats.queries,
        stats.queries as f64 / stats.batches.max(1) as f64,
        stats.deduped
    );

    fuzz_malformed(addr, queries[0].len());

    // And one more well-formed query after the fuzz: the process serves on.
    let mut stream = TcpStream::connect(addr).expect("connect");
    let (status, response) = post(&mut stream, &query_body(&queries[0], K, P));
    assert_eq!(status, 200);
    assert_eq!(neighbors_of(&response), expected[0].neighbors);
    println!("post-fuzz query still bit-identical ✓");

    server.shutdown();
}
