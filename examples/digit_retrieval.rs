//! Handwritten-digit retrieval under the Shape Context Distance — the
//! paper's MNIST scenario at reproduction scale.
//!
//! Builds a database of synthetic digits, trains the paper's Se-QS method
//! and the FastMap baseline, and compares how many exact shape-context
//! evaluations each needs per query to find the true nearest neighbor.
//!
//! Run with: `cargo run --release --example digit_retrieval`

use query_sensitive_embeddings::prelude::*;
use query_sensitive_embeddings::retrieval::experiments::runner::{
    evaluate_methods, Method, WorkloadScale,
};
use query_sensitive_embeddings::retrieval::experiments::workloads::digits_workload;

fn main() {
    // Keep the example small enough to finish in about a minute in release
    // mode; the bench harnesses run the same code at larger scale.
    let database_size = 250;
    let query_count = 40;
    let points_per_shape = 24;

    println!("generating {database_size} synthetic digits + {query_count} queries ...");
    let (database, queries, distance) =
        digits_workload(database_size, query_count, points_per_shape, 2024);

    // A nearest-neighbor classification sanity check on the workload itself.
    let truth = ground_truth(&queries, &database, &distance, 1, 8);
    let agree = queries
        .iter()
        .zip(&truth)
        .filter(|(q, t)| q.label == database[t.neighbors[0]].label)
        .count();
    println!(
        "1-NN classification accuracy of the exact distance: {agree}/{} queries",
        queries.len()
    );

    let scale = WorkloadScale {
        candidate_pool: 80,
        training_pool: 80,
        training_triples: 1_500,
        rounds: 24,
        candidates_per_round: 40,
        intervals_per_candidate: 8,
        kmax: 5,
        dims_to_evaluate: vec![4, 8, 16, 24],
        threads: 8,
    };
    println!("training FastMap and Se-QS ...");
    let evaluations = evaluate_methods(
        &database,
        &queries,
        &distance,
        &scale,
        &[Method::FastMap, Method::Boosted(MethodVariant::SeQs)],
        7,
    );

    println!("\nexact shape-context distances per query (k = 1):");
    println!("{:<10} {:>8} {:>8} {:>8}", "method", "90%", "95%", "99%");
    for eval in &evaluations {
        let c90 = eval.optimal_cost(1, 90.0).cost;
        let c95 = eval.optimal_cost(1, 95.0).cost;
        let c99 = eval.optimal_cost(1, 99.0).cost;
        println!("{:<10} {c90:>8} {c95:>8} {c99:>8}", eval.method);
    }
    println!("(brute force = {database_size} distances per query)");
}
