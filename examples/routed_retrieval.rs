//! Cluster-routed retrieval end to end: partition a clustered embedded
//! database into k-means cells, route each query to its nearest few
//! cells, and watch the recall/latency trade-off as `n_probe` sweeps
//! from 1 to the full cell count — where the routed index becomes
//! bit-identical to the unrouted full scan.
//!
//! ```sh
//! cargo run --release --example routed_retrieval
//! ```

use query_sensitive_embeddings::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    // A deterministic mixture-of-Gaussians collection: 20k points, 16
    // well-separated components in 32 dimensions — the friendly regime
    // for a coarse partition (see `qse_dataset::gaussian`).
    let mix = GaussianMixture::generate(GaussianMixtureConfig {
        rows: 20_000,
        dim: 32,
        clusters: 16,
        center_box: 10.0,
        spread: 0.5,
        seed: 0x60A7,
    });
    let queries = mix.queries(64, 0xBEEF);
    let database = mix.points;
    let distance = LpDistance::l2();

    // One global-L1 FastMap embedding, shared by both indexes.
    let fastmap = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        let sample: Vec<Vec<f64>> = database.iter().take(100).cloned().collect();
        FastMap::train(
            &sample,
            &distance,
            FastMapConfig {
                dimensions: 8,
                pivot_iterations: 3,
            },
            &mut rng,
        )
    };
    let (k, p) = (10, 100);
    let flat =
        FilterRefineIndex::<_, u8>::build_global_with_store(fastmap(7), &database, &distance);
    let mut routed = RoutedIndex::<_, u8>::build_global_with_store(
        fastmap(7),
        &database,
        &distance,
        RoutedConfig {
            cells: 32,
            n_probe: 4,
            ..RoutedConfig::default()
        },
    );
    let sizes = routed.cell_sizes();
    println!(
        "routed index: {} rows in {} cells (sizes {}..{})",
        routed.len(),
        routed.cells(),
        sizes.iter().min().unwrap(),
        sizes.iter().max().unwrap(),
    );

    // Recall@k against the index's own exact full scan, one row per
    // n_probe — the knob a deployment sweeps to pick its operating point.
    let probes: Vec<usize> = vec![1, 2, 4, 8, 16, 32];
    let curve = recall_vs_n_probe(&mut routed, &queries, &database, &distance, k, p, &probes);
    println!("\n  n_probe   recall@{k}   batch latency (64 queries)");
    for (n_probe, recall) in curve {
        routed.set_n_probe(n_probe);
        let start = Instant::now();
        let out = routed.retrieve_batch(&queries, &database, &distance, k, p);
        let elapsed = start.elapsed();
        assert_eq!(out.len(), queries.len());
        println!("  {n_probe:>7}   {recall:>8.3}   {elapsed:>10.2?}");
    }
    let start = Instant::now();
    let full = flat.retrieve_batch(&queries, &database, &distance, k, p);
    println!("  fullscan      1.000   {:>10.2?}", start.elapsed());

    // At n_probe == cells the routed pipeline IS the full scan, bitwise.
    routed.set_n_probe(routed.cells());
    assert_eq!(
        routed.retrieve_batch(&queries, &database, &distance, k, p),
        full,
        "full probe must equal the unrouted pipeline exactly"
    );
    println!("\nfull probe is bit-identical to the unrouted index ✓");
}
