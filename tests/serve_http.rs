//! HTTP front-end hardening: a served index must answer concurrent
//! well-formed queries bit-identically to direct retrieval, answer every
//! malformed request (bad `k`/`p`, wrong dimensionality, garbage bytes,
//! broken JSON, unknown routes, oversized bodies) with a **typed** error
//! response, and keep serving afterwards — no request may take down a
//! connection thread, the batcher, or the process.
//!
//! The server here is loaded from a snapshot (bytes, not a live index),
//! exercising the full cold-start path the CI integration leg and the
//! `serve_snapshot` example run end to end.

use query_sensitive_embeddings::core::json::JsonValue;
use query_sensitive_embeddings::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn clustered(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let c = rng.gen_range(0..9);
            vec![
                (c % 3) as f64 * 14.0 + rng.gen_range(-1.0..1.0),
                (c / 3) as f64 * 14.0 + rng.gen_range(-1.0..1.0),
            ]
        })
        .collect()
}

fn train_model(db: &[Vec<f64>]) -> QseModel<Vec<f64>> {
    let d = LpDistance::l2();
    let pools: Vec<Vec<f64>> = db.iter().take(60).cloned().collect();
    let data = TrainingData::precompute(pools.clone(), pools, &d, 6);
    let mut rng = StdRng::seed_from_u64(1717);
    let triples = TripleSampler::selective(4).sample(&data.train_to_train, 600, &mut rng);
    BoostMapTrainer::new(TrainerConfig::quick()).train(&data, &triples, &mut rng)
}

/// A server over a routed `u8` index that went through snapshot bytes —
/// the deployment path — plus the database for ground-truth queries.
fn snapshot_loaded_server() -> (QseServer, Vec<Vec<f64>>) {
    let db = clustered(300, 0xD0);
    let d = LpDistance::l2();
    let model = train_model(&db);
    let index = RoutedIndex::<_, u8>::build_query_sensitive_with_store(
        model,
        &db,
        &d,
        RoutedConfig {
            cells: 8,
            n_probe: 3,
            ..RoutedConfig::default()
        },
    );
    let bytes = index.to_snapshot_bytes().unwrap();
    let api =
        QseApi::load_snapshot_bytes(&bytes, Some(db.clone()), Box::new(LpDistance::l2())).unwrap();
    assert_eq!(api.backend(), "routed");
    let server = QseServer::start(
        api,
        ServeConfig {
            batcher: BatcherConfig {
                latency_budget: Duration::from_millis(1),
                max_batch: 16,
                workers: 2,
            },
            // Well under the 10 s client read timeout: a stalled-garbage
            // connection must be the server's timeout to win, not a
            // dead-heat race against the client's.
            read_timeout: Duration::from_secs(2),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    (server, db)
}

/// A minimal blocking HTTP/1.1 client: one request per connection.
fn http(addr: std::net::SocketAddr, request: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    let mut response = Vec::new();
    stream.read_to_end(&mut response).unwrap();
    parse_response(&response)
}

fn parse_response(raw: &[u8]) -> (u16, String) {
    let text = String::from_utf8_lossy(raw);
    let status: u16 = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {text:?}"));
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn post_query(addr: std::net::SocketAddr, body: &str) -> (u16, String) {
    http(
        addr,
        &format!(
            "POST /query HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn query_body(query: &[f64], k: usize, p: usize) -> String {
    let coords: Vec<String> = query.iter().map(|x| format!("{x:?}")).collect();
    format!(r#"{{"query":[{}],"k":{k},"p":{p}}}"#, coords.join(","))
}

fn error_kind(body: &str) -> String {
    JsonValue::parse(body)
        .unwrap_or_else(|e| panic!("error body must be JSON ({e}): {body:?}"))
        .get("error")
        .and_then(|e| e.get("kind"))
        .and_then(|k| k.as_str().map(str::to_owned))
        .unwrap_or_else(|e| panic!("error body must carry error.kind ({e}): {body:?}"))
}

#[test]
fn concurrent_queries_match_direct_retrieval() {
    let (server, db) = snapshot_loaded_server();
    let addr = server.addr();
    let api = server.api();
    let (k, p) = (3, 25);
    let queries = clustered(24, 0xD1);

    std::thread::scope(|scope| {
        for q in &queries {
            let expected = api.try_query(q, k, p).unwrap();
            scope.spawn(move || {
                let (status, body) = post_query(addr, &query_body(q, k, p));
                assert_eq!(status, 200, "body: {body}");
                let parsed = JsonValue::parse(&body).unwrap();
                let neighbors: Vec<usize> = parsed
                    .get("neighbors")
                    .unwrap()
                    .as_array()
                    .unwrap()
                    .iter()
                    .map(|v| v.as_f64().unwrap() as usize)
                    .collect();
                let distances: Vec<f64> = parsed
                    .get("distances")
                    .unwrap()
                    .as_array()
                    .unwrap()
                    .iter()
                    .map(|v| v.as_f64().unwrap())
                    .collect();
                assert_eq!(neighbors, expected.neighbors);
                // The wire format prints shortest-round-trip f64, so the
                // distances survive the JSON trip bit-exactly.
                assert_eq!(distances, expected.distances);
            });
        }
    });
    drop(db);
}

#[test]
fn malformed_requests_get_typed_errors_and_the_server_survives() {
    let (server, db) = snapshot_loaded_server();
    let addr = server.addr();
    let good = query_body(&db[0], 3, 25);

    // A fuzz loop of hostile requests, each tagged with the error kind it
    // must come back with (None = any non-200 with a JSON error shape,
    // for the raw-garbage cases that may not even reach dispatch).
    let cases: Vec<(String, Option<&str>)> = vec![
        (query_body(&db[0], 0, 10), Some("bad_k")),
        (query_body(&db[0], 5, 2), Some("bad_p")),
        (query_body(&db[0], 1, 100_000), Some("bad_p")),
        (query_body(&[1.0, 2.0, 3.0], 3, 25), Some("dim_mismatch")),
        (query_body(&[], 3, 25), Some("dim_mismatch")),
        (
            r#"{"query":"nope","k":3,"p":25}"#.into(),
            Some("bad_request"),
        ),
        (r#"{"k":3,"p":25}"#.into(), Some("bad_request")),
        (
            r#"{"query":[1.0,2.0],"k":1.5,"p":25}"#.into(),
            Some("bad_request"),
        ),
        ("not json at all".into(), Some("bad_request")),
        (String::new(), Some("bad_request")),
    ];
    for (i, (body, kind)) in cases.iter().enumerate() {
        let (status, response) = post_query(addr, body);
        assert_ne!(status, 200, "case {i} must be rejected: {body:?}");
        assert_ne!(status, 500, "case {i} must be typed, not a crash: {body:?}");
        if let Some(kind) = kind {
            assert_eq!(error_kind(&response), *kind, "case {i}: {body:?}");
        }
    }

    // Raw garbage that is not even HTTP.
    for garbage in [
        "\0\0\0\0\0\0\0\0",
        "GARBAGE\r\n\r\n",
        "GET\r\n\r\n",
        "POST /query HTTP/9.9\r\n\r\n",
        "POST /query HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
    ] {
        let (status, _) = http(addr, garbage);
        assert_eq!(status, 400, "garbage: {garbage:?}");
    }

    // Unknown routes and an oversized body.
    let (status, response) = http(
        addr,
        "GET /nope HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 404);
    assert_eq!(error_kind(&response), "not_found");
    let (status, _) = http(
        addr,
        "POST /query HTTP/1.1\r\nContent-Length: 99999999\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 413);

    // After the whole fuzz barrage the same process still answers.
    let (status, _) = post_query(addr, &good);
    assert_eq!(
        status, 200,
        "the server must still serve after the fuzz loop"
    );
    let (status, body) = http(
        addr,
        "GET /healthz HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 200);
    let health = JsonValue::parse(&body).unwrap();
    assert_eq!(health.get("status").unwrap().as_str().unwrap(), "ok");
    assert_eq!(health.get("backend").unwrap().as_str().unwrap(), "routed");
}

#[test]
fn keep_alive_carries_sequential_requests() {
    let (server, db) = snapshot_loaded_server();
    let addr = server.addr();
    let api = server.api();
    let (k, p) = (3, 25);

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    for q in db.iter().take(4) {
        let body = query_body(q, k, p);
        stream
            .write_all(
                format!(
                    "POST /query HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
                    body.len()
                )
                .as_bytes(),
            )
            .unwrap();
        // Read exactly one response: headers, then Content-Length bytes.
        let mut raw = Vec::new();
        let mut byte = [0u8; 1];
        while !raw.ends_with(b"\r\n\r\n") {
            stream.read_exact(&mut byte).unwrap();
            raw.push(byte[0]);
        }
        let head = String::from_utf8_lossy(&raw).to_string();
        let len: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        let mut body_buf = vec![0u8; len];
        stream.read_exact(&mut body_buf).unwrap();
        let (status, _) = parse_response(&[raw.clone(), body_buf.clone()].concat());
        assert_eq!(status, 200);
        let parsed = JsonValue::parse(&String::from_utf8(body_buf).unwrap()).unwrap();
        let expected = api.try_query(q, k, p).unwrap();
        let neighbors: Vec<usize> = parsed
            .get("neighbors")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_f64().unwrap() as usize)
            .collect();
        assert_eq!(neighbors, expected.neighbors);
    }
}

#[test]
fn snapshot_facade_rejects_wrong_setups() {
    let db = clustered(120, 0xD2);
    let d = LpDistance::l2();
    let model = train_model(&db);
    let index = FilterRefineIndex::<_, u8>::build_query_sensitive_with_store(model, &db, &d);
    let bytes = index.to_snapshot_bytes().unwrap();

    // A static snapshot without its database cannot serve.
    assert!(matches!(
        QseApi::load_snapshot_bytes(&bytes, None, Box::new(LpDistance::l2())),
        Err(ServeError::DatabaseRequired)
    ));
    // Corrupt bytes surface the snapshot error, typed.
    assert!(matches!(
        QseApi::load_snapshot_bytes(&bytes[..10], Some(db.clone()), Box::new(LpDistance::l2())),
        Err(ServeError::Snapshot(_))
    ));
    // A database of the wrong length is refused at construction.
    assert!(matches!(
        QseApi::load_snapshot_bytes(&bytes, Some(db[..50].to_vec()), Box::new(LpDistance::l2())),
        Err(ServeError::BadDatabase(_))
    ));
    // The right setup loads and serves.
    let api =
        QseApi::load_snapshot_bytes(&bytes, Some(db.clone()), Box::new(LpDistance::l2())).unwrap();
    assert_eq!(api.backend(), "static");
    assert_eq!(api.len(), 120);
    assert_eq!(api.dim(), 2);
    assert!(api.try_query(&db[3], 3, 20).is_ok());
}

/// A server over a live concurrent index — the mutable deployment path:
/// the facade claims the write handle, HTTP gets `/insert` + `/remove`.
fn concurrent_server() -> (QseServer, Vec<Vec<f64>>) {
    let db = clustered(200, 0xE0);
    let d = LpDistance::l2();
    let model = train_model(&db);
    let index = ConcurrentIndex::from_dynamic(DynamicIndex::new(model, db.clone(), &d));
    let api = QseApi::from_concurrent(index, Box::new(LpDistance::l2())).unwrap();
    assert_eq!(api.backend(), "concurrent");
    let server = QseServer::start(
        api,
        ServeConfig {
            batcher: BatcherConfig {
                latency_budget: Duration::from_millis(1),
                max_batch: 16,
                workers: 2,
            },
            // Well under the 10 s client read timeout: a stalled-garbage
            // connection must be the server's timeout to win, not a
            // dead-heat race against the client's.
            read_timeout: Duration::from_secs(2),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    (server, db)
}

fn get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    http(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"),
    )
}

fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> (u16, String) {
    http(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

#[test]
fn info_reports_the_identity_card_and_immutable_backends_reject_mutation() {
    let (server, _db) = snapshot_loaded_server();
    let addr = server.addr();

    let (status, body) = get(addr, "/info");
    assert_eq!(status, 200, "body: {body}");
    let info = JsonValue::parse(&body).unwrap();
    assert_eq!(info.get("backend").unwrap().as_str().unwrap(), "routed");
    assert_eq!(info.get("len").unwrap().as_f64().unwrap() as usize, 300);
    assert_eq!(info.get("dim").unwrap().as_f64().unwrap() as usize, 2);
    assert!(matches!(
        info.get("mutable").unwrap(),
        JsonValue::Bool(false)
    ));
    assert!(
        matches!(info.get("epoch").unwrap(), JsonValue::Null),
        "a snapshot-loaded routed index has no epochs: {body}"
    );

    // The mutation routes exist but the backend refuses, typed.
    let (status, body) = post(addr, "/insert", r#"{"object":[1.0,2.0]}"#);
    assert_eq!(status, 400, "body: {body}");
    assert_eq!(error_kind(&body), "mutation_unsupported");
    let (status, body) = post(addr, "/remove", r#"{"id":0}"#);
    assert_eq!(status, 400, "body: {body}");
    assert_eq!(error_kind(&body), "mutation_unsupported");
}

#[test]
fn live_mutation_over_http_round_trips() {
    let (server, db) = concurrent_server();
    let addr = server.addr();
    let n = db.len();

    // The identity card of a mutable backend: epoch 0 before any write.
    let (status, body) = get(addr, "/info");
    assert_eq!(status, 200, "body: {body}");
    let info = JsonValue::parse(&body).unwrap();
    assert_eq!(info.get("backend").unwrap().as_str().unwrap(), "concurrent");
    assert!(matches!(
        info.get("mutable").unwrap(),
        JsonValue::Bool(true)
    ));
    assert_eq!(info.get("epoch").unwrap().as_f64().unwrap() as u64, 0);

    // Insert a far-away landmark; the response names its id and the new
    // epoch, and an immediate query finds it as its own 1-NN.
    let landmark = [97.5, -44.25];
    let (status, body) = post(addr, "/insert", r#"{"object":[97.5,-44.25]}"#);
    assert_eq!(status, 200, "body: {body}");
    let report = JsonValue::parse(&body).unwrap();
    let id = report.get("id").unwrap().as_f64().unwrap() as usize;
    assert_eq!(id, n);
    assert_eq!(report.get("len").unwrap().as_f64().unwrap() as usize, n + 1);
    assert_eq!(report.get("epoch").unwrap().as_f64().unwrap() as u64, 1);
    let (status, body) = post_query(addr, &query_body(&landmark, 1, 10));
    assert_eq!(status, 200, "body: {body}");
    let hit = JsonValue::parse(&body).unwrap();
    assert_eq!(
        hit.get("neighbors").unwrap().as_array().unwrap()[0]
            .as_f64()
            .unwrap() as usize,
        id
    );

    // Remove it again (swap-remove semantics; it is the last id, so the
    // length just shrinks back) and the epoch advances once more.
    let (status, body) = post(addr, "/remove", &format!(r#"{{"id":{id}}}"#));
    assert_eq!(status, 200, "body: {body}");
    let report = JsonValue::parse(&body).unwrap();
    assert_eq!(report.get("len").unwrap().as_f64().unwrap() as usize, n);
    assert_eq!(report.get("epoch").unwrap().as_f64().unwrap() as u64, 2);

    // Typed rejections: stale id, wrong dimensionality, malformed JSON,
    // missing body — and the server keeps serving after all of them.
    let (status, body) = post(addr, "/remove", &format!(r#"{{"id":{}}}"#, 10 * n));
    assert_eq!(status, 400, "body: {body}");
    assert_eq!(error_kind(&body), "bad_id");
    let (status, body) = post(addr, "/insert", r#"{"object":[1.0,2.0,3.0]}"#);
    assert_eq!(status, 400, "body: {body}");
    assert_eq!(error_kind(&body), "dim_mismatch");
    let (status, body) = post(addr, "/insert", r#"{"object":"nope"}"#);
    assert_eq!(status, 400, "body: {body}");
    assert_eq!(error_kind(&body), "bad_request");
    let (status, body) = http(
        addr,
        "POST /insert HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 411, "body: {body}");
    let (status, body) = post_query(addr, &query_body(&db[0], 3, 20));
    assert_eq!(
        status, 200,
        "the server must survive rejected mutations: {body}"
    );
}

#[test]
fn queries_keep_draining_while_writes_land() {
    let (server, db) = concurrent_server();
    let addr = server.addr();
    let api = server.api();
    let writes = 12;

    std::thread::scope(|scope| {
        // A writer hammers insert/remove pairs over HTTP...
        scope.spawn(move || {
            for i in 0..writes {
                let x = 200.0 + i as f64;
                let (status, body) =
                    post(addr, "/insert", &format!(r#"{{"object":[{x:?},{x:?}]}}"#));
                assert_eq!(status, 200, "write {i}: {body}");
                let id = JsonValue::parse(&body)
                    .unwrap()
                    .get("id")
                    .unwrap()
                    .as_f64()
                    .unwrap() as usize;
                let (status, body) = post(addr, "/remove", &format!(r#"{{"id":{id}}}"#));
                assert_eq!(status, 200, "unwrite {i}: {body}");
            }
        });
        // ...while readers keep getting well-formed answers. (The index
        // length oscillates, so neighbor sets are epoch-dependent; the
        // invariant here is liveness plus well-formedness — the
        // bit-identity contract is pinned by tests/concurrent_index.rs.)
        for q in db.iter().take(16) {
            let (status, body) = post_query(addr, &query_body(q, 3, 20));
            assert_eq!(status, 200, "read under write: {body}");
            let parsed = JsonValue::parse(&body).unwrap();
            assert_eq!(
                parsed.get("neighbors").unwrap().as_array().unwrap().len(),
                3
            );
        }
    });

    // Afterwards the facade agrees with the final state: every write was
    // undone, so direct retrieval matches a fresh HTTP query.
    assert_eq!(api.len(), db.len());
    assert_eq!(api.info().epoch, Some(2 * writes as u64));
    let expected = api.try_query(&db[1], 3, 20).unwrap();
    let (status, body) = post_query(addr, &query_body(&db[1], 3, 20));
    assert_eq!(status, 200);
    let parsed = JsonValue::parse(&body).unwrap();
    let neighbors: Vec<usize> = parsed
        .get("neighbors")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|v| v.as_f64().unwrap() as usize)
        .collect();
    assert_eq!(neighbors, expected.neighbors);
}

#[test]
fn shutdown_returns_promptly_without_a_final_client() {
    let (mut server, _db) = snapshot_loaded_server();
    // Nobody connects after startup: the accept thread is parked inside
    // `accept()`. Shutdown must unblock it directly rather than waiting
    // for a next connection (or a timeout) to arrive.
    let start = std::time::Instant::now();
    server.shutdown();
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_secs(2),
        "shutdown took {elapsed:?}; the accept thread was not unblocked"
    );
    // Idempotent: a second call is a no-op.
    server.shutdown();
}
