//! Conformance suite for the compat shims under `crates/compat/` — the
//! contracts the rest of the workspace builds on, exercised at thread
//! counts {1, 2, 8} via `RAYON_NUM_THREADS`:
//!
//! * `rayon`: `par_map` order preservation and panic propagation (original
//!   payload, pool survives), `par_chunks_mut` chunk disjointness and
//!   coverage, `join` both-sides execution, nested-call progress on the
//!   persistent pool.
//! * `rand`: bit-determinism of `StdRng` streams, `gen_range` bounds and
//!   `shuffle` permutations from a fixed seed — independent of the ambient
//!   thread count.
//!
//! Thread count 1 pins the inline (pool-bypassing) paths; 2 and 8 pin the
//! persistent pool, including oversubscription of the single-core CI host.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// The thread counts every contract is checked at.
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

mod common;
use common::with_thread_count;

#[test]
fn par_map_preserves_input_order() {
    let input: Vec<usize> = (0..1013).collect();
    let expect: Vec<String> = input.iter().map(|i| format!("item-{i}")).collect();
    for threads in THREAD_COUNTS {
        let got: Vec<String> = with_thread_count(threads, || {
            input.par_iter().map(|i| format!("item-{i}")).collect()
        });
        assert_eq!(got, expect, "order broke at {threads} threads");
    }
}

#[test]
fn par_map_collect_is_identical_across_thread_counts() {
    let input: Vec<i64> = (0..500).map(|i| i * 7 - 250).collect();
    let reference: Vec<i64> =
        with_thread_count(1, || input.par_iter().map(|x| x * x - 3).collect());
    for threads in THREAD_COUNTS {
        let got: Vec<i64> =
            with_thread_count(threads, || input.par_iter().map(|x| x * x - 3).collect());
        assert_eq!(got, reference, "result diverged at {threads} threads");
    }
}

#[test]
fn par_map_propagates_panics_with_their_original_payload() {
    for threads in THREAD_COUNTS {
        // The panicking index lands in the first chunk (caller-inline) for
        // position 0 and in a worker chunk for the tail position.
        for bad in [0usize, 399] {
            let result = with_thread_count(threads, || {
                catch_unwind(AssertUnwindSafe(|| {
                    let _: Vec<usize> = (0..400)
                        .into_par_iter()
                        .map(|i| {
                            if i == bad {
                                panic!("conformance-boom");
                            }
                            i
                        })
                        .collect();
                }))
            });
            let payload = result.expect_err("panic must propagate to the caller");
            let message = payload.downcast_ref::<&str>().copied().unwrap_or_else(|| {
                payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .unwrap()
            });
            assert_eq!(
                message, "conformance-boom",
                "payload mangled at {threads} threads (bad index {bad})"
            );
        }
        // The pool must survive the panic and keep producing correct results.
        let after: Vec<usize> = with_thread_count(threads, || {
            (0..100).into_par_iter().map(|i| i + 1).collect()
        });
        assert_eq!(after, (1..=100).collect::<Vec<_>>());
    }
}

#[test]
fn par_chunks_mut_visits_disjoint_chunks_exactly_once() {
    for threads in THREAD_COUNTS {
        for (len, size) in [(103usize, 10usize), (64, 16), (7, 100), (100, 1)] {
            let mut data = vec![0usize; len];
            let visits = AtomicUsize::new(0);
            with_thread_count(threads, || {
                data.par_chunks_mut(size)
                    .enumerate()
                    .for_each(|(i, chunk)| {
                        visits.fetch_add(1, Ordering::SeqCst);
                        for x in chunk.iter_mut() {
                            // Disjointness makes this a data-race-free write; the
                            // +1 afterwards detects double visits.
                            *x += i + 1;
                        }
                    });
            });
            assert_eq!(
                visits.load(Ordering::SeqCst),
                len.div_ceil(size),
                "chunk count at {threads} threads (len {len}, size {size})"
            );
            for (j, x) in data.iter().enumerate() {
                assert_eq!(
                    *x,
                    j / size + 1,
                    "element {j} at {threads} threads (len {len}, size {size})"
                );
            }
        }
    }
}

#[test]
fn join_executes_both_sides_and_returns_both_results() {
    for threads in THREAD_COUNTS {
        let left = AtomicUsize::new(0);
        let right = AtomicUsize::new(0);
        let (a, b) = with_thread_count(threads, || {
            rayon::join(
                || {
                    left.fetch_add(1, Ordering::SeqCst);
                    21 * 2
                },
                || {
                    right.fetch_add(1, Ordering::SeqCst);
                    "both"
                },
            )
        });
        assert_eq!((a, b), (42, "both"), "results at {threads} threads");
        assert_eq!(left.load(Ordering::SeqCst), 1, "left side ran once");
        assert_eq!(right.load(Ordering::SeqCst), 1, "right side ran once");
    }
}

#[test]
fn join_propagates_panics_from_either_side() {
    for threads in THREAD_COUNTS {
        let b_ran = AtomicUsize::new(0);
        let result = with_thread_count(threads, || {
            catch_unwind(AssertUnwindSafe(|| {
                rayon::join(
                    || panic!("left-boom"),
                    || b_ran.fetch_add(1, Ordering::SeqCst),
                )
            }))
        });
        assert!(result.is_err(), "left panic lost at {threads} threads");
        if threads > 1 {
            // On the pool the right side was already submitted, so it runs
            // to completion even though the left side panicked. (At one
            // thread `join` is sequential — like real rayon's fallback — and
            // the panic happens before the right side starts.)
            assert_eq!(
                b_ran.load(Ordering::SeqCst),
                1,
                "right side must still run to completion at {threads} threads"
            );
        }
        let result = with_thread_count(threads, || {
            catch_unwind(AssertUnwindSafe(|| {
                rayon::join(|| 1, || -> usize { panic!("right-boom") })
            }))
        });
        assert!(result.is_err(), "right panic lost at {threads} threads");
    }
}

#[test]
fn nested_parallel_calls_make_progress_on_the_pool() {
    for threads in THREAD_COUNTS {
        let got: Vec<usize> = with_thread_count(threads, || {
            (0..6)
                .into_par_iter()
                .map(|i| {
                    let inner: Vec<usize> = (0..32).into_par_iter().map(|j| i * 32 + j).collect();
                    inner.into_iter().sum()
                })
                .collect()
        });
        let expect: Vec<usize> = (0..6).map(|i| (0..32).map(|j| i * 32 + j).sum()).collect();
        assert_eq!(got, expect, "nested calls at {threads} threads");
    }
}

#[test]
fn current_num_threads_respects_the_environment() {
    for threads in THREAD_COUNTS {
        let seen = with_thread_count(threads, rayon::current_num_threads);
        assert_eq!(seen, threads);
    }
    // With the variable unset, the fallback is the machine's parallelism.
    let fallback = common::with_thread_count_unset(rayon::current_num_threads);
    assert!(fallback >= 1);
}

#[test]
fn seeded_rng_streams_are_bit_deterministic() {
    for threads in THREAD_COUNTS {
        with_thread_count(threads, || {
            let mut a = StdRng::seed_from_u64(0xDEC0DE);
            let mut b = StdRng::seed_from_u64(0xDEC0DE);
            let sa: Vec<u64> = (0..256).map(|_| a.gen_range(0..u64::MAX)).collect();
            let sb: Vec<u64> = (0..256).map(|_| b.gen_range(0..u64::MAX)).collect();
            assert_eq!(sa, sb, "same seed must give the same stream");
            let mut c = StdRng::seed_from_u64(0xDEC0DF);
            let sc: Vec<u64> = (0..256).map(|_| c.gen_range(0..u64::MAX)).collect();
            assert_ne!(sa, sc, "different seeds must diverge");
        });
    }
}

#[test]
fn seeded_rng_distributions_stay_in_bounds_and_reproduce() {
    for threads in THREAD_COUNTS {
        with_thread_count(threads, || {
            let mut rng = StdRng::seed_from_u64(31337);
            let floats: Vec<f64> = (0..512).map(|_| rng.gen_range(-2.5..7.5)).collect();
            assert!(floats.iter().all(|x| (-2.5..7.5).contains(x)));
            let ints: Vec<i32> = (0..512).map(|_| rng.gen_range(-3..4)).collect();
            assert!(ints.iter().all(|x| (-3..4).contains(x)));
            // The draws must reproduce bit-for-bit from the same seed.
            let mut again = StdRng::seed_from_u64(31337);
            let floats2: Vec<f64> = (0..512).map(|_| again.gen_range(-2.5..7.5)).collect();
            assert_eq!(
                floats.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                floats2.iter().map(|f| f.to_bits()).collect::<Vec<_>>()
            );
        });
    }
}

#[test]
fn seeded_shuffle_produces_the_same_permutation() {
    for threads in THREAD_COUNTS {
        with_thread_count(threads, || {
            let mut first: Vec<usize> = (0..100).collect();
            first.shuffle(&mut StdRng::seed_from_u64(99));
            let mut second: Vec<usize> = (0..100).collect();
            second.shuffle(&mut StdRng::seed_from_u64(99));
            assert_eq!(first, second, "shuffle must be seed-deterministic");
            let mut sorted = first.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..100).collect::<Vec<_>>(), "it is a permutation");
        });
    }
}
