//! Guarantees of the cluster-routed retrieval layer (`qse_retrieval::routed`).
//!
//! Two contracts are pinned here, on the deterministic mixture-of-Gaussians
//! workloads of `qse_dataset::gaussian`:
//!
//! 1. **Exactness at full probe** — `RoutedIndex` at `n_probe == cells()`
//!    is **bit-identical** to the unrouted `FilterRefineIndex` (same
//!    neighbors, same costs), on every filter-store backend (`f64`, `f32`,
//!    `u8`), for both the global-L1 and the query-sensitive index,
//!    sequentially and batched, at 1/2/8 threads. This is the property that
//!    makes routing a pure *candidate-generation* optimization: nothing
//!    about scoring, selection or refine changes, only which rows are
//!    visited.
//! 2. **The recall/latency knob is well behaved** — the
//!    `recall_vs_n_probe` curve is monotone non-decreasing (visiting more
//!    cells only adds candidates), reaches exactly `1.0` at
//!    `n_probe == cells()`, and on a clustered workload with as many cells
//!    as generative components, a small `n_probe` already recovers ≥ 0.95
//!    of the full scan's neighbors.

use query_sensitive_embeddings::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

mod common;
use common::with_thread_count;

/// The standard clustered workload: a dozen well-separated Gaussians in 16
/// dimensions — small enough for the test suite, clustered enough that
/// routing is meaningful.
fn workload() -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let mix = GaussianMixture::generate(GaussianMixtureConfig {
        rows: 1500,
        dim: 16,
        clusters: 12,
        center_box: 10.0,
        spread: 0.5,
        seed: 0x60A7,
    });
    let queries = mix.queries(24, 0xBEEF);
    (mix.points, queries)
}

fn fastmap(db: &[Vec<f64>], seed: u64) -> FastMap<Vec<f64>> {
    let d = LpDistance::l2();
    let mut rng = StdRng::seed_from_u64(seed);
    let sample: Vec<Vec<f64>> = db.iter().take(80).cloned().collect();
    FastMap::train(
        &sample,
        &d,
        FastMapConfig {
            dimensions: 5,
            pivot_iterations: 3,
        },
        &mut rng,
    )
}

fn train_model(db: &[Vec<f64>]) -> QseModel<Vec<f64>> {
    let d = LpDistance::l2();
    let pools: Vec<Vec<f64>> = db.iter().take(60).cloned().collect();
    let data = TrainingData::precompute(pools.clone(), pools, &d, 6);
    let mut rng = StdRng::seed_from_u64(515);
    let triples = TripleSampler::selective(4).sample(&data.train_to_train, 500, &mut rng);
    BoostMapTrainer::new(TrainerConfig::quick()).train(&data, &triples, &mut rng)
}

/// Contract 1 for one backend: full-probe routed retrieval equals the
/// unrouted pipeline bitwise, global and query-sensitive, sequential and
/// batched, at every thread count in the CI matrix.
fn assert_full_probe_is_bit_identical<E: FilterElem>() {
    let (db, queries) = workload();
    let d = LpDistance::l2();
    let (k, p) = (5, 40);
    let config = RoutedConfig {
        cells: 10,
        n_probe: 10,
        ..RoutedConfig::default()
    };

    // Global-L1 (FastMap) index.
    let flat = FilterRefineIndex::<_, E>::build_global_with_store(fastmap(&db, 31), &db, &d);
    let routed = RoutedIndex::<_, E>::build_global_with_store(fastmap(&db, 31), &db, &d, config);
    assert_eq!(routed.cells(), 10);
    assert_eq!(routed.n_probe(), 10);
    for threads in [1, 2, 8] {
        with_thread_count(threads, || {
            let expect = flat.retrieve_batch(&queries, &db, &d, k, p);
            assert_eq!(
                routed.retrieve_batch(&queries, &db, &d, k, p),
                expect,
                "{} global batch diverged at {threads} threads",
                E::NAME
            );
            for (q, query) in queries.iter().enumerate() {
                assert_eq!(
                    routed.retrieve(query, &db, &d, k, p),
                    expect[q],
                    "{} global query {q} diverged at {threads} threads",
                    E::NAME
                );
            }
        });
    }

    // Query-sensitive index (per-query weights exercise the routing
    // metric's query sensitivity too).
    let model = train_model(&db);
    let flat = FilterRefineIndex::<_, E>::build_query_sensitive_with_store(model.clone(), &db, &d);
    let routed = RoutedIndex::<_, E>::build_query_sensitive_with_store(model, &db, &d, config);
    for threads in [1, 2, 8] {
        with_thread_count(threads, || {
            let expect = flat.retrieve_batch(&queries, &db, &d, k, p);
            assert_eq!(
                routed.retrieve_batch(&queries, &db, &d, k, p),
                expect,
                "{} qs batch diverged at {threads} threads",
                E::NAME
            );
            for (q, query) in queries.iter().enumerate() {
                assert_eq!(
                    routed.retrieve(query, &db, &d, k, p),
                    expect[q],
                    "{} qs query {q} diverged at {threads} threads",
                    E::NAME
                );
            }
        });
    }
}

#[test]
fn f64_full_probe_matches_the_unrouted_pipeline_bitwise() {
    assert_full_probe_is_bit_identical::<f64>();
}

#[test]
fn f32_full_probe_matches_the_unrouted_pipeline_bitwise() {
    assert_full_probe_is_bit_identical::<f32>();
}

#[test]
fn u8_full_probe_matches_the_unrouted_pipeline_bitwise() {
    assert_full_probe_is_bit_identical::<u8>();
}

/// Contract 2: the recall@k-vs-n_probe curve on the clustered workload —
/// monotone, 1.0 at full probe, and ≥ 0.95 well before full probe when
/// cells track the generative clusters.
#[test]
fn recall_curve_is_monotone_and_saturates_on_the_gaussian_workload() {
    let (db, queries) = workload();
    let d = LpDistance::l2();
    let mut routed = RoutedIndex::build_global(
        fastmap(&db, 47),
        &db,
        &d,
        RoutedConfig {
            cells: 12,
            n_probe: 2,
            ..RoutedConfig::default()
        },
    );
    let probes: Vec<usize> = (1..=routed.cells()).collect();
    let curve = recall_vs_n_probe(&mut routed, &queries, &db, &d, 5, 40, &probes);
    assert_eq!(curve.len(), probes.len());
    for pair in curve.windows(2) {
        assert!(
            pair[1].1 >= pair[0].1,
            "recall must be monotone non-decreasing: {curve:?}"
        );
    }
    assert_eq!(
        curve.last().unwrap().1,
        1.0,
        "full probe must recover the full scan exactly: {curve:?}"
    );
    let (probe_95, _) = curve
        .iter()
        .find(|(_, r)| *r >= 0.95)
        .copied()
        .unwrap_or_else(|| panic!("no probe reaches 0.95 recall: {curve:?}"));
    assert!(
        probe_95 < routed.cells(),
        "0.95 recall must be reachable before the full probe: {curve:?}"
    );
    assert_eq!(routed.n_probe(), 2, "sweep must restore the original knob");
}

/// The same curve through a quantized (`u8`) routed index: the shared
/// grid keeps the full-probe point exact there too.
#[test]
fn u8_recall_curve_saturates_at_full_probe() {
    let (db, queries) = workload();
    let d = LpDistance::l2();
    let mut routed = RoutedIndex::<_, u8>::build_query_sensitive_with_store(
        train_model(&db),
        &db,
        &d,
        RoutedConfig {
            cells: 8,
            n_probe: 2,
            ..RoutedConfig::default()
        },
    );
    let curve = recall_vs_n_probe(&mut routed, &queries, &db, &d, 3, 30, &[1, 4, 8]);
    for pair in curve.windows(2) {
        assert!(pair[1].1 >= pair[0].1, "monotonicity: {curve:?}");
    }
    assert_eq!(curve.last().unwrap().1, 1.0, "{curve:?}");
}
