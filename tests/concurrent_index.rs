//! Concurrent-index consistency: every read a `ReadHandle` serves — at
//! any reader thread count, while a writer churns the index — must be
//! bit-identical to a plain [`DynamicIndex`] replayed to the same write
//! prefix. The epoch number stamped on each pinned snapshot is the
//! contract: epoch `e` means "exactly the first `e` mutation calls", so
//! the checker replays a fresh plain index through that prefix and
//! compares neighbor lists exactly. Runs single-threaded and with 2 and
//! 8 reader threads, under the CI `RAYON_NUM_THREADS` matrix.

mod common;

use common::with_thread_count;
use query_sensitive_embeddings::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;

fn clustered(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let c = rng.gen_range(0..9);
            vec![
                (c % 3) as f64 * 14.0 + rng.gen_range(-1.0..1.0),
                (c / 3) as f64 * 14.0 + rng.gen_range(-1.0..1.0),
            ]
        })
        .collect()
}

fn train_model(db: &[Vec<f64>]) -> QseModel<Vec<f64>> {
    let d = LpDistance::l2();
    let pools: Vec<Vec<f64>> = db.iter().take(60).cloned().collect();
    let data = TrainingData::precompute(pools.clone(), pools, &d, 6);
    let mut rng = StdRng::seed_from_u64(0xC0);
    let triples = TripleSampler::selective(4).sample(&data.train_to_train, 500, &mut rng);
    BoostMapTrainer::new(TrainerConfig::quick()).train(&data, &triples, &mut rng)
}

/// One scripted mutation. Each variant maps to exactly one `WriteHandle`
/// call, i.e. exactly one published epoch.
#[derive(Clone, Debug)]
enum Op {
    Insert(Vec<f64>),
    Remove(usize),
    Compact,
    Refit,
}

/// A seeded churn script over an index that starts at `len` objects.
/// Removes pick ids valid at that point of the script and the length
/// never drops below `len / 2`, so `p` stays admissible throughout.
fn churn_script(seed: u64, mut len: usize, ops: usize) -> Vec<Op> {
    let floor = len / 2;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..ops)
        .map(|_| match rng.gen_range(0..100) {
            0..=54 => {
                len += 1;
                let c = rng.gen_range(0..9);
                Op::Insert(vec![
                    (c % 3) as f64 * 14.0 + rng.gen_range(-1.0..1.0),
                    (c / 3) as f64 * 14.0 + rng.gen_range(-1.0..1.0),
                ])
            }
            55..=89 if len > floor => {
                len -= 1;
                Op::Remove(rng.gen_range(0..len + 1))
            }
            90..=95 => Op::Compact,
            _ => Op::Refit,
        })
        .collect()
}

fn apply_concurrent(
    writer: &mut WriteHandle<Vec<f64>>,
    op: &Op,
    d: &dyn DistanceMeasure<Vec<f64>>,
) {
    match op {
        Op::Insert(obj) => {
            writer.insert(obj.clone(), d);
        }
        Op::Remove(id) => {
            writer.remove(*id);
        }
        Op::Compact => writer.compact(),
        Op::Refit => writer.refit_store(d),
    }
}

/// Replay one op onto the plain reference index. `Compact` is
/// result-invariant garbage collection the plain index does not have, so
/// its replay is a no-op — which is exactly the guarantee under test.
fn apply_plain(plain: &mut DynamicIndex<Vec<f64>>, op: &Op, d: &dyn DistanceMeasure<Vec<f64>>) {
    match op {
        Op::Insert(obj) => {
            plain.insert(obj.clone(), d);
        }
        Op::Remove(id) => {
            plain.remove(*id);
        }
        Op::Compact => {}
        Op::Refit => plain.refit_store(d),
    }
}

const K: usize = 3;
const P: usize = 20;

fn probe_queries() -> Vec<Vec<f64>> {
    clustered(4, 0xBEEF)
}

/// Expected neighbor lists per epoch: replay the script prefix by prefix
/// on a plain `DynamicIndex` and retrieve after each op.
fn expected_by_epoch(
    model: QseModel<Vec<f64>>,
    db: Vec<Vec<f64>>,
    script: &[Op],
    d: &dyn DistanceMeasure<Vec<f64>>,
) -> Vec<Vec<Vec<usize>>> {
    let queries = probe_queries();
    let mut plain = DynamicIndex::new(model, db, d);
    let mut expected = Vec::with_capacity(script.len() + 1);
    let results =
        |ix: &DynamicIndex<Vec<f64>>| queries.iter().map(|q| ix.retrieve(q, d, K, P)).collect();
    expected.push(results(&plain));
    for op in script {
        apply_plain(&mut plain, op, d);
        expected.push(results(&plain));
    }
    expected
}

/// Sequential form of the contract: after every single op, the published
/// snapshot answers exactly like the replayed plain index, and the epoch
/// counter equals the number of ops applied.
#[test]
fn every_epoch_matches_the_replayed_plain_index() {
    let d = LpDistance::l2();
    let db = clustered(120, 0xA0);
    let model = train_model(&db);
    let script = churn_script(0x51, db.len(), 40);
    let expected = expected_by_epoch(model.clone(), db.clone(), &script, &d);

    let conc = ConcurrentIndex::from_dynamic(DynamicIndex::new(model, db, &d));
    let reader = conc.reader();
    let mut writer = conc.writer();
    writer.set_tail_limit(5); // force sealing every few inserts
    let queries = probe_queries();
    for (i, op) in script.iter().enumerate() {
        apply_concurrent(&mut writer, op, &d);
        let snap = reader.snapshot();
        assert_eq!(snap.epoch(), (i + 1) as u64, "one op must be one epoch");
        for (q, want) in queries.iter().zip(&expected[i + 1]) {
            assert_eq!(
                &snap.try_retrieve(q, &d, K, P).unwrap(),
                want,
                "epoch {} diverged after {op:?}",
                i + 1
            );
        }
    }
}

/// The threaded form: reader threads pin snapshots and retrieve while
/// the writer churns through the script concurrently. Every recorded
/// `(epoch, neighbors)` pair must match the sequential replay — reads
/// are bit-identical at any thread count and any interleaving.
fn churn_stress(readers: usize) {
    let d = LpDistance::l2();
    let db = clustered(120, 0xA1);
    let model = train_model(&db);
    let script = churn_script(0x52, db.len(), 50);
    let expected = expected_by_epoch(model.clone(), db.clone(), &script, &d);

    let conc = ConcurrentIndex::from_dynamic(DynamicIndex::new(model, db, &d));
    let mut writer = conc.writer();
    writer.set_tail_limit(6);
    let queries = probe_queries();
    let done = AtomicBool::new(false);
    // The writer holds at the barrier until every reader is live, so
    // even the 1-reader run interleaves reads with the churn.
    let barrier = Barrier::new(readers + 1);

    let records: Vec<Vec<(u64, Vec<Vec<usize>>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..readers)
            .map(|_| {
                let reader = conc.reader();
                let (queries, d) = (&queries, &d);
                let (done, barrier) = (&done, &barrier);
                scope.spawn(move || {
                    let mut seen: Vec<(u64, Vec<Vec<usize>>)> = Vec::new();
                    let mut record = |snap: std::sync::Arc<
                        query_sensitive_embeddings::retrieval::Snapshot<Vec<f64>>,
                    >| {
                        if seen.last().is_some_and(|(e, _)| *e == snap.epoch()) {
                            return; // already checked this epoch
                        }
                        let results = queries
                            .iter()
                            .map(|q| snap.try_retrieve(q, d, K, P).unwrap())
                            .collect();
                        seen.push((snap.epoch(), results));
                    };
                    record(reader.snapshot());
                    barrier.wait();
                    while !done.load(Ordering::SeqCst) {
                        record(reader.snapshot());
                    }
                    // One pin after the writer finished: the final epoch
                    // is always part of the record.
                    record(reader.snapshot());
                    seen
                })
            })
            .collect();

        barrier.wait();
        for op in &script {
            apply_concurrent(&mut writer, op, &d);
            std::thread::yield_now();
        }
        done.store(true, Ordering::SeqCst);
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut checked = BTreeMap::new();
    for (reader_id, seen) in records.iter().enumerate() {
        assert!(
            seen.iter().any(|(e, _)| *e == script.len() as u64),
            "reader {reader_id} must observe the final epoch"
        );
        for (epoch, results) in seen {
            assert_eq!(
                results, &expected[*epoch as usize],
                "reader {reader_id} diverged from the replayed plain index at epoch {epoch}"
            );
            *checked.entry(*epoch).or_insert(0usize) += 1;
        }
    }
    // Epoch 0 (pre-churn) and the final epoch are pinned by construction;
    // the interleaving in between is whatever the scheduler produced.
    assert!(checked.len() >= 2, "stress must check at least two epochs");
}

#[test]
fn churned_reads_stay_bit_identical_one_reader() {
    with_thread_count(1, || churn_stress(1));
}

#[test]
fn churned_reads_stay_bit_identical_two_readers() {
    with_thread_count(2, || churn_stress(2));
}

#[test]
fn churned_reads_stay_bit_identical_eight_readers() {
    with_thread_count(8, || churn_stress(8));
}

/// Handles stay coherent across threads: the single-writer claim is
/// global, and a clone of a `ReadHandle` moved to another thread sees
/// the same epochs as the original.
#[test]
fn handles_are_shareable_and_the_writer_claim_is_global() {
    let d = LpDistance::l2();
    let db = clustered(80, 0xA2);
    let model = train_model(&db);
    let conc = ConcurrentIndex::from_dynamic(DynamicIndex::new(model, db, &d));
    let reader = conc.reader();
    let mut writer = conc.writer();

    std::thread::scope(|scope| {
        let conc = &conc;
        scope
            .spawn(move || assert!(conc.try_writer().is_none()))
            .join()
            .unwrap();
    });
    writer.insert(vec![1.0, 2.0], &d);
    let moved = reader.clone();
    std::thread::scope(|scope| {
        scope
            .spawn(move || {
                assert_eq!(moved.epoch(), 1);
                assert_eq!(moved.len(), 81);
            })
            .join()
            .unwrap();
    });
    drop(writer);
    assert!(conc.try_writer().is_some());
}
