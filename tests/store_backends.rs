//! Guarantees of the pluggable filter-store precision backends.
//!
//! The refactor's contract has three parts, each pinned here:
//!
//! 1. **The `f64` backend is the old index** — the generic `_with_store`
//!    constructors instantiated at `f64` produce results bit-identical to
//!    the historical builders (whose own identity to the scalar path is
//!    pinned by `tests/property_tests.rs`).
//! 2. **Lossy backends are correctness-guarded by refine** — with the
//!    filter step running over `f32` or `u8` storage, the exact-distance
//!    refine step must still return exactly the `f64` pipeline's neighbors
//!    (recall@k = 1.0) on the standard clustered workloads, for both the
//!    query-sensitive and the global-L1 index, sequentially and batched.
//! 3. **Quantization error is bounded** — raw `u8` decode-path filter
//!    scores stay within `Σ_j w_j · scale_j / 2` of the exact scores (the
//!    grid's half-step bound), the in-domain integer SAD scores the
//!    retrieval pipelines actually use stay within the **widened
//!    two-sided** bound `Σ_j w_j · scale_j` (store + query rounding; see
//!    `qse_distance::sad`), and `f32` scores within single-precision
//!    rounding.
//!
//! Plus the edge suite every backend must mirror (dim-0 stores, empty
//! stores, insert-after-empty), the `p_scale` oversampling knob with its
//! per-backend default (`2.0` for `u8` under the widened bound) and its
//! `⌈p·s⌉ > n` cap, and the PR 5 drift-recovery policy: `u8` inserts far
//! outside the fitted grid saturate (pinned as a real failure mode) and
//! `DynamicIndex::refit_store` / `retrain` recover in place.

use query_sensitive_embeddings::prelude::*;
use query_sensitive_embeddings::retrieval::knn::knn;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn clustered(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let c = rng.gen_range(0..9);
            vec![
                (c % 3) as f64 * 14.0 + rng.gen_range(-1.0..1.0),
                (c / 3) as f64 * 14.0 + rng.gen_range(-1.0..1.0),
            ]
        })
        .collect()
}

fn train_model(db: &[Vec<f64>]) -> QseModel<Vec<f64>> {
    let d = LpDistance::l2();
    let pools: Vec<Vec<f64>> = db.iter().take(60).cloned().collect();
    let data = TrainingData::precompute(pools.clone(), pools, &d, 6);
    let mut rng = StdRng::seed_from_u64(1717);
    let triples = TripleSampler::selective(4).sample(&data.train_to_train, 600, &mut rng);
    BoostMapTrainer::new(TrainerConfig::quick()).train(&data, &triples, &mut rng)
}

fn fastmap(db: &[Vec<f64>]) -> FastMap<Vec<f64>> {
    let d = LpDistance::l2();
    let mut rng = StdRng::seed_from_u64(2727);
    let sample: Vec<Vec<f64>> = db.iter().take(60).cloned().collect();
    FastMap::train(
        &sample,
        &d,
        FastMapConfig {
            dimensions: 6,
            pivot_iterations: 3,
        },
        &mut rng,
    )
}

#[test]
fn f64_with_store_builders_match_the_historical_builders_bitwise() {
    let db = clustered(300, 11);
    let d = LpDistance::l2();
    let queries = clustered(24, 13);
    let (k, p) = (4, 30);

    let model = train_model(&db);
    let old = FilterRefineIndex::build_query_sensitive(model.clone(), &db, &d);
    let new = FilterRefineIndex::<_, f64>::build_query_sensitive_with_store(model, &db, &d);
    assert_eq!(old.vectors(), new.vectors(), "stores must be identical");
    for q in &queries {
        assert_eq!(
            old.retrieve(q, &db, &d, k, p),
            new.retrieve(q, &db, &d, k, p)
        );
    }

    let old = FilterRefineIndex::build_global(fastmap(&db), &db, &d);
    let new = FilterRefineIndex::<_, f64>::build_global_with_store(fastmap(&db), &db, &d);
    assert_eq!(old.vectors(), new.vectors(), "stores must be identical");
    assert_eq!(
        old.retrieve_batch(&queries, &db, &d, k, p),
        new.retrieve_batch(&queries, &db, &d, k, p)
    );
}

/// Retrieval through a lossy store must report exactly the `f64` pipeline's
/// neighbors once refine has recomputed exact distances: recall@k = 1.0 on
/// the clustered workloads, per query, sequentially and batched.
fn assert_lossy_backend_recall_is_perfect<E: FilterElem>() {
    let db = clustered(400, 21);
    let d = LpDistance::l2();
    let queries = clustered(40, 23); // crosses the 16-query tile boundary
    let (k, p) = (5, 50);

    // Query-sensitive index.
    let model = train_model(&db);
    let exact = FilterRefineIndex::build_query_sensitive(model.clone(), &db, &d);
    let lossy = FilterRefineIndex::<_, E>::build_query_sensitive_with_store(model, &db, &d);
    let exact_batch = exact.retrieve_batch(&queries, &db, &d, k, p);
    let lossy_batch = lossy.retrieve_batch(&queries, &db, &d, k, p);
    for (q, query) in queries.iter().enumerate() {
        assert_eq!(
            lossy_batch[q].neighbors,
            exact_batch[q].neighbors,
            "{} seqs: recall@{k} < 1.0 for query {q}",
            E::NAME
        );
        assert_eq!(
            lossy.retrieve(query, &db, &d, k, p),
            lossy_batch[q],
            "{} seqs: batch/sequential divergence for query {q}",
            E::NAME
        );
    }

    // Global-L1 (FastMap) index.
    let exact = FilterRefineIndex::build_global(fastmap(&db), &db, &d);
    let lossy = FilterRefineIndex::<_, E>::build_global_with_store(fastmap(&db), &db, &d);
    let exact_batch = exact.retrieve_batch(&queries, &db, &d, k, p);
    let lossy_batch = lossy.retrieve_batch(&queries, &db, &d, k, p);
    for q in 0..queries.len() {
        assert_eq!(
            lossy_batch[q].neighbors,
            exact_batch[q].neighbors,
            "{} fastmap: recall@{k} < 1.0 for query {q}",
            E::NAME
        );
    }
}

#[test]
fn f32_pipeline_recall_matches_f64_exactly() {
    assert_lossy_backend_recall_is_perfect::<f32>();
}

#[test]
fn u8_pipeline_recall_matches_f64_exactly() {
    assert_lossy_backend_recall_is_perfect::<u8>();
}

#[test]
fn u8_raw_filter_scores_respect_the_half_grid_step_bound() {
    let mut rng = StdRng::seed_from_u64(31);
    for dim in [3, 8, 32] {
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|_| (0..dim).map(|_| rng.gen_range(-15.0..15.0)).collect())
            .collect();
        let weights: Vec<f64> = (0..dim).map(|_| rng.gen_range(0.1..2.0)).collect();
        let query: Vec<f64> = (0..dim).map(|_| rng.gen_range(-15.0..15.0)).collect();
        let d = WeightedL1::new(weights.clone());
        let exact = FlatVectors::from_rows_with_dim(dim, rows.clone());
        let quant = FlatStore::<u8>::from_rows_with_dim(dim, rows);
        let bound: f64 = weights
            .iter()
            .zip(&quant.params().scale)
            .map(|(w, s)| w * s / 2.0)
            .sum::<f64>()
            * (1.0 + 1e-9)
            + 1e-9;
        let mut s_exact = vec![0.0; exact.len()];
        let mut s_quant = vec![0.0; quant.len()];
        d.eval_flat(&query, &exact, &mut s_exact);
        d.eval_flat(&query, &quant, &mut s_quant);
        for (i, (a, b)) in s_exact.iter().zip(&s_quant).enumerate() {
            assert!(
                (a - b).abs() <= bound,
                "dim {dim}, row {i}: |{a} - {b}| > {bound}"
            );
        }
    }
}

#[test]
fn f32_raw_filter_scores_stay_within_single_precision_rounding() {
    let mut rng = StdRng::seed_from_u64(37);
    let dim = 16;
    let rows: Vec<Vec<f64>> = (0..200)
        .map(|_| (0..dim).map(|_| rng.gen_range(-50.0..50.0)).collect())
        .collect();
    let weights: Vec<f64> = (0..dim).map(|_| rng.gen_range(0.1..2.0)).collect();
    let query: Vec<f64> = (0..dim).map(|_| rng.gen_range(-50.0..50.0)).collect();
    let d = WeightedL1::new(weights.clone());
    let exact = FlatVectors::from_rows_with_dim(dim, rows.clone());
    let single = FlatStore::<f32>::from_rows_with_dim(dim, rows.clone());
    let mut s_exact = vec![0.0; exact.len()];
    let mut s_single = vec![0.0; single.len()];
    d.eval_flat(&query, &exact, &mut s_exact);
    d.eval_flat(&query, &single, &mut s_single);
    for (i, (a, b)) in s_exact.iter().zip(&s_single).enumerate() {
        // Per-coordinate f32 rounding is at most |v| · 2⁻²⁴; doubling the
        // exponent covers the summation's own rounding comfortably.
        let bound: f64 = weights
            .iter()
            .zip(&rows[i])
            .map(|(w, b)| w * b.abs())
            .sum::<f64>()
            * 2f64.powi(-23)
            + 1e-9;
        assert!((a - b).abs() <= bound, "row {i}: |{a} - {b}| > {bound}");
    }
}

/// The dim-0 / empty-store / insert-after-empty edge suite, per backend —
/// mirrors the `f64` regressions in `qse-distance` and `qse-retrieval`.
fn assert_backend_edge_cases<E: FilterElem>() {
    let d = LpDistance::l2();
    // Dynamic index over an initially empty database: the store must carry
    // the model's dimensionality (and the backend's default grid) so online
    // inserts work immediately.
    let model = train_model(&clustered(120, 41));
    let mut index = DynamicIndex::<_, E>::with_store(model, Vec::new(), &d);
    assert!(index.is_empty(), "{}", E::NAME);
    let a = index.insert(vec![0.1, 0.0], &d);
    let b = index.insert(vec![14.2, 14.1], &d);
    assert_eq!((a, b), (0, 1), "{}", E::NAME);
    let hit = index.retrieve(&vec![0.0, 0.0], &d, 1, 2);
    assert_eq!(hit.len(), 1, "{}", E::NAME);
    index.remove(0);
    assert_eq!(index.len(), 1, "{}", E::NAME);

    // knn over a dim-0 store: every distance is the empty sum, ties break
    // by index — including through the batched tiled pipeline.
    let mut store = FlatStore::<E>::with_dim(0);
    let mut queries = FlatVectors::with_dim(0);
    for _ in 0..4 {
        store.push(&[]);
    }
    for _ in 0..3 {
        queries.push(&[]);
    }
    for result in knn_flat_batch(&WeightedL1::new(Vec::new()), &queries, &store, 2) {
        assert_eq!(result.neighbors, vec![0, 1], "{}", E::NAME);
        assert_eq!(result.distances, vec![0.0, 0.0], "{}", E::NAME);
    }
    // Empty query batches write nothing, even with out-of-range k.
    let empty = FlatVectors::with_dim(0);
    assert!(
        knn_flat_batch(&WeightedL1::new(Vec::new()), &empty, &store, 9).is_empty(),
        "{}",
        E::NAME
    );
}

#[test]
fn f32_edge_cases_match_the_f64_suite() {
    assert_backend_edge_cases::<f32>();
}

#[test]
fn u8_edge_cases_match_the_f64_suite() {
    assert_backend_edge_cases::<u8>();
}

#[test]
fn p_scale_widens_the_filter_candidate_set() {
    let db = clustered(300, 51);
    let d = LpDistance::l2();
    let model = train_model(&db);
    let queries = clustered(10, 53);
    let (k, p) = (3, 20);

    // p_scale = 1.0 (explicitly or by default) changes nothing.
    let base = FilterRefineIndex::build_query_sensitive(model.clone(), &db, &d);
    let unit = FilterRefineIndex::build_query_sensitive(model.clone(), &db, &d).with_p_scale(1.0);
    assert_eq!(base.p_scale(), 1.0);
    for q in &queries {
        assert_eq!(
            base.retrieve(q, &db, &d, k, p),
            unit.retrieve(q, &db, &d, k, p)
        );
    }

    // An oversampled quantized index refines ⌈p · p_scale⌉ candidates (the
    // reported refine cost), capped at the database size, and the batched
    // path agrees with the sequential one.
    let quant =
        FilterRefineIndex::<_, u8>::build_query_sensitive_with_store(model.clone(), &db, &d)
            .with_p_scale(2.5);
    let outcome = quant.retrieve(&queries[0], &db, &d, k, p);
    assert_eq!(outcome.refine_cost, 50);
    let batch = quant.retrieve_batch(&queries, &db, &d, k, p);
    for (q, query) in queries.iter().enumerate() {
        assert_eq!(batch[q], quant.retrieve(query, &db, &d, k, p));
    }
    let capped =
        FilterRefineIndex::<_, u8>::build_query_sensitive_with_store(model.clone(), &db, &d)
            .with_p_scale(1e6);
    assert_eq!(
        capped.retrieve(&queries[0], &db, &d, k, p).refine_cost,
        db.len()
    );

    // Oversampling can only grow the candidate set, so the refined top-k is
    // at least as close to the truth: with p_scale covering the whole
    // database the result equals exact brute force.
    let truth = knn(&queries[0], &db, &d, k);
    assert_eq!(
        capped.retrieve(&queries[0], &db, &d, k, p).neighbors,
        truth.neighbors
    );

    // The dynamic index carries the same knob.
    let dynamic = DynamicIndex::new(model, db.clone(), &d).with_p_scale(2.0);
    let hits = dynamic.retrieve(&queries[0], &d, k, p);
    assert_eq!(hits.len(), k);
}

#[test]
#[should_panic(expected = "at least 1.0")]
fn p_scale_rejects_shrinking_factors() {
    let db = clustered(120, 61);
    let d = LpDistance::l2();
    let _ = FilterRefineIndex::build_query_sensitive(train_model(&db), &db, &d).with_p_scale(0.5);
}

/// A hand-built, query-*insensitive* model over 2-D vectors: `dim`
/// reference coordinates with full-interval unit-alpha learners, so the
/// filter distance is the plain L1 between reference-distance embeddings
/// for every query — deterministic behavior even for queries far outside
/// the training region (no splitter can zero the weights there).
fn reference_model(references: &[Vec<f64>]) -> QseModel<Vec<f64>> {
    use query_sensitive_embeddings::core::model::TrainingHistory;
    use query_sensitive_embeddings::core::{Interval, WeakLearner};
    use query_sensitive_embeddings::embedding::one_d::Candidate;
    let coordinates: Vec<OneDEmbedding<Vec<f64>>> = references
        .iter()
        .enumerate()
        .map(|(i, r)| OneDEmbedding::reference(Candidate::new(i, r.clone())))
        .collect();
    let learners = (0..references.len())
        .map(|coordinate| WeakLearner {
            coordinate,
            interval: Interval::full(),
            alpha: 1.0,
        })
        .collect();
    QseModel::new(coordinates, learners, TrainingHistory::default())
}

/// The widened (store + query) quantization bound through the pipeline's
/// actual entry points: integer-path `u8` filter scores must stay within
/// `Σ_j w_j · scale_j` (+ the negligible weight-rounding term) of the
/// exact `f64` filter scores — twice the store-only half-step bound,
/// because the in-domain path quantizes the query side too.
#[test]
fn u8_integer_filter_scores_respect_the_widened_two_sided_bound() {
    use query_sensitive_embeddings::distance::SadQuery;
    let mut rng = StdRng::seed_from_u64(67);
    for dim in [3, 8, 32] {
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|_| (0..dim).map(|_| rng.gen_range(-15.0..15.0)).collect())
            .collect();
        let weights: Vec<f64> = (0..dim).map(|_| rng.gen_range(0.1..2.0)).collect();
        let query: Vec<f64> = (0..dim).map(|_| rng.gen_range(-15.0..15.0)).collect();
        let d = WeightedL1::new(weights.clone());
        let exact = FlatVectors::from_rows_with_dim(dim, rows.clone());
        let quant = FlatStore::<u8>::from_rows_with_dim(dim, rows);
        let store_bound: f64 = weights
            .iter()
            .zip(&quant.params().scale)
            .map(|(w, s)| w * s / 2.0)
            .sum();
        let query_bound = SadQuery::new(&weights, &query, quant.params()).score_error_bound();
        let bound = (store_bound + query_bound) * (1.0 + 1e-9) + 1e-9;
        let mut s_exact = vec![0.0; exact.len()];
        let mut s_int = vec![0.0; quant.len()];
        d.eval_flat(&query, &exact, &mut s_exact);
        d.eval_filter(&query, &quant, &mut s_int);
        for (i, (a, b)) in s_exact.iter().zip(&s_int).enumerate() {
            assert!(
                (a - b).abs() <= bound,
                "dim {dim}, row {i}: |{a} - {b}| > {bound}"
            );
        }
        // The query-sensitive entry point runs the same integer path: an
        // EmbeddedQuery with these weights produces identical scores.
        let eq = EmbeddedQuery {
            coordinates: query.clone(),
            weights: weights.clone(),
        };
        let mut s_eq = vec![0.0; quant.len()];
        eq.score_filter(&quant, &mut s_eq);
        assert_eq!(s_eq, s_int, "dim {dim}");
    }
}

/// The backend-suggested oversampling default: `u8` indexes start at
/// `p_scale = 2.0` (the widened two-sided error bound needs a wider
/// filter net), the exact backends at `1.0`, and `with_p_scale` still
/// overrides both ways.
#[test]
fn u8_indexes_default_to_the_widened_oversampling_factor() {
    let db = clustered(150, 71);
    let d = LpDistance::l2();
    let model = train_model(&db);
    let f64_index = FilterRefineIndex::build_query_sensitive(model.clone(), &db, &d);
    assert_eq!(f64_index.p_scale(), 1.0);
    let f32_index =
        FilterRefineIndex::<_, f32>::build_query_sensitive_with_store(model.clone(), &db, &d);
    assert_eq!(f32_index.p_scale(), 1.0);
    let u8_index =
        FilterRefineIndex::<_, u8>::build_query_sensitive_with_store(model.clone(), &db, &d);
    assert_eq!(u8_index.p_scale(), 2.0);
    assert_eq!(u8_index.with_p_scale(1.0).p_scale(), 1.0);
    // The refine cost reports the doubled candidate count by default.
    let u8_index =
        FilterRefineIndex::<_, u8>::build_query_sensitive_with_store(model.clone(), &db, &d);
    let outcome = u8_index.retrieve(&db[0], &db, &d, 3, 20);
    assert_eq!(outcome.refine_cost, 40);
    // The dynamic index inherits the same backend default.
    let dynamic = DynamicIndex::<_, u8>::with_store(model.clone(), db.clone(), &d);
    assert_eq!(dynamic.p_scale(), 2.0);
    assert_eq!(DynamicIndex::new(model, db, &d).p_scale(), 1.0);
}

/// `⌈p · p_scale⌉ > n` must cap at the database size on every retrieve
/// path — static, dynamic, sequential and batched — and a capped filter
/// degenerates to exact brute force (refine sees everything).
#[test]
fn p_scale_products_beyond_the_database_size_are_capped() {
    let db = clustered(60, 73);
    let d = LpDistance::l2();
    let model = train_model(&db);
    let queries = clustered(5, 79);
    let (k, p) = (2, 40);

    // Static u8 index: ⌈40 · 2.0⌉ = 80 > 60 caps at 60 ⇒ exact results.
    let quant =
        FilterRefineIndex::<_, u8>::build_query_sensitive_with_store(model.clone(), &db, &d);
    for q in &queries {
        let outcome = quant.retrieve(q, &db, &d, k, p);
        assert_eq!(outcome.refine_cost, db.len());
        assert_eq!(outcome.neighbors, knn(q, &db, &d, k).neighbors);
    }
    for (q, outcome) in queries
        .iter()
        .zip(quant.retrieve_batch(&queries, &db, &d, k, p))
    {
        assert_eq!(outcome.refine_cost, db.len());
        assert_eq!(outcome.neighbors, knn(q, &db, &d, k).neighbors);
    }

    // Dynamic u8 index: the cap tracks the *current* size across edits.
    let mut dynamic = DynamicIndex::<_, u8>::with_store(model, db.clone(), &d).with_p_scale(1e6);
    let expected: Vec<usize> = knn(&queries[0], &db, &d, k).neighbors;
    assert_eq!(dynamic.retrieve(&queries[0], &d, k, p), expected);
    dynamic.remove(db.len() - 1);
    let hits = dynamic.retrieve(&queries[0], &d, k, k);
    assert_eq!(hits.len(), k);
    assert_eq!(
        dynamic.retrieve_batch(&queries, &d, k, k),
        queries
            .iter()
            .map(|q| dynamic.retrieve(q, &d, k, k))
            .collect::<Vec<_>>()
    );
}

/// Online inserts far outside the fitted `u8` grid saturate to the grid
/// edge — the filter cannot separate them — and one
/// `DynamicIndex::refit_store` refits the grid over the current database
/// and restores full filter resolution, without rebuilding the index.
#[test]
fn u8_insert_saturation_recovers_after_refit() {
    let d = LpDistance::l2();
    // Initial database near the origin; grid fitted over it.
    let initial: Vec<Vec<f64>> = (0..40)
        .map(|i| vec![(i % 8) as f64, (i / 8) as f64])
        .collect();
    let model = reference_model(&[vec![0.0, 0.0], vec![10.0, 0.0]]);
    let mut index = DynamicIndex::<_, u8>::with_store(model, initial.clone(), &d);
    let n0 = index.len();

    // Drift: a stream of inserts far outside the fitted grid. Their
    // embedded rows saturate, so their stored codes are all identical.
    let far: Vec<Vec<f64>> = (0..12)
        .map(|i| vec![200.0 + 5.0 * i as f64, 200.0])
        .collect();
    let far_ids: Vec<usize> = far.iter().map(|o| index.insert(o.clone(), &d)).collect();
    let first_far = *far_ids.first().unwrap();
    let last_far = *far_ids.last().unwrap();
    assert_eq!(
        index.vectors().decode_row(first_far),
        index.vectors().decode_row(last_far),
        "saturated inserts must collapse onto the grid edge"
    );

    // A query equal to the *last* far insert: every saturated row ties in
    // the filter, ties break by index, and with a tight p the true
    // nearest neighbor (the duplicate itself) never reaches the refine
    // step — retrieval returns a wrong, far-away object.
    let query = far.last().unwrap().clone();
    let before = index.retrieve(&query, &d, 1, 1);
    assert_ne!(
        before[0], last_far,
        "saturated filter should misrank the drifted region"
    );
    assert!(before[0] >= n0, "ties still land inside the drifted region");

    // One in-place refit: the grid now spans the drifted data, codes
    // separate, and the duplicate is found with the same tight p.
    index.refit_store(&d);
    let refit_decoded = index.vectors().decode_row(last_far);
    assert_ne!(
        index.vectors().decode_row(first_far),
        refit_decoded,
        "refit grid must separate the drifted rows"
    );
    let after = index.retrieve(&query, &d, 1, 1);
    assert_eq!(after[0], last_far, "refit must restore the true neighbor");
}

/// `DynamicIndex::retrain` swaps the model in place (here with a
/// different output dimensionality), re-embeds the current database and
/// refits the grid: the index must behave exactly like one freshly built
/// from the new model over the same objects.
#[test]
fn retrain_matches_a_freshly_built_index_and_changes_dim() {
    let d = LpDistance::l2();
    let objects: Vec<Vec<f64>> = (0..50)
        .map(|i| vec![(i % 10) as f64 * 1.5, (i / 10) as f64 * 2.0])
        .collect();
    let old_model = reference_model(&[vec![0.0, 0.0], vec![15.0, 0.0]]);
    let new_model = reference_model(&[vec![0.0, 10.0], vec![15.0, 10.0], vec![7.0, 0.0]]);

    let mut retrained = DynamicIndex::<_, u8>::with_store(old_model, objects.clone(), &d);
    // Mutate online first, so the retrain covers a live index.
    let extra = retrained.insert(vec![3.3, 4.4], &d);
    retrained.retrain(new_model.clone(), &d);
    assert_eq!(retrained.model().dim(), 3);

    let mut fresh = DynamicIndex::<_, u8>::with_store(new_model, objects, &d);
    let fresh_extra = fresh.insert(vec![3.3, 4.4], &d);
    assert_eq!(extra, fresh_extra);
    assert_eq!(
        retrained.vectors().params(),
        fresh.vectors().params(),
        "retrain must refit the grid exactly as a fresh build does"
    );
    let queries: Vec<Vec<f64>> = (0..9).map(|i| vec![i as f64, 8.0 - i as f64]).collect();
    for q in &queries {
        assert_eq!(
            retrained.retrieve(q, &d, 3, 10),
            fresh.retrieve(q, &d, 3, 10)
        );
    }
    assert_eq!(
        retrained.retrieve_batch(&queries, &d, 3, 10),
        fresh.retrieve_batch(&queries, &d, 3, 10)
    );
}
