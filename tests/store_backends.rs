//! Guarantees of the pluggable filter-store precision backends.
//!
//! The refactor's contract has three parts, each pinned here:
//!
//! 1. **The `f64` backend is the old index** — the generic `_with_store`
//!    constructors instantiated at `f64` produce results bit-identical to
//!    the historical builders (whose own identity to the scalar path is
//!    pinned by `tests/property_tests.rs`).
//! 2. **Lossy backends are correctness-guarded by refine** — with the
//!    filter step running over `f32` or `u8` storage, the exact-distance
//!    refine step must still return exactly the `f64` pipeline's neighbors
//!    (recall@k = 1.0) on the standard clustered workloads, for both the
//!    query-sensitive and the global-L1 index, sequentially and batched.
//! 3. **Quantization error is bounded** — raw `u8` filter scores stay
//!    within `Σ_j w_j · scale_j / 2` of the exact scores (the grid's
//!    half-step bound), and `f32` scores within single-precision rounding.
//!
//! Plus the edge suite every backend must mirror (dim-0 stores, empty
//! stores, insert-after-empty) and the `p_scale` oversampling knob.

use query_sensitive_embeddings::prelude::*;
use query_sensitive_embeddings::retrieval::knn::knn;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn clustered(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let c = rng.gen_range(0..9);
            vec![
                (c % 3) as f64 * 14.0 + rng.gen_range(-1.0..1.0),
                (c / 3) as f64 * 14.0 + rng.gen_range(-1.0..1.0),
            ]
        })
        .collect()
}

fn train_model(db: &[Vec<f64>]) -> QseModel<Vec<f64>> {
    let d = LpDistance::l2();
    let pools: Vec<Vec<f64>> = db.iter().take(60).cloned().collect();
    let data = TrainingData::precompute(pools.clone(), pools, &d, 6);
    let mut rng = StdRng::seed_from_u64(1717);
    let triples = TripleSampler::selective(4).sample(&data.train_to_train, 600, &mut rng);
    BoostMapTrainer::new(TrainerConfig::quick()).train(&data, &triples, &mut rng)
}

fn fastmap(db: &[Vec<f64>]) -> FastMap<Vec<f64>> {
    let d = LpDistance::l2();
    let mut rng = StdRng::seed_from_u64(2727);
    let sample: Vec<Vec<f64>> = db.iter().take(60).cloned().collect();
    FastMap::train(
        &sample,
        &d,
        FastMapConfig {
            dimensions: 6,
            pivot_iterations: 3,
        },
        &mut rng,
    )
}

#[test]
fn f64_with_store_builders_match_the_historical_builders_bitwise() {
    let db = clustered(300, 11);
    let d = LpDistance::l2();
    let queries = clustered(24, 13);
    let (k, p) = (4, 30);

    let model = train_model(&db);
    let old = FilterRefineIndex::build_query_sensitive(model.clone(), &db, &d);
    let new = FilterRefineIndex::<_, f64>::build_query_sensitive_with_store(model, &db, &d);
    assert_eq!(old.vectors(), new.vectors(), "stores must be identical");
    for q in &queries {
        assert_eq!(
            old.retrieve(q, &db, &d, k, p),
            new.retrieve(q, &db, &d, k, p)
        );
    }

    let old = FilterRefineIndex::build_global(fastmap(&db), &db, &d);
    let new = FilterRefineIndex::<_, f64>::build_global_with_store(fastmap(&db), &db, &d);
    assert_eq!(old.vectors(), new.vectors(), "stores must be identical");
    assert_eq!(
        old.retrieve_batch(&queries, &db, &d, k, p),
        new.retrieve_batch(&queries, &db, &d, k, p)
    );
}

/// Retrieval through a lossy store must report exactly the `f64` pipeline's
/// neighbors once refine has recomputed exact distances: recall@k = 1.0 on
/// the clustered workloads, per query, sequentially and batched.
fn assert_lossy_backend_recall_is_perfect<E: FilterElem>() {
    let db = clustered(400, 21);
    let d = LpDistance::l2();
    let queries = clustered(40, 23); // crosses the 16-query tile boundary
    let (k, p) = (5, 50);

    // Query-sensitive index.
    let model = train_model(&db);
    let exact = FilterRefineIndex::build_query_sensitive(model.clone(), &db, &d);
    let lossy = FilterRefineIndex::<_, E>::build_query_sensitive_with_store(model, &db, &d);
    let exact_batch = exact.retrieve_batch(&queries, &db, &d, k, p);
    let lossy_batch = lossy.retrieve_batch(&queries, &db, &d, k, p);
    for (q, query) in queries.iter().enumerate() {
        assert_eq!(
            lossy_batch[q].neighbors,
            exact_batch[q].neighbors,
            "{} seqs: recall@{k} < 1.0 for query {q}",
            E::NAME
        );
        assert_eq!(
            lossy.retrieve(query, &db, &d, k, p),
            lossy_batch[q],
            "{} seqs: batch/sequential divergence for query {q}",
            E::NAME
        );
    }

    // Global-L1 (FastMap) index.
    let exact = FilterRefineIndex::build_global(fastmap(&db), &db, &d);
    let lossy = FilterRefineIndex::<_, E>::build_global_with_store(fastmap(&db), &db, &d);
    let exact_batch = exact.retrieve_batch(&queries, &db, &d, k, p);
    let lossy_batch = lossy.retrieve_batch(&queries, &db, &d, k, p);
    for q in 0..queries.len() {
        assert_eq!(
            lossy_batch[q].neighbors,
            exact_batch[q].neighbors,
            "{} fastmap: recall@{k} < 1.0 for query {q}",
            E::NAME
        );
    }
}

#[test]
fn f32_pipeline_recall_matches_f64_exactly() {
    assert_lossy_backend_recall_is_perfect::<f32>();
}

#[test]
fn u8_pipeline_recall_matches_f64_exactly() {
    assert_lossy_backend_recall_is_perfect::<u8>();
}

#[test]
fn u8_raw_filter_scores_respect_the_half_grid_step_bound() {
    let mut rng = StdRng::seed_from_u64(31);
    for dim in [3, 8, 32] {
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|_| (0..dim).map(|_| rng.gen_range(-15.0..15.0)).collect())
            .collect();
        let weights: Vec<f64> = (0..dim).map(|_| rng.gen_range(0.1..2.0)).collect();
        let query: Vec<f64> = (0..dim).map(|_| rng.gen_range(-15.0..15.0)).collect();
        let d = WeightedL1::new(weights.clone());
        let exact = FlatVectors::from_rows_with_dim(dim, rows.clone());
        let quant = FlatStore::<u8>::from_rows_with_dim(dim, rows);
        let bound: f64 = weights
            .iter()
            .zip(&quant.params().scale)
            .map(|(w, s)| w * s / 2.0)
            .sum::<f64>()
            * (1.0 + 1e-9)
            + 1e-9;
        let mut s_exact = vec![0.0; exact.len()];
        let mut s_quant = vec![0.0; quant.len()];
        d.eval_flat(&query, &exact, &mut s_exact);
        d.eval_flat(&query, &quant, &mut s_quant);
        for (i, (a, b)) in s_exact.iter().zip(&s_quant).enumerate() {
            assert!(
                (a - b).abs() <= bound,
                "dim {dim}, row {i}: |{a} - {b}| > {bound}"
            );
        }
    }
}

#[test]
fn f32_raw_filter_scores_stay_within_single_precision_rounding() {
    let mut rng = StdRng::seed_from_u64(37);
    let dim = 16;
    let rows: Vec<Vec<f64>> = (0..200)
        .map(|_| (0..dim).map(|_| rng.gen_range(-50.0..50.0)).collect())
        .collect();
    let weights: Vec<f64> = (0..dim).map(|_| rng.gen_range(0.1..2.0)).collect();
    let query: Vec<f64> = (0..dim).map(|_| rng.gen_range(-50.0..50.0)).collect();
    let d = WeightedL1::new(weights.clone());
    let exact = FlatVectors::from_rows_with_dim(dim, rows.clone());
    let single = FlatStore::<f32>::from_rows_with_dim(dim, rows.clone());
    let mut s_exact = vec![0.0; exact.len()];
    let mut s_single = vec![0.0; single.len()];
    d.eval_flat(&query, &exact, &mut s_exact);
    d.eval_flat(&query, &single, &mut s_single);
    for (i, (a, b)) in s_exact.iter().zip(&s_single).enumerate() {
        // Per-coordinate f32 rounding is at most |v| · 2⁻²⁴; doubling the
        // exponent covers the summation's own rounding comfortably.
        let bound: f64 = weights
            .iter()
            .zip(&rows[i])
            .map(|(w, b)| w * b.abs())
            .sum::<f64>()
            * 2f64.powi(-23)
            + 1e-9;
        assert!((a - b).abs() <= bound, "row {i}: |{a} - {b}| > {bound}");
    }
}

/// The dim-0 / empty-store / insert-after-empty edge suite, per backend —
/// mirrors the `f64` regressions in `qse-distance` and `qse-retrieval`.
fn assert_backend_edge_cases<E: FilterElem>() {
    let d = LpDistance::l2();
    // Dynamic index over an initially empty database: the store must carry
    // the model's dimensionality (and the backend's default grid) so online
    // inserts work immediately.
    let model = train_model(&clustered(120, 41));
    let mut index = DynamicIndex::<_, E>::with_store(model, Vec::new(), &d);
    assert!(index.is_empty(), "{}", E::NAME);
    let a = index.insert(vec![0.1, 0.0], &d);
    let b = index.insert(vec![14.2, 14.1], &d);
    assert_eq!((a, b), (0, 1), "{}", E::NAME);
    let hit = index.retrieve(&vec![0.0, 0.0], &d, 1, 2);
    assert_eq!(hit.len(), 1, "{}", E::NAME);
    index.remove(0);
    assert_eq!(index.len(), 1, "{}", E::NAME);

    // knn over a dim-0 store: every distance is the empty sum, ties break
    // by index — including through the batched tiled pipeline.
    let mut store = FlatStore::<E>::with_dim(0);
    let mut queries = FlatVectors::with_dim(0);
    for _ in 0..4 {
        store.push(&[]);
    }
    for _ in 0..3 {
        queries.push(&[]);
    }
    for result in knn_flat_batch(&WeightedL1::new(Vec::new()), &queries, &store, 2) {
        assert_eq!(result.neighbors, vec![0, 1], "{}", E::NAME);
        assert_eq!(result.distances, vec![0.0, 0.0], "{}", E::NAME);
    }
    // Empty query batches write nothing, even with out-of-range k.
    let empty = FlatVectors::with_dim(0);
    assert!(
        knn_flat_batch(&WeightedL1::new(Vec::new()), &empty, &store, 9).is_empty(),
        "{}",
        E::NAME
    );
}

#[test]
fn f32_edge_cases_match_the_f64_suite() {
    assert_backend_edge_cases::<f32>();
}

#[test]
fn u8_edge_cases_match_the_f64_suite() {
    assert_backend_edge_cases::<u8>();
}

#[test]
fn p_scale_widens_the_filter_candidate_set() {
    let db = clustered(300, 51);
    let d = LpDistance::l2();
    let model = train_model(&db);
    let queries = clustered(10, 53);
    let (k, p) = (3, 20);

    // p_scale = 1.0 (explicitly or by default) changes nothing.
    let base = FilterRefineIndex::build_query_sensitive(model.clone(), &db, &d);
    let unit = FilterRefineIndex::build_query_sensitive(model.clone(), &db, &d).with_p_scale(1.0);
    assert_eq!(base.p_scale(), 1.0);
    for q in &queries {
        assert_eq!(
            base.retrieve(q, &db, &d, k, p),
            unit.retrieve(q, &db, &d, k, p)
        );
    }

    // An oversampled quantized index refines ⌈p · p_scale⌉ candidates (the
    // reported refine cost), capped at the database size, and the batched
    // path agrees with the sequential one.
    let quant =
        FilterRefineIndex::<_, u8>::build_query_sensitive_with_store(model.clone(), &db, &d)
            .with_p_scale(2.5);
    let outcome = quant.retrieve(&queries[0], &db, &d, k, p);
    assert_eq!(outcome.refine_cost, 50);
    let batch = quant.retrieve_batch(&queries, &db, &d, k, p);
    for (q, query) in queries.iter().enumerate() {
        assert_eq!(batch[q], quant.retrieve(query, &db, &d, k, p));
    }
    let capped =
        FilterRefineIndex::<_, u8>::build_query_sensitive_with_store(model.clone(), &db, &d)
            .with_p_scale(1e6);
    assert_eq!(
        capped.retrieve(&queries[0], &db, &d, k, p).refine_cost,
        db.len()
    );

    // Oversampling can only grow the candidate set, so the refined top-k is
    // at least as close to the truth: with p_scale covering the whole
    // database the result equals exact brute force.
    let truth = knn(&queries[0], &db, &d, k);
    assert_eq!(
        capped.retrieve(&queries[0], &db, &d, k, p).neighbors,
        truth.neighbors
    );

    // The dynamic index carries the same knob.
    let dynamic = DynamicIndex::new(model, db.clone(), &d).with_p_scale(2.0);
    let hits = dynamic.retrieve(&queries[0], &d, k, p);
    assert_eq!(hits.len(), k);
}

#[test]
#[should_panic(expected = "at least 1.0")]
fn p_scale_rejects_shrinking_factors() {
    let db = clustered(120, 61);
    let d = LpDistance::l2();
    let _ = FilterRefineIndex::build_query_sensitive(train_model(&db), &db, &d).with_p_scale(0.5);
}
