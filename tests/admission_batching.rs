//! Admission-batch equivalence: whatever the arrival interleaving, the
//! worker count (1 / 2 / 8) or the scatter of duplicate queries, every
//! request answered through the [`Batcher`] must be **bit-identical** to
//! a sequential `retrieve` of the same query — the batch-equals-
//! sequential guarantee of `parallel_equivalence`, extended through the
//! admission layer that coalesces concurrent singles into micro-batches.
//!
//! Also pinned: the batch-global equal-query dedupe actually fires (the
//! stats counter moves) without changing any answer, a zero latency
//! budget still answers correctly, and every facade backend (static /
//! routed / dynamic) serves the same results through the batcher as
//! directly.

mod common;

use common::with_thread_count;
use query_sensitive_embeddings::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

fn clustered(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let c = rng.gen_range(0..9);
            vec![
                (c % 3) as f64 * 14.0 + rng.gen_range(-1.0..1.0),
                (c / 3) as f64 * 14.0 + rng.gen_range(-1.0..1.0),
            ]
        })
        .collect()
}

fn train_model(db: &[Vec<f64>]) -> QseModel<Vec<f64>> {
    let d = LpDistance::l2();
    let pools: Vec<Vec<f64>> = db.iter().take(60).cloned().collect();
    let data = TrainingData::precompute(pools.clone(), pools, &d, 6);
    let mut rng = StdRng::seed_from_u64(1717);
    let triples = TripleSampler::selective(4).sample(&data.train_to_train, 600, &mut rng);
    BoostMapTrainer::new(TrainerConfig::quick()).train(&data, &triples, &mut rng)
}

fn static_api(db: &[Vec<f64>]) -> QseApi {
    let d = LpDistance::l2();
    let model = train_model(db);
    let index = FilterRefineIndex::<_, u8>::build_query_sensitive_with_store(model, db, &d);
    QseApi::from_static(index, db.to_vec(), Box::new(LpDistance::l2())).unwrap()
}

fn routed_api(db: &[Vec<f64>]) -> QseApi {
    let d = LpDistance::l2();
    let model = train_model(db);
    let index = RoutedIndex::<_, u8>::build_query_sensitive_with_store(
        model,
        db,
        &d,
        RoutedConfig {
            cells: 8,
            n_probe: 3,
            ..RoutedConfig::default()
        },
    );
    QseApi::from_routed(index, db.to_vec(), Box::new(LpDistance::l2())).unwrap()
}

fn dynamic_api(db: &[Vec<f64>]) -> QseApi {
    let d = LpDistance::l2();
    let model = train_model(db);
    let index = DynamicIndex::<_, u8>::with_store(model, db.to_vec(), &d);
    QseApi::from_dynamic(index, Box::new(LpDistance::l2())).unwrap()
}

/// A request mix with duplicates scattered through it: every third
/// request repeats an earlier query verbatim.
fn request_mix(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let fresh = clustered(n, seed);
    let mut mix: Vec<Vec<f64>> = Vec::with_capacity(n);
    for (i, q) in fresh.into_iter().enumerate() {
        if i % 3 == 2 {
            mix.push(mix[i / 2].clone());
        } else {
            mix.push(q);
        }
    }
    mix
}

/// Fire `requests` at the batcher from `clients` OS threads concurrently
/// and assert each answer equals the sequential per-query ground truth.
fn assert_batched_equals_sequential(api: QseApi, clients: usize, workers: usize) {
    let (k, p) = (3, 25);
    let requests = request_mix(48, 0xA11CE);
    let expected: Vec<QueryResult> = requests
        .iter()
        .map(|q| api.try_query(q, k, p).unwrap())
        .collect();

    let api = Arc::new(api);
    let batcher = Arc::new(Batcher::start(
        Arc::clone(&api),
        BatcherConfig {
            latency_budget: Duration::from_millis(2),
            max_batch: 16,
            workers,
        },
    ));

    let chunk = requests.len().div_ceil(clients);
    std::thread::scope(|scope| {
        for (c, slice) in requests.chunks(chunk).enumerate() {
            let batcher = Arc::clone(&batcher);
            let expected = &expected;
            let offset = c * chunk;
            scope.spawn(move || {
                for (i, query) in slice.iter().enumerate() {
                    let result = batcher.query(query.clone(), k, p).unwrap();
                    assert_eq!(
                        result,
                        expected[offset + i],
                        "request {} diverged from sequential retrieval",
                        offset + i
                    );
                }
            });
        }
    });

    let stats = batcher.stats();
    assert_eq!(
        stats.queries,
        requests.len() as u64,
        "every request must be admitted exactly once"
    );
    assert!(stats.batches >= 1);
}

#[test]
fn batched_equals_sequential_across_worker_counts_static() {
    let db = clustered(300, 11);
    for workers in [1, 2, 8] {
        assert_batched_equals_sequential(static_api(&db), 6, workers);
    }
}

#[test]
fn batched_equals_sequential_across_worker_counts_routed() {
    let db = clustered(300, 12);
    for workers in [1, 2, 8] {
        assert_batched_equals_sequential(routed_api(&db), 6, workers);
    }
}

#[test]
fn batched_equals_sequential_across_worker_counts_dynamic() {
    let db = clustered(300, 13);
    for workers in [1, 2, 8] {
        assert_batched_equals_sequential(dynamic_api(&db), 6, workers);
    }
}

#[test]
fn batched_equals_sequential_under_substrate_thread_matrix() {
    // The admission layer on top of the rayon-pool thread counts the
    // parallel_equivalence suite pins: client threads and kernel threads
    // vary independently.
    let db = clustered(300, 14);
    for threads in [1, 2, 8] {
        with_thread_count(threads, || {
            assert_batched_equals_sequential(static_api(&db), 4, 2);
        });
    }
}

#[test]
fn dedupe_fires_and_changes_nothing() {
    let db = clustered(300, 15);
    let api = Arc::new(static_api(&db));
    let (k, p) = (3, 25);
    let query = db[7].clone();
    let expected = api.try_query(&query, k, p).unwrap();

    // One batch window wide enough to hold every clone of the query:
    // all but the first must be answered by the dedupe slot.
    let batcher = Arc::new(Batcher::start(
        Arc::clone(&api),
        BatcherConfig {
            latency_budget: Duration::from_millis(200),
            max_batch: 64,
            workers: 1,
        },
    ));
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let batcher = Arc::clone(&batcher);
            let query = query.clone();
            let expected = expected.clone();
            scope.spawn(move || {
                assert_eq!(batcher.query(query, k, p).unwrap(), expected);
            });
        }
    });
    let stats = batcher.stats();
    assert_eq!(stats.queries, 8);
    assert!(
        stats.deduped > 0,
        "equal queries in one window must share a result (stats: {stats:?})"
    );
}

#[test]
fn zero_latency_budget_still_answers_correctly() {
    let db = clustered(300, 16);
    let api = Arc::new(static_api(&db));
    let (k, p) = (3, 25);
    let batcher = Batcher::start(
        Arc::clone(&api),
        BatcherConfig {
            latency_budget: Duration::ZERO,
            max_batch: 8,
            workers: 2,
        },
    );
    for q in clustered(12, 17) {
        let expected = api.try_query(&q, k, p).unwrap();
        assert_eq!(batcher.query(q, k, p).unwrap(), expected);
    }
}

#[test]
fn mixed_k_p_requests_group_correctly() {
    let db = clustered(300, 18);
    let api = Arc::new(static_api(&db));
    let batcher = Arc::new(Batcher::start(
        Arc::clone(&api),
        BatcherConfig {
            latency_budget: Duration::from_millis(2),
            max_batch: 32,
            workers: 2,
        },
    ));
    let queries = clustered(24, 19);
    std::thread::scope(|scope| {
        for (i, q) in queries.iter().enumerate() {
            let batcher = Arc::clone(&batcher);
            let api = Arc::clone(&api);
            scope.spawn(move || {
                // Three different (k, p) shapes interleaved in one wave.
                let (k, p) = [(1, 10), (3, 25), (5, 40)][i % 3];
                let expected = api.try_query(q, k, p).unwrap();
                assert_eq!(batcher.query(q.clone(), k, p).unwrap(), expected);
            });
        }
    });
}

#[test]
fn malformed_requests_are_rejected_at_admission() {
    let db = clustered(300, 20);
    let api = Arc::new(static_api(&db));
    let batcher = Batcher::start(Arc::clone(&api), BatcherConfig::default());

    let q = db[0].clone();
    assert_eq!(
        batcher.query(q.clone(), 0, 10),
        Err(RequestError::Query(QueryError::BadK { k: 0 }))
    );
    assert_eq!(
        batcher.query(q.clone(), 5, 2),
        Err(RequestError::Query(QueryError::BadP {
            k: 5,
            p: 2,
            max: 300
        }))
    );
    assert_eq!(
        batcher.query(q.clone(), 1, 10_000),
        Err(RequestError::Query(QueryError::BadP {
            k: 1,
            p: 10_000,
            max: 300
        }))
    );
    assert_eq!(
        batcher.query(vec![1.0, 2.0, 3.0], 1, 10),
        Err(RequestError::Query(QueryError::DimMismatch {
            expected: 2,
            got: 3
        }))
    );
    // The batcher still serves after every rejection.
    assert!(batcher.query(q, 3, 25).is_ok());
}
