//! Corruption-injection guarantees of the snapshot loader: **every**
//! damaged byte stream must fail with the *right* typed
//! [`SnapshotError`] variant and the loader must **never panic**,
//! whatever the bytes.
//!
//! The suite drives [`snapshot_sections`] (the format's introspection
//! hook) to aim each injection precisely:
//!
//! * a byte flip inside any section payload → `ChecksumMismatch`
//!   naming that section;
//! * truncation at every section boundary (and mid-header) →
//!   `Truncated`;
//! * a bumped format version → `UnsupportedVersion`;
//! * a swapped element-type tag → `BackendMismatch`;
//! * a snapshot of one index kind fed to another loader →
//!   `KindMismatch`;
//! * mangled magic → `BadMagic`;
//! * a seeded whole-file flip sweep → *some* error at every offset
//!   (the header is fully validated, the payloads fully checksummed —
//!   no byte in a snapshot is a "don't care").
//!
//! The zero-copy `load_mmap` path gets the same treatment: damaged or
//! truncated files fail with the identical typed errors *through the
//! mapping* — checksums are verified against mapped bytes before any
//! section is trusted, so corruption can never reach a served query.

use query_sensitive_embeddings::prelude::*;
use query_sensitive_embeddings::retrieval::snapshot::{
    ELEM_TAG_OFFSET, KIND_OFFSET, SNAPSHOT_VERSION, VERSION_OFFSET,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn clustered(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let c = rng.gen_range(0..9);
            vec![
                (c % 3) as f64 * 14.0 + rng.gen_range(-1.0..1.0),
                (c / 3) as f64 * 14.0 + rng.gen_range(-1.0..1.0),
            ]
        })
        .collect()
}

fn train_model(db: &[Vec<f64>]) -> QseModel<Vec<f64>> {
    let d = LpDistance::l2();
    let pools: Vec<Vec<f64>> = db.iter().take(60).cloned().collect();
    let data = TrainingData::precompute(pools.clone(), pools, &d, 6);
    let mut rng = StdRng::seed_from_u64(1717);
    let triples = TripleSampler::selective(4).sample(&data.train_to_train, 600, &mut rng);
    BoostMapTrainer::new(TrainerConfig::quick()).train(&data, &triples, &mut rng)
}

/// A valid routed-`u8` snapshot plus its source index — the richest
/// section layout (model, params, knobs, centroids, cells, ids).
fn routed_snapshot() -> (RoutedIndex<Vec<f64>, u8>, Vec<u8>) {
    let db = clustered(300, 201);
    let d = LpDistance::l2();
    let index = RoutedIndex::<_, u8>::build_query_sensitive_with_store(
        train_model(&db),
        &db,
        &d,
        RoutedConfig {
            cells: 6,
            n_probe: 2,
            ..RoutedConfig::default()
        },
    );
    let bytes = index.to_snapshot_bytes().unwrap();
    (index, bytes)
}

/// A valid routing-enabled dynamic-`u8` snapshot (adds the store,
/// objects, locs and routing_config sections).
fn dynamic_snapshot() -> Vec<u8> {
    let db = clustered(200, 211);
    let d = LpDistance::l2();
    let mut index = DynamicIndex::<_, u8>::with_store(train_model(&db), db, &d);
    index.enable_routing(
        RoutedConfig {
            cells: 5,
            n_probe: 2,
            ..RoutedConfig::default()
        },
        &d,
    );
    index.to_snapshot_bytes().unwrap()
}

fn load_routed(bytes: &[u8]) -> Result<RoutedIndex<Vec<f64>, u8>, SnapshotError> {
    RoutedIndex::<Vec<f64>, u8>::from_snapshot_bytes(bytes)
}

fn load_dynamic(bytes: &[u8]) -> Result<DynamicIndex<Vec<f64>, u8>, SnapshotError> {
    DynamicIndex::<Vec<f64>, u8>::from_snapshot_bytes(bytes)
}

#[test]
fn byte_flips_in_each_section_name_the_failing_section() {
    let (_, bytes) = routed_snapshot();
    for (name, range) in snapshot_sections(&bytes).unwrap() {
        // Flip the first, a middle and the last byte of the payload.
        for offset in [range.start, range.start + range.len() / 2, range.end - 1] {
            let mut bad = bytes.clone();
            bad[offset] ^= 0x01;
            match load_routed(&bad) {
                Err(SnapshotError::ChecksumMismatch { section }) => {
                    assert_eq!(section, name, "flip at {offset} must be pinned on `{name}`")
                }
                other => panic!(
                    "flip at {offset} in `{name}`: expected ChecksumMismatch, got {:?}",
                    other.err()
                ),
            }
        }
    }
}

#[test]
fn dynamic_sections_are_checksummed_too() {
    let bytes = dynamic_snapshot();
    let sections = snapshot_sections(&bytes).unwrap();
    let names: Vec<&str> = sections.iter().map(|(n, _)| *n).collect();
    for required in [
        "model",
        "params",
        "store",
        "knobs",
        "objects",
        "centroids",
        "cells",
        "ids",
        "locs",
        "routing_config",
    ] {
        assert!(names.contains(&required), "missing section `{required}`");
    }
    for (name, range) in sections {
        let mut bad = bytes.clone();
        bad[range.start] ^= 0xFF;
        assert!(
            matches!(
                load_dynamic(&bad),
                Err(SnapshotError::ChecksumMismatch { section }) if section == name
            ),
            "flip in `{name}` must be caught"
        );
    }
}

#[test]
fn truncation_at_every_section_boundary_reports_truncated() {
    let (_, bytes) = routed_snapshot();
    let sections = snapshot_sections(&bytes).unwrap();
    // Mid-header, end-of-header, and at/inside every payload boundary.
    let mut cuts = vec![0, 7, 16, 23, 24];
    for (_, range) in &sections {
        cuts.push(range.start);
        cuts.push(range.start + range.len() / 2);
        cuts.push(range.end);
    }
    cuts.retain(|&c| c < bytes.len());
    for cut in cuts {
        match load_routed(&bytes[..cut]) {
            Err(SnapshotError::Truncated { needed, available }) => {
                assert_eq!(available, cut as u64);
                assert!(needed > available, "cut at {cut}");
            }
            other => panic!("cut at {cut}: expected Truncated, got {:?}", other.err()),
        }
    }
}

#[test]
fn version_bump_reports_unsupported_version() {
    let (_, bytes) = routed_snapshot();
    for future in [SNAPSHOT_VERSION + 1, SNAPSHOT_VERSION + 41, u32::MAX] {
        let mut bad = bytes.clone();
        bad[VERSION_OFFSET..VERSION_OFFSET + 4].copy_from_slice(&future.to_le_bytes());
        assert!(
            matches!(
                load_routed(&bad),
                Err(SnapshotError::UnsupportedVersion { found, supported })
                    if found == future && supported == SNAPSHOT_VERSION
            ),
            "version {future} must be rejected as unsupported"
        );
    }
}

#[test]
fn element_tag_swap_reports_backend_mismatch() {
    let (_, bytes) = routed_snapshot();
    // The u8 snapshot claims to be f64 / f32 / an unknown backend.
    for wrong in [1u8, 2, 200] {
        let mut bad = bytes.clone();
        bad[ELEM_TAG_OFFSET] = wrong;
        assert!(
            matches!(
                load_routed(&bad),
                Err(SnapshotError::BackendMismatch { found, expected })
                    if found == wrong && expected == <u8 as FilterElem>::SNAPSHOT_TAG
            ),
            "tag {wrong} must be rejected as a backend mismatch"
        );
    }
    // And the genuine u8 bytes rejected by the f64 loader.
    assert!(matches!(
        RoutedIndex::<Vec<f64>, f64>::from_snapshot_bytes(&bytes),
        Err(SnapshotError::BackendMismatch { found: 3, .. })
    ));
}

#[test]
fn index_kind_cross_loads_report_kind_mismatch() {
    let (_, routed_bytes) = routed_snapshot();
    assert!(matches!(
        FilterRefineIndex::<Vec<f64>, u8>::from_snapshot_bytes(&routed_bytes),
        Err(SnapshotError::KindMismatch {
            found: 3,
            expected: 1
        })
    ));
    assert!(matches!(
        load_dynamic(&routed_bytes),
        Err(SnapshotError::KindMismatch {
            found: 3,
            expected: 2
        })
    ));
    let dynamic_bytes = dynamic_snapshot();
    assert!(matches!(
        load_routed(&dynamic_bytes),
        Err(SnapshotError::KindMismatch {
            found: 2,
            expected: 3
        })
    ));
    // Kind beats checksum: a corrupted *and* cross-kind stream reports
    // the mismatch (nothing downstream of the header is touched).
    let mut bad = dynamic_bytes.clone();
    let last = bad.len() - 1;
    bad[last] ^= 0xFF;
    assert!(matches!(
        load_routed(&bad),
        Err(SnapshotError::KindMismatch { .. })
    ));
    // An unknown kind tag is a mismatch for every loader.
    let mut bad = dynamic_bytes;
    bad[KIND_OFFSET] = 200;
    assert!(matches!(
        load_dynamic(&bad),
        Err(SnapshotError::KindMismatch { found: 200, .. })
    ));
}

#[test]
fn mangled_magic_reports_bad_magic() {
    let (_, bytes) = routed_snapshot();
    for offset in 0..8 {
        let mut bad = bytes.clone();
        bad[offset] ^= 0x20;
        assert!(
            matches!(load_routed(&bad), Err(SnapshotError::BadMagic)),
            "magic flip at {offset}"
        );
    }
    assert!(matches!(
        load_routed(&[]),
        Err(SnapshotError::Truncated { .. })
    ));
    assert!(matches!(
        load_routed(&[0xAB; 200]),
        Err(SnapshotError::BadMagic)
    ));
}

#[test]
fn global_l1_indexes_refuse_to_snapshot() {
    let db = clustered(120, 221);
    let d = LpDistance::l2();
    let mut rng = StdRng::seed_from_u64(2727);
    let fastmap = FastMap::train(
        &db[..60],
        &d,
        FastMapConfig {
            dimensions: 4,
            pivot_iterations: 3,
        },
        &mut rng,
    );
    let index = FilterRefineIndex::<_, f64>::build_global_with_store(fastmap, &db, &d);
    assert!(matches!(
        index.to_snapshot_bytes(),
        Err(SnapshotError::GlobalFilterUnsupported)
    ));
    assert!(matches!(
        index.save(std::env::temp_dir().join("qse-never-written")),
        Err(SnapshotError::GlobalFilterUnsupported)
    ));
}

/// The zero-copy loader must uphold every owned-path guarantee: all
/// checksums are verified against the *mapped* bytes before any section
/// is trusted, so a flipped byte anywhere fails with the same
/// `ChecksumMismatch` (never a panic, never a fault), a pre-truncated
/// file reports `Truncated`, and a missing path surfaces a typed `Io`
/// error through the owned fallback.
#[test]
fn mapped_loads_fail_like_owned_loads_on_damaged_files() {
    let (_, bytes) = routed_snapshot();
    let dir = std::env::temp_dir();
    let tag = std::process::id();
    let write = |name: &str, contents: &[u8]| {
        let path = dir.join(format!("qse-corrupt-{tag}-{name}.snap"));
        std::fs::write(&path, contents).unwrap();
        path
    };

    // Byte flip in each section payload -> ChecksumMismatch naming it.
    for (name, range) in snapshot_sections(&bytes).unwrap() {
        let mut bad = bytes.clone();
        bad[range.start + range.len() / 2] ^= 0x01;
        let path = write(name, &bad);
        match RoutedIndex::<Vec<f64>, u8>::load_mmap(&path) {
            Err(SnapshotError::ChecksumMismatch { section }) => assert_eq!(section, name),
            other => panic!(
                "mapped flip in `{name}`: expected ChecksumMismatch, got {:?}",
                other.err()
            ),
        }
        let _ = std::fs::remove_file(&path);
    }

    // Files truncated before mapping -> Truncated, at header and
    // payload cuts alike (a short mapping is handed to the same
    // bounds-checked parser as owned bytes).
    for cut in [7, 24, bytes.len() / 3, bytes.len() - 1] {
        let path = write("cut", &bytes[..cut]);
        match RoutedIndex::<Vec<f64>, u8>::load_mmap(&path) {
            Err(SnapshotError::Truncated { needed, available }) => {
                assert_eq!(available, cut as u64);
                assert!(needed > available, "cut at {cut}");
            }
            other => panic!(
                "mapped cut at {cut}: expected Truncated, got {:?}",
                other.err()
            ),
        }
        let _ = std::fs::remove_file(&path);
    }

    // A missing path is a typed Io error (the mapping refusal falls
    // back to the owned loader, which reports the open failure).
    let missing = dir.join(format!("qse-corrupt-{tag}-definitely-missing.snap"));
    assert!(matches!(
        RoutedIndex::<Vec<f64>, u8>::load_mmap(&missing),
        Err(SnapshotError::Io(_))
    ));

    // And an empty file (mmap refuses zero-length mappings) also lands
    // on the owned loader's typed truncation error, not a panic.
    let path = write("empty", &[]);
    assert!(matches!(
        RoutedIndex::<Vec<f64>, u8>::load_mmap(&path),
        Err(SnapshotError::Truncated { .. })
    ));
    let _ = std::fs::remove_file(&path);
}

/// The exhaustive property behind all the targeted cases: flip any
/// single byte anywhere in a valid snapshot and the load fails with a
/// typed error (header bytes are all validated, payloads and padding
/// all checksummed) — and never panics. Every offset is covered: small
/// offsets exhaustively, the rest via a seeded sweep plus both flip
/// patterns at every 97th offset.
#[test]
fn any_single_byte_flip_fails_loudly_never_panics() {
    let (index, bytes) = routed_snapshot();
    let mut rng = StdRng::seed_from_u64(0x5EED);
    let mut offsets: Vec<(usize, u8)> = (0..bytes.len().min(256)).map(|o| (o, 0x01)).collect();
    offsets.extend((0..bytes.len()).step_by(97).map(|o| (o, 0xFF)));
    offsets.extend((0..400).map(|_| {
        (
            rng.gen_range(0..bytes.len()),
            [0x01u8, 0x80, 0xFF][rng.gen_range(0..3)],
        )
    }));
    for (offset, pattern) in offsets {
        let mut bad = bytes.clone();
        bad[offset] ^= pattern;
        assert!(
            load_routed(&bad).is_err(),
            "flip {pattern:#04x} at offset {offset} must not load"
        );
    }
    // The pristine bytes still load, bit-identically.
    let loaded = load_routed(&bytes).unwrap();
    let db = clustered(300, 201);
    let d = LpDistance::l2();
    let q = clustered(4, 203);
    assert_eq!(
        loaded.retrieve_batch(&q, &db, &d, 3, 15),
        index.retrieve_batch(&q, &db, &d, 3, 15)
    );
}
