//! Guarantees of the parallel query engine: every parallel code path must
//! produce results **bit-identical** to its sequential counterpart, at any
//! thread count.
//!
//! The rayon substrate re-reads `RAYON_NUM_THREADS` on every parallel call,
//! so these tests flip the variable at run time. They set it explicitly
//! around each comparison; the variable is process-global, which is safe
//! here precisely because thread count is not allowed to affect any result
//! (the property under test).

use query_sensitive_embeddings::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Serializes every thread-count override: the variable is process-global
/// and the tests in this binary run concurrently.
static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn with_thread_count<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    let _guard = ENV_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    std::env::set_var("RAYON_NUM_THREADS", threads.to_string());
    let out = f();
    std::env::remove_var("RAYON_NUM_THREADS");
    out
}

fn clustered(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let c = rng.gen_range(0..6);
            vec![
                (c % 3) as f64 * 15.0 + rng.gen_range(-1.0..1.0),
                (c / 3) as f64 * 15.0 + rng.gen_range(-1.0..1.0),
            ]
        })
        .collect()
}

fn train_model(threads: usize, db: &[Vec<f64>]) -> QseModel<Vec<f64>> {
    with_thread_count(threads, || {
        let d = LpDistance::l2();
        let pools: Vec<Vec<f64>> = db.iter().take(50).cloned().collect();
        let data = TrainingData::precompute(pools.clone(), pools, &d, 4);
        let mut rng = StdRng::seed_from_u64(4242);
        let triples = TripleSampler::selective(4).sample(&data.train_to_train, 400, &mut rng);
        BoostMapTrainer::new(TrainerConfig::quick()).train(&data, &triples, &mut rng)
    })
}

#[test]
fn trained_models_are_identical_across_thread_counts() {
    // The tentpole guarantee: pre-drawn randomness + (Z, slot) min-reduce
    // make the trained model independent of worker scheduling.
    let db = clustered(120, 7);
    let single = train_model(1, &db);
    for threads in [2, 8] {
        let multi = train_model(threads, &db);
        assert_eq!(single, multi, "model diverged at {threads} threads");
        assert_eq!(
            single.to_json(),
            multi.to_json(),
            "serialized bytes diverged"
        );
    }
}

#[test]
fn distance_matrices_are_identical_across_thread_counts() {
    let db = clustered(60, 11);
    let d = LpDistance::l2();
    let seq = with_thread_count(1, || DistanceMatrix::all_pairs(&db, &d, 1));
    for threads in [2, 8] {
        let par = with_thread_count(threads, || DistanceMatrix::all_pairs(&db, &d, 8));
        assert_eq!(seq, par, "matrix diverged at {threads} threads");
    }
}

#[test]
fn ground_truth_is_identical_across_thread_counts() {
    let db = clustered(90, 13);
    let queries = clustered(17, 14);
    let d = LpDistance::l2();
    let seq = ground_truth(&queries, &db, &d, 5, 1);
    for threads in [2, 8] {
        let par = with_thread_count(threads, || ground_truth(&queries, &db, &d, 5, 8));
        assert_eq!(seq, par, "ground truth diverged at {threads} threads");
    }
}

#[test]
fn batched_retrieval_is_identical_across_thread_counts() {
    let db = clustered(150, 17);
    let d = LpDistance::l2();
    let model = train_model(1, &db);
    let index = FilterRefineIndex::build_query_sensitive(model, &db, &d);
    let queries = clustered(23, 19);
    let sequential: Vec<RetrievalOutcome> = queries
        .iter()
        .map(|q| index.retrieve(q, &db, &d, 3, 20))
        .collect();
    for threads in [1, 2, 8] {
        let batch = with_thread_count(threads, || index.retrieve_batch(&queries, &db, &d, 3, 20));
        assert_eq!(sequential, batch, "batch diverged at {threads} threads");
    }
}

#[test]
fn retrieve_batch_is_identical_across_repeated_calls_on_the_persistent_pool() {
    // The rayon substrate now keeps one process-global worker pool alive
    // between calls. Re-running the same batch — and interleaving different
    // thread counts, which grows the pool but never tears it down — must
    // keep returning bit-identical results: no state may leak from one
    // batch into the next.
    let db = clustered(140, 29);
    let d = LpDistance::l2();
    let model = train_model(1, &db);
    let index = FilterRefineIndex::build_query_sensitive(model, &db, &d);
    let queries = clustered(31, 37);
    let reference: Vec<RetrievalOutcome> = queries
        .iter()
        .map(|q| index.retrieve(q, &db, &d, 4, 25))
        .collect();
    // Interleave thread counts so the pool is created, reused, grown and
    // reused again within one process.
    for (round, threads) in [2, 2, 8, 1, 8, 2].into_iter().enumerate() {
        let batch = with_thread_count(threads, || index.retrieve_batch(&queries, &db, &d, 4, 25));
        assert_eq!(
            reference, batch,
            "round {round} at {threads} threads diverged"
        );
    }
}

#[test]
fn parallel_embed_all_matches_sequential_embedding() {
    use query_sensitive_embeddings::embedding::Embedding;
    let db = clustered(80, 23);
    let d = LpDistance::l2();
    let model = train_model(1, &db);
    let embedding = model.embedding();
    let sequential: Vec<Vec<f64>> = db.iter().map(|o| embedding.embed(o, &d)).collect();
    for threads in [1, 2, 8] {
        let parallel = with_thread_count(threads, || embedding.embed_all(&db, &d));
        assert_eq!(
            sequential, parallel,
            "embed_all diverged at {threads} threads"
        );
    }
}
