//! Guarantees of the parallel query engine: every parallel code path must
//! produce results **bit-identical** to its sequential counterpart, at any
//! thread count — training, distance matrices, ground truth, batch
//! embedding (`embed_queries` for every embedding family and for the
//! query-sensitive model), and the Q×N tiled batch retrieval pipelines
//! (`FilterRefineIndex::retrieve_batch`, `DynamicIndex::retrieve_batch`
//! including after online edits, and `knn_flat_batch`).
//!
//! The rayon substrate re-reads `RAYON_NUM_THREADS` on every parallel call,
//! so these tests flip the variable at run time. They set it explicitly
//! around each comparison; the variable is process-global, which is safe
//! here precisely because thread count is not allowed to affect any result
//! (the property under test).

use query_sensitive_embeddings::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

mod common;
use common::with_thread_count;

fn clustered(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let c = rng.gen_range(0..6);
            vec![
                (c % 3) as f64 * 15.0 + rng.gen_range(-1.0..1.0),
                (c / 3) as f64 * 15.0 + rng.gen_range(-1.0..1.0),
            ]
        })
        .collect()
}

fn train_model(threads: usize, db: &[Vec<f64>]) -> QseModel<Vec<f64>> {
    with_thread_count(threads, || {
        let d = LpDistance::l2();
        let pools: Vec<Vec<f64>> = db.iter().take(50).cloned().collect();
        let data = TrainingData::precompute(pools.clone(), pools, &d, 4);
        let mut rng = StdRng::seed_from_u64(4242);
        let triples = TripleSampler::selective(4).sample(&data.train_to_train, 400, &mut rng);
        BoostMapTrainer::new(TrainerConfig::quick()).train(&data, &triples, &mut rng)
    })
}

#[test]
fn trained_models_are_identical_across_thread_counts() {
    // The tentpole guarantee: pre-drawn randomness + (Z, slot) min-reduce
    // make the trained model independent of worker scheduling.
    let db = clustered(120, 7);
    let single = train_model(1, &db);
    for threads in [2, 8] {
        let multi = train_model(threads, &db);
        assert_eq!(single, multi, "model diverged at {threads} threads");
        assert_eq!(
            single.to_json(),
            multi.to_json(),
            "serialized bytes diverged"
        );
    }
}

#[test]
fn distance_matrices_are_identical_across_thread_counts() {
    let db = clustered(60, 11);
    let d = LpDistance::l2();
    let seq = with_thread_count(1, || DistanceMatrix::all_pairs(&db, &d, 1));
    for threads in [2, 8] {
        let par = with_thread_count(threads, || DistanceMatrix::all_pairs(&db, &d, 8));
        assert_eq!(seq, par, "matrix diverged at {threads} threads");
    }
}

#[test]
fn ground_truth_is_identical_across_thread_counts() {
    let db = clustered(90, 13);
    let queries = clustered(17, 14);
    let d = LpDistance::l2();
    let seq = ground_truth(&queries, &db, &d, 5, 1);
    for threads in [2, 8] {
        let par = with_thread_count(threads, || ground_truth(&queries, &db, &d, 5, 8));
        assert_eq!(seq, par, "ground truth diverged at {threads} threads");
    }
}

#[test]
fn batched_retrieval_is_identical_across_thread_counts() {
    let db = clustered(150, 17);
    let d = LpDistance::l2();
    let model = train_model(1, &db);
    let index = FilterRefineIndex::build_query_sensitive(model, &db, &d);
    let queries = clustered(23, 19);
    let sequential: Vec<RetrievalOutcome> = queries
        .iter()
        .map(|q| index.retrieve(q, &db, &d, 3, 20))
        .collect();
    for threads in [1, 2, 8] {
        let batch = with_thread_count(threads, || index.retrieve_batch(&queries, &db, &d, 3, 20));
        assert_eq!(sequential, batch, "batch diverged at {threads} threads");
    }
}

#[test]
fn retrieve_batch_is_identical_across_repeated_calls_on_the_persistent_pool() {
    // The rayon substrate now keeps one process-global worker pool alive
    // between calls. Re-running the same batch — and interleaving different
    // thread counts, which grows the pool but never tears it down — must
    // keep returning bit-identical results: no state may leak from one
    // batch into the next.
    let db = clustered(140, 29);
    let d = LpDistance::l2();
    let model = train_model(1, &db);
    let index = FilterRefineIndex::build_query_sensitive(model, &db, &d);
    let queries = clustered(31, 37);
    let reference: Vec<RetrievalOutcome> = queries
        .iter()
        .map(|q| index.retrieve(q, &db, &d, 4, 25))
        .collect();
    // Interleave thread counts so the pool is created, reused, grown and
    // reused again within one process.
    for (round, threads) in [2, 2, 8, 1, 8, 2].into_iter().enumerate() {
        let batch = with_thread_count(threads, || index.retrieve_batch(&queries, &db, &d, 4, 25));
        assert_eq!(
            reference, batch,
            "round {round} at {threads} threads diverged"
        );
    }
}

#[test]
fn parallel_embed_all_matches_sequential_embedding() {
    use query_sensitive_embeddings::embedding::Embedding;
    let db = clustered(80, 23);
    let d = LpDistance::l2();
    let model = train_model(1, &db);
    let embedding = model.embedding();
    let sequential: Vec<Vec<f64>> = db.iter().map(|o| embedding.embed(o, &d)).collect();
    for threads in [1, 2, 8] {
        let parallel = with_thread_count(threads, || embedding.embed_all(&db, &d));
        assert_eq!(
            sequential, parallel,
            "embed_all diverged at {threads} threads"
        );
    }
}

#[test]
fn dynamic_index_batch_matches_sequential_including_after_edits() {
    // The tiled batch pipeline over a *mutable* index: identity must hold on
    // the freshly built index and survive online inserts and swap-removes,
    // at any thread count.
    let db = clustered(130, 41);
    let d = LpDistance::l2();
    let model = train_model(1, &db);
    let mut index = DynamicIndex::new(model, db, &d);
    let queries = clustered(27, 43);
    let check = |index: &DynamicIndex<Vec<f64>>, label: &str| {
        let sequential: Vec<Vec<usize>> = queries
            .iter()
            .map(|q| index.retrieve(q, &d, 3, 15))
            .collect();
        for threads in [1, 2, 8] {
            let batch = with_thread_count(threads, || index.retrieve_batch(&queries, &d, 3, 15));
            assert_eq!(
                sequential, batch,
                "{label}: batch diverged at {threads} threads"
            );
        }
    };
    check(&index, "freshly built");
    for (i, q) in clustered(9, 47).into_iter().enumerate() {
        index.insert(q, &d);
        if i % 3 == 2 {
            index.remove(i * 5);
        }
    }
    check(&index, "after inserts and removes");
}

#[test]
fn knn_flat_batch_matches_sequential_knn_flat_across_thread_counts() {
    let mut rng = StdRng::seed_from_u64(53);
    let dim = 6;
    let store = FlatVectors::from_rows(
        (0..400)
            .map(|_| (0..dim).map(|_| rng.gen_range(-50.0..50.0)).collect())
            .collect(),
    );
    let queries = FlatVectors::from_rows(
        (0..37)
            .map(|_| (0..dim).map(|_| rng.gen_range(-50.0..50.0)).collect())
            .collect(),
    );
    let weights: Vec<f64> = (0..dim).map(|_| rng.gen_range(0.0..3.0)).collect();
    let d = WeightedL1::new(weights);
    let sequential: Vec<_> = (0..queries.len())
        .map(|q| knn_flat(&d, queries.row(q), &store, 7))
        .collect();
    for threads in [1, 2, 8] {
        let batch = with_thread_count(threads, || knn_flat_batch(&d, &queries, &store, 7));
        assert_eq!(
            sequential, batch,
            "knn_flat_batch diverged at {threads} threads"
        );
    }
}

#[test]
fn embed_queries_matches_per_query_embed_for_every_embedding_family() {
    use query_sensitive_embeddings::embedding::{
        Embedding, FastMap, FastMapConfig, LipschitzEmbedding,
    };
    let db = clustered(90, 59);
    let d = LpDistance::l2();
    let queries = clustered(21, 61);

    // FastMap (pivot embeddings), Lipschitz (reference-set embeddings) and
    // the composite embedding of a trained query-sensitive model must all
    // batch-embed bit-identically to their per-query `embed`, at any thread
    // count.
    let mut rng = StdRng::seed_from_u64(67);
    let fastmap = FastMap::train(
        &db,
        &d,
        FastMapConfig {
            dimensions: 4,
            pivot_iterations: 3,
        },
        &mut rng,
    );
    let lipschitz = LipschitzEmbedding::new(vec![
        vec![db[0].clone()],
        vec![db[1].clone(), db[2].clone()],
        vec![db[3].clone(), db[4].clone(), db[5].clone()],
    ]);
    let composite = train_model(1, &db).embedding();

    fn check<E: Embedding<Vec<f64>>>(
        name: &str,
        embedding: &E,
        queries: &[Vec<f64>],
        d: &LpDistance,
    ) {
        let sequential: Vec<Vec<f64>> = queries.iter().map(|q| embedding.embed(q, d)).collect();
        for threads in [1, 2, 8] {
            let batch = with_thread_count(threads, || embedding.embed_queries(queries, d));
            assert_eq!(batch.len(), queries.len(), "{name} at {threads} threads");
            assert_eq!(batch.dim(), embedding.dim(), "{name} at {threads} threads");
            for (q, row) in sequential.iter().enumerate() {
                assert_eq!(
                    batch.row(q),
                    row.as_slice(),
                    "{name}: query {q} diverged at {threads} threads"
                );
            }
        }
        // The empty batch keeps the embedding's dimensionality.
        let empty = embedding.embed_queries(&[], d);
        assert!(empty.is_empty());
        assert_eq!(empty.dim(), embedding.dim(), "{name}: empty-batch dim");
    }
    check("fastmap", &fastmap, &queries, &d);
    check("lipschitz", &lipschitz, &queries, &d);
    check("composite", &composite, &queries, &d);
}

#[test]
fn model_embed_queries_matches_per_query_embed_query() {
    // The query-sensitive batch (coordinates + per-query weights) must agree
    // with `embed_query` row for row, at any thread count.
    let db = clustered(110, 71);
    let d = LpDistance::l2();
    let model = train_model(1, &db);
    let queries = clustered(19, 73);
    let sequential: Vec<EmbeddedQuery> = queries.iter().map(|q| model.embed_query(q, &d)).collect();
    for threads in [1, 2, 8] {
        let batch = with_thread_count(threads, || model.embed_queries(&queries, &d));
        assert_eq!(batch.len(), queries.len());
        for (q, single) in sequential.iter().enumerate() {
            assert_eq!(
                batch.query(q),
                *single,
                "query {q} diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn duplicate_queries_in_a_tile_share_refine_work_without_changing_results() {
    // The per-tile duplicate-query memo: a query equal to an earlier query
    // of the same tile must reuse that query's finished result — identical
    // outcomes at any thread count, with the duplicate's exact-distance
    // refine step genuinely skipped (pinned by distance accounting).
    let db = clustered(150, 91);
    let d = LpDistance::l2();
    let model = train_model(1, &db);
    let index = FilterRefineIndex::build_query_sensitive(model.clone(), &db, &d);
    let (k, p) = (3, 20);
    // 12 queries — one pipeline tile — three of them duplicates.
    let mut queries = clustered(9, 93);
    queries.push(queries[0].clone());
    queries.push(queries[4].clone());
    queries.push(queries[0].clone());
    let uniques = 9;
    let sequential: Vec<RetrievalOutcome> = queries
        .iter()
        .map(|q| index.retrieve(q, &db, &d, k, p))
        .collect();
    for threads in [1, 2, 8] {
        let batch = with_thread_count(threads, || index.retrieve_batch(&queries, &db, &d, k, p));
        assert_eq!(batch, sequential, "memo diverged at {threads} threads");
    }
    // Accounting: the batch embeds every query (the memo sits behind the
    // embedding step) but refines only the unique ones...
    let counting = CountingDistance::new(LpDistance::l2());
    let _ = index.retrieve_batch(&queries, &db, &counting, k, p);
    assert_eq!(
        counting.count() as usize,
        queries.len() * index.embedding_cost() + uniques * p
    );
    // ...whereas the sequential loop pays the full budget per duplicate.
    let counting = CountingDistance::new(LpDistance::l2());
    for q in &queries {
        let _ = index.retrieve(q, &db, &counting, k, p);
    }
    assert_eq!(
        counting.count() as usize,
        queries.len() * (index.embedding_cost() + p)
    );

    // The dynamic index shares the same pipeline and memo.
    let dynamic = DynamicIndex::new(model, db.clone(), &d);
    let sequential: Vec<Vec<usize>> = queries
        .iter()
        .map(|q| dynamic.retrieve(q, &d, k, p))
        .collect();
    for threads in [1, 2, 8] {
        let batch = with_thread_count(threads, || dynamic.retrieve_batch(&queries, &d, k, p));
        assert_eq!(
            batch, sequential,
            "dynamic memo diverged at {threads} threads"
        );
    }
}
