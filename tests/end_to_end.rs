//! Cross-crate integration tests: full train → embed → index → retrieve
//! pipelines for every method variant, on small but realistic workloads.

use query_sensitive_embeddings::prelude::*;
use query_sensitive_embeddings::retrieval::experiments::runner::{
    evaluate_methods, Method, WorkloadScale,
};
use query_sensitive_embeddings::retrieval::experiments::workloads::{
    digits_workload, timeseries_workload,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A small but structured vector workload (clusters in the plane) under the
/// Euclidean distance, cheap enough to run every variant on.
fn vector_workload(db: usize, queries: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(seed);
    let make = |rng: &mut StdRng| {
        let c = rng.gen_range(0..6);
        vec![
            (c % 3) as f64 * 15.0 + rng.gen_range(-1.0..1.0),
            (c / 3) as f64 * 15.0 + rng.gen_range(-1.0..1.0),
        ]
    };
    let database = (0..db).map(|_| make(&mut rng)).collect();
    let query_set = (0..queries).map(|_| make(&mut rng)).collect();
    (database, query_set)
}

#[test]
fn every_method_variant_trains_and_retrieves() {
    let (db, queries) = vector_workload(150, 20, 1);
    let distance = LpDistance::l2();
    let scale = WorkloadScale::tiny();
    let evaluations = evaluate_methods(&db, &queries, &distance, &scale, &Method::table1(), 99);
    assert_eq!(evaluations.len(), 5);
    for eval in &evaluations {
        let row = eval.optimal_cost(1, 90.0);
        assert!(
            row.cost >= 1 && row.cost <= db.len(),
            "{}: cost {}",
            eval.method,
            row.cost
        );
        // Retrieving more neighbors can never be cheaper at the same accuracy.
        let row_k5 = eval.optimal_cost(scale.kmax, 90.0);
        assert!(
            row_k5.cost >= row.cost,
            "{}: k=5 cheaper than k=1",
            eval.method
        );
    }
}

#[test]
fn query_sensitive_beats_or_matches_fastmap_on_clustered_vectors() {
    let (db, queries) = vector_workload(200, 25, 3);
    let distance = LpDistance::l2();
    let scale = WorkloadScale::tiny();
    let evaluations = evaluate_methods(
        &db,
        &queries,
        &distance,
        &scale,
        &[Method::FastMap, Method::Boosted(MethodVariant::SeQs)],
        7,
    );
    let fastmap = evaluations[0].optimal_cost(1, 90.0).cost;
    let seqs = evaluations[1].optimal_cost(1, 90.0).cost;
    // On this easy workload both should beat brute force, and the learned
    // query-sensitive embedding should not be worse than the baseline by more
    // than a small factor (it usually wins outright).
    assert!(seqs < db.len(), "Se-QS should beat brute force");
    assert!(
        seqs <= fastmap.saturating_mul(2),
        "Se-QS ({seqs}) should be competitive with FastMap ({fastmap})"
    );
}

#[test]
fn filter_and_refine_with_full_p_equals_exact_knn_for_trained_model() {
    let (db, queries) = vector_workload(100, 5, 5);
    let distance = LpDistance::l2();
    let mut rng = StdRng::seed_from_u64(11);
    let pools: Vec<Vec<f64>> = db.iter().take(50).cloned().collect();
    let data = TrainingData::precompute(pools.clone(), pools, &distance, 2);
    let triples = TripleSampler::selective(4).sample(&data.train_to_train, 400, &mut rng);
    let model = BoostMapTrainer::new(TrainerConfig::quick()).train(&data, &triples, &mut rng);
    let index = FilterRefineIndex::build_query_sensitive(model, &db, &distance);
    for q in &queries {
        let truth = ground_truth(std::slice::from_ref(q), &db, &distance, 3, 1);
        let out = index.retrieve(q, &db, &distance, 3, db.len());
        assert_eq!(out.neighbors, truth[0].neighbors);
    }
}

#[test]
fn digits_pipeline_end_to_end_small_scale() {
    // Shape-context distances are expensive, so this stays tiny; the point is
    // that the whole pipeline (generator → shape context → training →
    // retrieval) holds together and beats brute force.
    let (db, queries, distance) = digits_workload(80, 8, 16, 17);
    let scale = WorkloadScale {
        candidate_pool: 30,
        training_pool: 30,
        training_triples: 200,
        rounds: 8,
        candidates_per_round: 15,
        intervals_per_candidate: 5,
        kmax: 3,
        dims_to_evaluate: vec![4, 8],
        threads: 4,
    };
    let evaluations = evaluate_methods(
        &db,
        &queries,
        &distance,
        &scale,
        &[Method::Boosted(MethodVariant::SeQs)],
        23,
    );
    let row = evaluations[0].optimal_cost(1, 90.0);
    assert!(row.cost <= db.len());
    assert!(row.best_p >= 1);
}

#[test]
fn timeseries_pipeline_end_to_end_small_scale() {
    let (db, queries, distance) = timeseries_workload(100, 10, 32, 2, 29);
    let scale = WorkloadScale {
        candidate_pool: 40,
        training_pool: 40,
        training_triples: 300,
        rounds: 10,
        candidates_per_round: 20,
        intervals_per_candidate: 5,
        kmax: 3,
        dims_to_evaluate: vec![4, 10],
        threads: 4,
    };
    let evaluations = evaluate_methods(
        &db,
        &queries,
        &distance,
        &scale,
        &[Method::FastMap, Method::Boosted(MethodVariant::SeQs)],
        31,
    );
    for eval in &evaluations {
        let row = eval.optimal_cost(1, 90.0);
        assert!(
            row.cost <= db.len(),
            "{} cost {} exceeds brute force",
            eval.method,
            row.cost
        );
    }
}

#[test]
fn trained_model_survives_serialization_and_produces_identical_rankings() {
    let (db, queries) = vector_workload(80, 4, 37);
    let distance = LpDistance::l2();
    let mut rng = StdRng::seed_from_u64(41);
    let pools: Vec<Vec<f64>> = db.iter().take(40).cloned().collect();
    let data = TrainingData::precompute(pools.clone(), pools, &distance, 2);
    let triples = TripleSampler::selective(3).sample(&data.train_to_train, 300, &mut rng);
    let model = BoostMapTrainer::new(TrainerConfig::quick()).train(&data, &triples, &mut rng);

    let json = model.to_json();
    let restored: QseModel<Vec<f64>> = QseModel::from_json(&json).expect("deserialize");
    assert_eq!(model, restored);

    let index_a = FilterRefineIndex::build_query_sensitive(model, &db, &distance);
    let index_b = FilterRefineIndex::build_query_sensitive(restored, &db, &distance);
    for q in &queries {
        let (rank_a, _) = index_a.filter_ranking(q, &distance);
        let (rank_b, _) = index_b.filter_ranking(q, &distance);
        assert_eq!(rank_a, rank_b);
    }
}
