//! Property-style tests on the core invariants of the reproduction, run
//! over many deterministic pseudo-random cases (the `proptest` crate is not
//! available in this offline build environment, so cases are drawn from the
//! workspace's seeded RNG instead — same spirit, reproducible failures):
//!
//! * metric axioms for the measures that claim them, symmetry for the
//!   symmetric non-metric ones,
//! * DTW band monotonicity and the lock-step upper bound,
//! * Hungarian optimality against exhaustive permutation search,
//! * Proposition 1 of the paper (the boosted classifier equals the
//!   classifier induced by `F_out` + `D_out`) on randomly generated models,
//! * embedding-prefix consistency,
//! * filter-and-refine recall = 1 when `p = |database|`,
//! * top-p selection ≡ full-sort prefix for every `p` (the filter hot path),
//! * the blocked batch kernel `WeightedL1::eval_flat` ≡ row-by-row `eval`
//!   **bit for bit** at random dimensionalities 1–67 (including widths that
//!   are not multiples of the kernel's lane count),
//! * the Q×N tiled kernel `WeightedL1::eval_flat_batch` ≡ per-query
//!   `eval_flat` **bit for bit** across every dimensionality 1–67, batch
//!   sizes straddling the tile width, empty/tiny/large stores, and worker
//!   counts 1/2/8 (the tiling and the fan-out must both be invisible).

use query_sensitive_embeddings::core::model::{QseModel, TrainingHistory, WeakLearner};
use query_sensitive_embeddings::core::Interval;
use query_sensitive_embeddings::distance::chamfer::ChamferDistance;
use query_sensitive_embeddings::distance::dtw::{ConstrainedDtw, TimeSeries};
use query_sensitive_embeddings::distance::edit::EditDistance;
use query_sensitive_embeddings::distance::hungarian::{
    brute_force_assignment, solve_assignment, CostMatrix,
};
use query_sensitive_embeddings::distance::kl::KlDivergence;
use query_sensitive_embeddings::distance::shape_context::{Point2, PointSet};
use query_sensitive_embeddings::distance::traits::{FnDistance, MetricProperties};
use query_sensitive_embeddings::embedding::one_d::Candidate;
use query_sensitive_embeddings::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 64;

mod common;
use common::with_thread_count;

fn abs_distance() -> FnDistance<impl Fn(&f64, &f64) -> f64 + Send + Sync> {
    FnDistance::new("abs", MetricProperties::Metric, |a: &f64, b: &f64| {
        (a - b).abs()
    })
}

fn small_vec(rng: &mut StdRng, len: usize) -> Vec<f64> {
    (0..len).map(|_| rng.gen_range(-50.0..50.0)).collect()
}

#[test]
fn l1_and_l2_satisfy_metric_axioms() {
    let mut rng = StdRng::seed_from_u64(0xA1);
    for _ in 0..CASES {
        let a = small_vec(&mut rng, 6);
        let b = small_vec(&mut rng, 6);
        let c = small_vec(&mut rng, 6);
        for d in [LpDistance::l1(), LpDistance::l2()] {
            let ab = d.eval(&a, &b);
            let ba = d.eval(&b, &a);
            assert!(ab >= 0.0);
            assert!((ab - ba).abs() < 1e-9);
            assert!(d.eval(&a, &a) < 1e-12);
            assert!(ab <= d.eval(&a, &c) + d.eval(&c, &b) + 1e-9);
        }
    }
}

#[test]
fn weighted_l1_triangle_inequality_and_symmetry() {
    let mut rng = StdRng::seed_from_u64(0xA2);
    for _ in 0..CASES {
        let a = small_vec(&mut rng, 5);
        let b = small_vec(&mut rng, 5);
        let c = small_vec(&mut rng, 5);
        let w: Vec<f64> = (0..5).map(|_| rng.gen_range(0.0..10.0)).collect();
        let d = WeightedL1::new(w);
        assert!(d.eval(&a, &b) <= d.eval(&a, &c) + d.eval(&c, &b) + 1e-9);
        assert!((d.eval(&a, &b) - d.eval(&b, &a)).abs() < 1e-9);
    }
}

fn random_series(rng: &mut StdRng, min_len: usize, max_len: usize) -> TimeSeries {
    let len = rng.gen_range(min_len..max_len);
    TimeSeries::univariate((0..len).map(|_| rng.gen_range(-5.0..5.0)))
}

#[test]
fn dtw_is_symmetric_and_zero_on_identical() {
    let mut rng = StdRng::seed_from_u64(0xB1);
    let d = ConstrainedDtw::paper();
    for _ in 0..CASES {
        let sa = random_series(&mut rng, 4, 20);
        let sb = random_series(&mut rng, 4, 20);
        assert!((d.eval(&sa, &sb) - d.eval(&sb, &sa)).abs() < 1e-9);
        assert!(d.eval(&sa, &sa) < 1e-12);
        assert!(d.eval(&sa, &sb) >= 0.0);
    }
}

#[test]
fn dtw_band_widening_never_increases_distance() {
    let mut rng = StdRng::seed_from_u64(0xB2);
    for _ in 0..CASES {
        let sa = random_series(&mut rng, 6, 16);
        let sb = random_series(&mut rng, 6, 16);
        let mut last = f64::INFINITY;
        for w in 0..8 {
            let d = ConstrainedDtw::with_absolute_band(w).eval(&sa, &sb);
            assert!(d <= last + 1e-9, "band {w} gave {d} > {last}");
            last = d;
        }
    }
}

#[test]
fn dtw_is_bounded_by_lockstep_on_equal_lengths() {
    let mut rng = StdRng::seed_from_u64(0xB3);
    for _ in 0..CASES {
        let len = rng.gen_range(4..20);
        let pairs: Vec<(f64, f64)> = (0..len)
            .map(|_| (rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0)))
            .collect();
        let a = TimeSeries::univariate(pairs.iter().map(|p| p.0));
        let b = TimeSeries::univariate(pairs.iter().map(|p| p.1));
        let lockstep: f64 = pairs.iter().map(|p| (p.0 - p.1).abs()).sum();
        assert!(ConstrainedDtw::unconstrained().eval(&a, &b) <= lockstep + 1e-9);
    }
}

#[test]
fn levenshtein_metric_axioms() {
    let mut rng = StdRng::seed_from_u64(0xC1);
    let d = EditDistance::levenshtein();
    let word = |rng: &mut StdRng| -> Vec<u8> {
        let len = rng.gen_range(0..12usize);
        (0..len).map(|_| rng.gen_range(0u8..4)).collect()
    };
    for _ in 0..CASES {
        let a = word(&mut rng);
        let b = word(&mut rng);
        let c = word(&mut rng);
        assert_eq!(d.eval(&a, &b), d.eval(&b, &a));
        assert_eq!(d.eval(&a, &a), 0.0);
        assert!(d.eval(&a, &b) <= d.eval(&a, &c) + d.eval(&c, &b) + 1e-9);
        assert!(d.eval(&a, &b) <= a.len().max(b.len()) as f64);
    }
}

#[test]
fn kl_divergences_are_nonnegative_and_js_is_symmetric() {
    let mut rng = StdRng::seed_from_u64(0xC2);
    for _ in 0..CASES {
        let p: Vec<f64> = (0..4).map(|_| rng.gen_range(0.01..10.0)).collect();
        let q: Vec<f64> = (0..4).map(|_| rng.gen_range(0.01..10.0)).collect();
        assert!(KlDivergence::asymmetric().eval(&p, &q) >= -1e-12);
        let js = KlDivergence::jensen_shannon();
        assert!((js.eval(&p, &q) - js.eval(&q, &p)).abs() < 1e-9);
        assert!(js.eval(&p, &q) <= std::f64::consts::LN_2 + 1e-9);
    }
}

#[test]
fn chamfer_symmetric_variant_is_symmetric_and_nonnegative() {
    let mut rng = StdRng::seed_from_u64(0xC3);
    let points = |rng: &mut StdRng| -> PointSet {
        let len = rng.gen_range(2..10usize);
        PointSet::new(
            (0..len)
                .map(|_| Point2::new(rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0)))
                .collect(),
        )
    };
    let d = ChamferDistance::symmetric();
    for _ in 0..CASES {
        let pa = points(&mut rng);
        let pb = points(&mut rng);
        assert!(d.eval(&pa, &pb) >= 0.0);
        assert!((d.eval(&pa, &pb) - d.eval(&pb, &pa)).abs() < 1e-9);
        assert!(d.eval(&pa, &pa) < 1e-12);
    }
}

#[test]
fn hungarian_matches_exhaustive_search() {
    let mut rng = StdRng::seed_from_u64(0xD1);
    for _ in 0..CASES {
        let costs: Vec<f64> = (0..16).map(|_| rng.gen_range(0.0..20.0)).collect();
        let m = CostMatrix::from_rows(4, 4, costs);
        let fast = solve_assignment(&m).total_cost;
        let brute = brute_force_assignment(&m);
        assert!((fast - brute).abs() < 1e-6, "{fast} vs {brute}");
    }
}

#[test]
fn proposition_1_holds_for_random_models() {
    let mut rng = StdRng::seed_from_u64(0xE1);
    let abs = abs_distance();
    for _ in 0..CASES {
        let dim = rng.gen_range(1..5usize);
        let coordinates: Vec<OneDEmbedding<f64>> = (0..dim)
            .map(|i| OneDEmbedding::reference(Candidate::new(i, rng.gen_range(-20.0..20.0))))
            .collect();
        let learner_count = rng.gen_range(1..8usize);
        let learners: Vec<WeakLearner> = (0..learner_count)
            .map(|_| {
                let lo = rng.gen_range(0.0..5.0);
                WeakLearner {
                    coordinate: rng.gen_range(0..dim),
                    interval: Interval::new(lo, lo + rng.gen_range(0.0..20.0)),
                    alpha: rng.gen_range(0.01..3.0),
                }
            })
            .collect();
        let model = QseModel::new(coordinates, learners, TrainingHistory::default());
        let emb = model.embedding();
        let q = rng.gen_range(-25.0..25.0);
        let a = rng.gen_range(-25.0..25.0);
        let b = rng.gen_range(-25.0..25.0);
        let fq = emb.embed(&q, &abs);
        let fa = emb.embed(&a, &abs);
        let fb = emb.embed(&b, &abs);
        let h = model.classify_embedded(&fq, &fa, &fb);
        let via_distance = model.classifier_from_distance(&fq, &fa, &fb);
        assert!(
            (h - via_distance).abs() < 1e-9 * (1.0 + h.abs()),
            "Proposition 1 violated: {h} vs {via_distance}"
        );
    }
}

#[test]
fn composite_prefix_coordinates_match_full_embedding() {
    let mut rng = StdRng::seed_from_u64(0xE2);
    let abs = abs_distance();
    for _ in 0..CASES {
        let dim = rng.gen_range(2..6usize);
        let coords: Vec<OneDEmbedding<f64>> = (0..dim)
            .map(|i| OneDEmbedding::reference(Candidate::new(i, rng.gen_range(-20.0..20.0))))
            .collect();
        let full = CompositeEmbedding::new(coords);
        let x = rng.gen_range(-25.0..25.0);
        let v_full = full.embed(&x, &abs);
        for d in 1..=full.dim() {
            let v_prefix = full.prefix(d).embed(&x, &abs);
            assert_eq!(&v_full[..d], &v_prefix[..]);
        }
    }
}

#[test]
fn full_p_filter_refine_has_perfect_recall() {
    let mut rng = StdRng::seed_from_u64(0xE3);
    let abs = abs_distance();
    for _ in 0..CASES {
        let len = rng.gen_range(10..40usize);
        let db: Vec<f64> = (0..len).map(|_| rng.gen_range(-100.0..100.0)).collect();
        let query = rng.gen_range(-100.0..100.0);
        // A deliberately poor 1-coordinate embedding: distance to db[0].
        let embedding =
            CompositeEmbedding::new(vec![OneDEmbedding::reference(Candidate::new(0, db[0]))]);
        let index = FilterRefineIndex::build_global(embedding, &db, &abs);
        let out = index.retrieve(&query, &db, &abs, 3, db.len());
        let truth = ground_truth(std::slice::from_ref(&query), &db, &abs, 3, 1);
        assert_eq!(out.neighbors, truth[0].neighbors);
    }
}

#[test]
fn eval_flat_kernel_is_bit_identical_to_row_by_row_eval() {
    // The filter scan's batch kernel reduces coordinates in lane-wide blocks
    // with independent accumulators; `eval` shares the same canonical order,
    // so for ANY dimensionality (1..=67 covers every lane remainder, far
    // past the lane width) and any weights the outputs must agree bit for
    // bit — equality under `total_cmp` ordering, not merely within epsilon.
    let mut rng = StdRng::seed_from_u64(0xF1A7);
    for case in 0..CASES {
        let dim = rng.gen_range(1..68usize);
        let rows = rng.gen_range(0..30usize);
        let weights: Vec<f64> = (0..dim)
            .map(|_| {
                if rng.gen_bool(0.2) {
                    0.0 // zero weights exercise the pseudo-metric corner
                } else {
                    rng.gen_range(0.0..10.0)
                }
            })
            .collect();
        let query: Vec<f64> = (0..dim).map(|_| rng.gen_range(-100.0..100.0)).collect();
        let row_data: Vec<Vec<f64>> = (0..rows)
            .map(|_| (0..dim).map(|_| rng.gen_range(-100.0..100.0)).collect())
            .collect();
        let d = WeightedL1::new(weights);
        let store = FlatVectors::from_rows_with_dim(dim, row_data);
        let mut out = vec![f64::NAN; store.len()];
        d.eval_flat(&query, &store, &mut out);
        for (i, flat) in out.iter().enumerate() {
            let scalar = d.eval(&query, store.row(i));
            assert_eq!(
                flat.to_bits(),
                scalar.to_bits(),
                "case {case}: dim {dim}, row {i}: {flat} != {scalar}"
            );
        }
    }
}

/// One batch-kernel identity check: `eval_flat_batch` over `qcount` queries
/// and `rows` database rows at dimensionality `dim` must reproduce the
/// per-query `eval_flat` scan bit for bit.
fn assert_batch_kernel_identity(rng: &mut StdRng, dim: usize, qcount: usize, rows: usize) {
    let weights: Vec<f64> = (0..dim)
        .map(|_| {
            if rng.gen_bool(0.2) {
                0.0
            } else {
                rng.gen_range(0.0..10.0)
            }
        })
        .collect();
    let d = WeightedL1::new(weights);
    let queries = FlatVectors::from_rows_with_dim(
        dim,
        (0..qcount)
            .map(|_| (0..dim).map(|_| rng.gen_range(-100.0..100.0)).collect())
            .collect(),
    );
    let store = FlatVectors::from_rows_with_dim(
        dim,
        (0..rows)
            .map(|_| (0..dim).map(|_| rng.gen_range(-100.0..100.0)).collect())
            .collect(),
    );
    let mut batch = vec![f64::NAN; qcount * rows];
    d.eval_flat_batch(&queries, &store, &mut batch);
    let mut single = vec![f64::NAN; rows];
    for q in 0..qcount {
        d.eval_flat(queries.row(q), &store, &mut single);
        for (i, score) in single.iter().enumerate() {
            assert_eq!(
                batch[q * rows + i].to_bits(),
                score.to_bits(),
                "dim {dim}, batch {qcount}, db {rows}, query {q}, row {i}"
            );
        }
    }
}

#[test]
fn eval_flat_batch_is_bit_identical_to_per_query_eval_flat() {
    // The tiled Q×N kernel must be invisible: for every dimensionality 1–67
    // (covering every lane remainder), batch sizes {0, 1, 2, 7, 64, 257}
    // (empty, sub-tile, tile-straddling, many-tile), database sizes
    // {0, 1, 1000} and worker counts {1, 2, 8}, each batch row equals the
    // per-query kernel — and therefore the scalar path — bit for bit.
    //
    // The full cross product would be needlessly slow in debug builds, so
    // every dimensionality is crossed with the small/empty shapes, while the
    // large batch/database corners run at dimensionalities around the lane
    // and tile boundaries.
    for threads in [1usize, 2, 8] {
        with_thread_count(threads, || {
            let mut rng = StdRng::seed_from_u64(0xBA7C_4000 + threads as u64);
            for dim in 1..=67 {
                for (qcount, rows) in [(0, 0), (0, 1000), (1, 0), (2, 1), (7, 1), (7, 111)] {
                    assert_batch_kernel_identity(&mut rng, dim, qcount, rows);
                }
            }
            // Large batch/database corners, at dimensionalities around the
            // lane and tile boundaries (the cross product with all 67 dims
            // would be needlessly slow in debug builds without adding
            // coverage).
            for (dim, qcount, rows) in [
                (1, 64, 0),
                (4, 64, 1),
                (5, 64, 1000),
                (67, 64, 1000),
                (4, 257, 0),
                (17, 257, 1),
                (1, 257, 1000),
                (8, 257, 1000),
                (67, 257, 35),
            ] {
                assert_batch_kernel_identity(&mut rng, dim, qcount, rows);
            }
        });
    }
}

#[test]
fn filter_top_p_with_kernel_equals_full_sort_prefix_at_multiple_dims() {
    // `filter_top_p` now scores through the blocked kernel; the selection
    // must still return exactly the first p entries of the full ranking for
    // every p, at embedding dimensionalities on both sides of the lane
    // width (ties forced by drawing database values from a tiny set).
    let mut rng = StdRng::seed_from_u64(0xF1B2);
    let abs = abs_distance();
    for case in 0..CASES {
        let len = rng.gen_range(5..50usize);
        let dim = rng.gen_range(1..9usize);
        let db: Vec<f64> = if case % 2 == 0 {
            (0..len).map(|_| rng.gen_range(-100.0..100.0)).collect()
        } else {
            (0..len).map(|_| rng.gen_range(0..4) as f64).collect()
        };
        let coords: Vec<OneDEmbedding<f64>> = (0..dim)
            .map(|i| OneDEmbedding::reference(Candidate::new(i % len, db[i % len])))
            .collect();
        let index = FilterRefineIndex::build_global(CompositeEmbedding::new(coords), &db, &abs);
        let query = rng.gen_range(-100.0..100.0);
        let (full, _) = index.filter_ranking(&query, &abs);
        for p in 1..=len {
            let (top, _) = index.filter_top_p(&query, &abs, p);
            assert_eq!(top, full[..p], "case {case}, dim {dim}, p = {p}");
        }
    }
}

#[test]
fn top_p_selection_equals_full_sort_prefix_on_random_inputs() {
    // The filter hot path: for random embedded databases (including
    // duplicated scores, which exercise the by-index tie-break), the O(n)
    // selection must return exactly the first p entries of the full sort,
    // for every p.
    let mut rng = StdRng::seed_from_u64(0xE4);
    let abs = abs_distance();
    for case in 0..CASES {
        let len = rng.gen_range(5..60usize);
        // Half the cases draw from a tiny value set to force score ties.
        let db: Vec<f64> = if case % 2 == 0 {
            (0..len).map(|_| rng.gen_range(-100.0..100.0)).collect()
        } else {
            (0..len).map(|_| rng.gen_range(0..4) as f64).collect()
        };
        let embedding =
            CompositeEmbedding::new(vec![OneDEmbedding::reference(Candidate::new(0, db[0]))]);
        let index = FilterRefineIndex::build_global(embedding, &db, &abs);
        let query = rng.gen_range(-100.0..100.0);
        let (full, _) = index.filter_ranking(&query, &abs);
        for p in 1..=len {
            let (top, _) = index.filter_top_p(&query, &abs, p);
            assert_eq!(top, full[..p], "case {case}, p = {p}");
        }
    }
}
