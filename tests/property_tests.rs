//! Property-based tests (proptest) on the core invariants of the
//! reproduction:
//!
//! * metric axioms for the measures that claim them, symmetry for the
//!   symmetric non-metric ones,
//! * DTW band monotonicity and the lock-step upper bound,
//! * Hungarian optimality against exhaustive permutation search,
//! * Proposition 1 of the paper (the boosted classifier equals the
//!   classifier induced by `F_out` + `D_out`) on randomly generated models,
//! * embedding-prefix consistency,
//! * filter-and-refine recall = 1 when `p = |database|`.

use proptest::prelude::*;
use query_sensitive_embeddings::core::model::{QseModel, TrainingHistory, WeakLearner};
use query_sensitive_embeddings::core::Interval;
use query_sensitive_embeddings::distance::dtw::{ConstrainedDtw, TimeSeries};
use query_sensitive_embeddings::distance::edit::EditDistance;
use query_sensitive_embeddings::distance::hungarian::{
    brute_force_assignment, solve_assignment, CostMatrix,
};
use query_sensitive_embeddings::distance::kl::KlDivergence;
use query_sensitive_embeddings::distance::shape_context::{Point2, PointSet};
use query_sensitive_embeddings::distance::chamfer::ChamferDistance;
use query_sensitive_embeddings::embedding::one_d::Candidate;
use query_sensitive_embeddings::prelude::*;

fn small_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-50.0..50.0f64, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------------- Lp / weighted L1 ----------------

    #[test]
    fn l1_and_l2_satisfy_metric_axioms(a in small_vec(6), b in small_vec(6), c in small_vec(6)) {
        for d in [LpDistance::l1(), LpDistance::l2()] {
            let ab = d.eval(&a, &b);
            let ba = d.eval(&b, &a);
            prop_assert!(ab >= 0.0);
            prop_assert!((ab - ba).abs() < 1e-9);
            prop_assert!(d.eval(&a, &a) < 1e-12);
            let ac = d.eval(&a, &c);
            let cb = d.eval(&c, &b);
            prop_assert!(ab <= ac + cb + 1e-9);
        }
    }

    #[test]
    fn weighted_l1_triangle_inequality(
        a in small_vec(5),
        b in small_vec(5),
        c in small_vec(5),
        w in prop::collection::vec(0.0..10.0f64, 5),
    ) {
        let d = WeightedL1::new(w);
        prop_assert!(d.eval(&a, &b) <= d.eval(&a, &c) + d.eval(&c, &b) + 1e-9);
        prop_assert!((d.eval(&a, &b) - d.eval(&b, &a)).abs() < 1e-9);
    }

    // ---------------- DTW ----------------

    #[test]
    fn dtw_is_symmetric_and_zero_on_identical(
        a in prop::collection::vec(-5.0..5.0f64, 4..20),
        b in prop::collection::vec(-5.0..5.0f64, 4..20),
    ) {
        let sa = TimeSeries::univariate(a.iter().copied());
        let sb = TimeSeries::univariate(b.iter().copied());
        let d = ConstrainedDtw::paper();
        prop_assert!((d.eval(&sa, &sb) - d.eval(&sb, &sa)).abs() < 1e-9);
        prop_assert!(d.eval(&sa, &sa) < 1e-12);
        prop_assert!(d.eval(&sa, &sb) >= 0.0);
    }

    #[test]
    fn dtw_band_widening_never_increases_distance(
        a in prop::collection::vec(-5.0..5.0f64, 6..16),
        b in prop::collection::vec(-5.0..5.0f64, 6..16),
    ) {
        let sa = TimeSeries::univariate(a.iter().copied());
        let sb = TimeSeries::univariate(b.iter().copied());
        let mut last = f64::INFINITY;
        for w in 0..8 {
            let d = ConstrainedDtw::with_absolute_band(w).eval(&sa, &sb);
            prop_assert!(d <= last + 1e-9, "band {} gave {} > {}", w, d, last);
            last = d;
        }
    }

    #[test]
    fn dtw_is_bounded_by_lockstep_on_equal_lengths(
        pairs in prop::collection::vec((-5.0..5.0f64, -5.0..5.0f64), 4..20),
    ) {
        let a = TimeSeries::univariate(pairs.iter().map(|p| p.0));
        let b = TimeSeries::univariate(pairs.iter().map(|p| p.1));
        let lockstep: f64 = pairs.iter().map(|p| (p.0 - p.1).abs()).sum();
        prop_assert!(ConstrainedDtw::unconstrained().eval(&a, &b) <= lockstep + 1e-9);
    }

    // ---------------- edit distance / KL ----------------

    #[test]
    fn levenshtein_metric_axioms(
        a in prop::collection::vec(0u8..4, 0..12),
        b in prop::collection::vec(0u8..4, 0..12),
        c in prop::collection::vec(0u8..4, 0..12),
    ) {
        let d = EditDistance::levenshtein();
        prop_assert_eq!(d.eval(&a, &b), d.eval(&b, &a));
        prop_assert_eq!(d.eval(&a, &a), 0.0);
        prop_assert!(d.eval(&a, &b) <= d.eval(&a, &c) + d.eval(&c, &b) + 1e-9);
        prop_assert!(d.eval(&a, &b) <= a.len().max(b.len()) as f64);
    }

    #[test]
    fn kl_divergences_are_nonnegative_and_js_is_symmetric(
        p in prop::collection::vec(0.01..10.0f64, 4),
        q in prop::collection::vec(0.01..10.0f64, 4),
    ) {
        prop_assert!(KlDivergence::asymmetric().eval(&p, &q) >= -1e-12);
        let js = KlDivergence::jensen_shannon();
        prop_assert!((js.eval(&p, &q) - js.eval(&q, &p)).abs() < 1e-9);
        prop_assert!(js.eval(&p, &q) <= std::f64::consts::LN_2 + 1e-9);
    }

    // ---------------- chamfer ----------------

    #[test]
    fn chamfer_symmetric_variant_is_symmetric_and_nonnegative(
        a in prop::collection::vec((-5.0..5.0f64, -5.0..5.0f64), 2..10),
        b in prop::collection::vec((-5.0..5.0f64, -5.0..5.0f64), 2..10),
    ) {
        let pa = PointSet::new(a.iter().map(|(x, y)| Point2::new(*x, *y)).collect());
        let pb = PointSet::new(b.iter().map(|(x, y)| Point2::new(*x, *y)).collect());
        let d = ChamferDistance::symmetric();
        prop_assert!(d.eval(&pa, &pb) >= 0.0);
        prop_assert!((d.eval(&pa, &pb) - d.eval(&pb, &pa)).abs() < 1e-9);
        prop_assert!(d.eval(&pa, &pa) < 1e-12);
    }

    // ---------------- Hungarian ----------------

    #[test]
    fn hungarian_matches_exhaustive_search(
        costs in prop::collection::vec(0.0..20.0f64, 16),
    ) {
        let m = CostMatrix::from_rows(4, 4, costs);
        let fast = solve_assignment(&m).total_cost;
        let brute = brute_force_assignment(&m);
        prop_assert!((fast - brute).abs() < 1e-6, "{} vs {}", fast, brute);
    }

    // ---------------- Proposition 1 on random models ----------------

    #[test]
    fn proposition_1_holds_for_random_models(
        refs in prop::collection::vec(-20.0..20.0f64, 1..5),
        learners in prop::collection::vec((0usize..5, 0.0..5.0f64, 0.0..20.0f64, 0.01..3.0f64), 1..8),
        q in -25.0..25.0f64,
        a in -25.0..25.0f64,
        b in -25.0..25.0f64,
    ) {
        let coordinates: Vec<OneDEmbedding<f64>> = refs
            .iter()
            .enumerate()
            .map(|(i, r)| OneDEmbedding::reference(Candidate::new(i, *r)))
            .collect();
        let learners: Vec<WeakLearner> = learners
            .into_iter()
            .map(|(c, lo, span, alpha)| WeakLearner {
                coordinate: c % coordinates.len(),
                interval: Interval::new(lo, lo + span),
                alpha,
            })
            .collect();
        let model = QseModel::new(coordinates, learners, TrainingHistory::default());
        let abs = query_sensitive_embeddings::distance::traits::FnDistance::new(
            "abs",
            query_sensitive_embeddings::distance::traits::MetricProperties::Metric,
            |x: &f64, y: &f64| (x - y).abs(),
        );
        let emb = model.embedding();
        let fq = emb.embed(&q, &abs);
        let fa = emb.embed(&a, &abs);
        let fb = emb.embed(&b, &abs);
        let h = model.classify_embedded(&fq, &fa, &fb);
        let via_distance = model.classifier_from_distance(&fq, &fa, &fb);
        prop_assert!((h - via_distance).abs() < 1e-9 * (1.0 + h.abs()));
    }

    // ---------------- embedding prefixes ----------------

    #[test]
    fn composite_prefix_coordinates_match_full_embedding(
        refs in prop::collection::vec(-20.0..20.0f64, 2..6),
        x in -25.0..25.0f64,
    ) {
        let abs = query_sensitive_embeddings::distance::traits::FnDistance::new(
            "abs",
            query_sensitive_embeddings::distance::traits::MetricProperties::Metric,
            |a: &f64, b: &f64| (a - b).abs(),
        );
        let coords: Vec<OneDEmbedding<f64>> = refs
            .iter()
            .enumerate()
            .map(|(i, r)| OneDEmbedding::reference(Candidate::new(i, *r)))
            .collect();
        let full = CompositeEmbedding::new(coords);
        let v_full = full.embed(&x, &abs);
        for d in 1..=full.dim() {
            let v_prefix = full.prefix(d).embed(&x, &abs);
            prop_assert_eq!(&v_full[..d], &v_prefix[..]);
        }
    }

    // ---------------- filter-and-refine recall ----------------

    #[test]
    fn full_p_filter_refine_has_perfect_recall(
        db in prop::collection::vec(-100.0..100.0f64, 10..40),
        query in -100.0..100.0f64,
    ) {
        let abs = query_sensitive_embeddings::distance::traits::FnDistance::new(
            "abs",
            query_sensitive_embeddings::distance::traits::MetricProperties::Metric,
            |a: &f64, b: &f64| (a - b).abs(),
        );
        // A deliberately poor 1-coordinate embedding: distance to db[0].
        let embedding = CompositeEmbedding::new(vec![OneDEmbedding::reference(Candidate::new(
            0,
            db[0],
        ))]);
        let index = FilterRefineIndex::build_global(embedding, &db, &abs);
        let out = index.retrieve(&query, &db, &abs, 3, db.len());
        let truth = ground_truth(std::slice::from_ref(&query), &db, &abs, 3, 1);
        prop_assert_eq!(out.neighbors, truth[0].neighbors.clone());
    }
}
