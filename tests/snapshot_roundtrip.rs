//! Snapshot round-trip guarantees: `save` → `load` → retrieve must be
//! **bit-identical** to the index that was saved, for every store backend
//! (`f64` / `f32` / `u8`), every index kind (static [`FilterRefineIndex`],
//! [`DynamicIndex`] with and without routing, [`RoutedIndex`]) and at
//! every thread count in the CI matrix (1 / 2 / 8) — a snapshot written
//! under one parallelism setting must replay exactly under another.
//!
//! Also pinned here: the knobs survive the trip (`p_scale`, `n_probe`,
//! the `DEFAULT_P_SCALE`-seeded backend defaults, `probe_cells` routing
//! decisions), a *churned* dynamic index (insert / remove / refit after
//! build, then save) round-trips and keeps editing after the load, and
//! the file-level `save` / `load` wrappers behave like the byte-level
//! API.

mod common;

use common::with_thread_count;
use query_sensitive_embeddings::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn clustered(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let c = rng.gen_range(0..9);
            vec![
                (c % 3) as f64 * 14.0 + rng.gen_range(-1.0..1.0),
                (c / 3) as f64 * 14.0 + rng.gen_range(-1.0..1.0),
            ]
        })
        .collect()
}

fn train_model(db: &[Vec<f64>]) -> QseModel<Vec<f64>> {
    let d = LpDistance::l2();
    let pools: Vec<Vec<f64>> = db.iter().take(60).cloned().collect();
    let data = TrainingData::precompute(pools.clone(), pools, &d, 6);
    let mut rng = StdRng::seed_from_u64(1717);
    let triples = TripleSampler::selective(4).sample(&data.train_to_train, 600, &mut rng);
    BoostMapTrainer::new(TrainerConfig::quick()).train(&data, &triples, &mut rng)
}

/// A scratch file path unique to the calling test (tests in one binary
/// run concurrently) that is deleted on drop.
struct ScratchFile(std::path::PathBuf);

impl ScratchFile {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "qse-snapshot-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        Self(path)
    }
}

impl Drop for ScratchFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// The static index round-trip, generic over the store backend: bytes
/// and file forms both reload to an index whose sequential and batched
/// outcomes (neighbors, distances *and* cost accounting) are identical
/// at 1, 2 and 8 threads.
fn assert_static_roundtrip<E: FilterElem>() {
    let db = clustered(300, 101);
    let d = LpDistance::l2();
    let queries = clustered(24, 103);
    let (k, p) = (4, 30);

    let model = train_model(&db);
    let index = FilterRefineIndex::<_, E>::build_query_sensitive_with_store(model, &db, &d)
        .with_p_scale(1.5);
    let bytes = index.to_snapshot_bytes().unwrap();
    let loaded = FilterRefineIndex::<Vec<f64>, E>::from_snapshot_bytes(&bytes).unwrap();
    assert_eq!(loaded.p_scale(), 1.5, "{}", E::NAME);
    assert_eq!(loaded.len(), index.len(), "{}", E::NAME);

    let file = ScratchFile::new(&format!("static-{}", E::NAME));
    index.save(&file.0).unwrap();
    let from_file = FilterRefineIndex::<Vec<f64>, E>::load(&file.0).unwrap();
    let mapped = FilterRefineIndex::<Vec<f64>, E>::load_mmap(&file.0).unwrap();
    if cfg!(all(
        unix,
        target_pointer_width = "64",
        target_endian = "little"
    )) {
        assert!(
            mapped.store_is_mapped(),
            "{}: load_mmap must serve elements zero-copy on this target",
            E::NAME
        );
        assert_eq!(mapped.store_heap_bytes(), 0, "{}", E::NAME);
    }

    for threads in [1, 2, 8] {
        with_thread_count(threads, || {
            let expected = index.retrieve_batch(&queries, &db, &d, k, p);
            assert_eq!(
                loaded.retrieve_batch(&queries, &db, &d, k, p),
                expected,
                "{} bytes, {threads} threads",
                E::NAME
            );
            assert_eq!(
                from_file.retrieve_batch(&queries, &db, &d, k, p),
                expected,
                "{} file, {threads} threads",
                E::NAME
            );
            assert_eq!(
                mapped.retrieve_batch(&queries, &db, &d, k, p),
                expected,
                "{} mapped, {threads} threads",
                E::NAME
            );
            for (q, query) in queries.iter().enumerate() {
                assert_eq!(
                    loaded.retrieve(query, &db, &d, k, p),
                    expected[q],
                    "{} sequential, {threads} threads, query {q}",
                    E::NAME
                );
                assert_eq!(
                    mapped.retrieve(query, &db, &d, k, p),
                    expected[q],
                    "{} mapped sequential, {threads} threads, query {q}",
                    E::NAME
                );
            }
        });
    }
}

#[test]
fn static_index_roundtrips_bitwise_f64() {
    assert_static_roundtrip::<f64>();
}

#[test]
fn static_index_roundtrips_bitwise_f32() {
    assert_static_roundtrip::<f32>();
}

#[test]
fn static_index_roundtrips_bitwise_u8() {
    assert_static_roundtrip::<u8>();
}

/// The routed index round-trip: routing decisions (`probe_cells`), cell
/// layout, `n_probe` and retrieval outcomes all replay exactly.
fn assert_routed_roundtrip<E: FilterElem>() {
    let db = clustered(400, 111);
    let d = LpDistance::l2();
    let queries = clustered(24, 113);
    let (k, p) = (4, 30);

    let model = train_model(&db);
    let mut index = RoutedIndex::<_, E>::build_query_sensitive_with_store(
        model,
        &db,
        &d,
        RoutedConfig {
            cells: 9,
            n_probe: 3,
            ..RoutedConfig::default()
        },
    );
    index.set_n_probe(4);
    let bytes = index.to_snapshot_bytes().unwrap();
    let loaded = RoutedIndex::<Vec<f64>, E>::from_snapshot_bytes(&bytes).unwrap();
    assert_eq!(loaded.n_probe(), 4, "{}", E::NAME);
    assert_eq!(loaded.p_scale(), index.p_scale(), "{}", E::NAME);
    assert_eq!(loaded.len(), index.len(), "{}", E::NAME);
    assert_eq!(loaded.cell_sizes(), index.cell_sizes(), "{}", E::NAME);

    let file = ScratchFile::new(&format!("routed-{}", E::NAME));
    index.save(&file.0).unwrap();
    let from_file = RoutedIndex::<Vec<f64>, E>::load(&file.0).unwrap();
    let mapped = RoutedIndex::<Vec<f64>, E>::load_mmap(&file.0).unwrap();
    if cfg!(all(
        unix,
        target_pointer_width = "64",
        target_endian = "little"
    )) {
        assert!(
            mapped.store_is_mapped(),
            "{}: every routed cell must borrow from the shared mapping",
            E::NAME
        );
        assert_eq!(mapped.store_heap_bytes(), 0, "{}", E::NAME);
    }

    for threads in [1, 2, 8] {
        with_thread_count(threads, || {
            let expected = index.retrieve_batch(&queries, &db, &d, k, p);
            assert_eq!(
                loaded.retrieve_batch(&queries, &db, &d, k, p),
                expected,
                "{} bytes, {threads} threads",
                E::NAME
            );
            assert_eq!(
                from_file.retrieve_batch(&queries, &db, &d, k, p),
                expected,
                "{} file, {threads} threads",
                E::NAME
            );
            assert_eq!(
                mapped.retrieve_batch(&queries, &db, &d, k, p),
                expected,
                "{} mapped, {threads} threads",
                E::NAME
            );
            for (q, query) in queries.iter().enumerate() {
                assert_eq!(
                    loaded.probe_cells(query, &d),
                    index.probe_cells(query, &d),
                    "{} probe_cells, {threads} threads, query {q}",
                    E::NAME
                );
                assert_eq!(
                    mapped.probe_cells(query, &d),
                    index.probe_cells(query, &d),
                    "{} mapped probe_cells, {threads} threads, query {q}",
                    E::NAME
                );
                assert_eq!(
                    loaded.retrieve(query, &db, &d, k, p),
                    expected[q],
                    "{} sequential, {threads} threads, query {q}",
                    E::NAME
                );
                assert_eq!(
                    mapped.retrieve(query, &db, &d, k, p),
                    expected[q],
                    "{} mapped sequential, {threads} threads, query {q}",
                    E::NAME
                );
            }
        });
    }
}

#[test]
fn routed_index_roundtrips_bitwise_f64() {
    assert_routed_roundtrip::<f64>();
}

#[test]
fn routed_index_roundtrips_bitwise_f32() {
    assert_routed_roundtrip::<f32>();
}

#[test]
fn routed_index_roundtrips_bitwise_u8() {
    assert_routed_roundtrip::<u8>();
}

/// The dynamic index round-trip over a **churned** index: build, enable
/// routing, insert, remove, refit the store, save — the loaded index
/// must retrieve identically at every thread count *and* support further
/// edits that stay in lockstep with the original.
fn assert_dynamic_roundtrip<E: FilterElem>(route: bool) {
    let db = clustered(300, 121);
    let d = LpDistance::l2();
    let queries = clustered(20, 123);
    let (k, p) = (4, 25);

    let model = train_model(&db);
    let mut index = DynamicIndex::<_, E>::with_store(model, db, &d);
    if route {
        index.enable_routing(
            RoutedConfig {
                cells: 9,
                n_probe: 3,
                ..RoutedConfig::default()
            },
            &d,
        );
    }
    // Churn before saving: drift in, shrink, refit the grid.
    for object in clustered(40, 127) {
        index.insert(object, &d);
    }
    for i in [5, 100, 250] {
        index.remove(i);
    }
    index.refit_store(&d);

    let bytes = index.to_snapshot_bytes().unwrap();
    let mut loaded = DynamicIndex::<Vec<f64>, E>::from_snapshot_bytes(&bytes).unwrap();
    assert_eq!(loaded.len(), index.len(), "{}", E::NAME);
    assert_eq!(loaded.p_scale(), index.p_scale(), "{}", E::NAME);
    assert_eq!(loaded.routing(), index.routing(), "{}", E::NAME);
    assert_eq!(
        loaded.vectors().as_slice(),
        index.vectors().as_slice(),
        "{}: stored filter bytes must round-trip exactly",
        E::NAME
    );

    let file = ScratchFile::new(&format!("dynamic-{route}-{}", E::NAME));
    index.save(&file.0).unwrap();
    let from_file = DynamicIndex::<Vec<f64>, E>::load(&file.0).unwrap();
    let mut mapped = DynamicIndex::<Vec<f64>, E>::load_mmap(&file.0).unwrap();
    if cfg!(all(
        unix,
        target_pointer_width = "64",
        target_endian = "little"
    )) {
        assert!(
            mapped.store_is_mapped(),
            "{}: a freshly mapped dynamic index serves off the file",
            E::NAME
        );
    }

    for threads in [1, 2, 8] {
        with_thread_count(threads, || {
            let expected = index.retrieve_batch(&queries, &d, k, p);
            assert_eq!(
                loaded.retrieve_batch(&queries, &d, k, p),
                expected,
                "{} bytes, routed={route}, {threads} threads",
                E::NAME
            );
            assert_eq!(
                from_file.retrieve_batch(&queries, &d, k, p),
                expected,
                "{} file, routed={route}, {threads} threads",
                E::NAME
            );
            assert_eq!(
                mapped.retrieve_batch(&queries, &d, k, p),
                expected,
                "{} mapped, routed={route}, {threads} threads",
                E::NAME
            );
        });
    }

    // The loaded and mapped indexes stay editable, in lockstep with the
    // original — the mapped one detaching from the file on first write
    // (copy-on-first-write) without the file's bytes ever changing.
    let mut index = index;
    for object in clustered(10, 131) {
        let id = index.insert(object.clone(), &d);
        assert_eq!(loaded.insert(object.clone(), &d), id, "{}", E::NAME);
        assert_eq!(mapped.insert(object, &d), id, "{} mapped", E::NAME);
    }
    assert!(
        !mapped.store_is_mapped(),
        "{}: the first mutation must detach the store from the mapping",
        E::NAME
    );
    index.remove(7);
    loaded.remove(7);
    mapped.remove(7);
    assert_eq!(
        loaded.retrieve_batch(&queries, &d, k, p),
        index.retrieve_batch(&queries, &d, k, p),
        "{}: post-load edits must stay in lockstep",
        E::NAME
    );
    assert_eq!(
        mapped.retrieve_batch(&queries, &d, k, p),
        index.retrieve_batch(&queries, &d, k, p),
        "{}: post-load edits on the mapped index must stay in lockstep",
        E::NAME
    );
    let same_file = DynamicIndex::<Vec<f64>, E>::load(&file.0).unwrap();
    assert_eq!(
        same_file.vectors().as_slice(),
        from_file.vectors().as_slice(),
        "{}: mutating a mapped index must never write through to the file",
        E::NAME
    );
}

#[test]
fn dynamic_index_roundtrips_bitwise_f64() {
    assert_dynamic_roundtrip::<f64>(false);
}

#[test]
fn dynamic_index_roundtrips_bitwise_f32() {
    assert_dynamic_roundtrip::<f32>(false);
}

#[test]
fn dynamic_index_roundtrips_bitwise_u8() {
    assert_dynamic_roundtrip::<u8>(false);
}

#[test]
fn routed_dynamic_index_roundtrips_bitwise_f64() {
    assert_dynamic_roundtrip::<f64>(true);
}

#[test]
fn routed_dynamic_index_roundtrips_bitwise_f32() {
    assert_dynamic_roundtrip::<f32>(true);
}

#[test]
fn routed_dynamic_index_roundtrips_bitwise_u8() {
    assert_dynamic_roundtrip::<u8>(true);
}

/// Knob restoration pinned explicitly: a freshly built `u8` index (which
/// seeds `p_scale` from `u8::DEFAULT_P_SCALE = 2.0`) and its loaded
/// snapshot report the same knobs and produce identical `probe_cells`
/// and top-k — nothing about the defaults is re-derived at load time.
#[test]
fn load_restores_default_seeded_knobs_exactly() {
    let db = clustered(400, 141);
    let d = LpDistance::l2();
    let queries = clustered(16, 143);
    let model = train_model(&db);

    let fresh = RoutedIndex::<_, u8>::build_query_sensitive_with_store(
        model,
        &db,
        &d,
        RoutedConfig {
            cells: 8,
            n_probe: 3,
            ..RoutedConfig::default()
        },
    );
    assert_eq!(fresh.p_scale(), <u8 as FilterElem>::DEFAULT_P_SCALE);
    let loaded =
        RoutedIndex::<Vec<f64>, u8>::from_snapshot_bytes(&fresh.to_snapshot_bytes().unwrap())
            .unwrap();
    assert_eq!(loaded.p_scale(), <u8 as FilterElem>::DEFAULT_P_SCALE);
    assert_eq!(loaded.n_probe(), fresh.n_probe());
    for q in &queries {
        assert_eq!(loaded.probe_cells(q, &d), fresh.probe_cells(q, &d));
        assert_eq!(
            loaded.retrieve(q, &db, &d, 5, 20),
            fresh.retrieve(q, &db, &d, 5, 20)
        );
    }

    // A non-default override survives the trip too (no re-seeding).
    let fresh = fresh.with_p_scale(3.25);
    let loaded =
        RoutedIndex::<Vec<f64>, u8>::from_snapshot_bytes(&fresh.to_snapshot_bytes().unwrap())
            .unwrap();
    assert_eq!(loaded.p_scale(), 3.25);
}

/// Churn a routed dynamic index object by object until its cells pass
/// through single-element and empty states, snapshotting at every step:
/// each snapshot must load, retrieve identically to the original (the
/// probe set extends past emptied cells instead of starving the refine
/// step — the `probe_prefix` floor), stay byte-stable under re-save, and
/// keep editing in lockstep after the load.
#[test]
fn churned_single_element_cells_roundtrip() {
    let db = clustered(40, 161);
    let d = LpDistance::l2();
    let queries = clustered(6, 163);
    let model = train_model(&db);
    let mut index = DynamicIndex::<_, u8>::with_store(model, db, &d);
    index.enable_routing(
        RoutedConfig {
            cells: 8,
            n_probe: 2,
            ..RoutedConfig::default()
        },
        &d,
    );
    let mut step = 0usize;
    while index.len() > 2 {
        // Vary the removal position: front, back, middle.
        let at = match step % 3 {
            0 => 0,
            1 => index.len() - 1,
            _ => index.len() / 2,
        };
        index.remove(at);
        step += 1;
        let n = index.len();
        let (k, p) = (1, n.min(3));
        let bytes = index.to_snapshot_bytes().unwrap();
        let mut loaded = DynamicIndex::<Vec<f64>, u8>::from_snapshot_bytes(&bytes)
            .unwrap_or_else(|e| panic!("snapshot load failed at len {n}: {e}"));
        for q in &queries {
            let got = loaded.retrieve(q, &d, k, p);
            assert_eq!(got.len(), k, "short result at len {n}");
            assert_eq!(
                got,
                index.retrieve(q, &d, k, p),
                "retrieval diverged at len {n}"
            );
        }
        assert_eq!(
            bytes,
            loaded.to_snapshot_bytes().unwrap(),
            "snapshot bytes unstable at len {n}"
        );
        // Post-load lockstep edits: the loaded index must continue to be
        // editable exactly like the original, including re-filling a cell
        // that was emptied by the churn.
        let probe = vec![7.0 + step as f64 * 0.1, 7.0];
        index.insert(probe.clone(), &d);
        loaded.insert(probe, &d);
        for q in &queries {
            assert_eq!(
                loaded.retrieve(q, &d, 1, 3),
                index.retrieve(q, &d, 1, 3),
                "post-load insert diverged at step {step}"
            );
        }
        let gid = index.len() - 1;
        assert_eq!(index.remove(gid), loaded.remove(gid));
    }
    // Refit with config.cells (8) above the surviving population (2): the
    // k-means must cope, and the refit state must still round-trip.
    index.refit_store(&d);
    let bytes = index.to_snapshot_bytes().unwrap();
    let loaded = DynamicIndex::<Vec<f64>, u8>::from_snapshot_bytes(&bytes).unwrap();
    for q in &queries {
        assert_eq!(loaded.retrieve(q, &d, 1, 2), index.retrieve(q, &d, 1, 2));
    }
}

/// A snapshot written under one thread count must replay identically
/// when loaded under another — the bytes carry no parallelism residue.
#[test]
fn snapshots_are_thread_count_invariant() {
    let db = clustered(300, 151);
    let d = LpDistance::l2();
    let queries = clustered(12, 153);
    let model = train_model(&db);

    let bytes_by_threads: Vec<Vec<u8>> = [1, 2, 8]
        .into_iter()
        .map(|threads| {
            with_thread_count(threads, || {
                RoutedIndex::<_, u8>::build_query_sensitive_with_store(
                    model.clone(),
                    &db,
                    &d,
                    RoutedConfig {
                        cells: 6,
                        n_probe: 2,
                        ..RoutedConfig::default()
                    },
                )
                .to_snapshot_bytes()
                .unwrap()
            })
        })
        .collect();
    assert_eq!(bytes_by_threads[0], bytes_by_threads[1]);
    assert_eq!(bytes_by_threads[0], bytes_by_threads[2]);

    let index = RoutedIndex::<Vec<f64>, u8>::from_snapshot_bytes(&bytes_by_threads[0]).unwrap();
    let expected = with_thread_count(1, || index.retrieve_batch(&queries, &db, &d, 4, 20));
    for threads in [2, 8] {
        with_thread_count(threads, || {
            assert_eq!(index.retrieve_batch(&queries, &db, &d, 4, 20), expected);
        });
    }
}
