//! Helpers shared by the workspace-level integration test binaries
//! (`mod common;` in each). Not itself a test target — the directory form
//! keeps Cargo from compiling it as one.

/// Serializes every thread-count override: `RAYON_NUM_THREADS` is
/// process-global and the tests in one binary run concurrently, so every
/// mutation goes through one lock.
static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Run `f` with `RAYON_NUM_THREADS` set to `value` (or unset for `None`),
/// then restore the ambient value (the CI matrix pins the variable for the
/// whole test binary; erasing it would un-pin every later test in the
/// process).
fn with_thread_count_var<T>(value: Option<String>, f: impl FnOnce() -> T) -> T {
    let _guard = ENV_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let ambient = std::env::var("RAYON_NUM_THREADS").ok();
    match value {
        Some(value) => std::env::set_var("RAYON_NUM_THREADS", value),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }
    let out = f();
    match ambient {
        Some(value) => std::env::set_var("RAYON_NUM_THREADS", value),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }
    out
}

/// Run `f` with `RAYON_NUM_THREADS` pinned to `threads`.
pub fn with_thread_count<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    with_thread_count_var(Some(threads.to_string()), f)
}

/// Run `f` with `RAYON_NUM_THREADS` unset (the fallback path of
/// `rayon::current_num_threads`).
#[allow(dead_code)] // used by a subset of the test binaries
pub fn with_thread_count_unset<T>(f: impl FnOnce() -> T) -> T {
    with_thread_count_var(None, f)
}
