//! # query-sensitive-embeddings
//!
//! A production-quality Rust reproduction of **"Query-Sensitive Embeddings"**
//! (Vassilis Athitsos, Marios Hadjieleftheriou, George Kollios, Stan
//! Sclaroff — ACM SIGMOD 2005): embedding-based approximate
//! nearest-neighbor retrieval for spaces with expensive, non-Euclidean and
//! possibly non-metric distance measures, where the learned embedding comes
//! with a **query-sensitive** weighted L1 distance whose per-coordinate
//! weights adapt to each query.
//!
//! This facade crate re-exports the workspace crates:
//!
//! * [`distance`] (`qse-distance`) — distance measures (constrained DTW,
//!   shape context + Hungarian matching, edit, KL, chamfer, Lp) and
//!   exact-distance accounting.
//! * [`dataset`] (`qse-dataset`) — synthetic workload generators standing in
//!   for MNIST and the Vlachos et al. time-series database.
//! * [`embedding`] (`qse-embedding`) — 1-D reference / pivot embeddings,
//!   FastMap, Lipschitz / SparseMap baselines.
//! * [`core`] (`qse-core`) — the paper's contribution: AdaBoost over
//!   query-sensitive weak classifiers, selective triple sampling, and the
//!   trained model `F_out` + `D_out`.
//! * [`retrieval`] (`qse-retrieval`) — filter-and-refine retrieval, the
//!   evaluation harness, and drivers regenerating every figure and table of
//!   the paper.
//! * [`serve`] (`qse-serve`) — the query service front end: a
//!   transport-neutral API facade over any index (loadable from a
//!   snapshot), an admission batcher that coalesces concurrent single
//!   queries into micro-batches, and a std-only HTTP/1.1 server.
//!
//! ## Quickstart
//!
//! ```
//! use query_sensitive_embeddings::prelude::*;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // 1. A toy "expensive" space: 2-D vectors under Euclidean distance.
//! let database: Vec<Vec<f64>> = (0..120)
//!     .map(|i| vec![(i % 12) as f64, (i / 12) as f64 * 2.0])
//!     .collect();
//! let distance = LpDistance::l2();
//!
//! // 2. Precompute training data and sample selective triples (Se).
//! let mut rng = StdRng::seed_from_u64(7);
//! let data = TrainingData::precompute(database.clone(), database.clone(), &distance, 2);
//! let triples = TripleSampler::selective(4).sample(&data.train_to_train, 400, &mut rng);
//!
//! // 3. Train a query-sensitive embedding (Se-QS).
//! let model = BoostMapTrainer::new(TrainerConfig::quick()).train(&data, &triples, &mut rng);
//!
//! // 4. Index the database and run filter-and-refine retrieval.
//! let index = FilterRefineIndex::build_query_sensitive(model, &database, &distance);
//! let query = vec![3.4, 8.1];
//! let result = index.retrieve(&query, &database, &distance, 3, 20);
//! assert_eq!(result.neighbors.len(), 3);
//! assert!(result.total_cost() < database.len()); // cheaper than brute force
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use qse_core as core;
pub use qse_dataset as dataset;
pub use qse_distance as distance;
pub use qse_embedding as embedding;
pub use qse_retrieval as retrieval;
pub use qse_serve as serve;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use qse_core::{
        BoostMapTrainer, EmbeddedQuery, EmbeddedQueryBatch, MethodVariant, QseModel,
        QuerySensitivity, TrainerConfig, TrainingData, TrainingTriple, TripleSampler,
        TripleSamplingStrategy,
    };
    pub use qse_dataset::{
        Dataset, DigitGenerator, GaussianMixture, GaussianMixtureConfig, TimeSeriesGenerator,
    };
    pub use qse_distance::{
        ConstrainedDtw, CountingDistance, DistanceMatrix, DistanceMeasure, FilterElem, FlatStore,
        FlatVectors, LpDistance, PointSet, QuantParams, SadQuery, SadQueryBatch,
        ShapeContextDistance, TimeSeries, WeightedL1,
    };
    pub use qse_embedding::{
        CompositeEmbedding, Embedding, FastMap, FastMapConfig, KMeans, KMeansConfig, OneDEmbedding,
    };
    pub use qse_retrieval::{
        experiments, ground_truth, knn_flat, knn_flat_batch, recall_vs_n_probe, snapshot_sections,
        ConcurrentIndex, CostReport, DynamicIndex, FilterRefineIndex, MethodEvaluation, QueryError,
        ReadHandle, RetrievalOutcome, RoutedConfig, RoutedIndex, SnapshotError, WriteHandle,
    };
    pub use qse_serve::{
        Batcher, BatcherConfig, BatcherStats, IndexInfo, LoadOptions, MutationReport, QseApi,
        QseServer, QueryResult, RequestError, ServeConfig, ServeError, SnapshotSource,
    };
}
