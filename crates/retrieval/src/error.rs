//! Typed request-validation errors for the fallible retrieval API.
//!
//! Every retrieval entry point historically validated with `assert!` —
//! fine inside an experiment harness, fatal inside a long-lived server
//! absorbing untrusted requests. The `try_*` methods on the three index
//! types ([`FilterRefineIndex`](crate::FilterRefineIndex),
//! [`RoutedIndex`](crate::RoutedIndex),
//! [`DynamicIndex`](crate::DynamicIndex)) return a [`QueryError`]
//! instead, and the asserting methods are thin wrappers that panic with
//! the error's `Display` message — the same messages the asserts always
//! produced, so existing `should_panic` pins keep holding.

use std::fmt;

/// Why a retrieval request (or a knob update) was rejected.
///
/// The `Display` messages reproduce the historical assert messages
/// verbatim; the typed form is what a serving layer returns to a client
/// instead of unwinding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryError {
    /// A fallible batch entry point received zero queries. (The
    /// asserting `retrieve_batch` methods instead return an empty result
    /// vector, mirroring zero sequential calls; a server rejects the
    /// request explicitly.)
    EmptyBatch,
    /// The index holds no objects (possible only for a churned
    /// [`DynamicIndex`](crate::DynamicIndex); static indexes are never
    /// empty).
    EmptyIndex,
    /// `k` is below 1.
    BadK {
        /// The rejected neighbor count.
        k: usize,
    },
    /// `p` is outside `k..=max` (fewer filter candidates than neighbors,
    /// or more than the database holds).
    BadP {
        /// The request's neighbor count.
        k: usize,
        /// The rejected candidate count.
        p: usize,
        /// The database size `p` may not exceed.
        max: usize,
    },
    /// A query's dimensionality does not match the indexed vectors
    /// (detected at the serving boundary, where objects are raw
    /// vectors).
    DimMismatch {
        /// The indexed dimensionality.
        expected: usize,
        /// The query's dimensionality.
        got: usize,
    },
    /// The `database` argument's length does not match the indexed
    /// collection.
    DatabaseMismatch {
        /// The indexed collection's length.
        expected: usize,
        /// The argument's length.
        got: usize,
    },
    /// An oversampling factor outside `1.0..` (or non-finite) was passed
    /// to a `p_scale` setter.
    BadPScale {
        /// The rejected factor.
        p_scale: f64,
    },
    /// An `n_probe` outside `1..=cells` was passed to a probe-width
    /// setter.
    BadNProbe {
        /// The rejected probe width.
        n_probe: usize,
        /// The number of cells it must not exceed.
        cells: usize,
    },
    /// A routing knob was touched on an index whose routing layer is not
    /// enabled.
    RoutingDisabled,
    /// A mutation named an id outside the live id space (detected at the
    /// serving boundary; the in-process
    /// [`DynamicIndex::remove`](crate::DynamicIndex::remove) keeps its
    /// historical bounds panic).
    BadId {
        /// The rejected id.
        id: usize,
        /// The current number of live objects (`id` must be below it).
        len: usize,
    },
    /// A mutation was requested on an index backend that cannot accept
    /// one (every backend except the concurrent dynamic index).
    MutationUnsupported,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Self::EmptyBatch => write!(f, "the query batch is empty"),
            Self::EmptyIndex => write!(f, "cannot query an empty index"),
            Self::BadK { .. } => write!(f, "k must be at least 1"),
            Self::BadP { k, p, max } => {
                if p < k {
                    write!(f, "p = {p} must be at least k = {k}")
                } else {
                    write!(f, "p = {p} exceeds the database size {max}")
                }
            }
            Self::DimMismatch { expected, got } => {
                write!(f, "query must have dimensionality {expected}, got {got}")
            }
            Self::DatabaseMismatch { expected, got } => write!(
                f,
                "database does not match the indexed vectors ({got} objects for {expected} rows)"
            ),
            Self::BadPScale { p_scale } => {
                write!(f, "p_scale must be finite and at least 1.0, got {p_scale}")
            }
            Self::BadNProbe { n_probe, cells } => {
                write!(f, "n_probe = {n_probe} must be in 1..={cells}")
            }
            Self::RoutingDisabled => write!(f, "routing is not enabled"),
            Self::BadId { id, len } => {
                write!(f, "id {id} is out of bounds for an index of {len} objects")
            }
            Self::MutationUnsupported => {
                write!(f, "this index backend does not support mutation")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// The shared `k`/`p` validation of every retrieval path: `k >= 1` and
/// `k <= p <= len`.
pub(crate) fn check_query_params(k: usize, p: usize, len: usize) -> Result<(), QueryError> {
    if k < 1 {
        return Err(QueryError::BadK { k });
    }
    if p < k || p > len {
        return Err(QueryError::BadP { k, p, max: len });
    }
    Ok(())
}

/// The shared oversampling-factor validation of every `p_scale` setter:
/// finite and at least `1.0`.
pub(crate) fn check_p_scale(p_scale: f64) -> Result<(), QueryError> {
    if p_scale.is_finite() && p_scale >= 1.0 {
        Ok(())
    } else {
        Err(QueryError::BadPScale { p_scale })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_match_the_historical_asserts() {
        assert_eq!(
            QueryError::BadK { k: 0 }.to_string(),
            "k must be at least 1"
        );
        assert_eq!(
            QueryError::BadP { k: 5, p: 2, max: 9 }.to_string(),
            "p = 2 must be at least k = 5"
        );
        assert_eq!(
            QueryError::BadP {
                k: 2,
                p: 40,
                max: 9
            }
            .to_string(),
            "p = 40 exceeds the database size 9"
        );
        assert_eq!(
            QueryError::BadPScale { p_scale: 0.5 }.to_string(),
            "p_scale must be finite and at least 1.0, got 0.5"
        );
        assert_eq!(
            QueryError::BadNProbe {
                n_probe: 9,
                cells: 4
            }
            .to_string(),
            "n_probe = 9 must be in 1..=4"
        );
        assert_eq!(
            QueryError::RoutingDisabled.to_string(),
            "routing is not enabled"
        );
        assert_eq!(
            QueryError::EmptyIndex.to_string(),
            "cannot query an empty index"
        );
        assert_eq!(
            QueryError::DimMismatch {
                expected: 2,
                got: 5
            }
            .to_string(),
            "query must have dimensionality 2, got 5"
        );
        assert_eq!(
            QueryError::BadId { id: 7, len: 3 }.to_string(),
            "id 7 is out of bounds for an index of 3 objects"
        );
        assert_eq!(
            QueryError::MutationUnsupported.to_string(),
            "this index backend does not support mutation"
        );
    }

    #[test]
    fn check_query_params_covers_every_rejection() {
        assert_eq!(check_query_params(0, 5, 10), Err(QueryError::BadK { k: 0 }));
        assert_eq!(
            check_query_params(3, 2, 10),
            Err(QueryError::BadP {
                k: 3,
                p: 2,
                max: 10
            })
        );
        assert_eq!(
            check_query_params(1, 11, 10),
            Err(QueryError::BadP {
                k: 1,
                p: 11,
                max: 10
            })
        );
        assert_eq!(check_query_params(1, 10, 10), Ok(()));
        assert_eq!(check_query_params(3, 3, 10), Ok(()));
    }

    #[test]
    fn check_p_scale_rejects_non_finite_and_sub_unit() {
        assert!(check_p_scale(1.0).is_ok());
        assert!(check_p_scale(2.5).is_ok());
        assert!(check_p_scale(0.99).is_err());
        assert!(check_p_scale(f64::NAN).is_err());
        assert!(check_p_scale(f64::INFINITY).is_err());
    }
}
