//! Cluster-routed (IVF-style) filter-and-refine retrieval: sublinear
//! candidate generation over the embedded space.
//!
//! Every retrieve of the flat pipeline ([`crate::filter_refine`]) scans
//! all `n` embedded rows; at production row counts that linear scan is
//! the wall. [`RoutedIndex`] composes the paper's filter-refine protocol
//! with a coarse partition layer:
//!
//! 1. **Partition (indexing time)** — a seeded, deterministic k-means
//!    ([`qse_embedding::KMeans`]) splits the embedded database into `C`
//!    cells. Each cell owns its own [`FlatStore`], so the entire existing
//!    backend machinery — `f64`/`f32` decode kernels, the `u8` integer
//!    SAD kernel, the `scan_filter` dispatch hooks, the Q×N tiled batch
//!    paths — is reused per cell **unchanged**. All cells of one `u8`
//!    index share a *single* quantization grid fitted over the whole
//!    collection ([`FlatStore::from_rows_with_params`]), so a row's
//!    stored bytes — and with them its filter score — are exactly what
//!    they would be in the monolithic store.
//! 2. **Route (query time)** — rank the `C` centroids by the query's
//!    *filter* distance (the weighted L1 the cell scans themselves use)
//!    and visit only the nearest [`RoutedIndex::n_probe`] cells: the
//!    filter scan touches `Σ_{visited} |cell|` rows instead of `n`.
//! 3. **Refine (exact)** — the survivors are re-ranked by exact
//!    distances through the same shared refine routine as the flat
//!    pipeline, so recall stays directly measurable against it.
//!
//! ## Exactness at `n_probe == C`
//!
//! With every cell visited, the candidate pool is the whole database,
//! every per-row filter score is **bit-identical** to the full scan's
//! (per-row kernels do not care which store a row lives in, and `u8`
//! cells share the monolithic grid), and selection uses the same strict
//! `(score, id)` total order — so retrieval at `n_probe == C` equals the
//! unrouted [`FilterRefineIndex`](crate::FilterRefineIndex) outcome
//! exactly, on every backend, at any thread count. The workspace tests
//! pin this. Recall against the flat pipeline is therefore `1.0` at
//! `n_probe == C` and monotone in between: growing `n_probe` only ever
//! *adds* candidates.
//!
//! ## Batched routing
//!
//! [`RoutedIndex::retrieve_batch`] groups the batch **by cell** before
//! scanning: every visited cell scores all the queries routed to it in
//! one sequential Q×N tile ([`qse_distance::vector`]'s `_range` filter
//! kernels), so a hot cell block serves a dense tile of query rows
//! instead of one query at a time, and cells fan out across the
//! persistent worker pool. Scores are then regrouped per query for
//! selection and refine. (Unlike the flat pipeline's
//! `tiled_query_pipeline`, there is no duplicate-query memo — grouping
//! is by cell, not by tile.)

use crate::error::{check_query_params, QueryError};
use crate::filter_refine::{
    effective_p, refine_candidates, top_p_by_score, FilterKind, RetrievalOutcome,
};
use qse_core::QseModel;
use qse_distance::vector::{
    weighted_l1_filter_batch_per_query_range, weighted_l1_filter_batch_range,
    weighted_l1_filter_flat, weighted_l1_row,
};
use qse_distance::{DistanceMeasure, FilterElem, FlatStore, FlatVectors, MappedWords, WeightedL1};
use qse_embedding::{Embedding, KMeans, KMeansConfig};
use rayon::prelude::*;

/// Configuration of the routing layer: how many cells to partition into
/// and how many to visit per query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoutedConfig {
    /// Number of k-means cells `C` (clamped to the database size at
    /// build time).
    pub cells: usize,
    /// Cells visited per query (clamped to the actual cell count; see
    /// [`RoutedIndex::set_n_probe`] to sweep after building).
    pub n_probe: usize,
    /// Seed of the deterministic k-means initialization.
    pub seed: u64,
    /// Maximum Lloyd iterations of the k-means fit.
    pub max_iters: usize,
}

impl Default for RoutedConfig {
    fn default() -> Self {
        Self {
            cells: 16,
            n_probe: 4,
            seed: 0x5EED,
            max_iters: 25,
        }
    }
}

/// One cell's list of global database ids: heap-owned for indexes built
/// in process, or borrowed zero-copy out of an `mmap`ed snapshot's ids
/// section (one [`MappedWords`] per cell, all sharing a single mapping).
/// Reads go through `Deref<Target = [usize]>`, so probe/scan code is
/// identical for both representations. The snapshot loader validates the
/// whole section (bounds + permutation) before wrapping it, exactly as
/// the owned decoder does.
#[derive(Debug, Clone)]
pub enum IdList {
    /// Heap-owned ids — everything built in process.
    Owned(Vec<usize>),
    /// Ids borrowed zero-copy from an `mmap`ed snapshot.
    Mapped(MappedWords),
}

impl IdList {
    /// The ids as a heap-owned vector, copying mapped words. Used by the
    /// dynamic loader, whose routing state mutates its id lists in place
    /// and therefore always owns them.
    pub fn into_owned(self) -> Vec<usize> {
        match self {
            Self::Owned(v) => v,
            Self::Mapped(m) => m.as_slice().to_vec(),
        }
    }
}

impl std::ops::Deref for IdList {
    type Target = [usize];

    #[inline]
    fn deref(&self) -> &[usize] {
        match self {
            Self::Owned(v) => v,
            Self::Mapped(m) => m.as_slice(),
        }
    }
}

/// A database indexed for cluster-routed filter-and-refine retrieval
/// (see the module docs). Generic over the filter-store precision `E`
/// exactly like [`FilterRefineIndex`](crate::FilterRefineIndex).
pub struct RoutedIndex<O, E: FilterElem = f64> {
    pub(crate) kind: FilterKind<O>,
    pub(crate) router: KMeans,
    /// One filter store per cell; `u8` cells share one grid fitted over
    /// the whole collection (bit-compatible with the monolithic store).
    pub(crate) cells: Vec<FlatStore<E>>,
    /// `ids[c][j]` is the global database id of row `j` of cell `c`.
    pub(crate) ids: Vec<IdList>,
    pub(crate) n_probe: usize,
    pub(crate) p_scale: f64,
    pub(crate) len: usize,
}

/// Global ids of the `p` smallest scores under the strict total order
/// `(score, id)` — the routed counterpart of `top_p_by_score`, which
/// makes the selection over a candidate pool gathered from several cells
/// identical to the full scan's selection whenever the pool is the whole
/// database.
pub(crate) fn top_ids_by_score(scores: &[f64], gids: &[usize], p: usize) -> Vec<usize> {
    debug_assert_eq!(scores.len(), gids.len());
    let cmp = |a: &usize, b: &usize| {
        scores[*a]
            .total_cmp(&scores[*b])
            .then(gids[*a].cmp(&gids[*b]))
    };
    let mut order: Vec<usize> = (0..scores.len()).collect();
    if p >= 1 && p < order.len() {
        order.select_nth_unstable_by(p - 1, cmp);
        order.truncate(p);
    }
    order.sort_unstable_by(cmp);
    order.into_iter().map(|i| gids[i]).collect()
}

/// The probe set that seats at least `min_rows` candidate rows: the first
/// `n_probe` entries of `ranked` (cells in increasing centroid filter
/// distance, ties toward the lower cell id), extended in rank order while
/// the visited cells hold fewer rows than `min_rows`.
///
/// `n_probe` alone cannot guarantee a usable candidate pool: k-means can
/// leave a cell nearly empty, and a routed `DynamicIndex` can empty one
/// outright by removing its last member — a query routed into such cells
/// would otherwise reach the refine step with fewer than `k` candidates
/// and panic there. The extension is deterministic (the same total order
/// the router ranks by), a no-op whenever the `n_probe` nearest cells
/// already hold `min_rows` rows, and bounded by the full cell list, whose
/// pool is the entire database.
pub(crate) fn probe_prefix<E: FilterElem>(
    ranked: &[usize],
    cells: &[FlatStore<E>],
    n_probe: usize,
    min_rows: usize,
) -> Vec<usize> {
    let mut pool = 0usize;
    let mut take = 0usize;
    while take < ranked.len() && (take < n_probe || pool < min_rows) {
        pool += cells[ranked[take]].len();
        take += 1;
    }
    ranked[..take].to_vec()
}

impl<O: Clone + Send + Sync> RoutedIndex<O> {
    /// Index `database` under a global-L1 embedding with the exact `f64`
    /// filter store (see
    /// [`Self::build_global_with_store`] for compact backends).
    pub fn build_global<Emb>(
        embedding: Emb,
        database: &[O],
        distance: &dyn DistanceMeasure<O>,
        config: RoutedConfig,
    ) -> Self
    where
        Emb: Embedding<O> + 'static,
    {
        Self::build_global_with_store(embedding, database, distance, config)
    }

    /// Index `database` under a trained [`QseModel`] with the exact
    /// `f64` filter store.
    pub fn build_query_sensitive(
        model: QseModel<O>,
        database: &[O],
        distance: &dyn DistanceMeasure<O>,
        config: RoutedConfig,
    ) -> Self {
        Self::build_query_sensitive_with_store(model, database, distance, config)
    }
}

impl<O: Clone + Send + Sync, E: FilterElem> RoutedIndex<O, E> {
    /// Index `database` under a global-L1 embedding with an explicit
    /// filter-store precision `E` and the routing layer of `config`:
    /// embed every object (parallel), fit the seeded k-means over the
    /// embedded rows, and build one per-cell store — all cells encoding
    /// under parameters fitted over the **whole** collection.
    ///
    /// # Panics
    /// Panics if the database is empty or `config` is degenerate
    /// (`cells == 0`, `n_probe == 0`).
    pub fn build_global_with_store<Emb>(
        embedding: Emb,
        database: &[O],
        distance: &dyn DistanceMeasure<O>,
        config: RoutedConfig,
    ) -> Self
    where
        Emb: Embedding<O> + 'static,
    {
        assert!(!database.is_empty(), "cannot index an empty database");
        let rows = embedding.embed_all(database, distance);
        let dim = embedding.dim();
        let kind = FilterKind::GlobalL1 {
            filter: WeightedL1::uniform(dim),
            embedding: Box::new(embedding),
        };
        Self::build(kind, dim, rows, config)
    }

    /// Index `database` under a trained [`QseModel`] with an explicit
    /// filter-store precision `E` (see
    /// [`Self::build_global_with_store`]).
    ///
    /// # Panics
    /// As [`Self::build_global_with_store`].
    pub fn build_query_sensitive_with_store(
        model: QseModel<O>,
        database: &[O],
        distance: &dyn DistanceMeasure<O>,
        config: RoutedConfig,
    ) -> Self {
        assert!(!database.is_empty(), "cannot index an empty database");
        let embedding = model.embedding();
        let rows = embedding.embed_all(database, distance);
        let dim = model.dim();
        Self::build(FilterKind::QuerySensitive { model }, dim, rows, config)
    }

    fn build(kind: FilterKind<O>, dim: usize, rows: Vec<Vec<f64>>, config: RoutedConfig) -> Self {
        assert!(config.cells >= 1, "cells must be at least 1");
        assert!(config.n_probe >= 1, "n_probe must be at least 1");
        let len = rows.len();
        // One set of encode parameters over the whole collection, shared
        // by every cell — per-cell fits would move the u8 grid and break
        // bit-compatibility with the monolithic store.
        let params = E::fit(dim, &rows);
        let flat = FlatVectors::from_rows_with_dim(dim, rows.clone());
        let router = KMeans::fit(
            &flat,
            KMeansConfig {
                cells: config.cells,
                seed: config.seed,
                max_iters: config.max_iters,
            },
        );
        let assignment = router.assign_all(&flat);
        let c = router.cells();
        let mut cell_rows: Vec<Vec<Vec<f64>>> = vec![Vec::new(); c];
        let mut ids: Vec<Vec<usize>> = vec![Vec::new(); c];
        for (i, row) in rows.into_iter().enumerate() {
            cell_rows[assignment[i]].push(row);
            ids[assignment[i]].push(i);
        }
        let cells = cell_rows
            .into_iter()
            .map(|r| FlatStore::from_rows_with_params(dim, r, params.clone()))
            .collect();
        Self {
            kind,
            router,
            cells,
            ids: ids.into_iter().map(IdList::Owned).collect(),
            n_probe: config.n_probe.min(c),
            p_scale: E::DEFAULT_P_SCALE,
            len,
        }
    }

    /// Set the filter oversampling factor (see
    /// [`FilterRefineIndex::with_p_scale`](crate::FilterRefineIndex::with_p_scale);
    /// same contract, same backend defaults). With routing, the scaled
    /// candidate count is additionally capped by the number of rows the
    /// visited cells actually hold.
    ///
    /// # Panics
    /// Panics if `p_scale` is not finite or is below `1.0` (the fallible
    /// form is [`Self::try_with_p_scale`]).
    pub fn with_p_scale(self, p_scale: f64) -> Self {
        self.try_with_p_scale(p_scale)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Self::with_p_scale`]: the index back with the factor
    /// applied, or [`QueryError::BadPScale`] — for server config/reload
    /// paths, where a bad knob must be an error, not a process death.
    pub fn try_with_p_scale(mut self, p_scale: f64) -> Result<Self, QueryError> {
        crate::error::check_p_scale(p_scale)?;
        self.p_scale = p_scale;
        Ok(self)
    }

    /// The current filter oversampling factor.
    pub fn p_scale(&self) -> f64 {
        self.p_scale
    }

    /// Builder-style [`Self::set_n_probe`].
    ///
    /// # Panics
    /// As [`Self::set_n_probe`].
    pub fn with_n_probe(mut self, n_probe: usize) -> Self {
        self.set_n_probe(n_probe);
        self
    }

    /// Change how many cells each query visits — the recall/latency
    /// knob, cheap to sweep on a built index (`n_probe == cells()`
    /// degrades to the exact full scan).
    ///
    /// # Panics
    /// Panics unless `1 <= n_probe <= cells()` (the fallible form is
    /// [`Self::try_set_n_probe`]).
    pub fn set_n_probe(&mut self, n_probe: usize) {
        self.try_set_n_probe(n_probe)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible [`Self::set_n_probe`]: [`QueryError::BadNProbe`] when
    /// `n_probe` is outside `1..=cells()`, leaving the knob untouched.
    pub fn try_set_n_probe(&mut self, n_probe: usize) -> Result<(), QueryError> {
        if n_probe < 1 || n_probe > self.cells.len() {
            return Err(QueryError::BadNProbe {
                n_probe,
                cells: self.cells.len(),
            });
        }
        self.n_probe = n_probe;
        Ok(())
    }

    /// Cells visited per query.
    pub fn n_probe(&self) -> usize {
        self.n_probe
    }

    /// Number of k-means cells `C`.
    pub fn cells(&self) -> usize {
        self.cells.len()
    }

    /// Row count of every cell, in cell order (diagnostics: partition
    /// balance determines how sublinear the routed scan really is).
    pub fn cell_sizes(&self) -> Vec<usize> {
        self.cells.iter().map(FlatStore::len).collect()
    }

    /// Number of database objects indexed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the index is empty (never after construction).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimensionality of the embedded vectors.
    pub fn dim(&self) -> usize {
        match &self.kind {
            FilterKind::GlobalL1 { embedding, .. } => embedding.dim(),
            FilterKind::QuerySensitive { model } => model.dim(),
        }
    }

    /// Exact distance computations needed to embed one query.
    pub fn embedding_cost(&self) -> usize {
        match &self.kind {
            FilterKind::GlobalL1 { embedding, .. } => embedding.embedding_cost(),
            FilterKind::QuerySensitive { model } => model.embedding_cost(),
        }
    }

    /// The cells nearest to an embedded query under the **filter**
    /// distance (weighted L1 against each centroid — the same measure the
    /// cell scans use), in increasing distance, ties toward the lower
    /// cell id: the first [`Self::n_probe`] of the ranking, extended past
    /// `n_probe` only while the visited cells hold fewer than `min_rows`
    /// rows (see [`probe_prefix`]).
    fn route(&self, weights: &[f64], coords: &[f64], min_rows: usize) -> Vec<usize> {
        let centroids = self.router.centroids();
        let scores: Vec<f64> = (0..centroids.len())
            .map(|c| weighted_l1_row(weights, coords, centroids.row(c)))
            .collect();
        let ranked = top_p_by_score(&scores, scores.len());
        probe_prefix(&ranked, &self.cells, self.n_probe, min_rows)
    }

    /// The cells `query` would visit at the current [`Self::n_probe`]
    /// (diagnostics / evaluation; spends one embedding).
    pub fn probe_cells(&self, query: &O, distance: &dyn DistanceMeasure<O>) -> Vec<usize> {
        let (weights, coords) = self.embed_query(query, distance);
        self.route(&weights, &coords, 0)
    }

    /// Embed one query into its filter form: the (per-query) weight
    /// vector and coordinates the scans and the router consume.
    fn embed_query(&self, query: &O, distance: &dyn DistanceMeasure<O>) -> (Vec<f64>, Vec<f64>) {
        match &self.kind {
            FilterKind::GlobalL1 { embedding, filter } => {
                let coords = embedding.embed(query, distance);
                (filter.weights().to_vec(), coords)
            }
            FilterKind::QuerySensitive { model } => {
                let eq = model.embed_query(query, distance);
                (eq.weights, eq.coordinates)
            }
        }
    }

    /// Cluster-routed filter-and-refine retrieval: route to the nearest
    /// [`Self::n_probe`] cells, filter-scan only those, keep the best
    /// `⌈p · p_scale⌉` candidates (capped by the visited row count), and
    /// re-rank them by exact distance. At `n_probe == cells()` the
    /// outcome equals the unrouted
    /// [`FilterRefineIndex::retrieve`](crate::FilterRefineIndex::retrieve)
    /// exactly (see the module docs).
    ///
    /// # Panics
    /// Panics if `k` is zero, `p < k`, or `p` exceeds the database size,
    /// or if `database` does not match the indexed collection's length
    /// (the fallible form is [`Self::try_retrieve`]).
    pub fn retrieve(
        &self,
        query: &O,
        database: &[O],
        distance: &dyn DistanceMeasure<O>,
        k: usize,
        p: usize,
    ) -> RetrievalOutcome {
        self.try_retrieve(query, database, distance, k, p)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Self::retrieve`]: the retrieval outcome, or a typed
    /// [`QueryError`] for any parameter the asserting form would panic
    /// on — the entry point a serving layer calls so a malformed request
    /// is an error response, never an unwinding thread.
    ///
    /// # Errors
    /// [`QueryError::BadK`], [`QueryError::BadP`] and
    /// [`QueryError::DatabaseMismatch`], exactly as
    /// [`FilterRefineIndex::try_retrieve`](crate::FilterRefineIndex::try_retrieve).
    pub fn try_retrieve(
        &self,
        query: &O,
        database: &[O],
        distance: &dyn DistanceMeasure<O>,
        k: usize,
        p: usize,
    ) -> Result<RetrievalOutcome, QueryError> {
        self.validate(database, k, p)?;
        let (weights, coords) = self.embed_query(query, distance);
        let visited = self.route(&weights, &coords, k);
        let pool: usize = visited.iter().map(|&c| self.cells[c].len()).sum();
        let mut scores = vec![0.0; pool];
        let mut gids = Vec::with_capacity(pool);
        let mut offset = 0;
        for &c in &visited {
            let cell = &self.cells[c];
            weighted_l1_filter_flat(
                &weights,
                &coords,
                cell,
                &mut scores[offset..offset + cell.len()],
            );
            gids.extend_from_slice(&self.ids[c]);
            offset += cell.len();
        }
        let keep = effective_p(p, self.p_scale, self.len).min(pool);
        let candidates = top_ids_by_score(&scores, &gids, keep);
        Ok(refine_candidates(
            query,
            database,
            distance,
            k,
            &candidates,
            self.embedding_cost(),
        ))
    }

    /// Batched cluster-routed retrieval, grouped **by cell** so tiles
    /// stay dense (see the module docs): embed the whole batch, route
    /// every query, then let each visited cell score all of its queries
    /// in one sequential Q×N tile — cells fan out across the persistent
    /// worker pool — and finally regroup scores per query for selection
    /// and the exact refine step (parallel over queries).
    ///
    /// Results are in query order and identical to calling
    /// [`Self::retrieve`] per query, at any thread count.
    ///
    /// # Panics
    /// As [`Self::retrieve`] (when the batch is non-empty; the fallible
    /// form is [`Self::try_retrieve_batch`]).
    pub fn retrieve_batch(
        &self,
        queries: &[O],
        database: &[O],
        distance: &dyn DistanceMeasure<O>,
        k: usize,
        p: usize,
    ) -> Vec<RetrievalOutcome> {
        if queries.is_empty() {
            return Vec::new();
        }
        self.try_retrieve_batch(queries, database, distance, k, p)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Self::retrieve_batch`]: one outcome per query in query
    /// order, or a typed [`QueryError`] — including
    /// [`QueryError::EmptyBatch`] for a zero-query batch, which the
    /// asserting form instead maps to an empty result vector.
    ///
    /// # Errors
    /// As [`Self::try_retrieve`], plus [`QueryError::EmptyBatch`].
    pub fn try_retrieve_batch(
        &self,
        queries: &[O],
        database: &[O],
        distance: &dyn DistanceMeasure<O>,
        k: usize,
        p: usize,
    ) -> Result<Vec<RetrievalOutcome>, QueryError> {
        if queries.is_empty() {
            return Err(QueryError::EmptyBatch);
        }
        self.validate(database, k, p)?;
        // Batch-embed: coordinates (and, query-sensitive, weight rows) in
        // flat storage, exactly like the flat pipeline.
        enum RoutedBatch<'a> {
            Global(&'a WeightedL1, FlatVectors),
            QuerySensitive(qse_core::EmbeddedQueryBatch),
        }
        let embedded = match &self.kind {
            FilterKind::GlobalL1 { embedding, filter } => {
                RoutedBatch::Global(filter, embedding.embed_queries(queries, distance))
            }
            FilterKind::QuerySensitive { model } => {
                RoutedBatch::QuerySensitive(model.embed_queries(queries, distance))
            }
        };
        let coords_row = |q: usize| match &embedded {
            RoutedBatch::Global(_, coords) => coords.row(q),
            RoutedBatch::QuerySensitive(batch) => batch.coordinates.row(q),
        };
        let weights_row = |q: usize| match &embedded {
            RoutedBatch::Global(filter, _) => filter.weights(),
            RoutedBatch::QuerySensitive(batch) => batch.weights.row(q),
        };

        // Route every query (independent per query, deterministic).
        let visited: Vec<Vec<usize>> = (0..queries.len())
            .into_par_iter()
            .map(|q| self.route(weights_row(q), coords_row(q), k))
            .collect();

        // Group the batch by cell; remember each query's row within every
        // group so its scores can be sliced back out afterwards.
        let c = self.cells.len();
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); c];
        let mut slots: Vec<Vec<(usize, usize)>> = vec![Vec::new(); queries.len()];
        for (q, cells) in visited.iter().enumerate() {
            for &cell in cells {
                slots[q].push((cell, groups[cell].len()));
                groups[cell].push(q);
            }
        }

        // Each visited cell scores its whole query group in one
        // sequential Q×N tile; cells run in parallel.
        let dim = self.dim();
        let cell_scores: Vec<Vec<f64>> = groups
            .par_iter()
            .enumerate()
            .map(|(cell, group)| {
                if group.is_empty() || self.cells[cell].is_empty() {
                    return Vec::new();
                }
                let store = &self.cells[cell];
                let gathered = FlatVectors::from_rows_with_dim(
                    dim,
                    group.iter().map(|&q| coords_row(q).to_vec()).collect(),
                );
                let mut out = vec![0.0; group.len() * store.len()];
                match &embedded {
                    RoutedBatch::Global(filter, _) => {
                        weighted_l1_filter_batch_range(
                            filter.weights(),
                            &gathered,
                            0,
                            group.len(),
                            store,
                            &mut out,
                        );
                    }
                    RoutedBatch::QuerySensitive(_) => {
                        let wrows = FlatVectors::from_rows_with_dim(
                            dim,
                            group.iter().map(|&q| weights_row(q).to_vec()).collect(),
                        );
                        weighted_l1_filter_batch_per_query_range(
                            &wrows,
                            &gathered,
                            0,
                            group.len(),
                            store,
                            &mut out,
                        );
                    }
                }
                out
            })
            .collect();

        // Regroup per query: gather each query's score rows from its
        // visited cells, select, refine (parallel over queries).
        let embedding_cost = self.embedding_cost();
        Ok(slots
            .par_iter()
            .enumerate()
            .map(|(q, slots)| {
                let pool: usize = slots.iter().map(|&(c, _)| self.cells[c].len()).sum();
                let mut scores = Vec::with_capacity(pool);
                let mut gids = Vec::with_capacity(pool);
                for &(cell, row) in slots {
                    let n_c = self.cells[cell].len();
                    scores.extend_from_slice(&cell_scores[cell][row * n_c..(row + 1) * n_c]);
                    gids.extend_from_slice(&self.ids[cell]);
                }
                let keep = effective_p(p, self.p_scale, self.len).min(pool);
                let candidates = top_ids_by_score(&scores, &gids, keep);
                refine_candidates(
                    &queries[q],
                    database,
                    distance,
                    k,
                    &candidates,
                    embedding_cost,
                )
            })
            .collect())
    }

    fn validate(&self, database: &[O], k: usize, p: usize) -> Result<(), QueryError> {
        check_query_params(k, p, database.len())?;
        if database.len() != self.len {
            return Err(QueryError::DatabaseMismatch {
                expected: self.len,
                got: database.len(),
            });
        }
        Ok(())
    }
}

/// Recall@k of routed retrieval against its own exact full scan, one
/// point per entry of `probes`: for each `n_probe` value the index is
/// swept to, the mean fraction (over `queries`) of the `n_probe ==
/// cells()` neighbors the routed retrieval recovers — the routing
/// analogue of the evaluation harness's p-sensitivity curves. The
/// baseline at `n_probe == cells()` *is* the unrouted pipeline's outcome
/// (see the module docs), so this measures exactly the recall lost to
/// routing. The index's original `n_probe` is restored afterwards.
///
/// The curve is monotone non-decreasing in `n_probe` (visiting more
/// cells only adds candidates) and reaches `1.0` at `n_probe ==
/// cells()`; the workspace tests pin both properties.
///
/// # Panics
/// As [`RoutedIndex::retrieve_batch`], plus if any probe value is
/// outside `1..=cells()`.
pub fn recall_vs_n_probe<O, E>(
    index: &mut RoutedIndex<O, E>,
    queries: &[O],
    database: &[O],
    distance: &dyn DistanceMeasure<O>,
    k: usize,
    p: usize,
    probes: &[usize],
) -> Vec<(usize, f64)>
where
    O: Clone + Send + Sync,
    E: FilterElem,
{
    let original = index.n_probe();
    index.set_n_probe(index.cells());
    let baseline = index.retrieve_batch(queries, database, distance, k, p);
    let curve = probes
        .iter()
        .map(|&n_probe| {
            index.set_n_probe(n_probe);
            let routed = index.retrieve_batch(queries, database, distance, k, p);
            let mut hit = 0usize;
            let mut total = 0usize;
            for (truth, got) in baseline.iter().zip(&routed) {
                total += truth.neighbors.len();
                hit += truth
                    .neighbors
                    .iter()
                    .filter(|i| got.neighbors.contains(i))
                    .count();
            }
            (n_probe, hit as f64 / total.max(1) as f64)
        })
        .collect();
    index.set_n_probe(original);
    curve
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter_refine::FilterRefineIndex;
    use qse_distance::traits::{FnDistance, MetricProperties};
    use qse_embedding::{FastMap, FastMapConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn euclid() -> FnDistance<impl Fn(&Vec<f64>, &Vec<f64>) -> f64 + Send + Sync> {
        FnDistance::new(
            "euclid",
            MetricProperties::Metric,
            |a: &Vec<f64>, b: &Vec<f64>| {
                a.iter()
                    .zip(b)
                    .map(|(x, y)| (x - y) * (x - y))
                    .sum::<f64>()
                    .sqrt()
            },
        )
    }

    fn clustered_db(n: usize) -> Vec<Vec<f64>> {
        // Nine well-separated 2-D clusters on a 3×3 grid.
        (0..n)
            .map(|i| {
                let c = i % 9;
                vec![
                    (c % 3) as f64 * 40.0 + (i as f64 * 0.61).sin(),
                    (c / 3) as f64 * 40.0 + (i as f64 * 0.37).cos(),
                ]
            })
            .collect()
    }

    fn fastmap(db: &[Vec<f64>], seed: u64) -> FastMap<Vec<f64>> {
        let d = euclid();
        let mut rng = StdRng::seed_from_u64(seed);
        FastMap::train(
            db,
            &d,
            FastMapConfig {
                dimensions: 2,
                pivot_iterations: 3,
            },
            &mut rng,
        )
    }

    #[test]
    fn full_probe_matches_the_unrouted_index() {
        let db = clustered_db(180);
        let d = euclid();
        let flat = FilterRefineIndex::build_global(fastmap(&db, 1), &db, &d);
        let routed = RoutedIndex::build_global(
            fastmap(&db, 1),
            &db,
            &d,
            RoutedConfig {
                cells: 6,
                n_probe: 6,
                ..RoutedConfig::default()
            },
        );
        let queries: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i % 3) as f64 * 40.0 + 0.3, (i % 2) as f64 * 40.0 - 0.2])
            .collect();
        for q in &queries {
            assert_eq!(
                routed.retrieve(q, &db, &d, 3, 15),
                flat.retrieve(q, &db, &d, 3, 15)
            );
        }
        assert_eq!(
            routed.retrieve_batch(&queries, &db, &d, 3, 15),
            flat.retrieve_batch(&queries, &db, &d, 3, 15)
        );
    }

    #[test]
    fn batch_matches_sequential_at_partial_probe() {
        let db = clustered_db(200);
        let d = euclid();
        for n_probe in [1, 2, 4] {
            let routed = RoutedIndex::build_global(
                fastmap(&db, 2),
                &db,
                &d,
                RoutedConfig {
                    cells: 8,
                    n_probe,
                    ..RoutedConfig::default()
                },
            );
            let queries: Vec<Vec<f64>> = (0..25)
                .map(|i| vec![i as f64 * 3.1, (25 - i) as f64 * 2.7])
                .collect();
            let batch = routed.retrieve_batch(&queries, &db, &d, 2, 10);
            for (q, out) in queries.iter().zip(&batch) {
                assert_eq!(
                    *out,
                    routed.retrieve(q, &db, &d, 2, 10),
                    "n_probe {n_probe}"
                );
            }
        }
    }

    #[test]
    fn partition_covers_every_row_exactly_once() {
        let db = clustered_db(150);
        let d = euclid();
        let routed = RoutedIndex::build_global(
            fastmap(&db, 3),
            &db,
            &d,
            RoutedConfig {
                cells: 5,
                n_probe: 2,
                ..RoutedConfig::default()
            },
        );
        assert_eq!(routed.cell_sizes().iter().sum::<usize>(), db.len());
        let mut all: Vec<usize> = routed.ids.iter().flat_map(|l| l.iter().copied()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..db.len()).collect::<Vec<_>>());
        for (c, ids) in routed.ids.iter().enumerate() {
            assert_eq!(ids.len(), routed.cells[c].len(), "cell {c}");
        }
    }

    #[test]
    fn recall_curve_is_monotone_and_exact_at_full_probe() {
        let db = clustered_db(240);
        let d = euclid();
        let mut routed = RoutedIndex::build_global(
            fastmap(&db, 4),
            &db,
            &d,
            RoutedConfig {
                cells: 8,
                n_probe: 2,
                ..RoutedConfig::default()
            },
        );
        let queries: Vec<Vec<f64>> = (0..30)
            .map(|i| clustered_db(300)[i * 7 + 3].clone())
            .collect();
        let probes: Vec<usize> = (1..=8).collect();
        let curve = recall_vs_n_probe(&mut routed, &queries, &db, &d, 3, 12, &probes);
        for pair in curve.windows(2) {
            assert!(pair[1].1 >= pair[0].1, "recall must be monotone: {curve:?}");
        }
        assert_eq!(curve.last().unwrap().1, 1.0, "full probe must be exact");
        assert_eq!(routed.n_probe(), 2, "original n_probe must be restored");
    }

    #[test]
    fn probe_cells_returns_n_probe_cells() {
        let db = clustered_db(120);
        let d = euclid();
        let routed = RoutedIndex::build_global(
            fastmap(&db, 5),
            &db,
            &d,
            RoutedConfig {
                cells: 6,
                n_probe: 3,
                ..RoutedConfig::default()
            },
        );
        let cells = routed.probe_cells(&vec![1.0, 1.0], &d);
        assert_eq!(cells.len(), 3);
        let mut unique = cells.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 3, "visited cells must be distinct");
    }

    #[test]
    #[should_panic(expected = "must be in 1..=")]
    fn set_n_probe_rejects_out_of_range() {
        let db = clustered_db(60);
        let d = euclid();
        let mut routed = RoutedIndex::build_global(
            fastmap(&db, 6),
            &db,
            &d,
            RoutedConfig {
                cells: 4,
                n_probe: 2,
                ..RoutedConfig::default()
            },
        );
        routed.set_n_probe(5);
    }

    #[test]
    fn config_clamps_to_small_databases() {
        // More cells than rows: k-means clamps, n_probe clamps with it.
        let db = clustered_db(5);
        let d = euclid();
        let routed = RoutedIndex::build_global(
            fastmap(&db, 7),
            &db,
            &d,
            RoutedConfig {
                cells: 64,
                n_probe: 64,
                ..RoutedConfig::default()
            },
        );
        assert!(routed.cells() <= 5);
        assert_eq!(routed.n_probe(), routed.cells());
        let out = routed.retrieve(&vec![0.0, 0.0], &db, &d, 1, 3);
        assert_eq!(out.neighbors.len(), 1);
    }
}
