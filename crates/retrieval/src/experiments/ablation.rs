//! Ablation studies (ours, beyond the paper's own Ra/Se × QI/QS grid).
//!
//! The paper's central ablation *is* the four-variant grid of Table 1. This
//! driver adds the design-choice ablations called out in DESIGN.md:
//!
//! * reference-only vs reference+pivot 1-D embeddings,
//! * the number of splitter intervals searched per candidate embedding,
//! * the number of candidate embeddings per boosting round (`m`),
//! * the training-triple budget.
//!
//! Each ablation retrains Se-QS with one knob changed and reports the
//! optimal exact-distance cost at `k = 1` / 95% accuracy, plus the final
//! training error, on the digits workload.

use super::runner::WorkloadScale;
use super::workloads::digits_workload;
use crate::evaluate::{DimensionEvaluation, MethodEvaluation};
use crate::filter_refine::FilterRefineIndex;
use crate::knn::ground_truth;
use qse_core::{BoostMapTrainer, MethodVariant, TrainerConfig, TrainingData, TripleSampler};
use qse_embedding::Embedding;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One ablation row.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Description of the configuration.
    pub configuration: String,
    /// Optimal exact-distance cost at `k = 1`, 95% accuracy.
    pub cost_k1_95: usize,
    /// Final training-set error of the boosted classifier.
    pub final_training_error: f64,
    /// Number of distinct coordinates in the trained embedding.
    pub dimensions: usize,
}

/// The ablation report.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationReport {
    /// Database size (brute-force cost).
    pub database_size: usize,
    /// One row per configuration; the first row is the reference (default)
    /// configuration.
    pub rows: Vec<AblationRow>,
}

impl AblationReport {
    /// Render as text.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "Ablations on the digits workload (database = {}, k = 1, 95% accuracy)\n",
            self.database_size
        );
        for row in &self.rows {
            out.push_str(&format!(
                "{:<44} cost = {:>6}  train-err = {:.3}  dims = {}\n",
                row.configuration, row.cost_k1_95, row.final_training_error, row.dimensions
            ));
        }
        out
    }
}

/// Run the ablation suite.
pub fn run_ablation(
    database_size: usize,
    query_count: usize,
    points_per_shape: usize,
    scale: &WorkloadScale,
    seed: u64,
) -> AblationReport {
    let (database, queries, distance) =
        digits_workload(database_size, query_count, points_per_shape, seed);
    let truth = ground_truth(
        &queries,
        &database,
        &distance,
        scale.kmax.min(5),
        scale.threads,
    );
    let kmax = scale.kmax.min(5);

    // Shared training pools so the ablations differ only in the knob studied.
    let mut rng = StdRng::seed_from_u64(seed ^ 0xAB1A);
    let candidate_pool: Vec<_> = database
        .choose_multiple(&mut rng, scale.candidate_pool.min(database.len()))
        .cloned()
        .collect();
    let training_pool: Vec<_> = database
        .choose_multiple(&mut rng, scale.training_pool.min(database.len()))
        .cloned()
        .collect();
    let data = TrainingData::precompute(candidate_pool, training_pool, &distance, scale.threads);
    let k1 = TripleSampler::suggested_k1(kmax, data.training_count(), database.len())
        .min(data.training_count().saturating_sub(2))
        .max(1);

    let base_config = scale.trainer_config(MethodVariant::SeQs);
    let configurations: Vec<(String, TrainerConfig, usize)> = vec![
        (
            "default (reference + pivot, full budget)".into(),
            base_config,
            scale.training_triples,
        ),
        (
            "reference-only 1-D embeddings".into(),
            TrainerConfig {
                use_pivot_embeddings: false,
                ..base_config
            },
            scale.training_triples,
        ),
        (
            "single splitter interval per candidate".into(),
            TrainerConfig {
                intervals_per_candidate: 1,
                ..base_config
            },
            scale.training_triples,
        ),
        (
            "quarter of the candidate embeddings per round".into(),
            TrainerConfig {
                candidates_per_round: (base_config.candidates_per_round / 4).max(2),
                ..base_config
            },
            scale.training_triples,
        ),
        (
            "one tenth of the training triples".into(),
            base_config,
            (scale.training_triples / 10).max(50),
        ),
    ];

    let rows = configurations
        .into_iter()
        .map(|(name, config, triple_count)| {
            let mut run_rng = StdRng::seed_from_u64(seed ^ 0x5EED);
            let triples = TripleSampler::selective(k1).sample(
                &data.train_to_train,
                triple_count,
                &mut run_rng,
            );
            let model = BoostMapTrainer::new(config).train(&data, &triples, &mut run_rng);
            let final_error = model.history().strong_errors.last().copied().unwrap_or(1.0);
            let dims = model.dim();
            let embedding = model.embedding();
            let vectors = embedding.embed_all(&database, &distance);
            let index = FilterRefineIndex::from_vectors_query_sensitive(model, vectors);
            let evaluation = DimensionEvaluation::evaluate(
                &index,
                &queries,
                &distance,
                &truth,
                kmax,
                scale.threads,
            );
            let method = MethodEvaluation::new(name.clone(), database.len(), vec![evaluation]);
            AblationRow {
                configuration: name,
                cost_k1_95: method.optimal_cost(1, 95.0).cost,
                final_training_error: final_error,
                dimensions: dims,
            }
        })
        .collect();

    AblationReport {
        database_size: database.len(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_report_renders_every_row() {
        let report = AblationReport {
            database_size: 100,
            rows: vec![
                AblationRow {
                    configuration: "default".into(),
                    cost_k1_95: 20,
                    final_training_error: 0.1,
                    dimensions: 8,
                },
                AblationRow {
                    configuration: "reference-only".into(),
                    cost_k1_95: 25,
                    final_training_error: 0.12,
                    dimensions: 8,
                },
            ],
        };
        let text = report.to_text();
        assert!(text.contains("default") && text.contains("reference-only"));
    }

    // The full ablation run is exercised by the `ablation` bench binary; it
    // is too slow for unit tests because it trains five models under the
    // shape-context distance.
}
