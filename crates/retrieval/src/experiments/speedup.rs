//! The Section 9 speed-up discussion.
//!
//! On the original 50-query test set of the time-series dataset the paper
//! reports a speed-up factor of 51.2 over brute force at 100% recall of the
//! true nearest neighbor (and notes that the indexing method of Vlachos et
//! al. achieves roughly a factor of 5 on the same queries). This driver
//! reproduces the measurement: train Se-QS on the time-series workload,
//! evaluate at `k = 1`, and report `|database| / cost` for several accuracy
//! targets alongside the FastMap baseline.

use super::runner::{evaluate_methods, Method, WorkloadScale};
use super::workloads::timeseries_workload;
use qse_core::MethodVariant;

/// Speed-up factors over brute force at `k = 1`.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedupReport {
    /// Database size (brute-force distances per query).
    pub database_size: usize,
    /// Number of evaluation queries.
    pub query_count: usize,
    /// `(method, accuracy_pct, exact distances per query, speed-up factor)`.
    pub rows: Vec<(String, f64, usize, f64)>,
}

impl SpeedupReport {
    /// Speed-up of a given method at a given accuracy, if present.
    pub fn speedup_of(&self, method: &str, accuracy_pct: f64) -> Option<f64> {
        self.rows
            .iter()
            .find(|(m, pct, _, _)| m == method && *pct == accuracy_pct)
            .map(|(_, _, _, s)| *s)
    }

    /// Render as text.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "1-NN speed-up over brute force ({} database objects, {} queries)\n",
            self.database_size, self.query_count
        );
        for (method, pct, cost, speedup) in &self.rows {
            out.push_str(&format!(
                "{method:>10} @ {pct:>5.1}%: {cost:>8} distances/query  (speed-up {speedup:.1}x)\n"
            ));
        }
        out
    }
}

/// Run the speed-up experiment on the time-series workload.
pub fn run_speedup(
    database_size: usize,
    query_count: usize,
    series_length: usize,
    scale: &WorkloadScale,
    seed: u64,
) -> SpeedupReport {
    let (database, queries, distance) =
        timeseries_workload(database_size, query_count, series_length, 2, seed);
    let methods = [Method::FastMap, Method::Boosted(MethodVariant::SeQs)];
    let evaluations = evaluate_methods(&database, &queries, &distance, scale, &methods, seed);
    let mut rows = Vec::new();
    for eval in &evaluations {
        for pct in [90.0, 95.0, 99.0, 100.0] {
            let row = eval.optimal_cost(1, pct);
            rows.push((eval.method.clone(), pct, row.cost, eval.speedup(1, pct)));
        }
    }
    SpeedupReport {
        database_size,
        query_count: queries.len(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::{DimensionEvaluation, MethodEvaluation};

    #[test]
    fn speedup_report_formats_and_lookups() {
        let eval = MethodEvaluation::new(
            "Se-QS",
            1000,
            vec![DimensionEvaluation {
                dim: 8,
                embedding_cost: 10,
                rank_needed: vec![vec![5], vec![15]],
            }],
        );
        let report = SpeedupReport {
            database_size: 1000,
            query_count: 2,
            rows: vec![(
                "Se-QS".into(),
                100.0,
                eval.optimal_cost(1, 100.0).cost,
                eval.speedup(1, 100.0),
            )],
        };
        assert_eq!(report.speedup_of("Se-QS", 100.0), Some(40.0));
        assert!(report.to_text().contains("Se-QS"));
        assert_eq!(report.speedup_of("FastMap", 100.0), None);
    }
}
