//! Figure 1: the toy example motivating query-sensitive distance measures.
//!
//! Twenty database points in the unit square, three of them reference
//! objects `r1, r2, r3`, and ten query points, three of which (`q1, q2, q3`)
//! lie close to the corresponding reference object. The figure reports:
//!
//! * the fraction of all `(q, a, b)` triples misclassified by the 3-D
//!   embedding `F = (F^{r1}, F^{r2}, F^{r3})` under the (unweighted) L1
//!   distance — 23.5% in the paper;
//! * the fraction misclassified by each 1-D embedding `F^{r_i}` alone —
//!   39.2%, 36.4% and 26.6%;
//! * restricted to triples whose query is the marked query `q_i`, the 1-D
//!   embedding `F^{r_i}` *beats* the full 3-D embedding (e.g. 5.8% vs 11.6%
//!   for `q1`), which is exactly the behaviour a query-sensitive weighted
//!   distance exploits.
//!
//! The coordinates of the paper's figure are not published, so the driver
//! generates a configuration with the same structure from a seed and checks
//! the same qualitative relationships.

use qse_dataset::toy2d::{paper_figure1, Euclidean2D, Point, ToyConfiguration};
use qse_distance::DistanceMeasure;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Triple-classification failure rates for the toy configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1Result {
    /// Failure rate of the 3-D embedding over all triples.
    pub global_embedding_error: f64,
    /// Failure rate of each 1-D embedding `F^{r_i}` over all triples.
    pub reference_errors: [f64; 3],
    /// Failure rate of the 3-D embedding restricted to triples whose query is
    /// the marked query `q_i`.
    pub global_error_at_marked_query: [f64; 3],
    /// Failure rate of `F^{r_i}` restricted to triples whose query is `q_i`.
    pub reference_error_at_marked_query: [f64; 3],
    /// Total number of evaluated triples.
    pub triple_count: usize,
}

impl Fig1Result {
    /// The qualitative claim of Figure 1: globally the 3-D embedding beats
    /// every single coordinate, yet near each reference object the matching
    /// 1-D embedding is at least as good as the 3-D embedding.
    pub fn query_sensitivity_pays_off(&self) -> bool {
        let global_beats_each_coordinate = self
            .reference_errors
            .iter()
            .all(|e| self.global_embedding_error <= *e);
        let local_coordinate_competitive = self
            .reference_error_at_marked_query
            .iter()
            .zip(&self.global_error_at_marked_query)
            .filter(|(r, g)| r <= g)
            .count()
            >= 2;
        global_beats_each_coordinate && local_coordinate_competitive
    }

    /// Render the result in the style of the Figure 1 caption.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Toy configuration: {} triples\n3-D embedding F fails on {:.1}% of all triples\n",
            self.triple_count,
            100.0 * self.global_embedding_error
        ));
        for i in 0..3 {
            out.push_str(&format!(
                "F^r{} fails on {:.1}% of all triples; restricted to q{}: F^r{} {:.1}% vs F {:.1}%\n",
                i + 1,
                100.0 * self.reference_errors[i],
                i + 1,
                i + 1,
                100.0 * self.reference_error_at_marked_query[i],
                100.0 * self.global_error_at_marked_query[i]
            ));
        }
        out
    }
}

/// Failure-counting helper: 1.0 for a wrong prediction, 0.5 for an
/// uninformative (tied) prediction, 0.0 for a correct one.
fn failure(predicted: f64, truth: f64) -> f64 {
    if truth == 0.0 {
        // The triple itself is uninformative; skip it by reporting no failure
        // (the caller filters these out before calling).
        0.0
    } else if predicted == 0.0 {
        0.5
    } else if predicted.signum() == truth.signum() {
        0.0
    } else {
        1.0
    }
}

/// Run the Figure 1 experiment on a freshly generated toy configuration.
pub fn run_fig1(seed: u64) -> Fig1Result {
    let config = paper_figure1(&mut StdRng::seed_from_u64(seed));
    evaluate_configuration(&config)
}

/// Evaluate an explicit toy configuration (exposed so tests and benches can
/// reuse a fixed configuration).
pub fn evaluate_configuration(config: &ToyConfiguration) -> Fig1Result {
    let d = Euclidean2D;
    let refs = config.references();
    let embed = |x: &Point| -> [f64; 3] {
        [
            d.distance(x, &refs[0]),
            d.distance(x, &refs[1]),
            d.distance(x, &refs[2]),
        ]
    };
    let l1 = |a: &[f64; 3], b: &[f64; 3]| -> f64 {
        (a[0] - b[0]).abs() + (a[1] - b[1]).abs() + (a[2] - b[2]).abs()
    };

    let db_embedded: Vec<[f64; 3]> = config.database.iter().map(embed).collect();
    let q_embedded: Vec<[f64; 3]> = config.queries.iter().map(embed).collect();

    let mut total = 0usize;
    let mut global_fail = 0.0;
    let mut ref_fail = [0.0; 3];
    let mut marked_total = [0usize; 3];
    let mut marked_global_fail = [0.0; 3];
    let mut marked_ref_fail = [0.0; 3];

    for (qi, q) in config.queries.iter().enumerate() {
        let marked_slot = config.marked_query_indices.iter().position(|&m| m == qi);
        for ai in 0..config.database.len() {
            for bi in (ai + 1)..config.database.len() {
                let truth =
                    d.distance(q, &config.database[bi]) - d.distance(q, &config.database[ai]);
                if truth == 0.0 {
                    continue;
                }
                total += 1;
                let global_pred =
                    l1(&q_embedded[qi], &db_embedded[bi]) - l1(&q_embedded[qi], &db_embedded[ai]);
                let gf = failure(global_pred, truth);
                global_fail += gf;
                for r in 0..3 {
                    let pred = (q_embedded[qi][r] - db_embedded[bi][r]).abs()
                        - (q_embedded[qi][r] - db_embedded[ai][r]).abs();
                    ref_fail[r] += failure(pred, truth);
                }
                if let Some(slot) = marked_slot {
                    marked_total[slot] += 1;
                    marked_global_fail[slot] += gf;
                    let pred = (q_embedded[qi][slot] - db_embedded[bi][slot]).abs()
                        - (q_embedded[qi][slot] - db_embedded[ai][slot]).abs();
                    marked_ref_fail[slot] += failure(pred, truth);
                }
            }
        }
    }

    let norm = |x: f64| x / total.max(1) as f64;
    Fig1Result {
        global_embedding_error: norm(global_fail),
        reference_errors: [norm(ref_fail[0]), norm(ref_fail[1]), norm(ref_fail[2])],
        global_error_at_marked_query: std::array::from_fn(|i| {
            marked_global_fail[i] / marked_total[i].max(1) as f64
        }),
        reference_error_at_marked_query: std::array::from_fn(|i| {
            marked_ref_fail[i] / marked_total[i].max(1) as f64
        }),
        triple_count: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_reproduces_the_qualitative_claim() {
        // Average the check over a few seeds: the claim is statistical, and
        // the paper's own configuration was presumably chosen to illustrate
        // it clearly.
        let wins = (0..5)
            .filter(|&s| run_fig1(s).query_sensitivity_pays_off())
            .count();
        assert!(
            wins >= 3,
            "query sensitivity paid off in only {wins}/5 configurations"
        );
    }

    #[test]
    fn global_embedding_beats_individual_coordinates_overall() {
        let r = run_fig1(1);
        for (i, e) in r.reference_errors.iter().enumerate() {
            assert!(
                r.global_embedding_error <= *e + 1e-12,
                "coordinate {i} ({e}) beat the global embedding ({})",
                r.global_embedding_error
            );
        }
    }

    #[test]
    fn error_rates_are_valid_fractions() {
        let r = run_fig1(2);
        let all = r
            .reference_errors
            .iter()
            .chain(&r.global_error_at_marked_query)
            .chain(&r.reference_error_at_marked_query)
            .chain(std::iter::once(&r.global_embedding_error));
        for e in all {
            assert!((0.0..=1.0).contains(e), "invalid rate {e}");
        }
        assert!(
            r.triple_count > 1000,
            "expected ~1900 informative triples, got {}",
            r.triple_count
        );
    }

    #[test]
    fn report_text_mentions_every_reference_object() {
        let text = run_fig1(3).to_text();
        assert!(text.contains("F^r1") && text.contains("F^r2") && text.contains("F^r3"));
    }
}
