//! Workload construction: the synthetic stand-ins for the paper's two
//! datasets, packaged as (database, queries, distance) triples.

use qse_dataset::{
    DigitGenerator, DigitGeneratorConfig, TimeSeriesGenerator, TimeSeriesGeneratorConfig,
};
use qse_distance::dtw::TimeSeries;
use qse_distance::{ConstrainedDtw, PointSet, ShapeContextDistance};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The synthetic-MNIST workload: labeled digit point sets compared with the
/// Shape Context Distance. Queries are generated from the same generative
/// model but with a different random stream, mirroring the paper's disjoint
/// MNIST train / test split.
pub fn digits_workload(
    database_size: usize,
    query_count: usize,
    points_per_shape: usize,
    seed: u64,
) -> (Vec<PointSet>, Vec<PointSet>, ShapeContextDistance) {
    assert!(
        database_size > 0 && query_count > 0,
        "workload sizes must be positive"
    );
    let generator = DigitGenerator::new(DigitGeneratorConfig {
        points_per_shape,
        ..DigitGeneratorConfig::default()
    });
    let mut db_rng = StdRng::seed_from_u64(seed);
    let mut query_rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    let database = generator.generate(database_size, &mut db_rng);
    let queries = generator.generate_random_labels(query_count, &mut query_rng);
    (database, queries, ShapeContextDistance::new())
}

/// The time-series workload: seed patterns expanded with noise, amplitude
/// scaling and random time compression / decompression, compared with
/// constrained DTW (Sakoe–Chiba band of 10%), as in Vlachos et al. and the
/// paper's Section 9.
pub fn timeseries_workload(
    database_size: usize,
    query_count: usize,
    base_length: usize,
    dimensions: usize,
    seed: u64,
) -> (Vec<TimeSeries>, Vec<TimeSeries>, ConstrainedDtw) {
    assert!(
        database_size > 0 && query_count > 0,
        "workload sizes must be positive"
    );
    let mut seed_rng = StdRng::seed_from_u64(seed);
    let generator = TimeSeriesGenerator::new(
        TimeSeriesGeneratorConfig {
            base_length,
            dimensions,
            ..TimeSeriesGeneratorConfig::default()
        },
        &mut seed_rng,
    );
    let mut db_rng = StdRng::seed_from_u64(seed.wrapping_add(1));
    let mut query_rng = StdRng::seed_from_u64(seed.wrapping_add(2));
    let database = generator.generate_unlabeled(database_size, &mut db_rng);
    let queries = generator.generate_unlabeled(query_count, &mut query_rng);
    (database, queries, ConstrainedDtw::paper())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qse_distance::DistanceMeasure;

    #[test]
    fn digit_workload_has_requested_sizes() {
        let (db, queries, dist) = digits_workload(30, 10, 16, 7);
        assert_eq!(db.len(), 30);
        assert_eq!(queries.len(), 10);
        assert!(dist.distance(&db[0], &queries[0]).is_finite());
    }

    #[test]
    fn digit_queries_differ_from_database() {
        let (db, queries, _) = digits_workload(10, 10, 16, 7);
        assert!(db.iter().zip(&queries).any(|(a, b)| a != b));
    }

    #[test]
    fn timeseries_workload_has_requested_sizes() {
        let (db, queries, dist) = timeseries_workload(20, 5, 32, 2, 11);
        assert_eq!(db.len(), 20);
        assert_eq!(queries.len(), 5);
        assert!(dist.distance(&db[0], &queries[0]).is_finite());
    }

    #[test]
    fn workloads_are_deterministic() {
        let (a, _, _) = digits_workload(8, 4, 16, 3);
        let (b, _, _) = digits_workload(8, 4, 16, 3);
        assert_eq!(a, b);
        let (c, _, _) = timeseries_workload(8, 4, 32, 1, 3);
        let (d, _, _) = timeseries_workload(8, 4, 32, 1, 3);
        assert_eq!(c, d);
    }
}
