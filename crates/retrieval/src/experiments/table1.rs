//! Table 1: exact-distance counts for selected `(k, accuracy)` pairs on both
//! workloads, for all five methods (FastMap, Ra-QI, Ra-QS, Se-QI, Se-QS).

use super::runner::{evaluate_methods, Method, WorkloadScale};
use super::workloads::{digits_workload, timeseries_workload};
use crate::evaluate::CostReport;

/// The `(k, pct)` grid of Table 1.
pub fn table1_ks(kmax: usize) -> Vec<usize> {
    [1usize, 10, 50]
        .into_iter()
        .filter(|&k| k <= kmax)
        .collect()
}

/// The accuracy percentages of Table 1.
pub const TABLE1_PERCENTAGES: [f64; 4] = [90.0, 95.0, 99.0, 100.0];

/// Both halves of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1 {
    /// The synthetic-MNIST / shape-context half.
    pub digits: CostReport,
    /// The time-series / constrained-DTW half.
    pub timeseries: CostReport,
}

impl Table1 {
    /// Render both halves as text, in the layout of the paper's Table 1.
    pub fn to_text(&self) -> String {
        format!("{}\n{}", self.digits.to_table(), self.timeseries.to_table())
    }
}

/// Regenerate Table 1 at the given workload sizes and training scale.
#[allow(clippy::too_many_arguments)]
pub fn run_table1(
    digits_db: usize,
    digits_queries: usize,
    points_per_shape: usize,
    series_db: usize,
    series_queries: usize,
    series_length: usize,
    scale: &WorkloadScale,
    seed: u64,
) -> Table1 {
    let ks = table1_ks(scale.kmax);

    let (ddb, dq, ddist) = digits_workload(digits_db, digits_queries, points_per_shape, seed);
    let digit_evals = evaluate_methods(&ddb, &dq, &ddist, scale, &Method::table1(), seed);
    let digits = CostReport::build(
        "Synthetic MNIST digits with Shape Context",
        &digit_evals,
        &ks,
        &TABLE1_PERCENTAGES,
    );

    let (tdb, tq, tdist) = timeseries_workload(series_db, series_queries, series_length, 2, seed);
    let series_evals = evaluate_methods(&tdb, &tq, &tdist, scale, &Method::table1(), seed);
    let timeseries = CostReport::build(
        "Synthetic time series with Constrained DTW",
        &series_evals,
        &ks,
        &TABLE1_PERCENTAGES,
    );

    Table1 { digits, timeseries }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_grid_matches_the_paper() {
        assert_eq!(table1_ks(50), vec![1, 10, 50]);
        assert_eq!(table1_ks(10), vec![1, 10]);
        assert_eq!(TABLE1_PERCENTAGES, [90.0, 95.0, 99.0, 100.0]);
    }

    // Full Table 1 regeneration is exercised by the `table1` bench binary and
    // the integration tests at reduced scale; it is too slow for unit tests.
}
