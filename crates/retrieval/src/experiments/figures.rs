//! Figures 4, 5 and 6: exact-distance cost vs `k` curves.
//!
//! * **Figure 4** — synthetic MNIST / shape context: for accuracy targets of
//!   90%, 95% and 99%, the number of exact distance computations per query
//!   needed to retrieve all `k` nearest neighbors, `k = 1..kmax`, for
//!   FastMap, Ra-QI, Se-QI and Se-QS.
//! * **Figure 5** — the same curves on the time-series / constrained-DTW
//!   workload.
//! * **Figure 6** — Se-QS trained with a deliberately tiny preprocessing
//!   budget ("Quick Se-QS": small `C`, `Xtr` and triple count) compared with
//!   regular Se-QS and FastMap at 95% accuracy.

use super::runner::{evaluate_methods, Method, WorkloadScale};
use super::workloads::{digits_workload, timeseries_workload};
use crate::evaluate::MethodEvaluation;
use qse_core::MethodVariant;

/// One cost-vs-k curve for one method at one accuracy target.
#[derive(Debug, Clone, PartialEq)]
pub struct CostCurve {
    /// Method label.
    pub method: String,
    /// `costs[i]` = exact distances per query to retrieve all `ks[i]`
    /// neighbors at the figure's accuracy target.
    pub costs: Vec<usize>,
}

/// All curves of one figure panel (one accuracy target).
#[derive(Debug, Clone, PartialEq)]
pub struct FigurePanel {
    /// Accuracy target in percent (90, 95 or 99 in the paper).
    pub accuracy_pct: f64,
    /// The evaluated values of `k`.
    pub ks: Vec<usize>,
    /// One curve per method.
    pub curves: Vec<CostCurve>,
}

/// A complete figure: several panels over one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure {
    /// Name of the figure ("Figure 4", ...).
    pub name: String,
    /// Workload description.
    pub workload: String,
    /// Database size (the brute-force cost ceiling).
    pub database_size: usize,
    /// One panel per accuracy target.
    pub panels: Vec<FigurePanel>,
}

impl Figure {
    /// Render the figure as text series (one block per panel).
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "{} — {} (database = {})\n",
            self.name, self.workload, self.database_size
        );
        for panel in &self.panels {
            out.push_str(&format!("-- accuracy {:.0}% --\n", panel.accuracy_pct));
            out.push('k');
            for c in &panel.curves {
                out.push_str(&format!("\t{}", c.method));
            }
            out.push('\n');
            for (i, k) in panel.ks.iter().enumerate() {
                out.push_str(&format!("{k}"));
                for c in &panel.curves {
                    out.push_str(&format!("\t{}", c.costs[i]));
                }
                out.push('\n');
            }
        }
        out
    }
}

/// The default `k` sweep of the figures (1..=kmax, subsampled to keep output
/// readable).
pub fn default_ks(kmax: usize) -> Vec<usize> {
    let mut ks: Vec<usize> = vec![1, 2, 5, 10, 20, 30, 40, 50];
    ks.retain(|&k| k <= kmax);
    if ks.is_empty() {
        ks.push(kmax.max(1));
    }
    ks
}

/// Build the panels of a figure from already-computed method evaluations.
pub fn panels_from_evaluations(
    evaluations: &[MethodEvaluation],
    ks: &[usize],
    percentages: &[f64],
) -> Vec<FigurePanel> {
    percentages
        .iter()
        .map(|&pct| FigurePanel {
            accuracy_pct: pct,
            ks: ks.to_vec(),
            curves: evaluations
                .iter()
                .map(|m| CostCurve {
                    method: m.method.clone(),
                    costs: ks.iter().map(|&k| m.optimal_cost(k, pct).cost).collect(),
                })
                .collect(),
        })
        .collect()
}

/// Figure 4: the synthetic-MNIST / shape-context workload.
pub fn run_fig4(
    database_size: usize,
    query_count: usize,
    points_per_shape: usize,
    scale: &WorkloadScale,
    seed: u64,
) -> Figure {
    let (database, queries, distance) =
        digits_workload(database_size, query_count, points_per_shape, seed);
    let evaluations = evaluate_methods(
        &database,
        &queries,
        &distance,
        scale,
        &Method::figures(),
        seed,
    );
    let ks = default_ks(scale.kmax);
    Figure {
        name: "Figure 4".into(),
        workload: "synthetic MNIST digits, shape context distance".into(),
        database_size,
        panels: panels_from_evaluations(&evaluations, &ks, &[90.0, 95.0, 99.0]),
    }
}

/// Figure 5: the time-series / constrained-DTW workload.
pub fn run_fig5(
    database_size: usize,
    query_count: usize,
    series_length: usize,
    series_dims: usize,
    scale: &WorkloadScale,
    seed: u64,
) -> Figure {
    let (database, queries, distance) =
        timeseries_workload(database_size, query_count, series_length, series_dims, seed);
    let evaluations = evaluate_methods(
        &database,
        &queries,
        &distance,
        scale,
        &Method::figures(),
        seed,
    );
    let ks = default_ks(scale.kmax);
    Figure {
        name: "Figure 5".into(),
        workload: "synthetic time series, constrained DTW".into(),
        database_size,
        panels: panels_from_evaluations(&evaluations, &ks, &[90.0, 95.0, 99.0]),
    }
}

/// Figure 6: "Quick Se-QS" (reduced preprocessing budget) vs regular Se-QS vs
/// FastMap, at 95% accuracy, on the digits workload.
pub fn run_fig6(
    database_size: usize,
    query_count: usize,
    points_per_shape: usize,
    scale: &WorkloadScale,
    seed: u64,
) -> Figure {
    let (database, queries, distance) =
        digits_workload(database_size, query_count, points_per_shape, seed);

    // Regular budget: FastMap + Se-QS.
    let regular = evaluate_methods(
        &database,
        &queries,
        &distance,
        scale,
        &[Method::FastMap, Method::Boosted(MethodVariant::SeQs)],
        seed,
    );
    // Quick budget: Se-QS with shrunken C, Xtr and triple count.
    let quick_scale = WorkloadScale::quick_preprocessing(scale);
    let mut quick = evaluate_methods(
        &database,
        &queries,
        &distance,
        &quick_scale,
        &[Method::Boosted(MethodVariant::SeQs)],
        seed ^ 0xBEEF,
    );
    quick[0].method = "Quick Se-QS".into();

    let mut evaluations = regular;
    let mut renamed = Vec::with_capacity(3);
    renamed.push(evaluations.remove(0)); // FastMap
    renamed.push(quick.remove(0)); // Quick Se-QS
    let mut regular_seqs = evaluations.remove(0);
    regular_seqs.method = "Regular Se-QS".into();
    renamed.push(regular_seqs);

    let ks = default_ks(scale.kmax);
    Figure {
        name: "Figure 6".into(),
        workload: "synthetic MNIST digits, shape context distance (preprocessing budget study)"
            .into(),
        database_size,
        panels: panels_from_evaluations(&renamed, &ks, &[95.0]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::DimensionEvaluation;

    fn fake_eval(name: &str, db: usize, ranks: Vec<Vec<usize>>) -> MethodEvaluation {
        MethodEvaluation::new(
            name,
            db,
            vec![DimensionEvaluation {
                dim: 4,
                embedding_cost: 8,
                rank_needed: ranks,
            }],
        )
    }

    #[test]
    fn panels_have_one_curve_per_method_and_one_cost_per_k() {
        let a = fake_eval("A", 100, vec![vec![1, 2, 3], vec![2, 2, 4]]);
        let b = fake_eval("B", 100, vec![vec![5, 6, 7], vec![1, 8, 9]]);
        let panels = panels_from_evaluations(&[a, b], &[1, 3], &[90.0, 100.0]);
        assert_eq!(panels.len(), 2);
        assert_eq!(panels[0].curves.len(), 2);
        assert_eq!(panels[0].curves[0].costs.len(), 2);
    }

    #[test]
    fn default_ks_respect_kmax() {
        assert_eq!(default_ks(50), vec![1, 2, 5, 10, 20, 30, 40, 50]);
        assert_eq!(default_ks(5), vec![1, 2, 5]);
        assert_eq!(default_ks(1), vec![1]);
    }

    #[test]
    fn figure_text_contains_all_methods() {
        let a = fake_eval("FastMap", 100, vec![vec![1], vec![2]]);
        let b = fake_eval("Se-QS", 100, vec![vec![1], vec![1]]);
        let fig = Figure {
            name: "Figure X".into(),
            workload: "toy".into(),
            database_size: 100,
            panels: panels_from_evaluations(&[a, b], &[1], &[95.0]),
        };
        let text = fig.to_text();
        assert!(text.contains("FastMap") && text.contains("Se-QS") && text.contains("95%"));
    }

    // End-to-end figure runs on real (tiny) workloads are exercised by the
    // workspace-level integration tests and the bench harnesses; they are too
    // slow for unit tests because of the shape-context / DTW distances.
}
