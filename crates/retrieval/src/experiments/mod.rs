//! Experiment drivers that regenerate every figure and table of the paper's
//! evaluation (Section 9) on the synthetic workloads of `qse-dataset`.
//!
//! Each driver is parameterised by a [`runner::WorkloadScale`] so the same
//! code can be run at unit-test scale (seconds), benchmark scale (minutes)
//! or closer to paper scale (hours). EXPERIMENTS.md records the scale each
//! reported number was produced at.
//!
//! | Paper artifact | Driver |
//! |---|---|
//! | Figure 1 (toy example)             | [`fig1::run_fig1`] |
//! | Figure 4 (MNIST / shape context)   | [`figures::run_fig4`] |
//! | Figure 5 (time series / cDTW)      | [`figures::run_fig5`] |
//! | Figure 6 (quick vs regular Se-QS)  | [`figures::run_fig6`] |
//! | Table 1 (both datasets)            | [`table1::run_table1`] |
//! | Section 9 speed-up discussion      | [`speedup::run_speedup`] |
//! | Ablations (ours)                   | [`ablation::run_ablation`] |

pub mod ablation;
pub mod fig1;
pub mod figures;
pub mod runner;
pub mod speedup;
pub mod table1;
pub mod workloads;

pub use runner::{evaluate_methods, Method, WorkloadScale};
