//! The generic experiment runner: train every requested method on a workload
//! and evaluate it across a sweep of embedding dimensionalities.
//!
//! This is the shared machinery behind Figures 4–6 and Table 1. The paper's
//! protocol (Section 9) is: train each method once at the maximum
//! dimensionality, then for every `(k, accuracy)` pair report the best
//! operating point over the embedding dimensionality `d` and the filter
//! parameter `p`. Boosted models and FastMap both yield valid prefixes, so
//! one training run per method suffices.

use crate::evaluate::{DimensionEvaluation, MethodEvaluation};
use crate::filter_refine::FilterRefineIndex;
use crate::knn::ground_truth;
use qse_core::{BoostMapTrainer, MethodVariant, TrainerConfig, TrainingData, TripleSampler};
use qse_distance::DistanceMeasure;
use qse_embedding::{Embedding, FastMap, FastMapConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A method to be evaluated by the runner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// The FastMap baseline (Faloutsos & Lin).
    FastMap,
    /// One of the four BoostMap-family variants (Ra/Se × QI/QS).
    Boosted(MethodVariant),
}

impl Method {
    /// The five methods of Table 1, in the paper's column order.
    pub fn table1() -> Vec<Method> {
        let mut methods = vec![Method::FastMap];
        methods.extend(MethodVariant::all().into_iter().map(Method::Boosted));
        methods
    }

    /// The four methods plotted in Figures 4 and 5 (Ra-QS is omitted there
    /// to avoid clutter, exactly as in the paper).
    pub fn figures() -> Vec<Method> {
        vec![
            Method::FastMap,
            Method::Boosted(MethodVariant::RaQi),
            Method::Boosted(MethodVariant::SeQi),
            Method::Boosted(MethodVariant::SeQs),
        ]
    }

    /// Display label matching the paper.
    pub fn label(&self) -> &'static str {
        match self {
            Method::FastMap => "FastMap",
            Method::Boosted(v) => v.label(),
        }
    }
}

/// The knobs that determine the computational scale of an experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadScale {
    /// Size of the candidate pool `C` (also the FastMap training sample).
    pub candidate_pool: usize,
    /// Size of the training pool `Xtr`.
    pub training_pool: usize,
    /// Number of training triples.
    pub training_triples: usize,
    /// Boosting rounds (the maximum embedding dimensionality of the boosted
    /// methods; FastMap is trained with `max(dims_to_evaluate)` dimensions).
    pub rounds: usize,
    /// Candidate 1-D embeddings evaluated per boosting round (`m`).
    pub candidates_per_round: usize,
    /// Random splitter intervals tried per candidate in QS mode.
    pub intervals_per_candidate: usize,
    /// Maximum number of nearest neighbors evaluated (`kmax`).
    pub kmax: usize,
    /// Embedding dimensionalities (boosting-round prefixes) to sweep.
    pub dims_to_evaluate: Vec<usize>,
    /// Worker threads for distance matrices, ground truth and evaluation.
    pub threads: usize,
}

impl WorkloadScale {
    /// A scale small enough for unit tests (seconds on cheap distances).
    pub fn tiny() -> Self {
        Self {
            candidate_pool: 40,
            training_pool: 40,
            training_triples: 300,
            rounds: 10,
            candidates_per_round: 25,
            intervals_per_candidate: 6,
            kmax: 5,
            dims_to_evaluate: vec![2, 4, 8, 10],
            threads: 2,
        }
    }

    /// The default benchmark scale: small enough to regenerate every figure
    /// on a laptop in minutes, large enough to show the paper's trends.
    pub fn bench() -> Self {
        Self {
            candidate_pool: 120,
            training_pool: 120,
            training_triples: 3_000,
            rounds: 40,
            candidates_per_round: 60,
            intervals_per_candidate: 10,
            kmax: 50,
            dims_to_evaluate: vec![4, 8, 16, 24, 32, 40],
            threads: 8,
        }
    }

    /// The paper's own "Quick" configuration of Figure 6, scaled to the
    /// reproduction database sizes: small pools and few triples.
    pub fn quick_preprocessing(base: &WorkloadScale) -> Self {
        Self {
            candidate_pool: base.candidate_pool / 4,
            training_pool: base.training_pool / 4,
            training_triples: base.training_triples / 6,
            ..base.clone()
        }
    }

    /// The trainer configuration induced by this scale.
    pub fn trainer_config(&self, variant: MethodVariant) -> TrainerConfig {
        TrainerConfig {
            rounds: self.rounds,
            candidates_per_round: self.candidates_per_round,
            intervals_per_candidate: self.intervals_per_candidate,
            query_sensitivity: variant.sensitivity(),
            ..TrainerConfig::default()
        }
    }
}

/// Evaluate `methods` on one workload. Returns one [`MethodEvaluation`] per
/// method, in input order.
pub fn evaluate_methods<O, D>(
    database: &[O],
    queries: &[O],
    distance: &D,
    scale: &WorkloadScale,
    methods: &[Method],
    seed: u64,
) -> Vec<MethodEvaluation>
where
    O: Clone + Send + Sync + 'static,
    D: DistanceMeasure<O> + Sync,
{
    assert!(!methods.is_empty(), "need at least one method to evaluate");
    assert!(
        scale.kmax <= database.len(),
        "kmax = {} exceeds the database size {}",
        scale.kmax,
        database.len()
    );
    let truth = ground_truth(queries, database, distance, scale.kmax, scale.threads);

    methods
        .iter()
        .map(|method| match method {
            Method::FastMap => evaluate_fastmap(database, queries, distance, scale, &truth, seed),
            Method::Boosted(variant) => {
                evaluate_boosted(*variant, database, queries, distance, scale, &truth, seed)
            }
        })
        .collect()
}

/// The dimensionalities actually evaluated for a model trained with
/// `trained_rounds` rounds: the requested sweep clipped to what exists.
fn usable_dims(requested: &[usize], trained_rounds: usize) -> Vec<usize> {
    let mut dims: Vec<usize> = requested
        .iter()
        .copied()
        .map(|d| d.min(trained_rounds))
        .filter(|&d| d >= 1)
        .collect();
    dims.sort_unstable();
    dims.dedup();
    dims
}

fn evaluate_fastmap<O, D>(
    database: &[O],
    queries: &[O],
    distance: &D,
    scale: &WorkloadScale,
    truth: &[crate::knn::KnnResult],
    seed: u64,
) -> MethodEvaluation
where
    O: Clone + Send + Sync + 'static,
    D: DistanceMeasure<O> + Sync,
{
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFA57_3A90);
    let sample_size = scale.candidate_pool.min(database.len());
    let sample: Vec<O> = database
        .choose_multiple(&mut rng, sample_size)
        .cloned()
        .collect();
    let max_dim = scale
        .dims_to_evaluate
        .iter()
        .copied()
        .max()
        .unwrap_or(8)
        .max(1);
    let fastmap = FastMap::train(
        &sample,
        distance,
        FastMapConfig {
            dimensions: max_dim,
            pivot_iterations: 4,
        },
        &mut rng,
    );
    // Embed the database once at full dimensionality, slice per prefix.
    let full_vectors = fastmap.embed_all(database, distance);
    let dims = usable_dims(&scale.dims_to_evaluate, max_dim);
    let evaluations = dims
        .iter()
        .map(|&d| {
            let prefix = fastmap.prefix(d);
            let vectors: Vec<Vec<f64>> = full_vectors.iter().map(|v| v[..d].to_vec()).collect();
            let index = FilterRefineIndex::from_vectors_global(prefix, vectors);
            DimensionEvaluation::evaluate(
                &index,
                queries,
                distance,
                truth,
                scale.kmax,
                scale.threads,
            )
        })
        .collect();
    MethodEvaluation::new("FastMap", database.len(), evaluations)
}

fn evaluate_boosted<O, D>(
    variant: MethodVariant,
    database: &[O],
    queries: &[O],
    distance: &D,
    scale: &WorkloadScale,
    truth: &[crate::knn::KnnResult],
    seed: u64,
) -> MethodEvaluation
where
    O: Clone + Send + Sync + 'static,
    D: DistanceMeasure<O> + Sync,
{
    let mut rng = StdRng::seed_from_u64(seed ^ hash_variant(variant));
    // Sample the pools C and Xtr from the database.
    let candidate_pool: Vec<O> = database
        .choose_multiple(&mut rng, scale.candidate_pool.min(database.len()))
        .cloned()
        .collect();
    let training_pool: Vec<O> = database
        .choose_multiple(&mut rng, scale.training_pool.min(database.len()))
        .cloned()
        .collect();
    let data = TrainingData::precompute(candidate_pool, training_pool, distance, scale.threads);

    // Triple sampling per the variant, with the paper's k1 guideline.
    let k1 = TripleSampler::suggested_k1(scale.kmax, data.training_count(), database.len())
        .min(data.training_count().saturating_sub(2))
        .max(1);
    let sampler = TripleSampler::new(variant.sampling(k1));
    let triples = sampler.sample(&data.train_to_train, scale.training_triples, &mut rng);

    let trainer = BoostMapTrainer::new(scale.trainer_config(variant));
    let model = trainer.train(&data, &triples, &mut rng);

    // Embed the database once under the full model, slice prefixes. Model
    // prefixes keep coordinates in first-use order, so a prefix's coordinate
    // list is a prefix of the full coordinate list.
    let full_embedding = model.embedding();
    let full_vectors = full_embedding.embed_all(database, distance);
    let dims = usable_dims(&scale.dims_to_evaluate, model.rounds());
    let evaluations = dims
        .iter()
        .map(|&rounds| {
            let prefix = model.prefix(rounds);
            let d = prefix.dim();
            let vectors: Vec<Vec<f64>> = full_vectors.iter().map(|v| v[..d].to_vec()).collect();
            let index = FilterRefineIndex::from_vectors_query_sensitive(prefix, vectors);
            DimensionEvaluation::evaluate(
                &index,
                queries,
                distance,
                truth,
                scale.kmax,
                scale.threads,
            )
        })
        .collect();
    MethodEvaluation::new(variant.label(), database.len(), evaluations)
}

fn hash_variant(variant: MethodVariant) -> u64 {
    match variant {
        MethodVariant::RaQi => 0x1111,
        MethodVariant::RaQs => 0x2222,
        MethodVariant::SeQi => 0x3333,
        MethodVariant::SeQs => 0x4444,
    }
}

/// Sample `count` random indices in `0..population` without replacement.
/// Exposed for ablation drivers that need reproducible sub-sampling.
pub fn sample_indices<R: Rng>(population: usize, count: usize, rng: &mut R) -> Vec<usize> {
    let mut all: Vec<usize> = (0..population).collect();
    all.shuffle(rng);
    all.truncate(count.min(population));
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use qse_distance::traits::{FnDistance, MetricProperties};

    fn euclid() -> FnDistance<impl Fn(&Vec<f64>, &Vec<f64>) -> f64 + Send + Sync> {
        FnDistance::new(
            "euclid",
            MetricProperties::Metric,
            |a: &Vec<f64>, b: &Vec<f64>| {
                a.iter()
                    .zip(b)
                    .map(|(x, y)| (x - y) * (x - y))
                    .sum::<f64>()
                    .sqrt()
            },
        )
    }

    /// A clustered 2-D vector workload that is cheap to evaluate but has the
    /// structure (clusters, noise) the methods need to differentiate.
    fn vector_workload(db: usize, queries: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let make = |rng: &mut StdRng| {
            let cluster = rng.gen_range(0..5);
            let cx = (cluster % 3) as f64 * 10.0;
            let cy = (cluster / 3) as f64 * 10.0;
            vec![cx + rng.gen_range(-1.0..1.0), cy + rng.gen_range(-1.0..1.0)]
        };
        let database = (0..db).map(|_| make(&mut rng)).collect();
        let query_set = (0..queries).map(|_| make(&mut rng)).collect();
        (database, query_set)
    }

    #[test]
    fn runner_evaluates_all_requested_methods() {
        let (db, queries) = vector_workload(80, 12, 1);
        let scale = WorkloadScale::tiny();
        let evals = evaluate_methods(
            &db,
            &queries,
            &euclid(),
            &scale,
            &[Method::FastMap, Method::Boosted(MethodVariant::SeQs)],
            42,
        );
        assert_eq!(evals.len(), 2);
        assert_eq!(evals[0].method, "FastMap");
        assert_eq!(evals[1].method, "Se-QS");
        for eval in &evals {
            assert!(!eval.dimensions.is_empty());
            let row = eval.optimal_cost(1, 90.0);
            assert!(row.cost >= 1 && row.cost <= db.len());
        }
    }

    #[test]
    fn embedding_methods_beat_brute_force_on_easy_clustered_data() {
        let (db, queries) = vector_workload(120, 15, 3);
        let scale = WorkloadScale::tiny();
        let evals = evaluate_methods(
            &db,
            &queries,
            &euclid(),
            &scale,
            &[Method::Boosted(MethodVariant::SeQs)],
            7,
        );
        let row = evals[0].optimal_cost(1, 90.0);
        assert!(
            row.cost < db.len(),
            "Se-QS should beat brute force ({} vs {})",
            row.cost,
            db.len()
        );
    }

    #[test]
    fn usable_dims_are_clipped_and_deduplicated() {
        assert_eq!(usable_dims(&[2, 4, 64, 64], 10), vec![2, 4, 10]);
        assert_eq!(usable_dims(&[16], 4), vec![4]);
    }

    #[test]
    fn method_lists_match_the_paper() {
        assert_eq!(Method::table1().len(), 5);
        assert_eq!(Method::figures().len(), 4);
        assert_eq!(Method::FastMap.label(), "FastMap");
        assert_eq!(Method::Boosted(MethodVariant::SeQs).label(), "Se-QS");
    }

    #[test]
    fn sample_indices_has_no_duplicates() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = sample_indices(50, 20, &mut rng);
        assert_eq!(s.len(), 20);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20);
    }
}
