//! Versioned index snapshots: save/load the complete retrieval state.
//!
//! The paper's pipeline is train-once / serve-many: a [`QseModel`] is
//! trained offline, the database is embedded once, and every retrieval
//! reuses that state. This module makes the state survive process exit —
//! [`FilterRefineIndex`], [`DynamicIndex`] and [`RoutedIndex`] grow
//! `to_snapshot_bytes` / `from_snapshot_bytes` (and file-level `save` /
//! `load`), so a served index starts by reading bytes instead of paying
//! the full re-embed + k-means build.
//!
//! ## Format (version 2)
//!
//! One contiguous byte stream, little-endian throughout:
//!
//! ```text
//! header (24 bytes)
//!   0..8    magic  "QSESNAP\0"
//!   8..12   format version (u32)
//!   12      index-kind tag   (1 = static, 2 = dynamic, 3 = routed)
//!   13      element-type tag (1 = f64,    2 = f32,     3 = u8)
//!   14..16  reserved (zero)
//!   16..20  section count (u32)
//!   20..24  reserved (zero)
//! section table (24 bytes per section)
//!   +0..4   section id (u32)
//!   +4..8   reserved (zero)
//!   +8..16  payload length in bytes (u64, unpadded)
//!   +16..24 lane-parallel FNV-1a 64 checksum of the padded payload
//! payloads (in table order, each zero-padded to a multiple of 8 bytes)
//! ```
//!
//! The header and every table entry are 8-byte multiples, so **every
//! payload starts 8-byte-aligned** — and the store payload puts its raw
//! element bytes after two `u64` fields, keeping them aligned too. That
//! alignment is what the zero-copy loaders exploit: `load_mmap` /
//! `from_mapped` on all three index types point their [`FlatStore`]s
//! straight at the element bytes of an `mmap`ed snapshot (routed cells
//! slice disjoint ranges of **one** shared mapping), so startup never
//! copies element bytes and resident memory stays with the OS page
//! cache. Mutating a mapped [`DynamicIndex`] copies on first write —
//! the file is never written through. The checksum covers the padding
//! bytes as well, so any single-byte flip anywhere in a payload is
//! caught — and it is verified *before* any section is trusted, on the
//! mapped path too.
//!
//! Version 2 replaced version 1's serial FNV-1a with [`section_checksum`],
//! an 8-lane word-striped FNV-1a variant: the serial byte loop is a
//! dependency chain that tops out near 0.7 GB/s, which would cost more
//! than the entire copy it replaces on multi-hundred-MB mapped stores;
//! the striped variant verifies at ~10× that rate with the same
//! single-bit sensitivity.
//!
//! Sections by index kind (the model is the `qse_core::json` text form,
//! which round-trips every weight — including inf/nan — bit for bit):
//!
//! | id | name             | static | dynamic | routed |
//! |----|------------------|--------|---------|--------|
//! | 1  | `model`          | ✓      | ✓       | ✓      |
//! | 2  | `params`         | ✓      | ✓       | ✓      |
//! | 3  | `store`          | ✓      | ✓       |        |
//! | 4  | `knobs`          | ✓      | ✓       | ✓ (+`n_probe`, `len`) |
//! | 5  | `objects`        |        | ✓       |        |
//! | 6  | `centroids`      |        | if routed | ✓    |
//! | 7  | `cells`          |        | if routed | ✓    |
//! | 8  | `ids`            |        | if routed | ✓    |
//! | 9  | `locs`           |        | if routed |      |
//! | 10 | `routing_config` |        | if routed |      |
//!
//! ## Versioning and failure modes
//!
//! [`SNAPSHOT_VERSION`] bumps on any incompatible layout change; a loader
//! only reads its own version and fails with
//! [`SnapshotError::UnsupportedVersion`] otherwise — no silent migration.
//! Every failure is a typed [`SnapshotError`]; `load` **never panics** on
//! hostile bytes: magic/version/kind/backend are checked before anything
//! else, section checksums before any decoding, and every in-section read
//! is bounds- and consistency-checked (`Truncated`, `ChecksumMismatch`,
//! `CorruptSection`, ...). Global-L1 indexes hold an opaque
//! `Box<dyn Embedding>` and cannot be serialized —
//! [`SnapshotError::GlobalFilterUnsupported`]; snapshots always carry a
//! trained [`QseModel`].

use std::fmt;
use std::ops::Range;
use std::path::Path;
use std::sync::Arc;

use crate::dynamic::{DynamicIndex, RoutingState};
use crate::filter_refine::{FilterKind, FilterRefineIndex};
use crate::routed::{IdList, RoutedConfig, RoutedIndex};
use qse_core::json::{JsonCodec, JsonValue};
use qse_core::QseModel;
use qse_distance::{FilterElem, FlatStore, FlatVectors, MapRegion, MappedWords};
use qse_embedding::KMeans;

/// The 8-byte magic every snapshot starts with.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"QSESNAP\0";

/// The format version this build writes and reads (see the module docs
/// for the compatibility policy).
pub const SNAPSHOT_VERSION: u32 = 2;

/// Byte offset of the format version (`u32` LE) in the header.
pub const VERSION_OFFSET: usize = 8;

/// Byte offset of the index-kind tag in the header.
pub const KIND_OFFSET: usize = 12;

/// Byte offset of the element-type tag in the header.
pub const ELEM_TAG_OFFSET: usize = 13;

const HEADER_LEN: usize = 24;
const ENTRY_LEN: usize = 24;

const KIND_STATIC: u8 = 1;
const KIND_DYNAMIC: u8 = 2;
const KIND_ROUTED: u8 = 3;

const SEC_MODEL: u32 = 1;
const SEC_PARAMS: u32 = 2;
const SEC_STORE: u32 = 3;
const SEC_KNOBS: u32 = 4;
const SEC_OBJECTS: u32 = 5;
const SEC_CENTROIDS: u32 = 6;
const SEC_CELLS: u32 = 7;
const SEC_IDS: u32 = 8;
const SEC_LOCS: u32 = 9;
const SEC_ROUTING: u32 = 10;

fn section_name(id: u32) -> Option<&'static str> {
    Some(match id {
        SEC_MODEL => "model",
        SEC_PARAMS => "params",
        SEC_STORE => "store",
        SEC_KNOBS => "knobs",
        SEC_OBJECTS => "objects",
        SEC_CENTROIDS => "centroids",
        SEC_CELLS => "cells",
        SEC_IDS => "ids",
        SEC_LOCS => "locs",
        SEC_ROUTING => "routing_config",
        _ => return None,
    })
}

fn kind_name(tag: u8) -> &'static str {
    match tag {
        KIND_STATIC => "static (FilterRefineIndex)",
        KIND_DYNAMIC => "dynamic (DynamicIndex)",
        KIND_ROUTED => "routed (RoutedIndex)",
        _ => "unknown",
    }
}

fn elem_name(tag: u8) -> &'static str {
    match tag {
        1 => "f64",
        2 => "f32",
        3 => "u8",
        _ => "unknown",
    }
}

/// Why a snapshot could not be written or read. `load` paths return these
/// instead of panicking, whatever the input bytes (see the module docs).
#[derive(Debug)]
pub enum SnapshotError {
    /// Reading or writing the snapshot file failed.
    Io(std::io::Error),
    /// The bytes do not start with [`SNAPSHOT_MAGIC`] — not a snapshot.
    BadMagic,
    /// The snapshot was written by an incompatible format version.
    UnsupportedVersion {
        /// Version tag found in the header.
        found: u32,
        /// The only version this build reads ([`SNAPSHOT_VERSION`]).
        supported: u32,
    },
    /// The snapshot holds a different index type than the loader.
    KindMismatch {
        /// Index-kind tag found in the header.
        found: u8,
        /// The loading index type's tag.
        expected: u8,
    },
    /// The snapshot's store backend differs from the loader's element
    /// type `E` (e.g. `u8` bytes loaded as `FlatStore<f64>`).
    BackendMismatch {
        /// Element-type tag found in the header.
        found: u8,
        /// The loading backend's [`FilterElem::SNAPSHOT_TAG`].
        expected: u8,
    },
    /// The byte stream ends before the structure it declares.
    Truncated {
        /// Bytes the declared structure requires.
        needed: u64,
        /// Bytes actually available.
        available: u64,
    },
    /// The header or section table is internally inconsistent.
    CorruptHeader {
        /// What was wrong.
        reason: String,
    },
    /// A section's payload does not match its recorded checksum.
    ChecksumMismatch {
        /// Name of the failing section.
        section: &'static str,
    },
    /// A section this index kind requires is absent.
    MissingSection {
        /// Name of the absent section.
        section: &'static str,
    },
    /// A section's checksum matched but its contents do not decode into a
    /// consistent index (internal length/consistency checks failed).
    CorruptSection {
        /// Name of the failing section.
        section: &'static str,
        /// What was wrong.
        reason: String,
    },
    /// The index filters through an opaque global-L1 embedding object,
    /// which has no serialized form; only query-sensitive (model-backed)
    /// indexes can be snapshotted.
    GlobalFilterUnsupported,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "snapshot I/O error: {e}"),
            Self::BadMagic => write!(f, "not a QSE snapshot (bad magic)"),
            Self::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported snapshot version {found} (this build reads version {supported})"
            ),
            Self::KindMismatch { found, expected } => write!(
                f,
                "snapshot holds a {} index, expected {}",
                kind_name(*found),
                kind_name(*expected)
            ),
            Self::BackendMismatch { found, expected } => write!(
                f,
                "snapshot store backend is {}, expected {}",
                elem_name(*found),
                elem_name(*expected)
            ),
            Self::Truncated { needed, available } => write!(
                f,
                "snapshot truncated: need {needed} bytes, have {available}"
            ),
            Self::CorruptHeader { reason } => write!(f, "corrupt snapshot header: {reason}"),
            Self::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in section `{section}`")
            }
            Self::MissingSection { section } => write!(f, "missing section `{section}`"),
            Self::CorruptSection { section, reason } => {
                write!(f, "corrupt section `{section}`: {reason}")
            }
            Self::GlobalFilterUnsupported => write!(
                f,
                "global-L1 indexes hold an opaque embedding object and cannot be \
                 snapshotted; index under a trained QseModel instead"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

fn corrupt(section: &'static str, reason: impl Into<String>) -> SnapshotError {
    SnapshotError::CorruptSection {
        section,
        reason: reason.into(),
    }
}

/// The version-2 section checksum: 8-lane word-striped FNV-1a 64 over
/// the **padded** payload bytes.
///
/// Each 64-byte group feeds one little-endian `u64` word to each of 8
/// independent FNV-1a lanes, the lanes fold into one state
/// (`h = (h ^ lane) * PRIME`), any sub-group tail hashes byte-wise, and
/// the total length folds in last so payloads that differ only in
/// trailing zeros still differ. The 8 independent multiply chains are
/// what buys throughput: serial byte-at-a-time FNV-1a is one long
/// dependency chain (~0.7 GB/s measured on this host); this variant
/// verifies at ~6.9 GB/s, which keeps eager verify-before-trust cheap
/// even for multi-hundred-MB mapped stores. Any single-bit flip still
/// changes exactly one lane (or the tail/length fold) and therefore the
/// final state.
fn section_checksum(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    const GROUP: usize = 64;
    let mut lanes = [OFFSET; 8];
    let mut groups = bytes.chunks_exact(GROUP);
    for group in groups.by_ref() {
        for (lane, word) in lanes.iter_mut().zip(group.chunks_exact(8)) {
            let w = u64::from_le_bytes(fixed(word));
            *lane = (*lane ^ w).wrapping_mul(PRIME);
        }
    }
    let mut h = OFFSET;
    for lane in lanes {
        h = (h ^ lane).wrapping_mul(PRIME);
    }
    for &b in groups.remainder() {
        h = (h ^ u64::from(b)).wrapping_mul(PRIME);
    }
    (h ^ bytes.len() as u64).wrapping_mul(PRIME)
}

fn padding_of(len: usize) -> usize {
    len.next_multiple_of(8) - len
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

struct Writer {
    kind: u8,
    elem_tag: u8,
    sections: Vec<(u32, Vec<u8>)>,
}

impl Writer {
    fn new(kind: u8, elem_tag: u8) -> Self {
        Self {
            kind,
            elem_tag,
            sections: Vec::new(),
        }
    }

    fn section(&mut self, id: u32, payload: Vec<u8>) {
        debug_assert!(section_name(id).is_some());
        self.sections.push((id, payload));
    }

    fn finish(self) -> Vec<u8> {
        let payload_total: usize = self
            .sections
            .iter()
            .map(|(_, p)| p.len().next_multiple_of(8))
            .sum();
        let mut out =
            Vec::with_capacity(HEADER_LEN + ENTRY_LEN * self.sections.len() + payload_total);
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.push(self.kind);
        out.push(self.elem_tag);
        out.extend_from_slice(&0u16.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes());
        // Table first with placeholder checksums, payloads after, then
        // patch each checksum over the contiguous padded bytes in place
        // — one pass over final bytes, exactly what the reader hashes.
        for (id, payload) in &self.sections {
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&0u32.to_le_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&0u64.to_le_bytes());
        }
        let mut padded_ranges = Vec::with_capacity(self.sections.len());
        for (_, payload) in &self.sections {
            let start = out.len();
            out.extend_from_slice(payload);
            out.resize(out.len() + padding_of(payload.len()), 0);
            padded_ranges.push(start..out.len());
        }
        for (i, range) in padded_ranges.into_iter().enumerate() {
            let checksum = section_checksum(&out[range]);
            let slot = HEADER_LEN + i * ENTRY_LEN + 16;
            out[slot..slot + 8].copy_from_slice(&checksum.to_le_bytes());
        }
        out
    }
}

// ---------------------------------------------------------------------
// Reader: header, table, cursor
// ---------------------------------------------------------------------

fn fixed<const N: usize>(bytes: &[u8]) -> [u8; N] {
    bytes.try_into().expect("caller slices exactly N bytes")
}

/// `(kind, elem_tag, section_count)` of a structurally valid header.
fn parse_header(bytes: &[u8]) -> Result<(u8, u8, usize), SnapshotError> {
    if bytes.len() < HEADER_LEN {
        return Err(SnapshotError::Truncated {
            needed: HEADER_LEN as u64,
            available: bytes.len() as u64,
        });
    }
    if bytes[0..8] != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u32::from_le_bytes(fixed(&bytes[VERSION_OFFSET..VERSION_OFFSET + 4]));
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion {
            found: version,
            supported: SNAPSHOT_VERSION,
        });
    }
    let kind = bytes[KIND_OFFSET];
    let elem_tag = bytes[ELEM_TAG_OFFSET];
    if bytes[14..16] != [0, 0] || bytes[20..24] != [0, 0, 0, 0] {
        return Err(SnapshotError::CorruptHeader {
            reason: "reserved header bytes are not zero".into(),
        });
    }
    let count = u32::from_le_bytes(fixed(&bytes[16..20])) as usize;
    Ok((kind, elem_tag, count))
}

struct SectionSlice {
    id: u32,
    range: Range<usize>,
}

/// Walk the section table, verifying bounds and every checksum; returns
/// the **unpadded** payload range per section.
fn parse_table(bytes: &[u8], count: usize) -> Result<Vec<SectionSlice>, SnapshotError> {
    let total = bytes.len() as u64;
    let table_end = HEADER_LEN as u64 + (count as u64) * (ENTRY_LEN as u64);
    if table_end > total {
        return Err(SnapshotError::Truncated {
            needed: table_end,
            available: total,
        });
    }
    let mut sections = Vec::with_capacity(count);
    let mut offset = table_end;
    for i in 0..count {
        let e = HEADER_LEN + i * ENTRY_LEN;
        let id = u32::from_le_bytes(fixed(&bytes[e..e + 4]));
        let name = section_name(id).ok_or_else(|| SnapshotError::CorruptHeader {
            reason: format!("unknown section id {id}"),
        })?;
        if bytes[e + 4..e + 8] != [0, 0, 0, 0] {
            return Err(SnapshotError::CorruptHeader {
                reason: format!("reserved table bytes of section `{name}` are not zero"),
            });
        }
        let len = u64::from_le_bytes(fixed(&bytes[e + 8..e + 16]));
        let checksum = u64::from_le_bytes(fixed(&bytes[e + 16..e + 24]));
        let padded =
            len.checked_add(7)
                .map(|v| v & !7u64)
                .ok_or_else(|| SnapshotError::CorruptHeader {
                    reason: format!("length of section `{name}` overflows"),
                })?;
        let end = offset
            .checked_add(padded)
            .ok_or_else(|| SnapshotError::CorruptHeader {
                reason: format!("offset of section `{name}` overflows"),
            })?;
        if end > total {
            return Err(SnapshotError::Truncated {
                needed: end,
                available: total,
            });
        }
        // In-memory slice: offsets fit usize because end <= total.
        let start = offset as usize;
        let padded_payload = &bytes[start..end as usize];
        if section_checksum(padded_payload) != checksum {
            return Err(SnapshotError::ChecksumMismatch { section: name });
        }
        sections.push(SectionSlice {
            id,
            range: start..start + len as usize,
        });
        offset = end;
    }
    if offset != total {
        return Err(SnapshotError::CorruptHeader {
            reason: format!("{} trailing bytes after the last section", total - offset),
        });
    }
    Ok(sections)
}

/// The section layout of a snapshot: `(name, unpadded payload range)` in
/// table order, after validating the magic, version, table bounds and
/// every section checksum (kind/backend tags are *not* checked — the
/// layout is kind-agnostic). This is the introspection hook the
/// corruption-injection tests drive; servers can use it to report what a
/// snapshot file contains without deserializing it.
pub fn snapshot_sections(bytes: &[u8]) -> Result<Vec<(&'static str, Range<usize>)>, SnapshotError> {
    let (_, _, count) = parse_header(bytes)?;
    let sections = parse_table(bytes, count)?;
    Ok(sections
        .into_iter()
        .map(|s| {
            (
                section_name(s.id).expect("validated by parse_table"),
                s.range,
            )
        })
        .collect())
}

struct Sections<'a> {
    bytes: &'a [u8],
    slices: Vec<SectionSlice>,
}

impl<'a> Sections<'a> {
    fn get_opt(&self, id: u32) -> Option<&'a [u8]> {
        self.slices
            .iter()
            .find(|s| s.id == id)
            .map(|s| &self.bytes[s.range.clone()])
    }

    fn get(&self, id: u32) -> Result<&'a [u8], SnapshotError> {
        self.get_opt(id).ok_or(SnapshotError::MissingSection {
            section: section_name(id).expect("callers pass known ids"),
        })
    }

    /// The zero-copy element source for section `id`: the shared mapping
    /// paired with the section payload's absolute offset in the stream
    /// (the rebase origin for element byte ranges). `None` when loading
    /// from owned bytes — the store decoders then copy, as before.
    fn source<'m>(&self, id: u32, map: Option<&'m Arc<MapRegion>>) -> Option<MapSource<'m>> {
        let region = map?;
        let section_start = self.slices.iter().find(|s| s.id == id)?.range.start;
        Some(MapSource {
            region,
            section_start,
        })
    }
}

/// Where a store decoder may borrow element bytes zero-copy: the mapped
/// snapshot region plus the absolute offset of the section payload being
/// decoded (in-section cursor positions rebase against it).
#[derive(Clone, Copy)]
struct MapSource<'m> {
    region: &'m Arc<MapRegion>,
    section_start: usize,
}

/// Header + table + checksum validation for a typed loader: kind and
/// backend tags must match before any section is touched.
fn parse_typed<E: FilterElem>(
    bytes: &[u8],
    expected_kind: u8,
) -> Result<Sections<'_>, SnapshotError> {
    let (kind, elem_tag, count) = parse_header(bytes)?;
    if kind != expected_kind {
        return Err(SnapshotError::KindMismatch {
            found: kind,
            expected: expected_kind,
        });
    }
    if elem_tag != E::SNAPSHOT_TAG {
        return Err(SnapshotError::BackendMismatch {
            found: elem_tag,
            expected: E::SNAPSHOT_TAG,
        });
    }
    let slices = parse_table(bytes, count)?;
    Ok(Sections { bytes, slices })
}

/// Bounds-checked sequential reads within one section payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8], section: &'static str) -> Self {
        Self {
            buf,
            pos: 0,
            section,
        }
    }

    fn corrupt(&self, reason: impl Into<String>) -> SnapshotError {
        corrupt(self.section, reason)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| {
                corrupt(
                    self.section,
                    format!("read past the end of the section (at byte {})", self.pos),
                )
            })?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u64_val(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(fixed(self.take(8)?)))
    }

    fn usize_val(&mut self) -> Result<usize, SnapshotError> {
        let v = self.u64_val()?;
        usize::try_from(v).map_err(|_| corrupt(self.section, format!("value {v} overflows usize")))
    }

    fn f64_val(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_le_bytes(fixed(self.take(8)?)))
    }

    fn rest(&mut self) -> &'a [u8] {
        let slice = &self.buf[self.pos..];
        self.pos = self.buf.len();
        slice
    }

    fn finish(self) -> Result<(), SnapshotError> {
        if self.pos != self.buf.len() {
            return Err(corrupt(
                self.section,
                format!("{} unread trailing bytes", self.buf.len() - self.pos),
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Section codecs
// ---------------------------------------------------------------------

fn model_of<O>(kind: &FilterKind<O>) -> Result<&QseModel<O>, SnapshotError> {
    match kind {
        FilterKind::QuerySensitive { model } => Ok(model),
        FilterKind::GlobalL1 { .. } => Err(SnapshotError::GlobalFilterUnsupported),
    }
}

fn decode_model<O: JsonCodec + Clone + Send + Sync>(
    bytes: &[u8],
) -> Result<QseModel<O>, SnapshotError> {
    let text = std::str::from_utf8(bytes)
        .map_err(|_| corrupt("model", "model JSON is not valid UTF-8"))?;
    QseModel::from_json(text).map_err(|e| corrupt("model", e.to_string()))
}

fn encode_params<E: FilterElem>(params: &E::Params) -> Vec<u8> {
    let mut out = Vec::new();
    E::params_to_bytes(params, &mut out);
    out
}

fn decode_params<E: FilterElem>(dim: usize, bytes: &[u8]) -> Result<E::Params, SnapshotError> {
    E::params_from_bytes(dim, bytes).ok_or_else(|| {
        corrupt(
            "params",
            format!(
                "parameter bytes do not decode as {} parameters of dimensionality {dim}",
                E::NAME
            ),
        )
    })
}

/// Store payload: `dim: u64`, `rows: u64`, then the raw element bytes
/// (little-endian, [`FilterElem::BYTES`] each) — 8-aligned in the stream.
fn encode_store<E: FilterElem>(store: &FlatStore<E>) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + store.as_slice().len() * E::BYTES);
    out.extend_from_slice(&(store.dim() as u64).to_le_bytes());
    out.extend_from_slice(&(store.len() as u64).to_le_bytes());
    E::elems_to_bytes(store.as_slice(), &mut out);
    out
}

fn decode_store<E: FilterElem>(
    section: &'static str,
    bytes: &[u8],
    params: E::Params,
    map: Option<MapSource<'_>>,
) -> Result<FlatStore<E>, SnapshotError> {
    let mut cur = Cursor::new(bytes, section);
    let dim = cur.usize_val()?;
    let rows = cur.usize_val()?;
    if let Some(src) = map {
        // Element bytes start at in-section offset 16 (after dim/rows),
        // which the format keeps 8-aligned in the stream. Any refusal
        // (size mismatch, misalignment, unsupported target) falls
        // through to the owned path below, which either copies the same
        // values or reports the typed corruption error.
        let start = src.section_start + cur.pos;
        if let Some(store) = FlatStore::from_mapped_parts(
            dim,
            rows,
            params.clone(),
            Arc::clone(src.region),
            start..start + (bytes.len() - cur.pos),
        ) {
            return Ok(store);
        }
    }
    let elems = E::elems_from_bytes(cur.rest())
        .ok_or_else(|| corrupt(section, "element bytes are not whole elements"))?;
    FlatStore::from_stored_parts(dim, rows, params, elems).ok_or_else(|| {
        corrupt(
            section,
            format!("element count does not match dim {dim} × rows {rows}"),
        )
    })
}

/// Cells payload: `dim: u64`, `count: u64`, then per cell `rows: u64` +
/// raw element bytes.
fn encode_cells<E: FilterElem>(cells: &[FlatStore<E>]) -> Vec<u8> {
    let dim = cells.first().map_or(0, FlatStore::dim);
    let mut out = Vec::new();
    out.extend_from_slice(&(dim as u64).to_le_bytes());
    out.extend_from_slice(&(cells.len() as u64).to_le_bytes());
    for cell in cells {
        out.extend_from_slice(&(cell.len() as u64).to_le_bytes());
        E::elems_to_bytes(cell.as_slice(), &mut out);
    }
    out
}

fn decode_cells<E: FilterElem>(
    bytes: &[u8],
    dim: usize,
    params: &E::Params,
    map: Option<MapSource<'_>>,
) -> Result<Vec<FlatStore<E>>, SnapshotError> {
    let mut cur = Cursor::new(bytes, "cells");
    let stored_dim = cur.usize_val()?;
    if stored_dim != dim {
        return Err(cur.corrupt(format!(
            "cell dim {stored_dim} does not match model dim {dim}"
        )));
    }
    let count = cur.usize_val()?;
    let mut cells = Vec::new();
    for _ in 0..count {
        let rows = cur.usize_val()?;
        let byte_count = rows
            .checked_mul(dim)
            .and_then(|v| v.checked_mul(E::BYTES))
            .ok_or_else(|| cur.corrupt("cell byte count overflows"))?;
        let elem_pos = cur.pos;
        let raw = cur.take(byte_count)?;
        if let Some(src) = map {
            // Every cell slices its own disjoint range of the one shared
            // mapping (the Arc clone bumps a refcount, nothing is
            // remapped). Refusals fall through to the copying path.
            let start = src.section_start + elem_pos;
            if let Some(store) = FlatStore::from_mapped_parts(
                dim,
                rows,
                params.clone(),
                Arc::clone(src.region),
                start..start + byte_count,
            ) {
                cells.push(store);
                continue;
            }
        }
        let elems = E::elems_from_bytes(raw)
            .ok_or_else(|| cur.corrupt("cell element bytes are not whole elements"))?;
        let store = FlatStore::from_stored_parts(dim, rows, params.clone(), elems)
            .ok_or_else(|| cur.corrupt("cell element count mismatch"))?;
        cells.push(store);
    }
    cur.finish()?;
    Ok(cells)
}

/// Ids payload: `count: u64`, then per cell `len: u64` + that many `u64`
/// global ids. Generic over the list representation so both owned
/// routing-state lists (`Vec<usize>`) and a routed index's [`IdList`]s
/// (possibly still mapped) encode identically.
fn encode_ids<L: std::ops::Deref<Target = [usize]>>(ids: &[L]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(ids.len() as u64).to_le_bytes());
    for cell in ids {
        out.extend_from_slice(&(cell.len() as u64).to_le_bytes());
        for &g in cell.iter() {
            out.extend_from_slice(&(g as u64).to_le_bytes());
        }
    }
    out
}

/// Decode the per-cell id lists **and** prove they are a permutation of
/// `0..len` in the same pass over the section bytes: every id is
/// bounds-checked against `len`, duplicate-checked against a bitset, and
/// counted. Fusing the validation into the decode loop keeps this — the
/// largest non-store section of a routed snapshot — to one sweep on the
/// startup path.
///
/// With a [`MapSource`], each validated cell borrows its words straight
/// out of the mapping ([`IdList::Mapped`]) instead of copying them onto
/// the heap — the sweep then only *reads* the section (for the
/// permutation proof) and allocates nothing per id. Any per-cell refusal
/// (misalignment, unsupported target) falls back to an owned copy of
/// just that cell.
fn decode_ids(
    bytes: &[u8],
    len: usize,
    map: Option<MapSource<'_>>,
) -> Result<Vec<IdList>, SnapshotError> {
    let mut cur = Cursor::new(bytes, "ids");
    let count = cur.usize_val()?;
    if count > bytes.len() / 8 {
        // A hostile count cannot reserve more than the section could
        // possibly hold (every cell costs at least its length header).
        return Err(cur.corrupt(format!("{count} id cells cannot fit the section")));
    }
    let mut seen = vec![0u64; len.div_ceil(64)];
    let mut total = 0usize;
    let mut ids = Vec::with_capacity(count);
    for _ in 0..count {
        let n = cur.usize_val()?;
        let byte_count = n
            .checked_mul(8)
            .ok_or_else(|| cur.corrupt("id cell byte count overflows"))?;
        let elem_pos = cur.pos;
        let raw = cur.take(byte_count)?;
        for w in raw.chunks_exact(8) {
            let g = u64::from_le_bytes(fixed(w));
            if g >= len as u64 {
                return Err(corrupt(
                    "ids",
                    format!("ids are not a permutation of 0..{len} (id {g})"),
                ));
            }
            // Lossless: g < len <= usize::MAX.
            let g = g as usize;
            let (word, bit) = (g >> 6, 1u64 << (g & 63));
            // SAFETY: g < len, so word = g/64 < len.div_ceil(64), which
            // is exactly `seen.len()` — the checked range test above is
            // the bounds proof the compiler cannot derive on its own,
            // and this sweep runs once per id on every routed load.
            let slot = unsafe { seen.get_unchecked_mut(word) };
            if *slot & bit != 0 {
                return Err(corrupt(
                    "ids",
                    format!("ids are not a permutation of 0..{len} (duplicate id {g})"),
                ));
            }
            *slot |= bit;
        }
        total += n;
        let mapped = map.and_then(|src| {
            let start = src.section_start + elem_pos;
            MappedWords::new(Arc::clone(src.region), start..start + byte_count)
        });
        ids.push(match mapped {
            Some(words) => IdList::Mapped(words),
            None => IdList::Owned(
                raw.chunks_exact(8)
                    .map(|w| u64::from_le_bytes(fixed(w)) as usize)
                    .collect(),
            ),
        });
    }
    if total != len {
        return Err(corrupt(
            "ids",
            format!("{total} ids for {len} database rows"),
        ));
    }
    cur.finish()?;
    Ok(ids)
}

/// Locs payload: `len: u64`, then per global id `cell: u64` + `pos: u64`.
fn encode_locs(locs: &[(usize, usize)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + locs.len() * 16);
    out.extend_from_slice(&(locs.len() as u64).to_le_bytes());
    for &(cell, pos) in locs {
        out.extend_from_slice(&(cell as u64).to_le_bytes());
        out.extend_from_slice(&(pos as u64).to_le_bytes());
    }
    out
}

fn decode_locs(bytes: &[u8]) -> Result<Vec<(usize, usize)>, SnapshotError> {
    let mut cur = Cursor::new(bytes, "locs");
    let len = cur.usize_val()?;
    let raw = cur.take(
        len.checked_mul(16)
            .ok_or_else(|| cur.corrupt("loc byte count overflows"))?,
    )?;
    let mut locs = Vec::with_capacity(len);
    for pair in raw.chunks_exact(16) {
        let cell = u64::from_le_bytes(fixed(&pair[..8]));
        let pos = u64::from_le_bytes(fixed(&pair[8..]));
        let cell = usize::try_from(cell)
            .map_err(|_| corrupt("locs", format!("value {cell} overflows usize")))?;
        let pos = usize::try_from(pos)
            .map_err(|_| corrupt("locs", format!("value {pos} overflows usize")))?;
        locs.push((cell, pos));
    }
    cur.finish()?;
    Ok(locs)
}

/// Routing-config payload: `cells`, `n_probe`, `seed`, `max_iters`, each
/// a `u64`.
fn encode_routing_config(config: &RoutedConfig) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    out.extend_from_slice(&(config.cells as u64).to_le_bytes());
    out.extend_from_slice(&(config.n_probe as u64).to_le_bytes());
    out.extend_from_slice(&config.seed.to_le_bytes());
    out.extend_from_slice(&(config.max_iters as u64).to_le_bytes());
    out
}

fn decode_routing_config(bytes: &[u8]) -> Result<RoutedConfig, SnapshotError> {
    let mut cur = Cursor::new(bytes, "routing_config");
    let cells = cur.usize_val()?;
    let n_probe = cur.usize_val()?;
    let seed = cur.u64_val()?;
    let max_iters = cur.usize_val()?;
    cur.finish()?;
    if cells == 0 || n_probe == 0 {
        return Err(corrupt("routing_config", "cells and n_probe must be >= 1"));
    }
    Ok(RoutedConfig {
        cells,
        n_probe,
        seed,
        max_iters,
    })
}

fn decode_p_scale(bytes_val: f64) -> Result<f64, SnapshotError> {
    if !bytes_val.is_finite() || bytes_val < 1.0 {
        return Err(corrupt(
            "knobs",
            format!("p_scale must be finite and >= 1.0, got {bytes_val}"),
        ));
    }
    Ok(bytes_val)
}

/// Knobs payload of static/dynamic snapshots: `p_scale: f64` only.
fn decode_knobs_plain(bytes: &[u8]) -> Result<f64, SnapshotError> {
    let mut cur = Cursor::new(bytes, "knobs");
    let p_scale = cur.f64_val()?;
    cur.finish()?;
    decode_p_scale(p_scale)
}

/// Knobs payload of routed snapshots: `p_scale: f64`, `n_probe: u64`,
/// `len: u64`.
fn decode_knobs_routed(bytes: &[u8]) -> Result<(f64, usize, usize), SnapshotError> {
    let mut cur = Cursor::new(bytes, "knobs");
    let p_scale = cur.f64_val()?;
    let n_probe = cur.usize_val()?;
    let len = cur.usize_val()?;
    cur.finish()?;
    Ok((decode_p_scale(p_scale)?, n_probe, len))
}

fn decode_objects<O: JsonCodec>(bytes: &[u8]) -> Result<Vec<O>, SnapshotError> {
    let text = std::str::from_utf8(bytes)
        .map_err(|_| corrupt("objects", "objects JSON is not valid UTF-8"))?;
    let value = JsonValue::parse(text).map_err(|e| corrupt("objects", e.to_string()))?;
    Vec::<O>::from_json_value(&value).map_err(|e| corrupt("objects", e.to_string()))
}

/// The routed state shared by [`RoutedIndex`] and a routing-enabled
/// [`DynamicIndex`]: router centroids, per-cell stores, id maps — decoded
/// and cross-validated (cells ↔ centroids ↔ ids ↔ `len` must agree, and
/// the ids must partition `0..len` exactly once).
struct RoutedParts<E: FilterElem> {
    router: KMeans,
    cells: Vec<FlatStore<E>>,
    /// Mapped when loading through `load_mmap` (zero-copy, like the cell
    /// stores), owned otherwise. The dynamic loader converts to owned
    /// vectors since its routing state mutates ids in place.
    ids: Vec<IdList>,
}

fn decode_routed_parts<E: FilterElem>(
    sections: &Sections<'_>,
    dim: usize,
    params: &E::Params,
    len: usize,
    map: Option<&Arc<MapRegion>>,
) -> Result<RoutedParts<E>, SnapshotError> {
    let centroids: FlatVectors = decode_store(
        "centroids",
        sections.get(SEC_CENTROIDS)?,
        (),
        sections.source(SEC_CENTROIDS, map),
    )?;
    if centroids.is_empty() {
        return Err(corrupt("centroids", "the router needs at least one cell"));
    }
    if centroids.dim() != dim {
        return Err(corrupt(
            "centroids",
            format!(
                "centroid dim {} does not match model dim {dim}",
                centroids.dim()
            ),
        ));
    }
    let router = KMeans::from_centroids(centroids);
    let cells = decode_cells::<E>(
        sections.get(SEC_CELLS)?,
        dim,
        params,
        sections.source(SEC_CELLS, map),
    )?;
    if cells.len() != router.cells() {
        return Err(corrupt(
            "cells",
            format!(
                "{} cell stores for {} centroids",
                cells.len(),
                router.cells()
            ),
        ));
    }
    let ids = decode_ids(sections.get(SEC_IDS)?, len, sections.source(SEC_IDS, map))?;
    if ids.len() != cells.len() {
        return Err(corrupt(
            "ids",
            format!("{} id lists for {} cells", ids.len(), cells.len()),
        ));
    }
    // decode_ids proved the permutation property; per-cell agreement
    // with the stores is all that is left to check.
    for (c, cell_ids) in ids.iter().enumerate() {
        if cell_ids.len() != cells[c].len() {
            return Err(corrupt(
                "ids",
                format!(
                    "cell {c} has {} ids but {} rows",
                    cell_ids.len(),
                    cells[c].len()
                ),
            ));
        }
    }
    Ok(RoutedParts { router, cells, ids })
}

// ---------------------------------------------------------------------
// FilterRefineIndex
// ---------------------------------------------------------------------

impl<O, E> FilterRefineIndex<O, E>
where
    O: JsonCodec + Clone + Send + Sync,
    E: FilterElem,
{
    /// Serialize the complete index state into the snapshot byte format
    /// (see the module docs for the layout).
    ///
    /// # Errors
    /// [`SnapshotError::GlobalFilterUnsupported`] for a global-L1 index
    /// (its boxed embedding has no serialized form).
    pub fn to_snapshot_bytes(&self) -> Result<Vec<u8>, SnapshotError> {
        let model = model_of(&self.kind)?;
        let mut w = Writer::new(KIND_STATIC, E::SNAPSHOT_TAG);
        w.section(SEC_MODEL, model.to_json().into_bytes());
        w.section(SEC_PARAMS, encode_params::<E>(self.vectors.params()));
        w.section(SEC_STORE, encode_store(&self.vectors));
        w.section(SEC_KNOBS, self.p_scale.to_le_bytes().to_vec());
        Ok(w.finish())
    }

    /// Reconstruct an index from [`Self::to_snapshot_bytes`] output. The
    /// loaded index retrieves **bit-identically** to the saved one (the
    /// store bytes, model weights and `p_scale` all round-trip exactly).
    ///
    /// # Errors
    /// A typed [`SnapshotError`] on any mismatch or corruption — this
    /// never panics, whatever the bytes (see the module docs).
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        Self::decode_snapshot(bytes, None)
    }

    /// Reconstruct an index whose store borrows its element bytes
    /// **zero-copy** out of an `mmap`ed snapshot: nothing is copied, the
    /// OS pages elements in on first touch, and retrieval is
    /// bit-identical to [`Self::from_snapshot_bytes`] over the same
    /// file. Header, table and every section checksum are verified
    /// before anything is trusted, exactly as on the owned path.
    ///
    /// # Errors
    /// The same typed [`SnapshotError`]s as the owned loader.
    pub fn from_mapped(region: Arc<MapRegion>) -> Result<Self, SnapshotError> {
        Self::decode_snapshot(region.as_bytes(), Some(&region))
    }

    /// Map `path` and load it via [`Self::from_mapped`]; if the file
    /// cannot be mapped at all (unsupported target, empty file, syscall
    /// failure) fall back to the owned [`Self::load`], which yields
    /// identical results — so callers never need to branch on mapping
    /// support. Note the one inherent `mmap` caveat: a file truncated by
    /// *another process while mapped* can fault on first element touch;
    /// files truncated before loading fail with typed errors as always.
    ///
    /// # Errors
    /// As [`Self::from_mapped`] / [`Self::load`].
    pub fn load_mmap(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        match MapRegion::map_path(&path) {
            Ok(region) => Self::from_mapped(region),
            Err(_) => Self::load(path),
        }
    }

    /// `true` when the store's element bytes are borrowed from a memory
    /// mapping (see [`Self::from_mapped`]).
    pub fn store_is_mapped(&self) -> bool {
        self.vectors.is_mapped()
    }

    /// Heap bytes held for store element data — `0` when mapped, the
    /// memory axis of the serving Pareto reports.
    pub fn store_heap_bytes(&self) -> usize {
        self.vectors.heap_bytes()
    }

    fn decode_snapshot(bytes: &[u8], map: Option<&Arc<MapRegion>>) -> Result<Self, SnapshotError> {
        let sections = parse_typed::<E>(bytes, KIND_STATIC)?;
        let model: QseModel<O> = decode_model(sections.get(SEC_MODEL)?)?;
        let dim = model.dim();
        let params = decode_params::<E>(dim, sections.get(SEC_PARAMS)?)?;
        let vectors = decode_store::<E>(
            "store",
            sections.get(SEC_STORE)?,
            params,
            sections.source(SEC_STORE, map),
        )?;
        if vectors.dim() != dim {
            return Err(corrupt(
                "store",
                format!("store dim {} does not match model dim {dim}", vectors.dim()),
            ));
        }
        if vectors.is_empty() {
            return Err(corrupt("store", "a static index is never empty"));
        }
        let p_scale = decode_knobs_plain(sections.get(SEC_KNOBS)?)?;
        Ok(Self {
            kind: FilterKind::QuerySensitive { model },
            vectors,
            p_scale,
        })
    }

    /// [`Self::to_snapshot_bytes`] written to `path`.
    ///
    /// # Errors
    /// As [`Self::to_snapshot_bytes`], plus [`SnapshotError::Io`].
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        std::fs::write(path, self.to_snapshot_bytes()?)?;
        Ok(())
    }

    /// [`Self::from_snapshot_bytes`] read from `path`.
    ///
    /// # Errors
    /// As [`Self::from_snapshot_bytes`], plus [`SnapshotError::Io`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        Self::from_snapshot_bytes(&std::fs::read(path)?)
    }
}

// ---------------------------------------------------------------------
// RoutedIndex
// ---------------------------------------------------------------------

impl<O, E> RoutedIndex<O, E>
where
    O: JsonCodec + Clone + Send + Sync,
    E: FilterElem,
{
    /// Serialize the complete routed state — model, shared store
    /// parameters, router centroids, per-cell stores, id maps and the
    /// `p_scale`/`n_probe` knobs (see the module docs for the layout).
    ///
    /// # Errors
    /// [`SnapshotError::GlobalFilterUnsupported`] for a global-L1 index.
    pub fn to_snapshot_bytes(&self) -> Result<Vec<u8>, SnapshotError> {
        let model = model_of(&self.kind)?;
        let mut w = Writer::new(KIND_ROUTED, E::SNAPSHOT_TAG);
        w.section(SEC_MODEL, model.to_json().into_bytes());
        let params = self
            .cells
            .first()
            .map(FlatStore::params)
            .expect("a routed index always has at least one cell");
        w.section(SEC_PARAMS, encode_params::<E>(params));
        let mut knobs = Vec::with_capacity(24);
        knobs.extend_from_slice(&self.p_scale.to_le_bytes());
        knobs.extend_from_slice(&(self.n_probe as u64).to_le_bytes());
        knobs.extend_from_slice(&(self.len as u64).to_le_bytes());
        w.section(SEC_KNOBS, knobs);
        w.section(SEC_CENTROIDS, encode_store(self.router.centroids()));
        w.section(SEC_CELLS, encode_cells(&self.cells));
        w.section(SEC_IDS, encode_ids(&self.ids));
        Ok(w.finish())
    }

    /// Reconstruct a routed index from [`Self::to_snapshot_bytes`]
    /// output. Routing, filter scores and refine results are
    /// **bit-identical** to the saved index at any thread count.
    ///
    /// # Errors
    /// A typed [`SnapshotError`] on any mismatch or corruption; never
    /// panics, whatever the bytes.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        Self::decode_snapshot(bytes, None)
    }

    /// Reconstruct a routed index whose cell stores all borrow
    /// **zero-copy** out of one shared `mmap`ed snapshot — every cell
    /// slices its own disjoint range of a single mapping (no per-cell
    /// maps, no copies), and the mapping lives until the last cell
    /// drops. Checksums are verified before anything is trusted;
    /// retrieval is bit-identical to the owned loader at any `n_probe`
    /// and thread count.
    ///
    /// # Errors
    /// The same typed [`SnapshotError`]s as the owned loader.
    pub fn from_mapped(region: Arc<MapRegion>) -> Result<Self, SnapshotError> {
        Self::decode_snapshot(region.as_bytes(), Some(&region))
    }

    /// Map `path` and load it via [`Self::from_mapped`], falling back to
    /// the owned [`Self::load`] (identical results) when the file cannot
    /// be mapped at all — see
    /// [`FilterRefineIndex::load_mmap`](FilterRefineIndex::load_mmap)
    /// for the fallback and truncation-while-mapped caveats.
    ///
    /// # Errors
    /// As [`Self::from_mapped`] / [`Self::load`].
    pub fn load_mmap(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        match MapRegion::map_path(&path) {
            Ok(region) => Self::from_mapped(region),
            Err(_) => Self::load(path),
        }
    }

    /// `true` when every cell store borrows its element bytes from the
    /// shared mapping (see [`Self::from_mapped`]).
    pub fn store_is_mapped(&self) -> bool {
        self.cells.iter().all(FlatStore::is_mapped)
    }

    /// Heap bytes held for cell element data across all cells — `0`
    /// when mapped, the memory axis of the serving Pareto reports.
    pub fn store_heap_bytes(&self) -> usize {
        self.cells.iter().map(FlatStore::heap_bytes).sum()
    }

    fn decode_snapshot(bytes: &[u8], map: Option<&Arc<MapRegion>>) -> Result<Self, SnapshotError> {
        let sections = parse_typed::<E>(bytes, KIND_ROUTED)?;
        let model: QseModel<O> = decode_model(sections.get(SEC_MODEL)?)?;
        let dim = model.dim();
        let params = decode_params::<E>(dim, sections.get(SEC_PARAMS)?)?;
        let (p_scale, n_probe, len) = decode_knobs_routed(sections.get(SEC_KNOBS)?)?;
        if len == 0 {
            return Err(corrupt("knobs", "a routed index is never empty"));
        }
        let parts = decode_routed_parts::<E>(&sections, dim, &params, len, map)?;
        if n_probe == 0 || n_probe > parts.cells.len() {
            return Err(corrupt(
                "knobs",
                format!("n_probe {n_probe} outside 1..={}", parts.cells.len()),
            ));
        }
        Ok(Self {
            kind: FilterKind::QuerySensitive { model },
            router: parts.router,
            cells: parts.cells,
            ids: parts.ids,
            n_probe,
            p_scale,
            len,
        })
    }

    /// [`Self::to_snapshot_bytes`] written to `path`.
    ///
    /// # Errors
    /// As [`Self::to_snapshot_bytes`], plus [`SnapshotError::Io`].
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        std::fs::write(path, self.to_snapshot_bytes()?)?;
        Ok(())
    }

    /// [`Self::from_snapshot_bytes`] read from `path`.
    ///
    /// # Errors
    /// As [`Self::from_snapshot_bytes`], plus [`SnapshotError::Io`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        Self::from_snapshot_bytes(&std::fs::read(path)?)
    }
}

// ---------------------------------------------------------------------
// DynamicIndex
// ---------------------------------------------------------------------

impl<O, E> DynamicIndex<O, E>
where
    O: JsonCodec + Clone + Send + Sync,
    E: FilterElem,
{
    /// Serialize the complete dynamic state: model, store, **objects**
    /// (a dynamic index owns its collection — serialized through the
    /// object type's [`JsonCodec`]), the `p_scale` knob and, when routing
    /// is enabled, the full routing metadata including the `locs` inverse
    /// map (see the module docs for the layout).
    pub fn to_snapshot_bytes(&self) -> Result<Vec<u8>, SnapshotError> {
        let mut w = Writer::new(KIND_DYNAMIC, E::SNAPSHOT_TAG);
        w.section(SEC_MODEL, self.model.to_json().into_bytes());
        w.section(SEC_PARAMS, encode_params::<E>(self.vectors.params()));
        w.section(SEC_STORE, encode_store(&self.vectors));
        w.section(SEC_KNOBS, self.p_scale.to_le_bytes().to_vec());
        w.section(
            SEC_OBJECTS,
            self.objects.to_json_value().dump().into_bytes(),
        );
        if let Some(r) = &self.routing {
            w.section(SEC_CENTROIDS, encode_store(r.router.centroids()));
            w.section(SEC_CELLS, encode_cells(&r.cells));
            w.section(SEC_IDS, encode_ids(&r.ids));
            w.section(SEC_LOCS, encode_locs(&r.locs));
            w.section(SEC_ROUTING, encode_routing_config(&r.config));
        }
        Ok(w.finish())
    }

    /// Reconstruct a dynamic index from [`Self::to_snapshot_bytes`]
    /// output — including one that was churned (inserted into, removed
    /// from, refitted) before saving; retrieval is **bit-identical** to
    /// the saved index at any thread count, and editing can continue.
    ///
    /// # Errors
    /// A typed [`SnapshotError`] on any mismatch or corruption; never
    /// panics, whatever the bytes.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        Self::decode_snapshot(bytes, None)
    }

    /// Reconstruct a dynamic index whose store (and, when routing is
    /// enabled, every routing cell) borrows **zero-copy** out of one
    /// shared `mmap`ed snapshot. The index stays fully editable: the
    /// first mutation of any mapped store copies it to a private owned
    /// buffer (copy-on-first-write), so edits never touch the snapshot
    /// file and untouched stores keep serving from the page cache.
    /// Checksums are verified before anything is trusted; retrieval is
    /// bit-identical to the owned loader at any thread count.
    ///
    /// # Errors
    /// The same typed [`SnapshotError`]s as the owned loader.
    pub fn from_mapped(region: Arc<MapRegion>) -> Result<Self, SnapshotError> {
        Self::decode_snapshot(region.as_bytes(), Some(&region))
    }

    /// Map `path` and load it via [`Self::from_mapped`], falling back to
    /// the owned [`Self::load`] (identical results) when the file cannot
    /// be mapped at all — see
    /// [`FilterRefineIndex::load_mmap`](FilterRefineIndex::load_mmap)
    /// for the fallback and truncation-while-mapped caveats.
    ///
    /// # Errors
    /// As [`Self::from_mapped`] / [`Self::load`].
    pub fn load_mmap(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        match MapRegion::map_path(&path) {
            Ok(region) => Self::from_mapped(region),
            Err(_) => Self::load(path),
        }
    }

    /// `true` when the flat store and every routing cell still borrow
    /// their element bytes from the mapping (mutation turns this `false`
    /// store by store — see [`Self::from_mapped`]).
    pub fn store_is_mapped(&self) -> bool {
        self.vectors.is_mapped()
            && self
                .routing
                .as_ref()
                .is_none_or(|r| r.cells.iter().all(FlatStore::is_mapped))
    }

    /// Heap bytes held for element data across the flat store and any
    /// routing cells — `0` while fully mapped.
    pub fn store_heap_bytes(&self) -> usize {
        self.vectors.heap_bytes()
            + self.routing.as_ref().map_or(0, |r| {
                r.cells.iter().map(FlatStore::heap_bytes).sum::<usize>()
            })
    }

    fn decode_snapshot(bytes: &[u8], map: Option<&Arc<MapRegion>>) -> Result<Self, SnapshotError> {
        let sections = parse_typed::<E>(bytes, KIND_DYNAMIC)?;
        let model: QseModel<O> = decode_model(sections.get(SEC_MODEL)?)?;
        let embedding = model.embedding();
        let dim = model.dim();
        let params = decode_params::<E>(dim, sections.get(SEC_PARAMS)?)?;
        let vectors = decode_store::<E>(
            "store",
            sections.get(SEC_STORE)?,
            params.clone(),
            sections.source(SEC_STORE, map),
        )?;
        if vectors.dim() != dim {
            return Err(corrupt(
                "store",
                format!("store dim {} does not match model dim {dim}", vectors.dim()),
            ));
        }
        let p_scale = decode_knobs_plain(sections.get(SEC_KNOBS)?)?;
        let objects: Vec<O> = decode_objects(sections.get(SEC_OBJECTS)?)?;
        if objects.len() != vectors.len() {
            return Err(corrupt(
                "objects",
                format!("{} objects for {} store rows", objects.len(), vectors.len()),
            ));
        }
        let routing = match sections.get_opt(SEC_ROUTING) {
            None => None,
            Some(config_bytes) => {
                let config = decode_routing_config(config_bytes)?;
                let parts = decode_routed_parts::<E>(&sections, dim, &params, objects.len(), map)?;
                let locs = decode_locs(sections.get(SEC_LOCS)?)?;
                if locs.len() != objects.len() {
                    return Err(corrupt(
                        "locs",
                        format!("{} locs for {} objects", locs.len(), objects.len()),
                    ));
                }
                for (g, &(cell, pos)) in locs.iter().enumerate() {
                    if cell >= parts.ids.len()
                        || pos >= parts.ids[cell].len()
                        || parts.ids[cell][pos] != g
                    {
                        return Err(corrupt(
                            "locs",
                            format!("locs is not the inverse of ids at global id {g}"),
                        ));
                    }
                }
                Some(RoutingState {
                    router: parts.router,
                    cells: parts.cells,
                    // The routing state mutates its id lists on every
                    // insert/remove, so mapped lists materialize here
                    // (the cell *stores* stay mapped until first write).
                    ids: parts.ids.into_iter().map(IdList::into_owned).collect(),
                    locs,
                    config,
                })
            }
        };
        Ok(Self {
            model,
            embedding,
            objects,
            vectors,
            p_scale,
            routing,
        })
    }

    /// [`Self::to_snapshot_bytes`] written to `path`.
    ///
    /// # Errors
    /// As [`Self::to_snapshot_bytes`], plus [`SnapshotError::Io`].
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        std::fs::write(path, self.to_snapshot_bytes()?)?;
        Ok(())
    }

    /// [`Self::from_snapshot_bytes`] read from `path`.
    ///
    /// # Errors
    /// As [`Self::from_snapshot_bytes`], plus [`SnapshotError::Io`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        Self::from_snapshot_bytes(&std::fs::read(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section_checksum_is_deterministic_and_bit_sensitive() {
        // Deterministic, and the length fold separates all-zero inputs
        // of different sizes (a truncated padded payload never verifies).
        let zeros = vec![0u8; 256];
        assert_eq!(section_checksum(&zeros), section_checksum(&zeros));
        assert_ne!(section_checksum(&zeros[..248]), section_checksum(&zeros));
        assert_ne!(section_checksum(&[]), section_checksum(&[0]));
        // Any single-bit flip changes the checksum, wherever it lands:
        // every lane of the 64-byte group stripe, the sub-group byte
        // tail, and the trailing padding region are all covered.
        let base: Vec<u8> = (0..200u16).map(|i| (i * 37 % 251) as u8).collect();
        let h = section_checksum(&base);
        for pos in [0, 7, 8, 63, 64, 127, 128, 191, 192, 199] {
            for bit in [0, 4, 7] {
                let mut flipped = base.clone();
                flipped[pos] ^= 1 << bit;
                assert_ne!(
                    section_checksum(&flipped),
                    h,
                    "flip at byte {pos} bit {bit} must change the checksum"
                );
            }
        }
    }

    #[test]
    fn writer_produces_aligned_sections() {
        let mut w = Writer::new(KIND_STATIC, 1);
        w.section(SEC_MODEL, vec![1, 2, 3]); // 3 bytes -> padded to 8
        w.section(SEC_KNOBS, vec![0; 8]);
        let bytes = w.finish();
        let sections = snapshot_sections(&bytes).unwrap();
        assert_eq!(sections.len(), 2);
        for (name, range) in &sections {
            assert_eq!(range.start % 8, 0, "section `{name}` must start aligned");
        }
        assert_eq!(sections[0], ("model", 72..75));
        assert_eq!(sections[1], ("knobs", 80..88));
        assert_eq!(bytes.len(), 88);
    }

    #[test]
    fn empty_and_garbage_bytes_fail_typed() {
        assert!(matches!(
            snapshot_sections(&[]),
            Err(SnapshotError::Truncated { .. })
        ));
        assert!(matches!(
            snapshot_sections(&[0xAB; 64]),
            Err(SnapshotError::BadMagic)
        ));
    }
}
