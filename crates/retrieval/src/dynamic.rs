//! Dynamic datasets (Section 7.1).
//!
//! The paper notes that adding or removing database objects online is
//! straightforward as long as the underlying distribution does not change:
//! inserting an object only requires embedding it (at most `2d` exact
//! distances); removing one only drops its vector. If the distribution *does*
//! drift, the recommended check is to re-measure the classification error of
//! `F̃_out` on freshly drawn triples and retrain once it exceeds a threshold.
//! [`DynamicIndex`] implements exactly that protocol on top of a trained
//! [`QseModel`].

use crate::error::{check_query_params, QueryError};
use crate::filter_refine::{tiled_query_pipeline, top_p_by_score, FilterElem, FlatStore};
use crate::knn::knn;
use crate::routed::{probe_prefix, top_ids_by_score, RoutedConfig};
use qse_core::{QseModel, TripleSampler};
use qse_distance::{DistanceMatrix, DistanceMeasure};
use qse_embedding::{CompositeEmbedding, Embedding, KMeans, KMeansConfig};
use rand::Rng;
use rayon::prelude::*;

/// A dynamically maintained, query-sensitive filter-and-refine index.
///
/// Generic over the filter-store precision `E` ([`FilterElem`]; exact
/// `f64` by default — see `crate::filter_refine`). With a lossy backend,
/// online [`DynamicIndex::insert`]s encode under the grid fitted over the
/// *initial* database (values outside it saturate), which is exactly the
/// paper's dynamic-dataset assumption: online updates are sound while the
/// distribution does not drift. When [`DynamicIndex::check_drift`] *does*
/// flag drift, the index recovers **in place**: [`DynamicIndex::retrain`]
/// swaps in a freshly trained model and re-embeds, and
/// [`DynamicIndex::refit_store`] re-fits the quantization grid over the
/// *current* database and re-encodes every row — no manual rebuild, no
/// index identity change. Filter scans dispatch through the backend's
/// `FilterElem::scan_filter` hook (decode path for the exact backends,
/// the in-domain integer SAD kernel for `u8`; see `qse_distance::sad`).
pub struct DynamicIndex<O, E: FilterElem = f64> {
    pub(crate) model: QseModel<O>,
    pub(crate) embedding: CompositeEmbedding<O>,
    pub(crate) objects: Vec<O>,
    pub(crate) vectors: FlatStore<E>,
    pub(crate) p_scale: f64,
    pub(crate) routing: Option<RoutingState<E>>,
}

/// The cluster-routing metadata of a [`DynamicIndex`] with routing
/// enabled (see [`DynamicIndex::enable_routing`]): the fitted coarse
/// quantizer plus per-cell stores mirroring the main store — every cell
/// encodes under the **main store's** fitted parameters, so per-cell
/// filter scores stay bit-identical to the full scan's.
///
/// Online edits keep this consistent incrementally: inserts land in the
/// nearest cell, removes repair both the cell-local and the global
/// swap-remove relabelings. [`DynamicIndex::refit_store`] /
/// [`DynamicIndex::retrain`] re-run the seeded k-means from scratch —
/// the natural compaction point after drift.
pub(crate) struct RoutingState<E: FilterElem> {
    pub(crate) router: KMeans,
    pub(crate) cells: Vec<FlatStore<E>>,
    /// `ids[c][j]` is the global id of row `j` of cell `c`.
    pub(crate) ids: Vec<Vec<usize>>,
    /// `locs[g]` is `(cell, row-within-cell)` of global id `g` — the
    /// inverse of `ids`, kept exact through every edit.
    pub(crate) locs: Vec<(usize, usize)>,
    pub(crate) config: RoutedConfig,
}

/// The result of an embedding-drift check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftReport {
    /// Fraction of freshly sampled triples the current model misclassifies.
    pub triple_error: f64,
    /// Whether the error exceeded the caller's threshold (i.e. the embedding
    /// should be retrained).
    pub needs_retraining: bool,
}

impl<O: Clone + Send + Sync> DynamicIndex<O> {
    /// Build the index from a trained model and an initial database, with
    /// the exact `f64` filter store.
    pub fn new(model: QseModel<O>, database: Vec<O>, distance: &dyn DistanceMeasure<O>) -> Self {
        Self::with_store(model, database, distance)
    }
}

impl<O: Clone + Send + Sync, E: FilterElem> DynamicIndex<O, E> {
    /// Build the index with an explicit filter-store precision `E` — e.g.
    /// `DynamicIndex::<_, u8>::with_store(...)`. Lossy backends fit their
    /// encode parameters over the initial database (a database that starts
    /// empty gets the backend's default grid; prefer seeding with
    /// representative data when quantizing).
    pub fn with_store(
        model: QseModel<O>,
        database: Vec<O>,
        distance: &dyn DistanceMeasure<O>,
    ) -> Self {
        let embedding = model.embedding();
        // The explicit dimensionality matters when `database` is empty: the
        // store must still accept `model.dim()`-wide rows from `insert`
        // (embed_store carries the embedding's dim through).
        let vectors = embedding.embed_store(&database, distance);
        Self {
            model,
            embedding,
            objects: database,
            vectors,
            p_scale: E::DEFAULT_P_SCALE,
            routing: None,
        }
    }

    /// Enable cluster routing (see `crate::routed`): fit the seeded
    /// k-means of `config` over the current embedded database and build
    /// the per-cell stores. Subsequent [`Self::retrieve`] /
    /// [`Self::retrieve_batch`] calls scan only each query's nearest
    /// `n_probe` cells; at `n_probe == cells` they stay bit-identical to
    /// the unrouted full scan. Costs `len() ·`
    /// [`QseModel::embedding_cost`] exact distances (one re-embedding
    /// pass), and the cell stores mirror the main store's rows (the
    /// memory price of routing; the main store remains the source of
    /// truth for the unrouted paths and future refits).
    ///
    /// Online [`Self::insert`]s land in the nearest cell and
    /// [`Self::remove`]s repair the metadata in place;
    /// [`Self::refit_store`] and [`Self::retrain`] re-run the k-means
    /// under the same config — the natural compaction point once
    /// [`Self::check_drift`] flags drift.
    ///
    /// # Panics
    /// Panics if the index is empty or `config` is degenerate
    /// (`cells == 0`, `n_probe == 0`).
    pub fn enable_routing(&mut self, config: RoutedConfig, distance: &dyn DistanceMeasure<O>) {
        assert!(!self.objects.is_empty(), "cannot route an empty index");
        assert!(config.cells >= 1, "cells must be at least 1");
        assert!(config.n_probe >= 1, "n_probe must be at least 1");
        self.routing = Some(Self::fit_routing(
            &self.embedding,
            &self.objects,
            self.vectors.params().clone(),
            config,
            distance,
        ));
    }

    /// Drop the routing layer; retrieval reverts to the full scan.
    pub fn disable_routing(&mut self) {
        self.routing = None;
    }

    /// `(cells, n_probe)` of the routing layer, if enabled.
    pub fn routing(&self) -> Option<(usize, usize)> {
        self.routing
            .as_ref()
            .map(|r| (r.cells.len(), r.config.n_probe.min(r.cells.len())))
    }

    /// Change how many cells each routed query visits.
    ///
    /// # Panics
    /// Panics if routing is not enabled or `n_probe` is outside
    /// `1..=cells` (the fallible form is
    /// [`Self::try_set_routing_n_probe`]).
    pub fn set_routing_n_probe(&mut self, n_probe: usize) {
        self.try_set_routing_n_probe(n_probe)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible [`Self::set_routing_n_probe`]:
    /// [`QueryError::RoutingDisabled`] when routing is not enabled,
    /// [`QueryError::BadNProbe`] when `n_probe` is outside `1..=cells` —
    /// in both cases the knob is left untouched.
    pub fn try_set_routing_n_probe(&mut self, n_probe: usize) -> Result<(), QueryError> {
        let routing = self.routing.as_mut().ok_or(QueryError::RoutingDisabled)?;
        if n_probe < 1 || n_probe > routing.cells.len() {
            return Err(QueryError::BadNProbe {
                n_probe,
                cells: routing.cells.len(),
            });
        }
        routing.config.n_probe = n_probe;
        Ok(())
    }

    /// Fit a fresh routing state over the current database: re-embed
    /// (parallel), k-means with the stored seed, partition — with every
    /// cell store encoding under `params` (the main store's grid, for
    /// bit-compatibility with the full scan).
    fn fit_routing(
        embedding: &CompositeEmbedding<O>,
        objects: &[O],
        params: E::Params,
        config: RoutedConfig,
        distance: &dyn DistanceMeasure<O>,
    ) -> RoutingState<E> {
        let dim = embedding.dim();
        let rows = embedding.embed_all(objects, distance);
        let flat = crate::filter_refine::FlatVectors::from_rows_with_dim(dim, rows.clone());
        let router = KMeans::fit(
            &flat,
            KMeansConfig {
                cells: config.cells,
                seed: config.seed,
                max_iters: config.max_iters,
            },
        );
        let assignment = router.assign_all(&flat);
        let c = router.cells();
        let mut cell_rows: Vec<Vec<Vec<f64>>> = vec![Vec::new(); c];
        let mut ids: Vec<Vec<usize>> = vec![Vec::new(); c];
        let mut locs = vec![(0usize, 0usize); objects.len()];
        for (g, row) in rows.into_iter().enumerate() {
            let cell = assignment[g];
            locs[g] = (cell, ids[cell].len());
            cell_rows[cell].push(row);
            ids[cell].push(g);
        }
        let cells = cell_rows
            .into_iter()
            .map(|r| FlatStore::from_rows_with_params(dim, r, params.clone()))
            .collect();
        RoutingState {
            router,
            cells,
            ids,
            locs,
            config,
        }
    }

    /// Set the filter oversampling factor: the retrieve paths keep
    /// `⌈p · p_scale⌉` filter candidates (capped at the current database
    /// size) while still validating against the caller's `p`. Useful with
    /// quantized stores; the starting value is the backend's
    /// [`FilterElem::DEFAULT_P_SCALE`] (`1.0` for `f64`/`f32`, `2.0` for
    /// `u8` — see `crate::filter_refine`), and `1.0` leaves every path
    /// untouched.
    ///
    /// # Panics
    /// Panics if `p_scale` is not finite or is below `1.0` (the fallible
    /// form is [`Self::try_with_p_scale`]).
    pub fn with_p_scale(self, p_scale: f64) -> Self {
        self.try_with_p_scale(p_scale)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Self::with_p_scale`]: the index back with the factor
    /// applied, or [`QueryError::BadPScale`] — for server config/reload
    /// paths, where a bad knob must be an error, not a process death.
    pub fn try_with_p_scale(mut self, p_scale: f64) -> Result<Self, QueryError> {
        crate::error::check_p_scale(p_scale)?;
        self.p_scale = p_scale;
        Ok(self)
    }

    /// The current filter oversampling factor (see [`Self::with_p_scale`]).
    pub fn p_scale(&self) -> f64 {
        self.p_scale
    }

    /// The shared `filter_refine::effective_p` under this index's
    /// oversampling factor, against the *current* database size.
    fn effective_p(&self, p: usize) -> usize {
        crate::filter_refine::effective_p(p, self.p_scale, self.objects.len())
    }

    /// Number of objects currently indexed.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// `true` if the index holds no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// The underlying model.
    pub fn model(&self) -> &QseModel<O> {
        &self.model
    }

    /// The objects currently indexed, in global-id order ([`Self::retrieve`]
    /// returns indices into this slice). A dynamic index owns its
    /// collection, so callers serving it (which must report exact
    /// distances alongside neighbor ids) read the objects from here
    /// instead of carrying a parallel copy.
    pub fn objects(&self) -> &[O] {
        &self.objects
    }

    /// The embedded database vectors (flat row-major storage in the
    /// index's filter precision, encoded under the currently fitted
    /// parameters — see [`Self::refit_store`]).
    pub fn vectors(&self) -> &FlatStore<E> {
        &self.vectors
    }

    /// Insert an object online. Costs [`QseModel::embedding_cost`] exact
    /// distance computations (at most `2d`, as stated in Section 7.1).
    /// Returns the index assigned to the object.
    pub fn insert(&mut self, object: O, distance: &dyn DistanceMeasure<O>) -> usize {
        let vector = self.embedding.embed(&object, distance);
        self.objects.push(object);
        self.vectors.push(&vector);
        let gid = self.objects.len() - 1;
        if let Some(r) = &mut self.routing {
            // Routing stays consistent online: the new object lands in the
            // cell of its nearest centroid (centroids are not moved — the
            // coarse quantizer is only refreshed by refit_store/retrain).
            let cell = r.router.assign(&vector);
            r.locs.push((cell, r.ids[cell].len()));
            r.cells[cell].push(&vector);
            r.ids[cell].push(gid);
        }
        gid
    }

    /// Remove the object at `index` (swap-remove; the last object takes its
    /// slot). Returns the removed object.
    ///
    /// # Panics
    /// Panics if `index` is out of bounds.
    pub fn remove(&mut self, index: usize) -> O {
        assert!(index < self.objects.len(), "index {index} out of bounds");
        self.vectors.swap_remove(index);
        if let Some(r) = &mut self.routing {
            // Two swap-removes to repair: the removed row's cell compacts
            // (its last row moves into `pos`), and the *global* id space
            // compacts (the last object takes id `index`).
            let (cell, pos) = r.locs[index];
            r.cells[cell].swap_remove(pos);
            r.ids[cell].swap_remove(pos);
            if pos < r.ids[cell].len() {
                r.locs[r.ids[cell][pos]] = (cell, pos);
            }
            r.locs.swap_remove(index);
            if index < r.locs.len() {
                let (c2, p2) = r.locs[index];
                r.ids[c2][p2] = index;
            }
        }
        self.objects.swap_remove(index)
    }

    /// Re-fit the filter store over the **current** database: re-embed
    /// every object under the index's model and rebuild the store —
    /// which, for a lossy backend, refits the encode parameters (the `u8`
    /// quantization grid) to the data actually indexed *now* and
    /// re-encodes every row under them.
    ///
    /// This is the recovery half of the drift protocol for quantized
    /// stores: online [`Self::insert`]s encode under the grid fitted at
    /// construction and **saturate** outside it, so after sustained
    /// distribution drift the filter can no longer separate the drifted
    /// region (many objects collapse onto the grid edge). One
    /// `refit_store` restores full filter resolution without touching the
    /// model or the index identity. Costs `len() ·`
    /// [`QseModel::embedding_cost`] exact distance computations; object
    /// indices are unchanged.
    ///
    /// On the exact backends this recomputes the same store (no fit
    /// parameters to move) and is a no-op in effect.
    ///
    /// With routing enabled this is also the routing **compaction point**:
    /// the seeded k-means re-runs under the stored [`RoutedConfig`] over
    /// the current database, so cells drifted out of shape by online edits
    /// snap back to the data actually indexed now. (If every object has
    /// been removed, routing is dropped — re-enable it after re-seeding.)
    pub fn refit_store(&mut self, distance: &dyn DistanceMeasure<O>) {
        self.vectors = self.embedding.embed_store(&self.objects, distance);
        if let Some(r) = self.routing.take() {
            if !self.objects.is_empty() {
                self.routing = Some(Self::fit_routing(
                    &self.embedding,
                    &self.objects,
                    self.vectors.params().clone(),
                    r.config,
                    distance,
                ));
            }
        }
    }

    /// Swap in a newly trained model and rebuild the index state under it:
    /// re-embed the **current** database with the new model's `F_out` and
    /// refit the filter store (including, for lossy backends, the
    /// quantization grid — see [`Self::refit_store`]).
    ///
    /// This completes the drift protocol of Section 7.1 **in place**:
    /// [`Self::check_drift`] flags that the embedding no longer models the
    /// current distribution, the caller trains a replacement model on
    /// fresh data (training needs a trainer, a triple sampler and exact
    /// distances, so it stays outside the index), and `retrain` installs
    /// it — objects, indices and the `p_scale` knob all survive. Costs
    /// `len() ·` [`QseModel::embedding_cost`] exact distance computations
    /// (under the *new* model's cost).
    pub fn retrain(&mut self, model: QseModel<O>, distance: &dyn DistanceMeasure<O>) {
        self.embedding = model.embedding();
        self.model = model;
        self.refit_store(distance);
    }

    /// Filter-and-refine retrieval of the `k` approximate nearest neighbors,
    /// keeping `p` filter candidates.
    ///
    /// With routing enabled (see [`Self::enable_routing`]) the filter scan
    /// covers only the `n_probe` cells whose centroids are nearest to the
    /// query under its own query-sensitive filter distance; at
    /// `n_probe == cells` the candidate set — and hence the result — is
    /// bit-identical to the unrouted scan.
    ///
    /// # Panics
    /// Panics if the index is empty or `p < k` or `p > len()` (the
    /// fallible form is [`Self::try_retrieve`]).
    pub fn retrieve(
        &self,
        query: &O,
        distance: &dyn DistanceMeasure<O>,
        k: usize,
        p: usize,
    ) -> Vec<usize> {
        self.try_retrieve(query, distance, k, p)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Self::retrieve`]: the neighbor ids, or a typed
    /// [`QueryError`] for any parameter the asserting form would panic
    /// on — the entry point a serving layer calls so a malformed request
    /// is an error response, never an unwinding thread.
    ///
    /// # Errors
    /// [`QueryError::EmptyIndex`] when every object has been removed,
    /// [`QueryError::BadK`] when `k` is zero, and [`QueryError::BadP`]
    /// when `p` is outside `k..=len()`.
    pub fn try_retrieve(
        &self,
        query: &O,
        distance: &dyn DistanceMeasure<O>,
        k: usize,
        p: usize,
    ) -> Result<Vec<usize>, QueryError> {
        self.validate(k, p)?;
        let eq = self.model.embed_query(query, distance);
        if let Some(r) = &self.routing {
            // Routed path: rank centroids by the query's filter distance,
            // scan only the nearest n_probe cells (each a FlatStore in the
            // index's precision, scored by the same backend-dispatched
            // kernel), select under the global-id total order.
            let c = r.cells.len();
            let n_probe = r.config.n_probe.min(c);
            let mut cell_scores = vec![0.0; c];
            for (i, s) in cell_scores.iter_mut().enumerate() {
                *s = eq.distance_to(r.router.centroids().row(i));
            }
            // Rank all cells and extend past n_probe while the visited
            // pool holds fewer than k rows: online removes can empty a
            // cell, and a query routed only into emptied cells must not
            // starve the refine step (see `routed::probe_prefix`).
            let ranked = top_p_by_score(&cell_scores, c);
            let visited = probe_prefix(&ranked, &r.cells, n_probe, k);
            let pool: usize = visited.iter().map(|&v| r.cells[v].len()).sum();
            let mut scores = Vec::with_capacity(pool);
            let mut gids = Vec::with_capacity(pool);
            for &v in &visited {
                let start = scores.len();
                scores.resize(start + r.cells[v].len(), 0.0);
                eq.score_filter(&r.cells[v], &mut scores[start..]);
                gids.extend_from_slice(&r.ids[v]);
            }
            let keep = self.effective_p(p).min(pool);
            let order = top_ids_by_score(&scores, &gids, keep);
            return Ok(self.refine(query, distance, k, &order));
        }
        // Filter step: one backend-dispatched pass over the flat storage
        // (the blocked weighted-L1 kernel for the exact backends, the
        // integer SAD kernel for u8) + O(n) selection of the best p
        // (NaN-safe, ties broken by index) — exactly the static index's
        // hot path.
        let mut scores = vec![0.0; self.vectors.len()];
        eq.score_filter(&self.vectors, &mut scores);
        let order = top_p_by_score(&scores, self.effective_p(p));
        Ok(self.refine(query, distance, k, &order))
    }

    /// The shared request validation of the retrieve paths: a non-empty
    /// index, then `k`/`p` against the current database size.
    fn validate(&self, k: usize, p: usize) -> Result<(), QueryError> {
        if self.objects.is_empty() {
            return Err(QueryError::EmptyIndex);
        }
        check_query_params(k, p, self.objects.len())
    }

    /// The refine step shared by [`Self::retrieve`] and
    /// [`Self::retrieve_batch`]: exact k-NN over the filter candidates,
    /// mapped back to index-space ids. One routine on both paths keeps the
    /// batched pipeline *provably* identical to the sequential one.
    fn refine(
        &self,
        query: &O,
        distance: &dyn DistanceMeasure<O>,
        k: usize,
        order: &[usize],
    ) -> Vec<usize> {
        let candidates: Vec<O> = order.iter().map(|&i| self.objects[i].clone()).collect();
        let refined = knn(query, &candidates, distance, k);
        refined.neighbors.into_iter().map(|i| order[i]).collect()
    }

    /// Batched filter-and-refine retrieval through the Q×N tiled pipeline:
    /// batch-embed every query (coordinates + per-query weights in flat
    /// storage), then cut the batch into
    /// [`QUERY_TILE`](qse_distance::vector::QUERY_TILE)-query tiles that run
    /// in parallel on the persistent worker pool — each tile scores its
    /// queries with one tiled pass over the flat store and immediately runs
    /// top-p selection and the exact refine step on its still-hot score
    /// rows.
    ///
    /// Results are in query order and identical to calling
    /// [`Self::retrieve`] per query, at any thread count — including after
    /// online [`Self::insert`]s and [`Self::remove`]s, which the flat store
    /// absorbs by push/swap-remove. Queries repeated within one pipeline
    /// tile reuse the first occurrence's result through the duplicate-query
    /// memo (see `filter_refine::tiled_query_pipeline`), skipping their
    /// redundant exact-distance refine step. An empty query batch returns
    /// an empty vector.
    ///
    /// # Panics
    /// As [`Self::retrieve`] (when the batch is non-empty; the fallible
    /// form is [`Self::try_retrieve_batch`]).
    pub fn retrieve_batch(
        &self,
        queries: &[O],
        distance: &dyn DistanceMeasure<O>,
        k: usize,
        p: usize,
    ) -> Vec<Vec<usize>>
    where
        O: PartialEq,
    {
        if queries.is_empty() {
            return Vec::new();
        }
        self.try_retrieve_batch(queries, distance, k, p)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Self::retrieve_batch`]: one neighbor list per query in
    /// query order, or a typed [`QueryError`] — including
    /// [`QueryError::EmptyBatch`] for a zero-query batch, which the
    /// asserting form instead maps to an empty result vector.
    ///
    /// # Errors
    /// As [`Self::try_retrieve`], plus [`QueryError::EmptyBatch`].
    pub fn try_retrieve_batch(
        &self,
        queries: &[O],
        distance: &dyn DistanceMeasure<O>,
        k: usize,
        p: usize,
    ) -> Result<Vec<Vec<usize>>, QueryError>
    where
        O: PartialEq,
    {
        if queries.is_empty() {
            return Err(QueryError::EmptyBatch);
        }
        self.validate(k, p)?;
        if self.routing.is_some() {
            // Routed path: per-query routed retrieval, parallel over the
            // batch. Each query touches only its n_probe cells, so the
            // dense Q×N tiling of the unrouted path (whose tiles want every
            // query to scan the same rows) buys nothing here; the static
            // `RoutedIndex` owns the grouped-by-cell batched kernel.
            return Ok(queries
                .par_iter()
                .map(|q| self.retrieve(q, distance, k, p))
                .collect());
        }
        let batch = self.model.embed_queries(queries, distance);
        Ok(tiled_query_pipeline(
            queries.len(),
            self.vectors.len(),
            self.effective_p(p),
            |a, b| queries[a] == queries[b],
            |q0, q1, scores| batch.score_filter_batch_range(q0, q1, &self.vectors, scores),
            |q, _row, order| self.refine(&queries[q], distance, k, order),
        ))
    }

    /// The drift check of Section 7.1: sample `triple_count` triples from the
    /// *current* database with the selective sampler (parameter `k1`),
    /// measure the fraction the model's classifier gets wrong, and compare it
    /// against `error_threshold`.
    ///
    /// The check spends `sample_size²` exact distance computations (on the
    /// sampled subset), which is what makes it suitable for periodic,
    /// amortised execution.
    pub fn check_drift<R: Rng>(
        &self,
        distance: &dyn DistanceMeasure<O>,
        sample_size: usize,
        triple_count: usize,
        k1: usize,
        error_threshold: f64,
        rng: &mut R,
    ) -> DriftReport {
        assert!(
            sample_size >= 3,
            "need at least 3 objects to sample triples"
        );
        assert!(
            !self.objects.is_empty(),
            "cannot check drift of an empty index"
        );
        let sample_size = sample_size.min(self.objects.len());
        // Sample a subset of the current database.
        let mut indices: Vec<usize> = (0..self.objects.len()).collect();
        for i in 0..sample_size {
            let j = rng.gen_range(i..indices.len());
            indices.swap(i, j);
        }
        indices.truncate(sample_size);
        let sample: Vec<O> = indices.iter().map(|&i| self.objects[i].clone()).collect();
        let matrix = DistanceMatrix::all_pairs(&sample, &distance, 1);
        let k1 = k1.min(sample_size.saturating_sub(2)).max(1);
        let triples = TripleSampler::selective(k1).sample(&matrix, triple_count, rng);

        let embedded: Vec<Vec<f64>> = self.embedding.embed_all(&sample, distance);
        let mut errors = 0.0;
        for t in &triples {
            let h = self
                .model
                .classify_embedded(&embedded[t.q], &embedded[t.a], &embedded[t.b]);
            if h == 0.0 {
                errors += 0.5;
            } else if (h > 0.0) != (t.label == 1) {
                errors += 1.0;
            }
        }
        let triple_error = errors / triples.len() as f64;
        DriftReport {
            triple_error,
            needs_retraining: triple_error > error_threshold,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qse_core::{BoostMapTrainer, TrainerConfig, TrainingData};
    use qse_distance::traits::{FnDistance, MetricProperties};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn euclid() -> FnDistance<impl Fn(&Vec<f64>, &Vec<f64>) -> f64 + Send + Sync> {
        FnDistance::new(
            "euclid",
            MetricProperties::Metric,
            |a: &Vec<f64>, b: &Vec<f64>| {
                a.iter()
                    .zip(b)
                    .map(|(x, y)| (x - y) * (x - y))
                    .sum::<f64>()
                    .sqrt()
            },
        )
    }

    fn two_cluster_db(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    vec![i as f64 * 0.01, 0.0]
                } else {
                    vec![20.0 + i as f64 * 0.01, 5.0]
                }
            })
            .collect()
    }

    fn trained_index(seed: u64) -> (DynamicIndex<Vec<f64>>, Vec<Vec<f64>>) {
        let db = two_cluster_db(60);
        let d = euclid();
        let data = TrainingData::precompute(db.clone(), db.clone(), &d, 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let triples = TripleSampler::selective(4).sample(&data.train_to_train, 250, &mut rng);
        let model = BoostMapTrainer::new(TrainerConfig::quick()).train(&data, &triples, &mut rng);
        (DynamicIndex::new(model, db.clone(), &d), db)
    }

    #[test]
    fn insert_and_remove_maintain_consistency() {
        let (mut index, _) = trained_index(1);
        let d = euclid();
        let before = index.len();
        let id = index.insert(vec![0.05, 0.0], &d);
        assert_eq!(index.len(), before + 1);
        assert_eq!(id, before);
        let removed = index.remove(0);
        assert_eq!(index.len(), before);
        assert_eq!(removed, vec![0.0, 0.0]);
    }

    #[test]
    fn retrieval_finds_an_inserted_duplicate() {
        let (mut index, _) = trained_index(2);
        let d = euclid();
        let query = vec![0.123, 0.0];
        let inserted = index.insert(query.clone(), &d);
        let result = index.retrieve(&query, &d, 1, 10);
        assert_eq!(result[0], inserted, "the exact duplicate must be the 1-NN");
    }

    #[test]
    fn drift_is_low_on_the_training_distribution() {
        let (index, _) = trained_index(3);
        let d = euclid();
        let mut rng = StdRng::seed_from_u64(4);
        let report = index.check_drift(&d, 40, 200, 4, 0.4, &mut rng);
        assert!(
            report.triple_error < 0.4,
            "unexpected drift {}",
            report.triple_error
        );
        assert!(!report.needs_retraining);
    }

    #[test]
    fn drift_is_detected_after_the_distribution_shifts() {
        let (mut index, _) = trained_index(5);
        let d = euclid();
        // Replace the database with objects from a region the model never
        // saw; its reference objects carry little information there.
        for _ in 0..index.len() {
            index.remove(0);
        }
        let mut rng = StdRng::seed_from_u64(6);
        for i in 0..60 {
            index.insert(
                vec![500.0 + (i % 7) as f64 * 0.3, 400.0 + (i % 5) as f64 * 0.2],
                &d,
            );
        }
        let shifted = index.check_drift(&d, 40, 300, 4, 0.0, &mut rng);
        // With threshold 0 any nonzero error flags retraining; the point is
        // that the error is substantially worse than on the original data.
        let (fresh_index, _) = trained_index(5);
        let baseline = fresh_index.check_drift(&d, 40, 300, 4, 0.0, &mut StdRng::seed_from_u64(7));
        assert!(
            shifted.triple_error >= baseline.triple_error,
            "shifted error {} should be at least baseline {}",
            shifted.triple_error,
            baseline.triple_error
        );
    }

    #[test]
    fn retrieve_batch_matches_sequential_retrieval_including_after_edits() {
        let (mut index, _) = trained_index(10);
        let d = euclid();
        let queries: Vec<Vec<f64>> = (0..9)
            .map(|i| vec![i as f64 * 2.5, (i % 3) as f64])
            .collect();
        let check = |index: &DynamicIndex<Vec<f64>>, label: &str| {
            let sequential: Vec<Vec<usize>> = queries
                .iter()
                .map(|q| index.retrieve(q, &d, 2, 8))
                .collect();
            assert_eq!(
                index.retrieve_batch(&queries, &d, 2, 8),
                sequential,
                "{label}"
            );
        };
        check(&index, "freshly built");
        for i in 0..4 {
            index.insert(vec![0.5 + i as f64 * 0.01, 0.2], &d);
        }
        check(&index, "after inserts");
        index.remove(0);
        index.remove(index.len() - 1);
        index.remove(7);
        check(&index, "after removes");
    }

    #[test]
    fn retrieve_batch_on_empty_query_batch_returns_empty() {
        let (index, _) = trained_index(11);
        let d = euclid();
        let empty: Vec<Vec<f64>> = Vec::new();
        assert!(index.retrieve_batch(&empty, &d, 1, 5).is_empty());
        // Zero sequential calls panic on nothing, even with invalid k/p.
        assert!(index.retrieve_batch(&empty, &d, 9, 2).is_empty());
    }

    #[test]
    #[should_panic(expected = "p = 2 must be at least k = 5")]
    fn retrieve_batch_rejects_invalid_parameters() {
        let (index, _) = trained_index(12);
        let d = euclid();
        let _ = index.retrieve_batch(&[vec![0.0, 0.0]], &d, 5, 2);
    }

    #[test]
    fn try_api_returns_typed_errors_instead_of_panicking() {
        let (mut index, _) = trained_index(13);
        let d = euclid();
        let q = vec![0.0, 0.0];
        let n = index.len();
        assert_eq!(
            index.try_retrieve(&q, &d, 0, 5),
            Err(QueryError::BadK { k: 0 })
        );
        assert_eq!(
            index.try_retrieve(&q, &d, 5, 2),
            Err(QueryError::BadP { k: 5, p: 2, max: n })
        );
        assert_eq!(
            index.try_retrieve(&q, &d, 1, n + 1),
            Err(QueryError::BadP {
                k: 1,
                p: n + 1,
                max: n
            })
        );
        assert_eq!(
            index.try_retrieve_batch(&[], &d, 1, 5),
            Err(QueryError::EmptyBatch)
        );
        assert_eq!(
            index.try_set_routing_n_probe(1),
            Err(QueryError::RoutingDisabled)
        );
        index.enable_routing(
            RoutedConfig {
                cells: 4,
                n_probe: 2,
                ..RoutedConfig::default()
            },
            &d,
        );
        assert_eq!(
            index.try_set_routing_n_probe(9),
            Err(QueryError::BadNProbe {
                n_probe: 9,
                cells: 4
            })
        );
        assert_eq!(index.routing(), Some((4, 2)), "failed sets leave the knob");
        assert!(index.try_set_routing_n_probe(4).is_ok());
        // The happy path matches the asserting API exactly.
        assert_eq!(
            index.try_retrieve(&q, &d, 2, 8).unwrap(),
            index.retrieve(&q, &d, 2, 8)
        );
        assert_eq!(
            index
                .try_retrieve_batch(std::slice::from_ref(&q), &d, 2, 8)
                .unwrap(),
            index.retrieve_batch(std::slice::from_ref(&q), &d, 2, 8)
        );
        // A churned-empty index reports EmptyIndex rather than panicking.
        for _ in 0..index.len() {
            index.remove(0);
        }
        assert_eq!(
            index.try_retrieve(&q, &d, 1, 1),
            Err(QueryError::EmptyIndex)
        );
        // p_scale setters reject bad factors with the typed error.
        assert!(matches!(
            index.try_with_p_scale(f64::NAN),
            Err(QueryError::BadPScale { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn remove_checks_bounds() {
        let (mut index, _) = trained_index(8);
        let n = index.len();
        let _ = index.remove(n);
    }

    /// Exhaustively check the routing metadata invariants: `locs` is the
    /// exact inverse of `ids`, every cell's store row mirrors the main
    /// store's row for the same global id, and the partition covers the
    /// database exactly once.
    fn assert_routing_consistent(index: &DynamicIndex<Vec<f64>>) {
        let r = index.routing.as_ref().expect("routing enabled");
        assert_eq!(r.locs.len(), index.len());
        assert_eq!(r.cells.len(), r.ids.len());
        let total: usize = r.ids.iter().map(Vec::len).sum();
        assert_eq!(total, index.len());
        for (cell, store) in r.cells.iter().enumerate() {
            assert_eq!(store.len(), r.ids[cell].len());
        }
        for (g, &(cell, pos)) in r.locs.iter().enumerate() {
            assert_eq!(r.ids[cell][pos], g, "ids/locs out of sync at gid {g}");
            assert_eq!(
                r.cells[cell].row(pos),
                index.vectors.row(g),
                "cell row diverged from the main store at gid {g}"
            );
        }
    }

    #[test]
    fn routed_full_probe_matches_full_scan_through_churn() {
        let d = euclid();
        let (mut routed, _) = trained_index(20);
        let (mut plain, _) = trained_index(20);
        routed.enable_routing(
            RoutedConfig {
                cells: 5,
                n_probe: 5,
                ..RoutedConfig::default()
            },
            &d,
        );
        assert_eq!(routed.routing(), Some((5, 5)));
        let queries: Vec<Vec<f64>> = (0..8)
            .map(|i| vec![i as f64 * 3.0, (i % 2) as f64])
            .collect();
        let check =
            |routed: &DynamicIndex<Vec<f64>>, plain: &DynamicIndex<Vec<f64>>, label: &str| {
                for q in &queries {
                    assert_eq!(
                        routed.retrieve(q, &d, 2, 8),
                        plain.retrieve(q, &d, 2, 8),
                        "{label}"
                    );
                }
                assert_eq!(
                    routed.retrieve_batch(&queries, &d, 2, 8),
                    plain.retrieve_batch(&queries, &d, 2, 8),
                    "{label} (batch)"
                );
            };
        assert_routing_consistent(&routed);
        check(&routed, &plain, "freshly routed");
        // Churn: interleaved inserts and removes applied identically to both
        // indexes; the routed metadata must track every swap-remove.
        for i in 0..6 {
            routed.insert(vec![1.0 + i as f64 * 0.4, 0.3], &d);
            plain.insert(vec![1.0 + i as f64 * 0.4, 0.3], &d);
        }
        assert_routing_consistent(&routed);
        for index in [0usize, 17, 40] {
            assert_eq!(routed.remove(index), plain.remove(index));
            assert_routing_consistent(&routed);
        }
        let last = routed.len() - 1;
        assert_eq!(routed.remove(last), plain.remove(last));
        assert_routing_consistent(&routed);
        check(&routed, &plain, "after churn");
    }

    #[test]
    fn routed_insert_lands_in_its_nearest_cell() {
        // Two well-separated clusters, two cells: the coarse partition
        // recovers the clusters, and a single probe suffices to find an
        // inserted duplicate because it was routed to the query's own cell.
        let d = euclid();
        let (mut index, _) = trained_index(21);
        index.enable_routing(
            RoutedConfig {
                cells: 2,
                n_probe: 1,
                ..RoutedConfig::default()
            },
            &d,
        );
        let query = vec![20.3, 5.0];
        let inserted = index.insert(query.clone(), &d);
        assert_routing_consistent(&index);
        let hit = index.retrieve(&query, &d, 1, 5);
        assert_eq!(hit[0], inserted, "duplicate must be found at n_probe = 1");
        // The knob moves and reports correctly.
        index.set_routing_n_probe(2);
        assert_eq!(index.routing(), Some((2, 2)));
        assert_eq!(index.retrieve(&query, &d, 1, 5)[0], inserted);
        index.disable_routing();
        assert_eq!(index.routing(), None);
        assert_eq!(index.retrieve(&query, &d, 1, 5)[0], inserted);
    }

    #[test]
    fn drift_then_refit_rebuilds_routing_consistently() {
        // Regression for the drift protocol with routing enabled: after the
        // database drifts far from the cells fitted at enable time,
        // refit_store must re-run the seeded k-means over the *current*
        // database and leave the metadata exactly consistent.
        let d = euclid();
        let (mut index, _) = trained_index(22);
        index.enable_routing(
            RoutedConfig {
                cells: 4,
                n_probe: 4,
                ..RoutedConfig::default()
            },
            &d,
        );
        // Drift: replace most of the database with a far-away region.
        for _ in 0..40 {
            index.remove(0);
            assert_routing_consistent(&index);
        }
        for i in 0..30 {
            index.insert(vec![300.0 + (i % 6) as f64, 250.0 + (i % 4) as f64], &d);
        }
        assert_routing_consistent(&index);
        index.refit_store(&d);
        assert_eq!(index.routing(), Some((4, 4)), "refit keeps the config");
        assert_routing_consistent(&index);
        // Full-probe retrieval after the refit still matches an identically
        // churned unrouted index.
        let (mut plain, _) = trained_index(22);
        for _ in 0..40 {
            plain.remove(0);
        }
        for i in 0..30 {
            plain.insert(vec![300.0 + (i % 6) as f64, 250.0 + (i % 4) as f64], &d);
        }
        plain.refit_store(&d);
        for i in 0..6 {
            let q = vec![299.0 + i as f64, 251.0];
            assert_eq!(index.retrieve(&q, &d, 2, 10), plain.retrieve(&q, &d, 2, 10));
        }
    }

    #[test]
    #[should_panic(expected = "routing is not enabled")]
    fn set_routing_n_probe_requires_routing() {
        let (mut index, _) = trained_index(23);
        index.set_routing_n_probe(1);
    }

    #[test]
    fn index_built_over_empty_database_accepts_inserts() {
        // Regression: the flat store must carry the model's dimensionality
        // even when the initial database is empty, otherwise the first
        // insert hits a dim-0 store and panics.
        let (trained, _) = trained_index(9);
        let d = euclid();
        let model = trained.model().clone();
        let mut index = DynamicIndex::new(model, Vec::new(), &d);
        assert!(index.is_empty());
        let a = index.insert(vec![0.1, 0.0], &d);
        let b = index.insert(vec![20.5, 5.0], &d);
        assert_eq!((a, b), (0, 1));
        let hit = index.retrieve(&vec![0.0, 0.0], &d, 1, 2);
        assert_eq!(hit[0], 0);
        index.remove(0);
        assert_eq!(index.len(), 1);
    }
}
