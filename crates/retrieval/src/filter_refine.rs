//! Filter-and-refine retrieval (Section 8 of the paper).
//!
//! Given an embedding `F` (and, for query-sensitive models, the distance
//! `D_out`), retrieval of the k nearest neighbors of a query `q` proceeds in
//! three steps:
//!
//! 1. **Embedding step** — compute `F(q)` by measuring the exact distances
//!    between `q` and the embedding's reference / pivot objects.
//! 2. **Filter step** — rank the (pre-embedded) database by the cheap
//!    vector distance and keep the best `p` candidates.
//! 3. **Refine step** — measure the exact distance from `q` to each of the
//!    `p` candidates and return the best `k`.
//!
//! The per-query budget the paper reports is the number of exact distance
//! computations spent in steps 1 and 3; the filter step touches only
//! vectors. [`FilterRefineIndex`] supports both a *global* L1 filter distance
//! (FastMap, Lipschitz, original BoostMap) and the *query-sensitive*
//! weighted L1 of a trained [`QseModel`].

use qse_core::QseModel;
use qse_distance::{DistanceMeasure, LpDistance};
use qse_embedding::Embedding;
use serde::{Deserialize, Serialize};

/// How the filter step scores database vectors against the query.
enum FilterKind<O> {
    /// Plain (unweighted) L1 distance between embedded vectors.
    GlobalL1 { embedding: Box<dyn Embedding<O>> },
    /// The query-sensitive weighted L1 distance `D_out` of a trained model.
    QuerySensitive { model: QseModel<O> },
}

/// A database indexed for filter-and-refine retrieval under one embedding.
pub struct FilterRefineIndex<O> {
    kind: FilterKind<O>,
    vectors: Vec<Vec<f64>>,
}

/// The outcome of one filter-and-refine retrieval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetrievalOutcome {
    /// Indices of the k reported neighbors, best first (by exact distance).
    pub neighbors: Vec<usize>,
    /// Exact distances of the reported neighbors.
    pub distances: Vec<f64>,
    /// Exact distance computations spent embedding the query.
    pub embedding_cost: usize,
    /// Exact distance computations spent in the refine step (= p).
    pub refine_cost: usize,
}

impl RetrievalOutcome {
    /// Total exact distance computations for this query (the paper's cost
    /// metric).
    pub fn total_cost(&self) -> usize {
        self.embedding_cost + self.refine_cost
    }
}

impl<O: Clone + Send + Sync> FilterRefineIndex<O> {
    /// Index `database` under a global-L1 embedding (FastMap, Lipschitz,
    /// query-insensitive BoostMap, ...). The indexing cost is
    /// `|database| · embedding_cost` exact distances, paid offline.
    pub fn build_global<E>(
        embedding: E,
        database: &[O],
        distance: &dyn DistanceMeasure<O>,
    ) -> Self
    where
        E: Embedding<O> + 'static,
    {
        assert!(!database.is_empty(), "cannot index an empty database");
        let vectors = embedding.embed_all(database, distance);
        Self { kind: FilterKind::GlobalL1 { embedding: Box::new(embedding) }, vectors }
    }

    /// Index `database` under a trained (query-sensitive or insensitive)
    /// [`QseModel`]. Database objects are embedded with `F_out`; at query
    /// time the filter step uses `D_out`.
    pub fn build_query_sensitive(
        model: QseModel<O>,
        database: &[O],
        distance: &dyn DistanceMeasure<O>,
    ) -> Self {
        assert!(!database.is_empty(), "cannot index an empty database");
        let embedding = model.embedding();
        let vectors = embedding.embed_all(database, distance);
        Self { kind: FilterKind::QuerySensitive { model }, vectors }
    }

    /// Index a database whose vectors under this embedding have already been
    /// computed elsewhere (e.g. once at the maximum dimensionality, then
    /// truncated for each prefix during a parameter sweep).
    ///
    /// # Panics
    /// Panics if the vectors are empty or their dimensionality does not match
    /// the embedding.
    pub fn from_vectors_global<E>(embedding: E, vectors: Vec<Vec<f64>>) -> Self
    where
        E: Embedding<O> + 'static,
    {
        assert!(!vectors.is_empty(), "cannot index an empty database");
        assert!(
            vectors.iter().all(|v| v.len() == embedding.dim()),
            "vector dimensionality does not match the embedding"
        );
        Self { kind: FilterKind::GlobalL1 { embedding: Box::new(embedding) }, vectors }
    }

    /// Like [`Self::from_vectors_global`] but for a trained [`QseModel`].
    ///
    /// # Panics
    /// Panics if the vectors are empty or their dimensionality does not match
    /// the model.
    pub fn from_vectors_query_sensitive(model: QseModel<O>, vectors: Vec<Vec<f64>>) -> Self {
        assert!(!vectors.is_empty(), "cannot index an empty database");
        assert!(
            vectors.iter().all(|v| v.len() == model.dim()),
            "vector dimensionality does not match the model"
        );
        Self { kind: FilterKind::QuerySensitive { model }, vectors }
    }

    /// Dimensionality of the indexed vectors.
    pub fn dim(&self) -> usize {
        match &self.kind {
            FilterKind::GlobalL1 { embedding } => embedding.dim(),
            FilterKind::QuerySensitive { model } => model.dim(),
        }
    }

    /// Number of database objects indexed.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// `true` if the index is empty (never after construction).
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Exact distance computations needed to embed one query.
    pub fn embedding_cost(&self) -> usize {
        match &self.kind {
            FilterKind::GlobalL1 { embedding } => embedding.embedding_cost(),
            FilterKind::QuerySensitive { model } => model.embedding_cost(),
        }
    }

    /// The embedded database vectors.
    pub fn vectors(&self) -> &[Vec<f64>] {
        &self.vectors
    }

    /// The filter ranking for `query`: database indices sorted by increasing
    /// filter (embedded-space) distance, together with the number of exact
    /// distance computations spent on the embedding step.
    ///
    /// This is the building block both of [`Self::retrieve`] and of the
    /// evaluation harness, which derives from one ranking the minimum `p`
    /// needed for every `k` without re-running retrieval.
    pub fn filter_ranking(
        &self,
        query: &O,
        distance: &dyn DistanceMeasure<O>,
    ) -> (Vec<usize>, usize) {
        let scores: Vec<f64> = match &self.kind {
            FilterKind::GlobalL1 { embedding } => {
                let q = embedding.embed(query, distance);
                let l1 = LpDistance::l1();
                self.vectors.iter().map(|v| l1.eval(&q, v)).collect()
            }
            FilterKind::QuerySensitive { model } => {
                let eq = model.embed_query(query, distance);
                self.vectors.iter().map(|v| eq.distance_to(v)).collect()
            }
        };
        let mut order: Vec<usize> = (0..self.vectors.len()).collect();
        order.sort_by(|&a, &b| {
            scores[a]
                .partial_cmp(&scores[b])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        (order, self.embedding_cost())
    }

    /// Full filter-and-refine retrieval of the `k` (approximate) nearest
    /// neighbors of `query`, keeping `p` candidates after the filter step.
    ///
    /// # Panics
    /// Panics if `k` is zero, `p < k`, or `p` exceeds the database size.
    pub fn retrieve(
        &self,
        query: &O,
        database: &[O],
        distance: &dyn DistanceMeasure<O>,
        k: usize,
        p: usize,
    ) -> RetrievalOutcome {
        assert!(k >= 1, "k must be at least 1");
        assert!(p >= k, "p = {p} must be at least k = {k}");
        assert!(
            p <= database.len(),
            "p = {p} exceeds the database size {}",
            database.len()
        );
        assert_eq!(
            database.len(),
            self.vectors.len(),
            "database does not match the indexed vectors"
        );
        let (ranking, embedding_cost) = self.filter_ranking(query, distance);
        // Refine: exact distances to the p best filter candidates.
        let mut refined: Vec<(usize, f64)> = ranking[..p]
            .iter()
            .map(|&i| (i, distance.distance(query, &database[i])))
            .collect();
        refined.sort_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        refined.truncate(k);
        RetrievalOutcome {
            neighbors: refined.iter().map(|(i, _)| *i).collect(),
            distances: refined.iter().map(|(_, d)| *d).collect(),
            embedding_cost,
            refine_cost: p,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::knn;
    use qse_core::{BoostMapTrainer, TrainerConfig, TrainingData, TripleSampler};
    use qse_distance::traits::{FnDistance, MetricProperties};
    use qse_distance::CountingDistance;
    use qse_embedding::{FastMap, FastMapConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn euclid() -> FnDistance<impl Fn(&Vec<f64>, &Vec<f64>) -> f64 + Send + Sync> {
        FnDistance::new("euclid", MetricProperties::Metric, |a: &Vec<f64>, b: &Vec<f64>| {
            a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
        })
    }

    fn grid_database() -> Vec<Vec<f64>> {
        let mut db = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                db.push(vec![i as f64, j as f64]);
            }
        }
        db
    }

    #[test]
    fn full_p_retrieval_is_exact() {
        // With p = |database| the refine step sees everything, so the result
        // must equal brute-force k-NN regardless of the embedding quality.
        let db = grid_database();
        let d = euclid();
        let mut rng = StdRng::seed_from_u64(1);
        let fm = FastMap::train(&db, &d, FastMapConfig { dimensions: 2, pivot_iterations: 3 }, &mut rng);
        let index = FilterRefineIndex::build_global(fm, &db, &d);
        let q = vec![3.2, 7.1];
        let out = index.retrieve(&q, &db, &d, 5, db.len());
        let truth = knn(&q, &db, &d, 5);
        assert_eq!(out.neighbors, truth.neighbors);
    }

    #[test]
    fn cost_accounting_matches_measured_distances() {
        let db = grid_database();
        let d = euclid();
        let mut rng = StdRng::seed_from_u64(2);
        let fm = FastMap::train(&db, &d, FastMapConfig { dimensions: 3, pivot_iterations: 3 }, &mut rng);
        let index = FilterRefineIndex::build_global(fm, &db, &d);
        let counting = CountingDistance::new(euclid());
        let out = index.retrieve(&vec![5.5, 5.5], &db, &counting, 3, 20);
        assert_eq!(out.embedding_cost, 6);
        assert_eq!(out.refine_cost, 20);
        assert_eq!(counting.count() as usize, out.total_cost());
    }

    #[test]
    fn filter_ranking_contains_every_database_index_once() {
        let db = grid_database();
        let d = euclid();
        let mut rng = StdRng::seed_from_u64(3);
        let fm = FastMap::train(&db, &d, FastMapConfig { dimensions: 2, pivot_iterations: 3 }, &mut rng);
        let index = FilterRefineIndex::build_global(fm, &db, &d);
        let (ranking, cost) = index.filter_ranking(&vec![0.0, 0.0], &d);
        assert_eq!(cost, 4);
        let mut sorted = ranking.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..db.len()).collect::<Vec<_>>());
    }

    #[test]
    fn query_sensitive_index_retrieves_true_neighbors_with_small_p() {
        // Train a tiny Se-QS model on 1-D clustered data and check the filter
        // step puts the true nearest neighbor in front.
        let db: Vec<Vec<f64>> = (0..60)
            .map(|i| if i % 2 == 0 { vec![i as f64 * 0.05] } else { vec![50.0 + i as f64 * 0.05] })
            .collect();
        let d = euclid();
        let data = TrainingData::precompute(db.clone(), db.clone(), &d, 1);
        let mut rng = StdRng::seed_from_u64(4);
        let triples = TripleSampler::selective(4).sample(&data.train_to_train, 300, &mut rng);
        let model = BoostMapTrainer::new(TrainerConfig::quick()).train(&data, &triples, &mut rng);
        let index = FilterRefineIndex::build_query_sensitive(model, &db, &d);
        let q = vec![1.07];
        let truth = knn(&q, &db, &d, 1);
        let out = index.retrieve(&q, &db, &d, 1, 10);
        assert_eq!(out.neighbors[0], truth.neighbors[0]);
        assert!(out.total_cost() < db.len(), "should beat brute force");
    }

    #[test]
    #[should_panic(expected = "must be at least k")]
    fn rejects_p_smaller_than_k() {
        let db = grid_database();
        let d = euclid();
        let mut rng = StdRng::seed_from_u64(5);
        let fm = FastMap::train(&db, &d, FastMapConfig { dimensions: 2, pivot_iterations: 2 }, &mut rng);
        let index = FilterRefineIndex::build_global(fm, &db, &d);
        let _ = index.retrieve(&vec![0.0, 0.0], &db, &d, 5, 3);
    }
}
