//! Filter-and-refine retrieval (Section 8 of the paper).
//!
//! Given an embedding `F` (and, for query-sensitive models, the distance
//! `D_out`), retrieval of the k nearest neighbors of a query `q` proceeds in
//! three steps:
//!
//! 1. **Embedding step** — compute `F(q)` by measuring the exact distances
//!    between `q` and the embedding's reference / pivot objects.
//! 2. **Filter step** — score the (pre-embedded) database by the cheap
//!    vector distance and keep the best `p` candidates.
//! 3. **Refine step** — measure the exact distance from `q` to each of the
//!    `p` candidates and return the best `k`.
//!
//! The per-query budget the paper reports is the number of exact distance
//! computations spent in steps 1 and 3; the filter step touches only
//! vectors. [`FilterRefineIndex`] supports both a *global* L1 filter distance
//! (FastMap, Lipschitz, original BoostMap) and the *query-sensitive*
//! weighted L1 of a trained [`QseModel`].
//!
//! ## The filter step as a hot path
//!
//! At production database sizes the filter scan dominates wall-clock time
//! (the exact distances are few but the scan touches every vector), so it is
//! engineered accordingly:
//!
//! * embedded database vectors are stored in one flat row-major
//!   [`FlatStore<E>`](qse_distance::FlatStore) (of which [`FlatVectors`]
//!   is the exact-`f64` alias, both re-exported from `qse-distance`) so
//!   the scan walks memory linearly with stride `dim` instead of chasing
//!   one heap allocation per vector. The elements behind the store are a
//!   `Storage<E>` — either a heap-owned buffer (anything built in
//!   process) or a zero-copy borrow out of an `mmap`ed snapshot (the
//!   `load_mmap` loaders); the scan kernels read both through the same
//!   slice and are bit-identical across them;
//! * the scan itself is the blocked batch kernel
//!   [`WeightedL1::eval_flat`](qse_distance::WeightedL1::eval_flat) /
//!   [`EmbeddedQuery::score_flat`](qse_core::EmbeddedQuery::score_flat) —
//!   fixed-width lanes, independent accumulators, no per-row allocation —
//!   whose outputs are bit-identical to the row-by-row scalar path;
//! * [`FilterRefineIndex::retrieve`] keeps the best `p` candidates with
//!   `select_nth_unstable_by` — an O(n) selection — and only sorts those
//!   `p`, instead of sorting the whole database (O(n log n));
//! * [`FilterRefineIndex::retrieve_batch`] runs the batched pipeline:
//!   batch-embed every query into flat storage (`embed_queries`), score the
//!   whole batch with the Q×N *tiled* filter kernel
//!   ([`WeightedL1::eval_flat_batch`](qse_distance::WeightedL1::eval_flat_batch)
//!   / `EmbeddedQueryBatch::score_flat_batch`) — a tile of query rows stays
//!   cache-resident while the database streams once per tile, and tiles fan
//!   out across the persistent rayon worker pool — then select top-p and
//!   refine per query in parallel. Every outcome is identical to calling
//!   [`FilterRefineIndex::retrieve`] query by query.
//!
//! Selection uses the strict total order `(score, index)` (NaN-safe via
//! `f64::total_cmp`), so its result is **identical** to taking the first `p`
//! entries of the fully sorted ranking — asserted for every `(k, p)` by the
//! workspace tests.
//!
//! ## Filter-store precision
//!
//! Because the refine step recomputes **exact** distances for every
//! candidate, the filter store only has to be good enough to put the true
//! neighbors among the `p` survivors — it does not need `f64` precision.
//! [`FilterRefineIndex`] is therefore generic over the store's
//! [`FilterElem`] backend (`f64` exact default, `f32`, or `u8` scalar
//! quantization; see `qse_distance::vector`): the historical constructors
//! keep building exact `f64` indexes bit-identical to before, while
//! [`FilterRefineIndex::build_global_with_store`] /
//! [`FilterRefineIndex::build_query_sensitive_with_store`] select a compact
//! backend that halves (f32) or eighth-sizes (u8) the memory the filter
//! scan streams. For quantized stores, the
//! [`FilterRefineIndex::with_p_scale`] oversampling knob widens the filter
//! candidate set (`p → ⌈p · p_scale⌉`, capped at the database size) to
//! absorb quantization error before the exact refine step reorders it.
//!
//! The filter scan itself is dispatched through the backend's
//! `FilterElem::scan_filter` hook: the exact backends run the decode-path
//! kernels bit-identically to the historical scan, while `u8` stores are
//! scanned **in the integer domain** (`qse_distance::sad`) — the query is
//! quantized onto the store's grid at scoring time and the weighted
//! sum-of-absolute-differences accumulates in widened integer arithmetic
//! over the raw bytes, with one per-query rescale back to score units. The
//! second (query-side) quantization error this adds is bounded and
//! rank-safe enough for a filter whose survivors are exactly re-ranked;
//! to compensate for the widened two-sided error bound, `u8` indexes
//! default to `FilterElem::DEFAULT_P_SCALE = 2.0` (override with
//! [`FilterRefineIndex::with_p_scale`]).

use crate::error::{check_query_params, QueryError};
use qse_core::QseModel;
use qse_distance::{DistanceMeasure, WeightedL1};
use qse_embedding::Embedding;
use rayon::prelude::*;

pub use qse_distance::{FilterElem, FlatStore, FlatVectors};

/// How the filter step scores database vectors against the query. Shared
/// with the cluster-routed index (`crate::routed`), whose per-cell scans
/// reuse the exact same two filter modes.
pub(crate) enum FilterKind<O> {
    /// Plain (unweighted) L1 distance between embedded vectors, evaluated by
    /// the flat kernel with uniform weights (1.0 · |a − b| is exact, so this
    /// equals the unweighted scan bit for bit).
    GlobalL1 {
        embedding: Box<dyn Embedding<O>>,
        filter: WeightedL1,
    },
    /// The query-sensitive weighted L1 distance `D_out` of a trained model.
    QuerySensitive { model: QseModel<O> },
}

/// Indices of the `p` smallest scores, in increasing order under the strict
/// total order `(score, index)` — exactly the first `p` entries of a full
/// `(score, index)` sort, computed with O(n) selection + O(p log p) sort.
/// `p >= scores.len()` degrades to the full sorted ranking.
///
/// Shared by the static index, the dynamic index and the evaluation harness
/// so every filter path is *provably* the same selection.
pub(crate) fn top_p_by_score(scores: &[f64], p: usize) -> Vec<usize> {
    let mut order = Vec::new();
    top_p_by_score_into(scores, p, &mut order);
    order
}

/// The shared per-tile driver of every batched retrieval pipeline
/// ([`FilterRefineIndex::retrieve_batch`], `DynamicIndex::retrieve_batch`,
/// `knn_flat_batch`): cut `count` queries into
/// [`QUERY_TILE`](qse_distance::vector::QUERY_TILE)-row tiles fanned out
/// across the persistent worker pool; for each tile, `score_tile(q0, q1,
/// scores)` fills a tile-local `(q1 − q0) · n` score buffer (row-major, one
/// row per query of the tile), then for every query `q` of the tile the
/// driver selects the best `p` indices — [`top_p_by_score_into`] with one
/// index buffer reused across the tile — and hands `finish` the query
/// index, its score row and the selection. Results come back in query
/// order.
///
/// ## The per-tile duplicate-query memo
///
/// Production batches (and the clustered workloads the paper evaluates)
/// routinely repeat popular queries. Exact distances cannot be shared
/// *across distinct queries* — `d(q, x)` depends on the query argument — so
/// the only sound reuse is between **equal** queries, and that is what the
/// memo exploits: before selecting/refining query `q`, the driver asks
/// `same_query(r, q)` for every earlier query `r` of the same tile, and on
/// a match clones `r`'s finished result instead of re-running top-p
/// selection and (crucially) the exact-distance refine step. `same_query`
/// must be an equivalence compatible with the whole per-query pipeline —
/// i.e. `same_query(r, q)` implies the sequential path would produce
/// identical results for `r` and `q` — which the callers guarantee by
/// comparing the original query *objects* (`O: PartialEq`, assuming the
/// exact distance is a deterministic function of its arguments' values) or
/// the raw embedded rows. Reuse never crosses a tile boundary, so the memo
/// cannot change tile fan-out behaviour or peak memory.
///
/// Keeping the tiling, buffer reuse, selection and memo in one routine is
/// what makes the three batch paths *provably* the same pipeline — and no
/// `count × n` score matrix is ever materialized: peak memory per worker is
/// one tile's scores.
pub(crate) fn tiled_query_pipeline<T, S, Q, F>(
    count: usize,
    n: usize,
    p: usize,
    same_query: Q,
    score_tile: S,
    finish: F,
) -> Vec<T>
where
    T: Clone + Send,
    S: Fn(usize, usize, &mut [f64]) + Sync,
    Q: Fn(usize, usize) -> bool + Sync,
    F: Fn(usize, &[f64], &[usize]) -> T + Sync,
{
    use qse_distance::vector::QUERY_TILE;
    let tiles = count.div_ceil(QUERY_TILE);
    let per_tile: Vec<Vec<T>> = (0..tiles)
        .into_par_iter()
        .map(|tile| {
            let q0 = tile * QUERY_TILE;
            let q1 = (q0 + QUERY_TILE).min(count);
            let mut scores = vec![0.0; (q1 - q0) * n];
            score_tile(q0, q1, &mut scores);
            // One index buffer serves every query of the tile.
            let mut order = Vec::new();
            let mut results: Vec<T> = Vec::with_capacity(q1 - q0);
            for q in q0..q1 {
                if let Some(r) = (q0..q).find(|&r| same_query(r, q)) {
                    // Duplicate of an earlier query of this tile: reuse its
                    // finished result (identical by construction), skipping
                    // selection and the exact-distance refine step.
                    results.push(results[r - q0].clone());
                    continue;
                }
                let row = &scores[(q - q0) * n..(q - q0 + 1) * n];
                top_p_by_score_into(row, p, &mut order);
                results.push(finish(q, row, &order));
            }
            results
        })
        .collect();
    per_tile.into_iter().flatten().collect()
}

/// `⌈p · p_scale⌉` capped at the database size `n`: the number of filter
/// candidates the retrieve paths actually keep. With the default
/// `p_scale = 1.0`, `⌈p · 1.0⌉ = p` exactly, so behaviour is untouched.
pub(crate) fn effective_p(p: usize, p_scale: f64, n: usize) -> usize {
    (((p as f64) * p_scale).ceil() as usize).min(n)
}

/// The refine step shared by every retrieval pipeline in this crate (the
/// static index's sequential and batched paths and the routed index):
/// measure the exact distance from `query` to every filter candidate,
/// keep the best `k` under the strict total order `(distance, index)`.
/// One routine everywhere is what makes the pipelines *provably*
/// identical: a candidate **set** determines the outcome regardless of
/// the order candidates arrive in.
pub(crate) fn refine_candidates<O>(
    query: &O,
    database: &[O],
    distance: &dyn DistanceMeasure<O>,
    k: usize,
    candidates: &[usize],
    embedding_cost: usize,
) -> RetrievalOutcome {
    let refine_cost = candidates.len();
    let mut refined: Vec<(usize, f64)> = candidates
        .iter()
        .map(|&i| (i, distance.distance(query, &database[i])))
        .collect();
    refined.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    refined.truncate(k);
    RetrievalOutcome {
        neighbors: refined.iter().map(|(i, _)| *i).collect(),
        distances: refined.iter().map(|(_, d)| *d).collect(),
        embedding_cost,
        refine_cost,
    }
}

/// [`top_p_by_score`] writing into a caller-owned index buffer, so the
/// batched pipelines can reuse one allocation across every query of a tile
/// (`order` is cleared and refilled; its capacity is what's recycled).
pub(crate) fn top_p_by_score_into(scores: &[f64], p: usize, order: &mut Vec<usize>) {
    let by_score_then_index =
        |a: &usize, b: &usize| scores[*a].total_cmp(&scores[*b]).then(a.cmp(b));
    order.clear();
    order.extend(0..scores.len());
    if p >= 1 && p < order.len() {
        // O(n): after this, positions 0..p hold the p smallest under the
        // strict total order (score, index).
        order.select_nth_unstable_by(p - 1, by_score_then_index);
        order.truncate(p);
    }
    order.sort_unstable_by(by_score_then_index);
}

/// A database indexed for filter-and-refine retrieval under one embedding.
///
/// Generic over the filter-store precision `E` ([`FilterElem`]; `f64` by
/// default — the historical exact store). The refine step always recomputes
/// exact distances, so a compact backend trades filter selectivity (not
/// final correctness) for memory bandwidth; see the module docs.
pub struct FilterRefineIndex<O, E: FilterElem = f64> {
    pub(crate) kind: FilterKind<O>,
    pub(crate) vectors: FlatStore<E>,
    /// Oversampling factor applied to `p` in the retrieve paths (≥ 1.0;
    /// exactly 1.0 by default, where `⌈p · 1.0⌉ = p` leaves behaviour
    /// untouched).
    pub(crate) p_scale: f64,
}

/// The outcome of one filter-and-refine retrieval.
#[derive(Debug, Clone, PartialEq)]
pub struct RetrievalOutcome {
    /// Indices of the k reported neighbors, best first (by exact distance).
    pub neighbors: Vec<usize>,
    /// Exact distances of the reported neighbors.
    pub distances: Vec<f64>,
    /// Exact distance computations spent embedding the query.
    pub embedding_cost: usize,
    /// Exact distance computations spent in the refine step (= p).
    pub refine_cost: usize,
}

impl RetrievalOutcome {
    /// Total exact distance computations for this query (the paper's cost
    /// metric).
    pub fn total_cost(&self) -> usize {
        self.embedding_cost + self.refine_cost
    }
}

impl<O: Clone + Send + Sync> FilterRefineIndex<O> {
    /// Index `database` under a global-L1 embedding (FastMap, Lipschitz,
    /// query-insensitive BoostMap, ...) with the exact `f64` filter store.
    /// The indexing cost is `|database| · embedding_cost` exact distances,
    /// paid offline (the embedding pass runs in parallel).
    pub fn build_global<E>(embedding: E, database: &[O], distance: &dyn DistanceMeasure<O>) -> Self
    where
        E: Embedding<O> + 'static,
    {
        Self::build_global_with_store(embedding, database, distance)
    }

    /// Index `database` under a trained (query-sensitive or insensitive)
    /// [`QseModel`] with the exact `f64` filter store. Database objects are
    /// embedded with `F_out`; at query time the filter step uses `D_out`.
    pub fn build_query_sensitive(
        model: QseModel<O>,
        database: &[O],
        distance: &dyn DistanceMeasure<O>,
    ) -> Self {
        Self::build_query_sensitive_with_store(model, database, distance)
    }

    /// Index a database whose vectors under this embedding have already been
    /// computed elsewhere (e.g. once at the maximum dimensionality, then
    /// truncated for each prefix during a parameter sweep).
    ///
    /// # Panics
    /// Panics if the vectors are empty or their dimensionality does not match
    /// the embedding.
    pub fn from_vectors_global<E>(embedding: E, vectors: Vec<Vec<f64>>) -> Self
    where
        E: Embedding<O> + 'static,
    {
        assert!(!vectors.is_empty(), "cannot index an empty database");
        assert!(
            vectors.iter().all(|v| v.len() == embedding.dim()),
            "vector dimensionality does not match the embedding"
        );
        Self {
            kind: FilterKind::GlobalL1 {
                filter: WeightedL1::uniform(embedding.dim()),
                embedding: Box::new(embedding),
            },
            vectors: FlatVectors::from_rows(vectors),
            p_scale: 1.0,
        }
    }

    /// Like [`Self::from_vectors_global`] but for a trained [`QseModel`].
    ///
    /// # Panics
    /// Panics if the vectors are empty or their dimensionality does not match
    /// the model.
    pub fn from_vectors_query_sensitive(model: QseModel<O>, vectors: Vec<Vec<f64>>) -> Self {
        assert!(!vectors.is_empty(), "cannot index an empty database");
        assert!(
            vectors.iter().all(|v| v.len() == model.dim()),
            "vector dimensionality does not match the model"
        );
        Self {
            kind: FilterKind::QuerySensitive { model },
            vectors: FlatVectors::from_rows(vectors),
            p_scale: 1.0,
        }
    }
}

impl<O: Clone + Send + Sync, E: FilterElem> FilterRefineIndex<O, E> {
    /// Index `database` under a global-L1 embedding with an explicit
    /// filter-store precision `E` — e.g.
    /// `FilterRefineIndex::<_, f32>::build_global_with_store(...)`. The
    /// `f64` instantiation is what [`Self::build_global`] delegates to and
    /// is bit-identical to the historical index; compact backends encode
    /// the embedded database rows at indexing time (the `u8` grid is fitted
    /// over the whole collection here).
    pub fn build_global_with_store<Emb>(
        embedding: Emb,
        database: &[O],
        distance: &dyn DistanceMeasure<O>,
    ) -> Self
    where
        Emb: Embedding<O> + 'static,
    {
        assert!(!database.is_empty(), "cannot index an empty database");
        let vectors = embedding.embed_store(database, distance);
        Self {
            kind: FilterKind::GlobalL1 {
                filter: WeightedL1::uniform(embedding.dim()),
                embedding: Box::new(embedding),
            },
            vectors,
            p_scale: E::DEFAULT_P_SCALE,
        }
    }

    /// Index `database` under a trained [`QseModel`] with an explicit
    /// filter-store precision `E` (see
    /// [`Self::build_global_with_store`]).
    pub fn build_query_sensitive_with_store(
        model: QseModel<O>,
        database: &[O],
        distance: &dyn DistanceMeasure<O>,
    ) -> Self {
        assert!(!database.is_empty(), "cannot index an empty database");
        let embedding = model.embedding();
        let vectors = embedding.embed_store(database, distance);
        Self {
            kind: FilterKind::QuerySensitive { model },
            vectors,
            p_scale: E::DEFAULT_P_SCALE,
        }
    }

    /// Index **pre-embedded** rows under a trained [`QseModel`] with an
    /// explicit filter-store precision `E`: the rows are encoded once
    /// into the chosen store (the `u8` grid is fitted over them here).
    /// This is how a large database embedded once is indexed under every
    /// backend without re-running the embedding per precision — the rows
    /// must be what `model.embedding()` produced over the collection.
    ///
    /// # Panics
    /// Panics if the rows are empty or their dimensionality does not
    /// match the model.
    pub fn from_vectors_query_sensitive_with_store(
        model: QseModel<O>,
        vectors: Vec<Vec<f64>>,
    ) -> Self {
        assert!(!vectors.is_empty(), "cannot index an empty database");
        assert!(
            vectors.iter().all(|v| v.len() == model.dim()),
            "vector dimensionality does not match the model"
        );
        let dim = model.dim();
        Self {
            kind: FilterKind::QuerySensitive { model },
            vectors: FlatStore::from_rows_with_dim(dim, vectors),
            p_scale: E::DEFAULT_P_SCALE,
        }
    }

    /// Set the filter oversampling factor: the retrieve paths keep
    /// `⌈p · p_scale⌉` filter candidates (capped at the database size)
    /// while still *validating* against the caller's `p`; the outcome's
    /// `refine_cost` reports the scaled candidate count actually refined.
    /// Useful with quantized stores, whose coarser filter scores may rank a
    /// true neighbor just past position `p`; the refine step's exact
    /// distances then restore the final order. The starting value is the
    /// backend's [`FilterElem::DEFAULT_P_SCALE`] — `1.0` for `f64`/`f32`
    /// (where `⌈p · 1.0⌉ = p` leaves every path untouched) and `2.0` for
    /// `u8`, whose in-domain filter path carries the widened two-sided
    /// quantization error bound.
    ///
    /// # Panics
    /// Panics if `p_scale` is not finite or is below `1.0` (the fallible
    /// form is [`Self::try_with_p_scale`]).
    pub fn with_p_scale(self, p_scale: f64) -> Self {
        self.try_with_p_scale(p_scale)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Self::with_p_scale`]: the index back unchanged-but-moved
    /// with the factor applied, or [`QueryError::BadPScale`] — the form a
    /// server's config/reload path uses, where a bad knob must be an
    /// error, not a process death.
    pub fn try_with_p_scale(mut self, p_scale: f64) -> Result<Self, QueryError> {
        crate::error::check_p_scale(p_scale)?;
        self.p_scale = p_scale;
        Ok(self)
    }

    /// The current filter oversampling factor (see [`Self::with_p_scale`]).
    pub fn p_scale(&self) -> f64 {
        self.p_scale
    }

    /// The shared [`effective_p`] under this index's oversampling factor.
    fn effective_p(&self, p: usize) -> usize {
        effective_p(p, self.p_scale, self.vectors.len())
    }

    /// Dimensionality of the indexed vectors.
    pub fn dim(&self) -> usize {
        match &self.kind {
            FilterKind::GlobalL1 { embedding, .. } => embedding.dim(),
            FilterKind::QuerySensitive { model } => model.dim(),
        }
    }

    /// Number of database objects indexed.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// `true` if the index is empty (never after construction).
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Exact distance computations needed to embed one query.
    pub fn embedding_cost(&self) -> usize {
        match &self.kind {
            FilterKind::GlobalL1 { embedding, .. } => embedding.embedding_cost(),
            FilterKind::QuerySensitive { model } => model.embedding_cost(),
        }
    }

    /// The embedded database vectors (flat row-major storage in the
    /// index's filter precision).
    pub fn vectors(&self) -> &FlatStore<E> {
        &self.vectors
    }

    /// The filter score of every database vector against `query`, plus the
    /// embedding-step cost. This is the O(n · dim) linear scan at the heart
    /// of the filter step — one pass of the blocked weighted-L1 batch kernel
    /// over the contiguous flat storage (bit-identical to scoring row by
    /// row, see `qse_distance::vector::weighted_l1_flat`).
    fn filter_scores(&self, query: &O, distance: &dyn DistanceMeasure<O>) -> (Vec<f64>, usize) {
        let mut scores = vec![0.0; self.vectors.len()];
        match &self.kind {
            FilterKind::GlobalL1 { embedding, filter } => {
                let q = embedding.embed(query, distance);
                filter.eval_filter(&q, &self.vectors, &mut scores);
            }
            FilterKind::QuerySensitive { model } => {
                let eq = model.embed_query(query, distance);
                eq.score_filter(&self.vectors, &mut scores);
            }
        }
        (scores, self.embedding_cost())
    }

    /// The full filter ranking for `query`: database indices sorted by
    /// increasing filter (embedded-space) distance, together with the number
    /// of exact distance computations spent on the embedding step.
    ///
    /// The evaluation harness needs the complete order (it derives, from one
    /// ranking, the minimum `p` for every `k`); retrieval itself uses the
    /// cheaper [`Self::filter_top_p`].
    pub fn filter_ranking(
        &self,
        query: &O,
        distance: &dyn DistanceMeasure<O>,
    ) -> (Vec<usize>, usize) {
        let (scores, cost) = self.filter_scores(query, distance);
        let order = top_p_by_score(&scores, scores.len());
        (order, cost)
    }

    /// The best `p` filter candidates for `query`, in increasing filter
    /// distance, plus the embedding-step cost.
    ///
    /// Runs in O(n) selection + O(p log p) sort instead of the O(n log n)
    /// full sort, and returns exactly the first `p` entries
    /// [`Self::filter_ranking`] would produce (ties broken by index).
    ///
    /// # Panics
    /// Panics if `p` is zero or exceeds the database size.
    pub fn filter_top_p(
        &self,
        query: &O,
        distance: &dyn DistanceMeasure<O>,
        p: usize,
    ) -> (Vec<usize>, usize) {
        assert!(p >= 1, "p must be at least 1");
        assert!(
            p <= self.vectors.len(),
            "p = {p} exceeds the database size {}",
            self.vectors.len()
        );
        let (scores, cost) = self.filter_scores(query, distance);
        (top_p_by_score(&scores, p), cost)
    }

    /// Full filter-and-refine retrieval of the `k` (approximate) nearest
    /// neighbors of `query`, keeping `p` candidates after the filter step
    /// (`⌈p · p_scale⌉` under an oversampling factor, see
    /// [`Self::with_p_scale`]).
    ///
    /// # Panics
    /// Panics if `k` is zero, `p < k`, or `p` exceeds the database size
    /// (the fallible form is [`Self::try_retrieve`]).
    pub fn retrieve(
        &self,
        query: &O,
        database: &[O],
        distance: &dyn DistanceMeasure<O>,
        k: usize,
        p: usize,
    ) -> RetrievalOutcome {
        self.try_retrieve(query, database, distance, k, p)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Self::retrieve`]: the retrieval outcome, or a typed
    /// [`QueryError`] for any parameter the asserting form would panic on
    /// — the entry point a serving layer calls so a malformed request is
    /// an error response, never an unwinding thread.
    ///
    /// # Errors
    /// [`QueryError::BadK`] when `k` is zero, [`QueryError::BadP`] when
    /// `p` is outside `k..=database.len()`, and
    /// [`QueryError::DatabaseMismatch`] when `database` does not match
    /// the indexed collection.
    pub fn try_retrieve(
        &self,
        query: &O,
        database: &[O],
        distance: &dyn DistanceMeasure<O>,
        k: usize,
        p: usize,
    ) -> Result<RetrievalOutcome, QueryError> {
        self.validate(database, k, p)?;
        let (candidates, embedding_cost) = self.filter_top_p(query, distance, self.effective_p(p));
        Ok(self.refine(query, database, distance, k, &candidates, embedding_cost))
    }

    /// The shared request validation of the retrieve paths: `k`/`p`
    /// against the database size, then the database argument against the
    /// indexed collection.
    fn validate(&self, database: &[O], k: usize, p: usize) -> Result<(), QueryError> {
        check_query_params(k, p, database.len())?;
        if database.len() != self.vectors.len() {
            return Err(QueryError::DatabaseMismatch {
                expected: self.vectors.len(),
                got: database.len(),
            });
        }
        Ok(())
    }

    /// The refine step shared by [`Self::retrieve`] and
    /// [`Self::retrieve_batch`]: measure the exact distance from `query` to
    /// every filter candidate, keep the best `k` under the strict total
    /// order `(distance, index)`. Using one routine on both paths is what
    /// makes the batched pipeline *provably* identical to the sequential
    /// one.
    fn refine(
        &self,
        query: &O,
        database: &[O],
        distance: &dyn DistanceMeasure<O>,
        k: usize,
        candidates: &[usize],
        embedding_cost: usize,
    ) -> RetrievalOutcome {
        refine_candidates(query, database, distance, k, candidates, embedding_cost)
    }

    /// Retrieve a whole batch of queries through the tiled batch pipeline:
    ///
    /// 1. **Batch embedding** — every query is embedded into one flat
    ///    row-major buffer (`embed_queries`), fanned out across the
    ///    persistent rayon worker pool.
    /// 2. **Per-tile filter + top-p + refine** — the batch is cut into
    ///    [`QUERY_TILE`](qse_distance::vector::QUERY_TILE)-query tiles that
    ///    run in parallel on the pool. Each tile scores its queries with the
    ///    Q×N tiled batch kernel (the tile's query rows stay cache-resident
    ///    while the database streams once per tile instead of once per
    ///    query), then runs the O(n) top-p selection and the exact-distance
    ///    refine step per query — on the tile's still-hot score rows, so no
    ///    `Q × N` score matrix is ever materialized in cold memory.
    ///
    /// Results are returned in query order and are identical to calling
    /// [`Self::retrieve`] per query — bit for bit, at any thread count
    /// (every filter score comes from the same canonical reduction, and the
    /// selection/refine code is shared). Queries that repeat within one
    /// [`QUERY_TILE`](qse_distance::vector::QUERY_TILE)-query tile reuse
    /// the first occurrence's finished result through the pipeline's
    /// duplicate-query memo (see [`tiled_query_pipeline`]), skipping their
    /// redundant exact-distance refine step — which assumes `distance` is a
    /// deterministic function of its arguments' values under `O`'s
    /// `PartialEq`. An empty query batch returns an empty vector; `k`/`p`
    /// are validated up front exactly like [`Self::retrieve`] otherwise.
    ///
    /// # Panics
    /// As [`Self::retrieve`] (when the batch is non-empty; the fallible
    /// form is [`Self::try_retrieve_batch`]).
    pub fn retrieve_batch(
        &self,
        queries: &[O],
        database: &[O],
        distance: &dyn DistanceMeasure<O>,
        k: usize,
        p: usize,
    ) -> Vec<RetrievalOutcome>
    where
        O: PartialEq,
    {
        if queries.is_empty() {
            return Vec::new();
        }
        self.try_retrieve_batch(queries, database, distance, k, p)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Self::retrieve_batch`]: one outcome per query in query
    /// order, or a typed [`QueryError`] — including
    /// [`QueryError::EmptyBatch`] for a zero-query batch, which the
    /// asserting form instead maps to an empty result vector (a server
    /// rejects the request explicitly; a library caller iterating
    /// nothing gets nothing).
    ///
    /// # Errors
    /// As [`Self::try_retrieve`], plus [`QueryError::EmptyBatch`].
    pub fn try_retrieve_batch(
        &self,
        queries: &[O],
        database: &[O],
        distance: &dyn DistanceMeasure<O>,
        k: usize,
        p: usize,
    ) -> Result<Vec<RetrievalOutcome>, QueryError>
    where
        O: PartialEq,
    {
        if queries.is_empty() {
            return Err(QueryError::EmptyBatch);
        }
        self.validate(database, k, p)?;
        // The embedded batch carries everything a tile needs to score
        // itself (the filter reference travels with the Global coordinates),
        // so the per-tile closure never re-inspects `self.kind`.
        enum EmbeddedBatch<'a> {
            Global(&'a WeightedL1, FlatVectors),
            QuerySensitive(qse_core::EmbeddedQueryBatch),
        }
        let embedded = match &self.kind {
            FilterKind::GlobalL1 { embedding, filter } => {
                EmbeddedBatch::Global(filter, embedding.embed_queries(queries, distance))
            }
            FilterKind::QuerySensitive { model } => {
                EmbeddedBatch::QuerySensitive(model.embed_queries(queries, distance))
            }
        };
        let embedding_cost = self.embedding_cost();
        Ok(tiled_query_pipeline(
            queries.len(),
            self.vectors.len(),
            self.effective_p(p),
            |a, b| queries[a] == queries[b],
            |q0, q1, scores| match &embedded {
                EmbeddedBatch::Global(filter, coords) => {
                    filter.eval_filter_batch_range(coords, q0, q1, &self.vectors, scores);
                }
                EmbeddedBatch::QuerySensitive(batch) => {
                    batch.score_filter_batch_range(q0, q1, &self.vectors, scores);
                }
            },
            |q, _row, order| self.refine(&queries[q], database, distance, k, order, embedding_cost),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::knn;
    use qse_core::{BoostMapTrainer, TrainerConfig, TrainingData, TripleSampler};
    use qse_distance::traits::{FnDistance, MetricProperties};
    use qse_distance::CountingDistance;
    use qse_embedding::{FastMap, FastMapConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn euclid() -> FnDistance<impl Fn(&Vec<f64>, &Vec<f64>) -> f64 + Send + Sync> {
        FnDistance::new(
            "euclid",
            MetricProperties::Metric,
            |a: &Vec<f64>, b: &Vec<f64>| {
                a.iter()
                    .zip(b)
                    .map(|(x, y)| (x - y) * (x - y))
                    .sum::<f64>()
                    .sqrt()
            },
        )
    }

    fn grid_database() -> Vec<Vec<f64>> {
        let mut db = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                db.push(vec![i as f64, j as f64]);
            }
        }
        db
    }

    #[test]
    fn flat_vectors_store_rows_in_order() {
        let fv = FlatVectors::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        assert_eq!(fv.len(), 3);
        assert_eq!(fv.dim(), 2);
        assert_eq!(fv.row(1), &[3.0, 4.0]);
        let rows: Vec<&[f64]> = fv.iter_rows().collect();
        assert_eq!(
            rows,
            vec![&[1.0, 2.0][..], &[3.0, 4.0][..], &[5.0, 6.0][..]]
        );
    }

    #[test]
    fn flat_vectors_push_and_swap_remove() {
        let mut fv = FlatVectors::from_rows(vec![vec![1.0], vec![2.0], vec![3.0]]);
        fv.push(&[4.0]);
        assert_eq!(fv.len(), 4);
        fv.swap_remove(0);
        assert_eq!(fv.len(), 3);
        assert_eq!(fv.row(0), &[4.0]);
        assert_eq!(fv.row(1), &[2.0]);
    }

    #[test]
    #[should_panic(expected = "must have dimensionality")]
    fn flat_vectors_reject_ragged_rows() {
        let _ = FlatVectors::from_rows(vec![vec![1.0, 2.0], vec![3.0]]);
    }

    #[test]
    fn full_p_retrieval_is_exact() {
        // With p = |database| the refine step sees everything, so the result
        // must equal brute-force k-NN regardless of the embedding quality.
        let db = grid_database();
        let d = euclid();
        let mut rng = StdRng::seed_from_u64(1);
        let fm = FastMap::train(
            &db,
            &d,
            FastMapConfig {
                dimensions: 2,
                pivot_iterations: 3,
            },
            &mut rng,
        );
        let index = FilterRefineIndex::build_global(fm, &db, &d);
        let q = vec![3.2, 7.1];
        let out = index.retrieve(&q, &db, &d, 5, db.len());
        let truth = knn(&q, &db, &d, 5);
        assert_eq!(out.neighbors, truth.neighbors);
    }

    #[test]
    fn cost_accounting_matches_measured_distances() {
        let db = grid_database();
        let d = euclid();
        let mut rng = StdRng::seed_from_u64(2);
        let fm = FastMap::train(
            &db,
            &d,
            FastMapConfig {
                dimensions: 3,
                pivot_iterations: 3,
            },
            &mut rng,
        );
        let index = FilterRefineIndex::build_global(fm, &db, &d);
        let counting = CountingDistance::new(euclid());
        let out = index.retrieve(&vec![5.5, 5.5], &db, &counting, 3, 20);
        assert_eq!(out.embedding_cost, 6);
        assert_eq!(out.refine_cost, 20);
        assert_eq!(counting.count() as usize, out.total_cost());
    }

    #[test]
    fn filter_ranking_contains_every_database_index_once() {
        let db = grid_database();
        let d = euclid();
        let mut rng = StdRng::seed_from_u64(3);
        let fm = FastMap::train(
            &db,
            &d,
            FastMapConfig {
                dimensions: 2,
                pivot_iterations: 3,
            },
            &mut rng,
        );
        let index = FilterRefineIndex::build_global(fm, &db, &d);
        let (ranking, cost) = index.filter_ranking(&vec![0.0, 0.0], &d);
        assert_eq!(cost, 4);
        let mut sorted = ranking.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..db.len()).collect::<Vec<_>>());
    }

    #[test]
    fn top_p_selection_matches_full_sort_prefix_for_every_p() {
        let db = grid_database();
        let d = euclid();
        let mut rng = StdRng::seed_from_u64(4);
        let fm = FastMap::train(
            &db,
            &d,
            FastMapConfig {
                dimensions: 2,
                pivot_iterations: 3,
            },
            &mut rng,
        );
        let index = FilterRefineIndex::build_global(fm, &db, &d);
        let query = vec![4.4, 4.6];
        let (full, _) = index.filter_ranking(&query, &d);
        for p in [1, 2, 3, 7, 50, 99, 100] {
            let (top, _) = index.filter_top_p(&query, &d, p);
            assert_eq!(top, full[..p], "p = {p}");
        }
    }

    #[test]
    fn retrieve_batch_matches_individual_retrievals() {
        let db = grid_database();
        let d = euclid();
        let mut rng = StdRng::seed_from_u64(5);
        let fm = FastMap::train(
            &db,
            &d,
            FastMapConfig {
                dimensions: 2,
                pivot_iterations: 3,
            },
            &mut rng,
        );
        let index = FilterRefineIndex::build_global(fm, &db, &d);
        let queries: Vec<Vec<f64>> = (0..17)
            .map(|i| vec![i as f64 * 0.55, (17 - i) as f64 * 0.5])
            .collect();
        let batch = index.retrieve_batch(&queries, &db, &d, 3, 12);
        assert_eq!(batch.len(), queries.len());
        for (q, out) in queries.iter().zip(&batch) {
            assert_eq!(*out, index.retrieve(q, &db, &d, 3, 12));
        }
    }

    #[test]
    fn retrieve_batch_on_empty_query_batch_returns_empty() {
        let db = grid_database();
        let d = euclid();
        let mut rng = StdRng::seed_from_u64(6);
        let fm = FastMap::train(
            &db,
            &d,
            FastMapConfig {
                dimensions: 2,
                pivot_iterations: 2,
            },
            &mut rng,
        );
        let index = FilterRefineIndex::build_global(fm, &db, &d);
        let empty: Vec<Vec<f64>> = Vec::new();
        assert!(index.retrieve_batch(&empty, &db, &d, 3, 12).is_empty());
        // Zero sequential calls panic on nothing, so neither does the batch —
        // even with out-of-range k/p.
        assert!(index
            .retrieve_batch(&empty, &db, &d, 5, db.len() + 10)
            .is_empty());
    }

    #[test]
    #[should_panic(expected = "exceeds the database size")]
    fn retrieve_batch_rejects_p_exceeding_database() {
        let db = grid_database();
        let d = euclid();
        let mut rng = StdRng::seed_from_u64(7);
        let fm = FastMap::train(
            &db,
            &d,
            FastMapConfig {
                dimensions: 2,
                pivot_iterations: 2,
            },
            &mut rng,
        );
        let index = FilterRefineIndex::build_global(fm, &db, &d);
        let _ = index.retrieve_batch(&[vec![0.0, 0.0]], &db, &d, 3, db.len() + 1);
    }

    #[test]
    #[should_panic(expected = "must be at least k")]
    fn retrieve_batch_rejects_k_exceeding_p() {
        let db = grid_database();
        let d = euclid();
        let mut rng = StdRng::seed_from_u64(8);
        let fm = FastMap::train(
            &db,
            &d,
            FastMapConfig {
                dimensions: 2,
                pivot_iterations: 2,
            },
            &mut rng,
        );
        let index = FilterRefineIndex::build_global(fm, &db, &d);
        let _ = index.retrieve_batch(&[vec![0.0, 0.0]], &db, &d, 7, 3);
    }

    #[test]
    fn retrieve_batch_with_full_p_is_exact_for_every_query() {
        // p = |database| forces perfect recall on the batched path too.
        let db = grid_database();
        let d = euclid();
        let mut rng = StdRng::seed_from_u64(9);
        let fm = FastMap::train(
            &db,
            &d,
            FastMapConfig {
                dimensions: 2,
                pivot_iterations: 3,
            },
            &mut rng,
        );
        let index = FilterRefineIndex::build_global(fm, &db, &d);
        let queries: Vec<Vec<f64>> = (0..5)
            .map(|i| vec![i as f64 + 0.3, 9.0 - i as f64])
            .collect();
        for (q, out) in queries
            .iter()
            .zip(index.retrieve_batch(&queries, &db, &d, 4, db.len()))
        {
            assert_eq!(out.neighbors, knn(q, &db, &d, 4).neighbors);
        }
    }

    #[test]
    fn query_sensitive_index_retrieves_true_neighbors_with_small_p() {
        // Train a tiny Se-QS model on 1-D clustered data and check the filter
        // step puts the true nearest neighbor in front.
        let db: Vec<Vec<f64>> = (0..60)
            .map(|i| {
                if i % 2 == 0 {
                    vec![i as f64 * 0.05]
                } else {
                    vec![50.0 + i as f64 * 0.05]
                }
            })
            .collect();
        let d = euclid();
        let data = TrainingData::precompute(db.clone(), db.clone(), &d, 1);
        let mut rng = StdRng::seed_from_u64(4);
        let triples = TripleSampler::selective(4).sample(&data.train_to_train, 300, &mut rng);
        let model = BoostMapTrainer::new(TrainerConfig::quick()).train(&data, &triples, &mut rng);
        let index = FilterRefineIndex::build_query_sensitive(model, &db, &d);
        let q = vec![1.07];
        let truth = knn(&q, &db, &d, 1);
        let out = index.retrieve(&q, &db, &d, 1, 10);
        assert_eq!(out.neighbors[0], truth.neighbors[0]);
        assert!(out.total_cost() < db.len(), "should beat brute force");
    }

    #[test]
    #[should_panic(expected = "must be at least k")]
    fn rejects_p_smaller_than_k() {
        let db = grid_database();
        let d = euclid();
        let mut rng = StdRng::seed_from_u64(5);
        let fm = FastMap::train(
            &db,
            &d,
            FastMapConfig {
                dimensions: 2,
                pivot_iterations: 2,
            },
            &mut rng,
        );
        let index = FilterRefineIndex::build_global(fm, &db, &d);
        let _ = index.retrieve(&vec![0.0, 0.0], &db, &d, 5, 3);
    }
}
