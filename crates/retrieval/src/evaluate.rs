//! The evaluation methodology of Section 9.
//!
//! For every embedding method the paper reports, for each `k` and accuracy
//! percentage `B`, the smallest number of exact distance computations per
//! query that retrieves **all** `k` true nearest neighbors for at least `B`%
//! of the queries — minimised over the method's two free parameters, the
//! embedding dimensionality `d` and the number `p` of candidates kept after
//! the filter step.
//!
//! The key observation that makes the sweep cheap is that, for a fixed query
//! and a fixed `d`, the smallest workable `p` is simply the worst *filter
//! rank* among the query's `k` true neighbors. So we compute one filter
//! ranking per (query, dimensionality) pair and derive every `(k, B, p)`
//! combination from it, instead of re-running retrieval for every parameter
//! setting.

use crate::filter_refine::FilterRefineIndex;
use crate::knn::KnnResult;
use qse_distance::DistanceMeasure;
use rayon::prelude::*;

/// The evaluation of one embedding method at one dimensionality.
#[derive(Debug, Clone, PartialEq)]
pub struct DimensionEvaluation {
    /// Dimensionality of the embedding (for boosted models: number of
    /// boosting rounds kept).
    pub dim: usize,
    /// Exact distance computations needed to embed one query at this
    /// dimensionality.
    pub embedding_cost: usize,
    /// `rank_needed[query][k-1]` = the smallest `p` such that the filter step
    /// keeps all `k` true nearest neighbors of that query.
    pub rank_needed: Vec<Vec<usize>>,
}

impl DimensionEvaluation {
    /// Evaluate one index against precomputed ground truth.
    ///
    /// `ground_truth[i]` must hold at least `kmax` true neighbors of query
    /// `i`. The cost of this call is `|queries| · embedding_cost` exact
    /// distances (the filter rankings); no refine-step distances are needed
    /// because the minimal `p` is derived from ranks.
    pub fn evaluate<O, D>(
        index: &FilterRefineIndex<O>,
        queries: &[O],
        distance: &D,
        ground_truth: &[KnnResult],
        kmax: usize,
        threads: usize,
    ) -> Self
    where
        O: Clone + Send + Sync,
        D: DistanceMeasure<O> + Sync,
    {
        assert_eq!(
            queries.len(),
            ground_truth.len(),
            "one ground-truth entry per query"
        );
        assert!(kmax >= 1, "kmax must be at least 1");
        assert!(
            ground_truth.iter().all(|g| g.neighbors.len() >= kmax),
            "ground truth must contain at least kmax neighbors per query"
        );

        let compute_one = |qi: usize| -> Vec<usize> {
            let (ranking, _) = index.filter_ranking(&queries[qi], distance);
            // position[db_index] = rank (0-based) in the filter ordering.
            let mut position = vec![0usize; ranking.len()];
            for (rank, &db_index) in ranking.iter().enumerate() {
                position[db_index] = rank;
            }
            let mut worst_so_far = 0usize;
            (0..kmax)
                .map(|j| {
                    let neighbor = ground_truth[qi].neighbors[j];
                    worst_so_far = worst_so_far.max(position[neighbor] + 1);
                    worst_so_far
                })
                .collect()
        };

        let rank_needed: Vec<Vec<usize>> = if threads <= 1 || queries.len() < 2 {
            (0..queries.len()).map(compute_one).collect()
        } else {
            // One filter ranking per query, fanned out on the rayon
            // substrate (worker count follows RAYON_NUM_THREADS).
            (0..queries.len())
                .into_par_iter()
                .map(&compute_one)
                .collect()
        };

        Self {
            dim: index.dim(),
            embedding_cost: index.embedding_cost(),
            rank_needed,
        }
    }

    /// The smallest `p` that succeeds (retrieves all `k` true neighbors) for
    /// at least `accuracy_pct`% of the queries.
    pub fn required_p(&self, k: usize, accuracy_pct: f64) -> usize {
        assert!(k >= 1 && k <= self.rank_needed[0].len(), "k out of range");
        assert!(
            (0.0..=100.0).contains(&accuracy_pct),
            "accuracy must be a percentage"
        );
        let mut ranks: Vec<usize> = self.rank_needed.iter().map(|r| r[k - 1]).collect();
        ranks.sort_unstable();
        let n = ranks.len();
        // Smallest p that covers ceil(pct/100 · n) queries.
        let needed = ((accuracy_pct / 100.0) * n as f64).ceil() as usize;
        let needed = needed.clamp(1, n);
        ranks[needed - 1]
    }
}

/// One `(k, accuracy)` entry of a cost table: the minimum per-query exact
/// distance budget and the parameters that achieve it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostRow {
    /// Number of nearest neighbors that must all be retrieved.
    pub k: usize,
    /// Fraction of queries (in percent) for which retrieval must succeed.
    pub accuracy_pct: f64,
    /// Minimum number of exact distance computations per query.
    pub cost: usize,
    /// The embedding dimensionality achieving that minimum.
    pub best_dim: usize,
    /// The filter-step candidate count `p` achieving that minimum.
    pub best_p: usize,
}

/// All dimensionalities of one method evaluated on one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodEvaluation {
    /// Display name of the method (e.g. "FastMap", "Se-QS").
    pub method: String,
    /// Database size (the brute-force cost, reported for reference).
    pub database_size: usize,
    /// Per-dimensionality evaluations.
    pub dimensions: Vec<DimensionEvaluation>,
}

impl MethodEvaluation {
    /// Assemble a method evaluation.
    ///
    /// # Panics
    /// Panics if no dimensionalities were evaluated.
    pub fn new(
        method: impl Into<String>,
        database_size: usize,
        dimensions: Vec<DimensionEvaluation>,
    ) -> Self {
        assert!(
            !dimensions.is_empty(),
            "need at least one evaluated dimensionality"
        );
        Self {
            method: method.into(),
            database_size,
            dimensions,
        }
    }

    /// The number of queries in the underlying evaluation.
    pub fn query_count(&self) -> usize {
        self.dimensions[0].rank_needed.len()
    }

    /// The paper's figure of merit: the minimum, over the evaluated
    /// dimensionalities and all `p`, of the per-query exact-distance budget
    /// needed to retrieve all `k` true neighbors for `accuracy_pct`% of
    /// queries.
    pub fn optimal_cost(&self, k: usize, accuracy_pct: f64) -> CostRow {
        let mut best: Option<CostRow> = None;
        for d in &self.dimensions {
            let p = d.required_p(k, accuracy_pct);
            // The refine step needs at least k candidates and never more than
            // the database.
            let p = p.max(k).min(self.database_size);
            let cost = (d.embedding_cost + p).min(self.database_size);
            let row = CostRow {
                k,
                accuracy_pct,
                cost,
                best_dim: d.dim,
                best_p: p,
            };
            if best.as_ref().is_none_or(|b| row.cost < b.cost) {
                best = Some(row);
            }
        }
        best.expect("at least one dimensionality evaluated")
    }

    /// The speed-up factor over brute force at the given operating point
    /// (brute force computes `database_size` exact distances per query).
    pub fn speedup(&self, k: usize, accuracy_pct: f64) -> f64 {
        let row = self.optimal_cost(k, accuracy_pct);
        self.database_size as f64 / row.cost as f64
    }
}

/// A complete cost table (several methods × several `(k, accuracy)` rows),
/// ready to be printed by the benchmark harnesses.
#[derive(Debug, Clone, PartialEq)]
pub struct CostReport {
    /// Name of the workload ("synthetic MNIST / shape context", ...).
    pub workload: String,
    /// Database size (brute-force cost).
    pub database_size: usize,
    /// Number of evaluation queries.
    pub query_count: usize,
    /// Per-method rows, keyed by method name.
    pub entries: Vec<(String, Vec<CostRow>)>,
}

impl CostReport {
    /// Build a report by evaluating each method at the given `(k, pct)`
    /// operating points.
    pub fn build(
        workload: impl Into<String>,
        methods: &[MethodEvaluation],
        ks: &[usize],
        percentages: &[f64],
    ) -> Self {
        assert!(!methods.is_empty(), "need at least one method");
        let entries = methods
            .iter()
            .map(|m| {
                let rows = ks
                    .iter()
                    .flat_map(|&k| percentages.iter().map(move |&pct| (k, pct)))
                    .map(|(k, pct)| m.optimal_cost(k, pct))
                    .collect();
                (m.method.clone(), rows)
            })
            .collect();
        Self {
            workload: workload.into(),
            database_size: methods[0].database_size,
            query_count: methods[0].query_count(),
            entries,
        }
    }

    /// Render the report as a fixed-width text table in the style of Table 1.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{} (database = {}, queries = {}, brute force = {} distances/query)\n",
            self.workload, self.database_size, self.query_count, self.database_size
        ));
        out.push_str(&format!("{:<6} {:<6}", "k", "pct"));
        for (name, _) in &self.entries {
            out.push_str(&format!(" {name:>10}"));
        }
        out.push('\n');
        if let Some((_, first_rows)) = self.entries.first() {
            for (i, row) in first_rows.iter().enumerate() {
                out.push_str(&format!("{:<6} {:<6}", row.k, row.accuracy_pct));
                for (_, rows) in &self.entries {
                    out.push_str(&format!(" {:>10}", rows[i].cost));
                }
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dim_eval(dim: usize, cost: usize, ranks: Vec<Vec<usize>>) -> DimensionEvaluation {
        DimensionEvaluation {
            dim,
            embedding_cost: cost,
            rank_needed: ranks,
        }
    }

    #[test]
    fn required_p_takes_the_accuracy_percentile() {
        // Four queries, k = 1 ranks 1, 2, 5, 50.
        let d = dim_eval(4, 8, vec![vec![1], vec![2], vec![5], vec![50]]);
        assert_eq!(d.required_p(1, 100.0), 50);
        assert_eq!(d.required_p(1, 75.0), 5);
        assert_eq!(d.required_p(1, 50.0), 2);
        assert_eq!(d.required_p(1, 1.0), 1);
    }

    #[test]
    fn rank_needed_is_monotone_in_k_by_construction() {
        let d = dim_eval(2, 4, vec![vec![3, 7, 7], vec![1, 2, 9]]);
        for q in &d.rank_needed {
            for w in q.windows(2) {
                assert!(w[0] <= w[1]);
            }
        }
        assert_eq!(d.required_p(3, 100.0), 9);
    }

    #[test]
    fn optimal_cost_picks_the_cheapest_dimensionality() {
        // Low-dim embedding: cheap to embed but needs a big p; high-dim: the
        // opposite. The optimum depends on the accuracy target.
        let low = dim_eval(2, 4, vec![vec![200], vec![5], vec![6], vec![4]]);
        let high = dim_eval(32, 64, vec![vec![1], vec![1], vec![2], vec![1]]);
        let m = MethodEvaluation::new("toy", 1000, vec![low, high]);
        let at_100 = m.optimal_cost(1, 100.0);
        assert_eq!(at_100.cost, 64 + 2);
        assert_eq!(at_100.best_dim, 32);
        let at_75 = m.optimal_cost(1, 75.0);
        assert_eq!(at_75.cost, 4 + 6);
        assert_eq!(at_75.best_dim, 2);
    }

    #[test]
    fn cost_never_exceeds_brute_force() {
        let bad = dim_eval(2, 90, vec![vec![95], vec![99]]);
        let m = MethodEvaluation::new("bad", 100, vec![bad]);
        assert_eq!(m.optimal_cost(1, 100.0).cost, 100);
        assert!(m.speedup(1, 100.0) >= 1.0);
    }

    #[test]
    fn speedup_is_database_over_cost() {
        let d = dim_eval(4, 10, vec![vec![10], vec![10]]);
        let m = MethodEvaluation::new("x", 2000, vec![d]);
        assert!((m.speedup(1, 100.0) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn report_table_lists_all_methods_and_rows() {
        let a = MethodEvaluation::new("A", 100, vec![dim_eval(2, 4, vec![vec![5, 9], vec![3, 7]])]);
        let b = MethodEvaluation::new("B", 100, vec![dim_eval(2, 6, vec![vec![2, 4], vec![1, 2]])]);
        let report = CostReport::build("toy workload", &[a, b], &[1, 2], &[90.0, 100.0]);
        assert_eq!(report.entries.len(), 2);
        assert_eq!(report.entries[0].1.len(), 4);
        let table = report.to_table();
        assert!(table.contains("toy workload"));
        assert!(table.contains('A') && table.contains('B'));
    }

    #[test]
    #[should_panic(expected = "k out of range")]
    fn rejects_k_beyond_ground_truth() {
        let d = dim_eval(2, 4, vec![vec![1, 2]]);
        let _ = d.required_p(3, 100.0);
    }
}
