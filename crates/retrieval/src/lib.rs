//! # qse-retrieval
//!
//! Filter-and-refine retrieval, exact ground truth, evaluation harness and
//! experiment drivers for the reproduction of *Query-Sensitive Embeddings*
//! (SIGMOD 2005).
//!
//! * [`knn`] — brute-force exact k-nearest-neighbor search, the ground truth
//!   every experiment is scored against (and the "number of exact distance
//!   computations of brute force = |database|" baseline of Table 1).
//! * [`filter_refine`] — the three-step retrieval framework of Section 8
//!   (embed the query, rank the database by the cheap embedded distance, keep
//!   the best `p`, re-rank those by the exact distance), instrumented so the
//!   reported exact-distance counts are measured.
//! * [`evaluate`] — the evaluation methodology of Section 9: for each query
//!   the *filter rank* of its true neighbors determines the smallest `p` that
//!   retrieves all `k` of them; sweeping the embedding dimensionality `d` and
//!   `p` yields, for each `(k, accuracy)` pair, the minimum number of exact
//!   distance computations per query.
//! * [`routed`] — the cluster-routed (IVF-style) sublinear layer over the
//!   same filter-refine protocol: a seeded deterministic k-means partitions
//!   the embedded database into cells (each owning its own flat filter
//!   store), queries visit only the nearest `n_probe` cells, and the refine
//!   step stays exact — full-probe retrieval is bit-identical to the
//!   unrouted pipeline.
//! * [`dynamic`] — online insertion / removal of database objects and the
//!   embedding-drift monitor sketched in Section 7.1.
//! * [`concurrent`] — the serving form of the dynamic index: immutable
//!   sealed segments plus a mutable tail, published to readers as epoch
//!   snapshots through a cloneable [`ReadHandle`] / single
//!   [`WriteHandle`] pair — reads never stop for writes, and every read
//!   is bit-identical to a sequentially-churned [`DynamicIndex`] at its
//!   snapshot's epoch.
//! * [`error`] — the typed [`QueryError`] behind the fallible `try_*`
//!   retrieval API: what a serving layer returns to a malformed request
//!   instead of unwinding.
//! * [`snapshot`] — versioned binary snapshots of the complete retrieval
//!   state (model, filter stores, routing metadata, tuning knobs), so a
//!   served index starts by loading bytes instead of re-embedding and
//!   re-clustering the database.
//! * [`experiments`] — drivers that regenerate every figure and table of the
//!   paper's evaluation on the synthetic workloads of `qse-dataset`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod concurrent;
pub mod dynamic;
pub mod error;
pub mod evaluate;
pub mod experiments;
pub mod filter_refine;
pub mod knn;
pub mod routed;
pub mod snapshot;

pub use concurrent::{ConcurrentIndex, ReadHandle, Snapshot, WriteHandle};
pub use dynamic::DynamicIndex;
pub use error::QueryError;
pub use evaluate::{CostReport, CostRow, MethodEvaluation};
pub use filter_refine::{FilterElem, FilterRefineIndex, FlatStore, FlatVectors, RetrievalOutcome};
pub use knn::{ground_truth, knn_flat, knn_flat_batch, KnnResult};
pub use routed::{recall_vs_n_probe, RoutedConfig, RoutedIndex};
pub use snapshot::{snapshot_sections, SnapshotError, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
