//! Brute-force exact k-nearest-neighbor search.
//!
//! Every accuracy number in the paper is measured against the *true* k
//! nearest neighbors under the exact distance `DX`, and the cost baseline is
//! brute force: *"brute force search would require 60000 exact distance
//! computations in the MNIST dataset and 31818 ... in the time series
//! dataset"* (Table 1 caption). This module provides that ground truth,
//! computed in parallel across queries on the rayon substrate. The per-query
//! top-k step uses `select_nth_unstable_by` (O(n) + O(k log k)) instead of a
//! full sort, with NaN-safe `(distance, index)` ordering.

use crate::filter_refine::top_p_by_score;
use qse_distance::{DistanceMeasure, FilterElem, FlatStore, FlatVectors, WeightedL1};
use rayon::prelude::*;

/// The result of an exact k-NN query.
#[derive(Debug, Clone, PartialEq)]
pub struct KnnResult {
    /// Indices of the k nearest database objects, closest first.
    pub neighbors: Vec<usize>,
    /// The corresponding exact distances.
    pub distances: Vec<f64>,
}

/// Exact k nearest neighbors of `query` within `database` (ties broken by
/// index for determinism).
///
/// # Panics
/// Panics if `k` is zero or exceeds the database size.
pub fn knn<O, D>(query: &O, database: &[O], distance: &D, k: usize) -> KnnResult
where
    D: DistanceMeasure<O> + ?Sized,
{
    assert!(k >= 1, "k must be at least 1");
    assert!(
        k <= database.len(),
        "k = {k} exceeds the database size {}",
        database.len()
    );
    let mut scored: Vec<(usize, f64)> = database
        .iter()
        .enumerate()
        .map(|(i, o)| (i, distance.distance(query, o)))
        .collect();
    let by_distance_then_index =
        |a: &(usize, f64), b: &(usize, f64)| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0));
    if k < scored.len() {
        // O(n) selection of the k nearest; only those get sorted.
        scored.select_nth_unstable_by(k - 1, by_distance_then_index);
        scored.truncate(k);
    }
    scored.sort_unstable_by(by_distance_then_index);
    KnnResult {
        neighbors: scored.iter().map(|(i, _)| *i).collect(),
        distances: scored.iter().map(|(_, d)| *d).collect(),
    }
}

/// Exact k nearest neighbors of an embedded `query` within a flat row-major
/// vector store under a (weighted) L1 distance, computed with the blocked
/// batch kernel [`WeightedL1::eval_flat`] — one allocation-free pass over
/// the contiguous buffer — followed by the same O(n) `(score, index)`
/// selection as [`knn`].
///
/// This is the brute-force path for databases that *are* vectors (or whose
/// exact distance is the embedded one): `WeightedL1::uniform(dim)` gives
/// plain L1, per-query weights give the query-sensitive `D_out`. The scan
/// dispatches through the backend's `FilterElem::scan_filter` hook: on the
/// default `f64` store the reported neighbors are identical to calling
/// `distance.eval` row by row (the kernel is bit-identical to the scalar
/// path); on `f32` the ranking and distances are computed over the decoded
/// rows; on `u8` the scan runs the in-domain integer SAD kernel
/// (`qse_distance::sad`) — the query is quantized onto the store's grid,
/// so both ranking and reported distances additionally carry the
/// documented bounded query-side quantization error (appropriate only
/// when a cheap approximate ranking is acceptable or the caller refines
/// afterwards).
///
/// # Panics
/// Panics if `k` is zero or exceeds the store size, or on dimensionality
/// mismatch between `distance`, `query` and `vectors`.
pub fn knn_flat<E: FilterElem>(
    distance: &WeightedL1,
    query: &[f64],
    vectors: &FlatStore<E>,
    k: usize,
) -> KnnResult {
    assert!(k >= 1, "k must be at least 1");
    assert!(
        k <= vectors.len(),
        "k = {k} exceeds the database size {}",
        vectors.len()
    );
    let mut scores = vec![0.0; vectors.len()];
    distance.eval_filter(query, vectors, &mut scores);
    let neighbors = top_p_by_score(&scores, k);
    let distances = neighbors.iter().map(|&i| scores[i]).collect();
    KnnResult {
        neighbors,
        distances,
    }
}

/// Exact k nearest neighbors of every row of an embedded query batch within
/// a flat vector store, under a (weighted) L1 distance.
///
/// The batched counterpart of [`knn_flat`], running the same tiled pipeline
/// as the retrieval indexes (`filter_refine::tiled_query_pipeline`): the
/// batch is cut into query tiles fanned out across the persistent worker
/// pool, each tile scored in one pass of the tiled batch kernel
/// [`WeightedL1::eval_flat_batch`] (the tile's query rows stay
/// cache-resident while the store streams once per tile; no batch-sized
/// score matrix is ever materialized), followed by the O(n)
/// `(score, index)` selection per query on the tile's still-hot rows.
/// Results are in query order and identical to calling [`knn_flat`] per
/// query, at any thread count; query rows repeated within one tile reuse
/// the first occurrence's result through the pipeline's duplicate-query
/// memo (sound here because the result is a pure function of the row
/// values). An empty query batch returns an empty vector.
///
/// # Panics
/// As [`knn_flat`] (when the batch is non-empty), plus on dimensionality
/// mismatch between `queries` and `vectors`.
pub fn knn_flat_batch<E: FilterElem>(
    distance: &WeightedL1,
    queries: &FlatVectors,
    vectors: &FlatStore<E>,
    k: usize,
) -> Vec<KnnResult> {
    if queries.is_empty() {
        return Vec::new();
    }
    assert!(k >= 1, "k must be at least 1");
    assert!(
        k <= vectors.len(),
        "k = {k} exceeds the database size {}",
        vectors.len()
    );
    crate::filter_refine::tiled_query_pipeline(
        queries.len(),
        vectors.len(),
        k,
        |a, b| queries.row(a) == queries.row(b),
        |q0, q1, scores| distance.eval_filter_batch_range(queries, q0, q1, vectors, scores),
        |_q, row, order| KnnResult {
            neighbors: order.to_vec(),
            distances: order.iter().map(|&i| row[i]).collect(),
        },
    )
}

/// Exact `kmax` nearest neighbors for every query, computed across rayon
/// worker threads (`threads <= 1` forces the sequential path; larger values
/// enable the parallel path, whose width follows `RAYON_NUM_THREADS`).
///
/// This is the (expensive) ground-truth step of the evaluation harness; its
/// cost is `|queries| · |database|` exact distance computations.
pub fn ground_truth<O, D>(
    queries: &[O],
    database: &[O],
    distance: &D,
    kmax: usize,
    threads: usize,
) -> Vec<KnnResult>
where
    O: Sync,
    D: DistanceMeasure<O> + Sync + ?Sized,
{
    assert!(!queries.is_empty(), "need at least one query");
    if threads <= 1 || queries.len() < 2 {
        return queries
            .iter()
            .map(|q| knn(q, database, distance, kmax))
            .collect();
    }
    queries
        .par_iter()
        .map(|q| knn(q, database, distance, kmax))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qse_distance::traits::{FnDistance, MetricProperties};
    use qse_distance::CountingDistance;

    fn abs() -> FnDistance<impl Fn(&f64, &f64) -> f64 + Send + Sync> {
        FnDistance::new("abs", MetricProperties::Metric, |a: &f64, b: &f64| {
            (a - b).abs()
        })
    }

    #[test]
    fn finds_the_true_nearest_neighbors_in_order() {
        let db = vec![10.0, 0.0, 5.0, 2.0, 8.0];
        let res = knn(&1.0, &db, &abs(), 3);
        assert_eq!(res.neighbors, vec![1, 3, 2]);
        assert_eq!(res.distances, vec![1.0, 1.0, 4.0]);
    }

    #[test]
    fn ties_break_by_index() {
        let db = vec![2.0, 0.0, 2.0];
        let res = knn(&1.0, &db, &abs(), 3);
        assert_eq!(res.neighbors, vec![0, 1, 2]);
    }

    #[test]
    fn brute_force_cost_is_database_size() {
        let db: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let counting = CountingDistance::new(abs());
        let _ = knn(&7.3, &db, &counting, 5);
        assert_eq!(counting.count(), 50);
    }

    #[test]
    fn parallel_ground_truth_matches_sequential() {
        let db: Vec<f64> = (0..40).map(|i| (i as f64) * 1.7).collect();
        let queries: Vec<f64> = (0..9).map(|i| i as f64 * 3.1 + 0.4).collect();
        let seq = ground_truth(&queries, &db, &abs(), 5, 1);
        let par = ground_truth(&queries, &db, &abs(), 5, 4);
        assert_eq!(seq, par);
    }

    #[test]
    #[should_panic(expected = "exceeds the database size")]
    fn rejects_oversized_k() {
        let _ = knn(&0.0, &[1.0, 2.0], &abs(), 3);
    }

    #[test]
    fn knn_flat_matches_generic_knn_under_l1() {
        use qse_distance::{FlatVectors, LpDistance, WeightedL1};
        let rows: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![(i % 7) as f64, (i % 5) as f64 * 1.3, i as f64 * 0.11])
            .collect();
        let query = vec![2.5, 1.9, 1.0];
        let truth = knn(&query, &rows, &LpDistance::l1(), 6);
        let flat = FlatVectors::from_rows(rows);
        let result = super::knn_flat(&WeightedL1::uniform(3), &query, &flat, 6);
        assert_eq!(result.neighbors, truth.neighbors);
        for (a, b) in result.distances.iter().zip(&truth.distances) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn knn_flat_batch_matches_per_query_knn_flat() {
        use qse_distance::{FlatVectors, WeightedL1};
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i % 9) as f64 * 0.7, (i % 4) as f64, i as f64 * 0.05])
            .collect();
        let store = FlatVectors::from_rows(rows);
        // More queries than one kernel tile, to cross the tile boundary.
        let queries = FlatVectors::from_rows(
            (0..21)
                .map(|q| vec![q as f64 * 0.31, (q % 5) as f64, 1.0])
                .collect(),
        );
        let d = WeightedL1::new(vec![1.0, 0.5, 2.0]);
        let batch = super::knn_flat_batch(&d, &queries, &store, 6);
        assert_eq!(batch.len(), queries.len());
        for (q, result) in batch.iter().enumerate() {
            assert_eq!(
                *result,
                super::knn_flat(&d, queries.row(q), &store, 6),
                "query {q}"
            );
        }
    }

    #[test]
    fn knn_flat_batch_on_empty_query_batch_returns_empty() {
        use qse_distance::{FlatVectors, WeightedL1};
        let store = FlatVectors::from_rows(vec![vec![1.0], vec![2.0]]);
        let queries = FlatVectors::with_dim(1);
        assert!(super::knn_flat_batch(&WeightedL1::uniform(1), &queries, &store, 1).is_empty());
        // Zero sequential calls panic on nothing, even with oversized k.
        assert!(super::knn_flat_batch(&WeightedL1::uniform(1), &queries, &store, 9).is_empty());
    }

    #[test]
    fn knn_flat_batch_handles_zero_dimensional_queries() {
        use qse_distance::{FlatVectors, WeightedL1};
        // dim = 0: every distance is the empty sum, ties break by index.
        let mut store = FlatVectors::with_dim(0);
        let mut queries = FlatVectors::with_dim(0);
        for _ in 0..4 {
            store.push(&[]);
        }
        for _ in 0..3 {
            queries.push(&[]);
        }
        let batch = super::knn_flat_batch(&WeightedL1::new(Vec::new()), &queries, &store, 2);
        for result in &batch {
            assert_eq!(result.neighbors, vec![0, 1]);
            assert_eq!(result.distances, vec![0.0, 0.0]);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds the database size")]
    fn knn_flat_batch_rejects_oversized_k() {
        use qse_distance::{FlatVectors, WeightedL1};
        let store = FlatVectors::from_rows(vec![vec![1.0]]);
        let queries = FlatVectors::from_rows(vec![vec![0.0]]);
        let _ = super::knn_flat_batch(&WeightedL1::uniform(1), &queries, &store, 2);
    }

    #[test]
    fn knn_flat_respects_weights_and_tie_breaks_by_index() {
        use qse_distance::{FlatVectors, WeightedL1};
        // Two rows at equal weighted distance from the query -> lower index
        // first; a third row is pushed away by the weights.
        let flat = FlatVectors::from_rows(vec![vec![1.0, 0.0], vec![0.0, 0.5], vec![0.0, 10.0]]);
        let d = WeightedL1::new(vec![1.0, 2.0]);
        let result = super::knn_flat(&d, &[0.0, 0.0], &flat, 3);
        assert_eq!(result.neighbors, vec![0, 1, 2]);
        assert_eq!(result.distances, vec![1.0, 1.0, 20.0]);
    }
}
