//! Concurrent dynamic index: epoch-snapshot reads over an LSM-flavored
//! segment layout (ROADMAP direction 4).
//!
//! [`DynamicIndex`](crate::DynamicIndex) implements the paper's Section
//! 7.1 protocol faithfully, but every mutation takes `&mut self` — a
//! serving process stalls all readers for the duration of an insert,
//! remove, or (worst) a full retrain. [`ConcurrentIndex`] restructures
//! the same state so reads never stop for writes:
//!
//! * The embedded database lives in **immutable sealed segments** — each
//!   a [`FlatStore`] slab plus its objects — and a small **mutable
//!   tail** the writer appends into. Every segment encodes under the
//!   *same* fitted parameters (the shared-grid trick of the routed
//!   cells, `FlatStore::from_rows_with_params`), so per-row filter
//!   scores are bit-identical to one monolithic store's.
//! * Readers see the index through **epoch snapshots**: an immutable
//!   [`Snapshot`] holding `Arc`s of the segments plus an id map from
//!   live global ids to `(segment, row)`. Publishing a new epoch is an
//!   `Arc` pointer swap behind a mutex held for the duration of one
//!   pointer clone — a retrieve pins its snapshot once and then runs
//!   with no locks at all, while the writer rebuilds the next epoch off
//!   to the side.
//! * The public surface is a **handle pair**: [`ConcurrentIndex::reader`]
//!   yields cheap cloneable [`ReadHandle`]s; [`ConcurrentIndex::writer`]
//!   claims the single [`WriteHandle`] whose `insert`/`remove` batch
//!   into the tail (sealing it into a segment at a size threshold) and
//!   whose `refit_store`/`retrain`/`compact` are the segment-compaction
//!   points.
//!
//! ## The consistency guarantee
//!
//! A retrieve against a snapshot at epoch `e` returns **bit-identical**
//! results to a plain [`DynamicIndex`](crate::DynamicIndex) that applied
//! exactly the first `e` mutations sequentially — at any reader / writer
//! / substrate thread count. The mechanics mirror the routed-cell proof:
//! segment rows carry the exact bytes the monolithic store would hold
//! (shared encode grid; compaction copies stored elements verbatim,
//! never re-encoding), the id map replicates `DynamicIndex`'s
//! append/swap-remove id discipline, scores are gathered into global-id
//! order before the shared `top_p_by_score` selection (strict
//! `(score, index)` total order), and the refine step is the same exact
//! k-NN over the same candidate set. `tests/concurrent_index.rs` pins
//! this the way `parallel_equivalence` pins the batched pipeline.
//!
//! Removed rows stay behind as **tombstones** in their segment (they are
//! scored and then skipped by the id-map gather — dead weight, not a
//! correctness issue) until a compaction point reclaims them.

use crate::dynamic::DynamicIndex;
use crate::error::{check_p_scale, check_query_params, QueryError};
use crate::filter_refine::{
    effective_p, tiled_query_pipeline, top_p_by_score, FilterElem, FlatStore,
};
use crate::knn::knn;
use qse_core::QseModel;
use qse_distance::DistanceMeasure;
use qse_embedding::{CompositeEmbedding, Embedding};
use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Tail rows accumulated before the writer seals them into an immutable
/// segment (see [`WriteHandle::set_tail_limit`]). Publishing an epoch
/// copies the live tail, so the threshold bounds the per-mutation
/// publish cost; sealing itself moves the tail without copying.
pub const DEFAULT_TAIL_LIMIT: usize = 1024;

/// One immutable slab of the index: a contiguous run of objects and
/// their embedded rows. Sealed segments are shared between the writer
/// and every snapshot by `Arc` and never change after construction;
/// the tail segment of a snapshot is a private copy.
struct Segment<O, E: FilterElem> {
    objects: Vec<O>,
    store: FlatStore<E>,
}

/// An immutable view of the index at one write epoch.
///
/// Holds the model, the segment list and the live-id map by `Arc`/value,
/// so it stays valid — and keeps returning the same results — no matter
/// what the writer does after it was pinned. Obtained from
/// [`ReadHandle::snapshot`]; the per-call retrieve methods on
/// [`ReadHandle`] pin one internally.
pub struct Snapshot<O, E: FilterElem = f64> {
    model: Arc<QseModel<O>>,
    segments: Vec<Arc<Segment<O, E>>>,
    /// `idmap[g]` is `(segment, row)` of live global id `g` — the same
    /// id space a sequentially-churned `DynamicIndex` would expose
    /// (append assigns `len`, remove swap-removes).
    idmap: Vec<(u32, u32)>,
    p_scale: f64,
    epoch: u64,
}

/// The writer's private state: sealed segments, the mutable tail, and
/// the live-id map the next publish will snapshot.
struct WriterState<O, E: FilterElem> {
    model: Arc<QseModel<O>>,
    embedding: Arc<CompositeEmbedding<O>>,
    sealed: Vec<Arc<Segment<O, E>>>,
    tail_objects: Vec<O>,
    tail_store: FlatStore<E>,
    idmap: Vec<(u32, u32)>,
    p_scale: f64,
    epoch: u64,
    tail_limit: usize,
}

struct Core<O, E: FilterElem> {
    /// The current snapshot. Swapped wholesale under this mutex — held
    /// only for the duration of one `Arc` clone/store, never across any
    /// scoring, embedding or allocation work.
    published: Mutex<Arc<Snapshot<O, E>>>,
    writer: Mutex<WriterState<O, E>>,
    /// Whether the single [`WriteHandle`] is currently outstanding.
    writer_claimed: AtomicBool,
}

/// A concurrently readable, single-writer dynamic filter-and-refine
/// index — the serving form of [`DynamicIndex`].
///
/// Build one with [`ConcurrentIndex::from_dynamic`], then hand
/// [`ReadHandle`]s to reader threads and claim the [`WriteHandle`] on
/// the mutation path. The index itself is a cheap cloneable handle
/// factory; dropping it does not invalidate outstanding handles.
///
/// See the [module docs](self) for the layout and the bit-identity
/// guarantee.
pub struct ConcurrentIndex<O, E: FilterElem = f64> {
    core: Arc<Core<O, E>>,
}

/// A cheap cloneable read handle: every retrieve pins the current
/// [`Snapshot`] (one `Arc` clone under a pointer-swap mutex) and then
/// runs entirely lock-free against it. Clone one per reader thread.
pub struct ReadHandle<O, E: FilterElem = f64> {
    core: Arc<Core<O, E>>,
}

/// The single mutation handle (claim it with
/// [`ConcurrentIndex::writer`] / [`ConcurrentIndex::try_writer`]).
///
/// Every mutation applies to the writer's private state and then
/// publishes a fresh epoch snapshot; readers switch to it on their next
/// retrieve, never mid-query. Dropping the handle releases the claim.
pub struct WriteHandle<O, E: FilterElem = f64> {
    core: Arc<Core<O, E>>,
}

impl<O, E: FilterElem> Clone for ConcurrentIndex<O, E> {
    fn clone(&self) -> Self {
        Self {
            core: self.core.clone(),
        }
    }
}

impl<O, E: FilterElem> Clone for ReadHandle<O, E> {
    fn clone(&self) -> Self {
        Self {
            core: self.core.clone(),
        }
    }
}

impl<O, E: FilterElem> Drop for WriteHandle<O, E> {
    fn drop(&mut self) {
        self.core.writer_claimed.store(false, Ordering::Release);
    }
}

/// An empty store on `template`'s dimensionality and fitted parameters —
/// the shared-grid invariant every tail starts from.
fn empty_like<E: FilterElem>(dim: usize, params: &<E as FilterElem>::Params) -> FlatStore<E> {
    FlatStore::from_rows_with_params(dim, Vec::new(), params.clone())
}

impl<O: Clone + Send + Sync, E: FilterElem> ConcurrentIndex<O, E> {
    /// Wrap a (possibly pre-populated) [`DynamicIndex`] for concurrent
    /// serving. The existing store becomes the base sealed segment; the
    /// model, embedding, `p_scale` knob and the id space all carry over
    /// unchanged, so epoch 0 answers exactly as `index` would have.
    ///
    /// The routing layer, if enabled, is dropped: the concurrent layout
    /// owns the partitioning (segments), and its retrieval paths are the
    /// full-scan ones. An empty index is fine — it starts answering
    /// [`QueryError::EmptyIndex`] and accepts inserts.
    pub fn from_dynamic(index: DynamicIndex<O, E>) -> Self {
        let DynamicIndex {
            model,
            embedding,
            objects,
            vectors,
            p_scale,
            routing: _,
        } = index;
        let dim = vectors.dim();
        let params = vectors.params().clone();
        let mut sealed = Vec::new();
        let mut idmap = Vec::with_capacity(objects.len());
        if !objects.is_empty() {
            idmap.extend((0..objects.len()).map(|r| (0u32, r as u32)));
            sealed.push(Arc::new(Segment {
                objects,
                store: vectors,
            }));
        }
        let state = WriterState {
            model: Arc::new(model),
            embedding: Arc::new(embedding),
            sealed,
            tail_objects: Vec::new(),
            tail_store: empty_like::<E>(dim, &params),
            idmap,
            p_scale,
            epoch: 0,
            tail_limit: DEFAULT_TAIL_LIMIT,
        };
        let snapshot = Arc::new(snapshot_of(&state));
        Self {
            core: Arc::new(Core {
                published: Mutex::new(snapshot),
                writer: Mutex::new(state),
                writer_claimed: AtomicBool::new(false),
            }),
        }
    }

    /// A new read handle (clone it freely; one per reader thread is the
    /// intended shape).
    pub fn reader(&self) -> ReadHandle<O, E> {
        ReadHandle {
            core: self.core.clone(),
        }
    }

    /// Claim the single write handle, or `None` if it is already
    /// outstanding. The claim is released when the handle drops.
    pub fn try_writer(&self) -> Option<WriteHandle<O, E>> {
        if self
            .core
            .writer_claimed
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            Some(WriteHandle {
                core: self.core.clone(),
            })
        } else {
            None
        }
    }

    /// Claim the single write handle.
    ///
    /// # Panics
    /// Panics if the write handle is already claimed (the fallible form
    /// is [`Self::try_writer`]).
    pub fn writer(&self) -> WriteHandle<O, E> {
        self.try_writer()
            .expect("the write handle is already claimed")
    }

    /// Pin the current snapshot (equivalent to `reader().snapshot()`).
    pub fn snapshot(&self) -> Arc<Snapshot<O, E>> {
        pin(&self.core)
    }

    /// Number of live objects in the current snapshot.
    pub fn len(&self) -> usize {
        pin(&self.core).len()
    }

    /// `true` if the current snapshot holds no live objects.
    pub fn is_empty(&self) -> bool {
        pin(&self.core).is_empty()
    }

    /// The current publish epoch (0 at construction; +1 per mutation
    /// call that publishes).
    pub fn epoch(&self) -> u64 {
        pin(&self.core).epoch()
    }
}

/// Pin the published snapshot: one `Arc` clone under the swap mutex.
fn pin<O, E: FilterElem>(core: &Core<O, E>) -> Arc<Snapshot<O, E>> {
    core.published
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone()
}

/// Build the snapshot the current writer state publishes: sealed
/// segments by `Arc` clone, the live tail by copy, the id map by clone.
fn snapshot_of<O: Clone, E: FilterElem>(w: &WriterState<O, E>) -> Snapshot<O, E> {
    let mut segments = w.sealed.clone();
    if !w.tail_objects.is_empty() {
        segments.push(Arc::new(Segment {
            objects: w.tail_objects.clone(),
            store: w.tail_store.clone(),
        }));
    }
    Snapshot {
        model: w.model.clone(),
        segments,
        idmap: w.idmap.clone(),
        p_scale: w.p_scale,
        epoch: w.epoch,
    }
}

impl<O: Clone + Send + Sync, E: FilterElem> WriteHandle<O, E> {
    /// Run `mutate` on the locked writer state, then publish the next
    /// epoch. The publish lock is taken only for the pointer store.
    fn mutate<R>(&mut self, mutate: impl FnOnce(&mut WriterState<O, E>) -> R) -> R {
        let mut w = self.core.writer.lock().unwrap_or_else(|e| e.into_inner());
        let out = mutate(&mut w);
        w.epoch += 1;
        // Seal the tail once it crosses the threshold: a move, not a
        // copy — its rows were assigned segment id `sealed.len()` at
        // insert time, which is exactly the slot it lands in.
        if w.tail_objects.len() >= w.tail_limit {
            let objects = std::mem::take(&mut w.tail_objects);
            let dim = w.tail_store.dim();
            let params = w.tail_store.params().clone();
            let store = std::mem::replace(&mut w.tail_store, empty_like::<E>(dim, &params));
            w.sealed.push(Arc::new(Segment { objects, store }));
        }
        let snapshot = Arc::new(snapshot_of(&w));
        *self
            .core
            .published
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = snapshot;
        out
    }

    /// Insert an object online: embed it (at most `2d` exact distances,
    /// as in Section 7.1), append to the tail under the shared encode
    /// grid, publish. Returns the assigned global id (`len - 1`, exactly
    /// as [`DynamicIndex::insert`] would).
    pub fn insert(&mut self, object: O, distance: &dyn DistanceMeasure<O>) -> usize {
        self.mutate(|w| insert_locked(w, object, distance))
    }

    /// Insert a batch of objects under **one** published epoch (one
    /// snapshot build instead of one per row). Returns the assigned
    /// global-id range.
    pub fn insert_batch(
        &mut self,
        objects: Vec<O>,
        distance: &dyn DistanceMeasure<O>,
    ) -> Range<usize> {
        self.mutate(|w| {
            let start = w.idmap.len();
            for object in objects {
                insert_locked(w, object, distance);
            }
            start..w.idmap.len()
        })
    }

    /// Remove the live object with global id `id` (swap-remove: the
    /// last id takes its slot, exactly as [`DynamicIndex::remove`]).
    /// The physical row stays behind as a tombstone until a compaction
    /// point. Returns the removed object.
    ///
    /// # Panics
    /// Panics if `id` is out of bounds (the fallible form is
    /// [`Self::try_remove`]).
    pub fn remove(&mut self, id: usize) -> O {
        self.try_remove(id)
            .unwrap_or_else(|_| panic!("index {id} out of bounds"))
    }

    /// Fallible [`Self::remove`]: [`QueryError::BadId`] when `id` is
    /// not a live global id — the entry point the serving layer calls
    /// so a stale client id is an error response, not a dead process.
    pub fn try_remove(&mut self, id: usize) -> Result<O, QueryError> {
        self.mutate(|w| {
            if id >= w.idmap.len() {
                return Err(QueryError::BadId {
                    id,
                    len: w.idmap.len(),
                });
            }
            let (seg, row) = w.idmap.swap_remove(id);
            Ok(segment_object(w, seg, row).clone())
        })
    }

    /// Reclaim tombstones without touching the embedding: copy the live
    /// rows' **stored elements verbatim** (no re-encoding — scores are
    /// bit-preserved) into one fresh sealed segment in global-id order.
    /// Result-invariant; spends no exact distances.
    pub fn compact(&mut self) {
        self.mutate(|w| {
            let n = w.idmap.len();
            let dim = w.tail_store.dim();
            let params = w.tail_store.params().clone();
            let mut objects = Vec::with_capacity(n);
            let mut data: Vec<E> = Vec::with_capacity(n * dim);
            for &(seg, row) in &w.idmap {
                objects.push(segment_object(w, seg, row).clone());
                data.extend_from_slice(segment_row(w, seg, row));
            }
            let store = FlatStore::from_stored_parts(dim, n, params.clone(), data)
                .expect("compaction copies exactly dim * rows elements");
            rebase(w, objects, store);
        });
    }

    /// The drift-recovery compaction point (see
    /// [`DynamicIndex::refit_store`]): re-embed every live object under
    /// the current model, re-fit the encode grid over the data actually
    /// indexed now, and rebuild as one sealed segment. Costs `len()`
    /// re-embeddings; global ids are unchanged. The next snapshot is
    /// built entirely off to the side — readers keep answering from the
    /// previous epoch until the one-pointer swap.
    pub fn refit_store(&mut self, distance: &dyn DistanceMeasure<O>) {
        self.mutate(|w| refit_locked(w, distance));
    }

    /// Swap in a newly trained model and rebuild under it — the in-place
    /// drift recovery of [`DynamicIndex::retrain`], as a compaction
    /// point. Readers never block while the rebuild runs.
    pub fn retrain(&mut self, model: QseModel<O>, distance: &dyn DistanceMeasure<O>) {
        self.mutate(|w| {
            let model = Arc::new(model);
            w.embedding = Arc::new(model.embedding());
            w.model = model;
            refit_locked(w, distance);
        });
    }

    /// Set the filter oversampling factor for subsequent epochs (see
    /// [`DynamicIndex::with_p_scale`]).
    ///
    /// # Errors
    /// [`QueryError::BadPScale`] when the factor is non-finite or below
    /// `1.0`; the knob (and the epoch) are left untouched.
    pub fn try_set_p_scale(&mut self, p_scale: f64) -> Result<(), QueryError> {
        check_p_scale(p_scale)?;
        self.mutate(|w| w.p_scale = p_scale);
        Ok(())
    }

    /// Change the tail-seal threshold (min 1; the default is
    /// [`DEFAULT_TAIL_LIMIT`]). Smaller tails cheapen each publish,
    /// more segments lengthen the per-query gather — takes effect at
    /// the next mutation, with no epoch of its own.
    pub fn set_tail_limit(&mut self, limit: usize) {
        let mut w = self.core.writer.lock().unwrap_or_else(|e| e.into_inner());
        w.tail_limit = limit.max(1);
    }

    /// Number of live objects in the writer's (most recent) state.
    pub fn len(&self) -> usize {
        self.core
            .writer
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .idmap
            .len()
    }

    /// `true` if the writer's state holds no live objects.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The epoch of the most recently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.core
            .writer
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .epoch
    }
}

fn insert_locked<O: Clone + Send + Sync, E: FilterElem>(
    w: &mut WriterState<O, E>,
    object: O,
    distance: &dyn DistanceMeasure<O>,
) -> usize {
    assert!(
        w.idmap.len() < u32::MAX as usize,
        "concurrent index id space exhausted"
    );
    let vector = w.embedding.embed(&object, distance);
    let seg = w.sealed.len() as u32;
    let row = w.tail_objects.len() as u32;
    w.tail_store.push(&vector);
    w.tail_objects.push(object);
    w.idmap.push((seg, row));
    w.idmap.len() - 1
}

fn segment_object<O, E: FilterElem>(w: &WriterState<O, E>, seg: u32, row: u32) -> &O {
    let (seg, row) = (seg as usize, row as usize);
    if seg < w.sealed.len() {
        &w.sealed[seg].objects[row]
    } else {
        &w.tail_objects[row]
    }
}

fn segment_row<O, E: FilterElem>(w: &WriterState<O, E>, seg: u32, row: u32) -> &[E] {
    let (seg, row) = (seg as usize, row as usize);
    if seg < w.sealed.len() {
        w.sealed[seg].store.row(row)
    } else {
        w.tail_store.row(row)
    }
}

/// Install `objects`/`store` (in global-id order) as the single sealed
/// segment, resetting the tail to the store's grid and the id map to
/// the identity.
fn rebase<O, E: FilterElem>(w: &mut WriterState<O, E>, objects: Vec<O>, store: FlatStore<E>) {
    let n = objects.len();
    debug_assert_eq!(store.len(), n);
    w.tail_objects.clear();
    w.tail_store = empty_like::<E>(store.dim(), store.params());
    w.sealed.clear();
    if n > 0 {
        w.sealed.push(Arc::new(Segment { objects, store }));
    }
    w.idmap = (0..n).map(|g| (0u32, g as u32)).collect();
}

fn refit_locked<O: Clone + Send + Sync, E: FilterElem>(
    w: &mut WriterState<O, E>,
    distance: &dyn DistanceMeasure<O>,
) {
    let objects: Vec<O> = w
        .idmap
        .iter()
        .map(|&(seg, row)| segment_object(w, seg, row).clone())
        .collect();
    let store = w.embedding.embed_store(&objects, distance);
    rebase(w, objects, store);
}

impl<O: Clone + Send + Sync, E: FilterElem> ReadHandle<O, E> {
    /// Pin the current snapshot: one `Arc` clone under the swap mutex,
    /// then the snapshot is yours lock-free for as long as you hold it.
    pub fn snapshot(&self) -> Arc<Snapshot<O, E>> {
        pin(&self.core)
    }

    /// Filter-and-refine retrieval against the **current** snapshot —
    /// see [`Snapshot::try_retrieve`] for the semantics (and pin a
    /// snapshot yourself to issue several queries against one epoch).
    pub fn try_retrieve(
        &self,
        query: &O,
        distance: &dyn DistanceMeasure<O>,
        k: usize,
        p: usize,
    ) -> Result<Vec<usize>, QueryError> {
        self.snapshot().try_retrieve(query, distance, k, p)
    }

    /// Batched retrieval against the **current** snapshot (one snapshot
    /// for the whole batch) — see [`Snapshot::try_retrieve_batch`].
    pub fn try_retrieve_batch(
        &self,
        queries: &[O],
        distance: &dyn DistanceMeasure<O>,
        k: usize,
        p: usize,
    ) -> Result<Vec<Vec<usize>>, QueryError>
    where
        O: PartialEq,
    {
        self.snapshot().try_retrieve_batch(queries, distance, k, p)
    }

    /// Asserting [`Self::try_retrieve`] (panics with the same messages
    /// as [`DynamicIndex::retrieve`](crate::DynamicIndex::retrieve)).
    pub fn retrieve(
        &self,
        query: &O,
        distance: &dyn DistanceMeasure<O>,
        k: usize,
        p: usize,
    ) -> Vec<usize> {
        self.try_retrieve(query, distance, k, p)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Asserting [`Self::try_retrieve_batch`]; an empty batch returns an
    /// empty vector, mirroring zero sequential calls.
    pub fn retrieve_batch(
        &self,
        queries: &[O],
        distance: &dyn DistanceMeasure<O>,
        k: usize,
        p: usize,
    ) -> Vec<Vec<usize>>
    where
        O: PartialEq,
    {
        if queries.is_empty() {
            return Vec::new();
        }
        self.try_retrieve_batch(queries, distance, k, p)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Number of live objects in the current snapshot.
    pub fn len(&self) -> usize {
        self.snapshot().len()
    }

    /// `true` if the current snapshot holds no live objects.
    pub fn is_empty(&self) -> bool {
        self.snapshot().is_empty()
    }

    /// The current snapshot's epoch.
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch()
    }
}

impl<O: Clone + Send + Sync, E: FilterElem> Snapshot<O, E> {
    /// Number of live objects at this epoch.
    pub fn len(&self) -> usize {
        self.idmap.len()
    }

    /// `true` if this epoch holds no live objects.
    pub fn is_empty(&self) -> bool {
        self.idmap.is_empty()
    }

    /// The write epoch this snapshot was published at (0 = as built).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The filter oversampling factor in force at this epoch.
    pub fn p_scale(&self) -> f64 {
        self.p_scale
    }

    /// Number of segments (sealed + the tail copy, if non-empty).
    pub fn segments(&self) -> usize {
        self.segments.len()
    }

    /// Physical rows retained for already-removed objects (reclaimed at
    /// the next compaction point).
    pub fn garbage_rows(&self) -> usize {
        let physical: usize = self.segments.iter().map(|s| s.store.len()).sum();
        physical - self.idmap.len()
    }

    /// The live object with global id `g` — what retrieval ids index.
    ///
    /// # Panics
    /// Panics if `g >= len()`.
    pub fn object(&self, g: usize) -> &O {
        let (seg, row) = self.idmap[g];
        &self.segments[seg as usize].objects[row as usize]
    }

    fn validate(&self, k: usize, p: usize) -> Result<(), QueryError> {
        if self.idmap.is_empty() {
            return Err(QueryError::EmptyIndex);
        }
        check_query_params(k, p, self.idmap.len())
    }

    /// Score every segment with the backend-dispatched filter kernel,
    /// then gather into global-id order through the id map — after
    /// which the scores vector is exactly what the monolithic
    /// `DynamicIndex` scan would have produced (shared encode grid;
    /// tombstone scores are computed and dropped).
    fn gather_scores(&self, scores: &mut [f64], score_segment: impl Fn(usize, &mut [f64])) {
        let mut seg_scores: Vec<Vec<f64>> = Vec::with_capacity(self.segments.len());
        for (s, seg) in self.segments.iter().enumerate() {
            let mut buf = vec![0.0; seg.store.len()];
            score_segment(s, &mut buf);
            seg_scores.push(buf);
        }
        for (g, &(seg, row)) in self.idmap.iter().enumerate() {
            scores[g] = seg_scores[seg as usize][row as usize];
        }
    }

    /// Filter-and-refine retrieval of the `k` approximate nearest
    /// neighbors at this epoch, keeping `p` filter candidates —
    /// bit-identical to [`DynamicIndex::try_retrieve`] on a plain index
    /// that applied this epoch's prefix of mutations.
    ///
    /// # Errors
    /// As [`DynamicIndex::try_retrieve`].
    pub fn try_retrieve(
        &self,
        query: &O,
        distance: &dyn DistanceMeasure<O>,
        k: usize,
        p: usize,
    ) -> Result<Vec<usize>, QueryError> {
        self.validate(k, p)?;
        let eq = self.model.embed_query(query, distance);
        let n = self.idmap.len();
        let mut scores = vec![0.0; n];
        self.gather_scores(&mut scores, |s, buf| {
            eq.score_filter(&self.segments[s].store, buf)
        });
        let order = top_p_by_score(&scores, effective_p(p, self.p_scale, n));
        Ok(self.refine(query, distance, k, &order))
    }

    /// Batched retrieval at this epoch through the shared Q×N tiled
    /// pipeline (every query of the batch sees the same epoch). Results
    /// are in query order and identical to calling
    /// [`Self::try_retrieve`] per query, at any thread count.
    ///
    /// # Errors
    /// As [`DynamicIndex::try_retrieve_batch`].
    pub fn try_retrieve_batch(
        &self,
        queries: &[O],
        distance: &dyn DistanceMeasure<O>,
        k: usize,
        p: usize,
    ) -> Result<Vec<Vec<usize>>, QueryError>
    where
        O: PartialEq,
    {
        if queries.is_empty() {
            return Err(QueryError::EmptyBatch);
        }
        self.validate(k, p)?;
        let batch = self.model.embed_queries(queries, distance);
        let n = self.idmap.len();
        Ok(tiled_query_pipeline(
            queries.len(),
            n,
            effective_p(p, self.p_scale, n),
            |a, b| queries[a] == queries[b],
            |q0, q1, scores| {
                // Per-segment tiled scoring, scattered into global-id
                // order per query row of the tile.
                let tile = q1 - q0;
                let mut seg_scores: Vec<Vec<f64>> = Vec::with_capacity(self.segments.len());
                for seg in &self.segments {
                    let mut buf = vec![0.0; tile * seg.store.len()];
                    batch.score_filter_batch_range(q0, q1, &seg.store, &mut buf);
                    seg_scores.push(buf);
                }
                for (g, &(seg, row)) in self.idmap.iter().enumerate() {
                    let (seg, row) = (seg as usize, row as usize);
                    let seg_len = self.segments[seg].store.len();
                    for t in 0..tile {
                        scores[t * n + g] = seg_scores[seg][t * seg_len + row];
                    }
                }
            },
            |q, _row, order| self.refine(&queries[q], distance, k, order),
        ))
    }

    /// The exact refine step over the filter candidates — the same
    /// routine (shape and total order) as `DynamicIndex::refine`.
    fn refine(
        &self,
        query: &O,
        distance: &dyn DistanceMeasure<O>,
        k: usize,
        order: &[usize],
    ) -> Vec<usize> {
        let candidates: Vec<O> = order.iter().map(|&g| self.object(g).clone()).collect();
        let refined = knn(query, &candidates, distance, k);
        refined.neighbors.into_iter().map(|i| order[i]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qse_core::{BoostMapTrainer, TrainerConfig, TrainingData, TripleSampler};
    use qse_distance::traits::{FnDistance, MetricProperties};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn euclid() -> FnDistance<impl Fn(&Vec<f64>, &Vec<f64>) -> f64 + Send + Sync> {
        FnDistance::new(
            "euclid",
            MetricProperties::Metric,
            |a: &Vec<f64>, b: &Vec<f64>| {
                a.iter()
                    .zip(b)
                    .map(|(x, y)| (x - y) * (x - y))
                    .sum::<f64>()
                    .sqrt()
            },
        )
    }

    fn two_cluster_db(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    vec![i as f64 * 0.01, 0.0]
                } else {
                    vec![20.0 + i as f64 * 0.01, 5.0]
                }
            })
            .collect()
    }

    fn trained_index(seed: u64) -> DynamicIndex<Vec<f64>> {
        let db = two_cluster_db(60);
        let d = euclid();
        let data = TrainingData::precompute(db.clone(), db.clone(), &d, 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let triples = TripleSampler::selective(4).sample(&data.train_to_train, 250, &mut rng);
        let model = BoostMapTrainer::new(TrainerConfig::quick()).train(&data, &triples, &mut rng);
        DynamicIndex::new(model, db, &d)
    }

    #[test]
    fn epoch_zero_matches_the_wrapped_index() {
        let d = euclid();
        let plain = trained_index(1);
        let queries: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64 * 3.1, 0.4]).collect();
        let expected: Vec<Vec<usize>> = queries
            .iter()
            .map(|q| plain.retrieve(q, &d, 2, 8))
            .collect();
        let conc = ConcurrentIndex::from_dynamic(plain);
        let reader = conc.reader();
        assert_eq!(conc.epoch(), 0);
        assert_eq!(conc.len(), 60);
        for (q, want) in queries.iter().zip(&expected) {
            assert_eq!(&reader.retrieve(q, &d, 2, 8), want);
        }
        assert_eq!(reader.retrieve_batch(&queries, &d, 2, 8), expected);
    }

    #[test]
    fn mutations_match_a_sequentially_churned_plain_index() {
        let d = euclid();
        let mut plain = trained_index(2);
        let conc = ConcurrentIndex::from_dynamic(trained_index(2));
        let reader = conc.reader();
        let mut writer = conc.writer();
        writer.set_tail_limit(4); // force sealing mid-churn
        let queries: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64 * 4.0, 1.0]).collect();
        let check = |plain: &DynamicIndex<Vec<f64>>, label: &str| {
            let snap = reader.snapshot();
            for q in &queries {
                assert_eq!(
                    snap.try_retrieve(q, &d, 2, 8).unwrap(),
                    plain.retrieve(q, &d, 2, 8),
                    "{label}"
                );
            }
            assert_eq!(
                snap.try_retrieve_batch(&queries, &d, 2, 8).unwrap(),
                plain.retrieve_batch(&queries, &d, 2, 8),
                "{label} (batch)"
            );
        };
        for i in 0..9 {
            let obj = vec![0.4 + i as f64 * 0.07, 0.1];
            assert_eq!(writer.insert(obj.clone(), &d), plain.insert(obj, &d));
        }
        check(&plain, "after inserts (sealed tail)");
        for id in [0usize, 31, 62] {
            assert_eq!(writer.remove(id), plain.remove(id));
        }
        check(&plain, "after removes (tombstones)");
        assert!(reader.snapshot().garbage_rows() >= 3);
        writer.compact();
        assert_eq!(reader.snapshot().garbage_rows(), 0);
        check(&plain, "after compact (result-invariant)");
        writer.refit_store(&d);
        plain.refit_store(&d);
        check(&plain, "after refit_store");
        let retrained = trained_index(7).model().clone();
        writer.retrain(retrained.clone(), &d);
        plain.retrain(retrained, &d);
        check(&plain, "after retrain");
    }

    #[test]
    fn old_snapshots_keep_answering_after_writes() {
        let d = euclid();
        let conc = ConcurrentIndex::from_dynamic(trained_index(3));
        let reader = conc.reader();
        let pinned = reader.snapshot();
        let q = vec![0.2, 0.1];
        let before = pinned.try_retrieve(&q, &d, 1, 6).unwrap();
        let mut writer = conc.writer();
        for _ in 0..5 {
            writer.remove(0);
        }
        writer.insert(q.clone(), &d);
        // The pinned epoch is immutable: identical answer, stale len.
        assert_eq!(pinned.try_retrieve(&q, &d, 1, 6).unwrap(), before);
        assert_eq!(pinned.len(), 60);
        assert_eq!(reader.len(), 56);
        assert_eq!(reader.epoch(), 6);
        // A fresh snapshot sees the inserted duplicate as its 1-NN.
        let hit = reader.retrieve(&q, &d, 1, 6);
        assert_eq!(reader.snapshot().object(hit[0]), &q);
    }

    #[test]
    fn single_writer_claim_is_enforced_and_released() {
        let conc = ConcurrentIndex::from_dynamic(trained_index(4));
        let w = conc.writer();
        assert!(conc.try_writer().is_none());
        drop(w);
        assert!(conc.try_writer().is_some());
    }

    #[test]
    fn typed_errors_cover_mutation_and_churned_empty() {
        let d = euclid();
        let conc = ConcurrentIndex::from_dynamic(trained_index(5));
        let reader = conc.reader();
        let mut writer = conc.writer();
        let n = reader.len();
        assert_eq!(
            writer.try_remove(n),
            Err(QueryError::BadId { id: n, len: n })
        );
        assert_eq!(
            reader.try_retrieve(&vec![0.0, 0.0], &d, 0, 5),
            Err(QueryError::BadK { k: 0 })
        );
        assert_eq!(
            reader.try_retrieve_batch(&[], &d, 1, 5),
            Err(QueryError::EmptyBatch)
        );
        assert!(matches!(
            writer.try_set_p_scale(0.2),
            Err(QueryError::BadPScale { .. })
        ));
        for _ in 0..n {
            writer.remove(0);
        }
        assert_eq!(
            reader.try_retrieve(&vec![0.0, 0.0], &d, 1, 1),
            Err(QueryError::EmptyIndex)
        );
        // An emptied index accepts inserts again (fresh ids from 0).
        assert_eq!(writer.insert(vec![1.0, 1.0], &d), 0);
        assert_eq!(reader.retrieve(&vec![1.0, 1.0], &d, 1, 1), vec![0]);
    }

    #[test]
    fn u8_backend_stays_bit_identical_through_churn() {
        let d = euclid();
        let db = two_cluster_db(60);
        let data = TrainingData::precompute(db.clone(), db.clone(), &d, 1);
        let mut rng = StdRng::seed_from_u64(6);
        let triples = TripleSampler::selective(4).sample(&data.train_to_train, 250, &mut rng);
        let model = BoostMapTrainer::new(TrainerConfig::quick()).train(&data, &triples, &mut rng);
        let mut plain = DynamicIndex::<_, u8>::with_store(model.clone(), db.clone(), &d);
        let conc = ConcurrentIndex::from_dynamic(DynamicIndex::<_, u8>::with_store(model, db, &d));
        let reader = conc.reader();
        let mut writer = conc.writer();
        writer.set_tail_limit(3);
        for i in 0..7 {
            let obj = vec![19.0 + i as f64 * 0.2, 4.8];
            assert_eq!(writer.insert(obj.clone(), &d), plain.insert(obj, &d));
        }
        for id in [2usize, 40] {
            assert_eq!(writer.remove(id), plain.remove(id));
        }
        writer.compact();
        let queries: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64 * 3.3, 0.7]).collect();
        for q in &queries {
            assert_eq!(
                reader.retrieve(q, &d, 2, 10),
                plain.retrieve(q, &d, 2, 10),
                "u8 churn divergence"
            );
        }
        assert_eq!(
            reader.retrieve_batch(&queries, &d, 2, 10),
            plain.retrieve_batch(&queries, &d, 2, 10)
        );
    }

    #[test]
    fn from_dynamic_over_empty_database_accepts_inserts() {
        let d = euclid();
        let model = trained_index(8).model().clone();
        let conc = ConcurrentIndex::from_dynamic(DynamicIndex::new(model, Vec::new(), &d));
        assert!(conc.is_empty());
        let reader = conc.reader();
        let mut writer = conc.writer();
        assert_eq!(writer.insert(vec![0.1, 0.0], &d), 0);
        assert_eq!(writer.insert(vec![20.5, 5.0], &d), 1);
        assert_eq!(reader.retrieve(&vec![0.0, 0.0], &d, 1, 2), vec![0]);
    }

    #[test]
    fn insert_batch_publishes_one_epoch() {
        let d = euclid();
        let conc = ConcurrentIndex::from_dynamic(trained_index(9));
        let mut writer = conc.writer();
        let range = writer.insert_batch(
            (0..10).map(|i| vec![0.3 + i as f64 * 0.05, 0.2]).collect(),
            &d,
        );
        assert_eq!(range, 60..70);
        assert_eq!(conc.epoch(), 1);
        assert_eq!(conc.len(), 70);
    }
}
