//! # qse-bench
//!
//! Benchmark harnesses for the *Query-Sensitive Embeddings* reproduction.
//!
//! Two kinds of targets live in this crate:
//!
//! * **Figure / table binaries** (`src/bin/*.rs`) — regenerate each figure
//!   and table of the paper's evaluation and print the series / rows as
//!   text. Scale is controlled by the `QSE_SCALE` environment variable
//!   (`tiny`, `bench` — the default — or `large`).
//! * **Criterion benches** (`benches/*.rs`) — micro- and macro-benchmarks of
//!   the individual components (distance measures, training rounds, the
//!   filter step) plus reduced-scale versions of every figure/table driver so
//!   `cargo bench --workspace` exercises all of them end to end.

#![warn(missing_docs)]

use qse_retrieval::experiments::runner::WorkloadScale;

/// The workload sizes (database / query counts) used by the harness
/// binaries, alongside the training [`WorkloadScale`].
#[derive(Debug, Clone)]
pub struct HarnessScale {
    /// Human-readable name of the scale.
    pub name: &'static str,
    /// Digit-workload database size.
    pub digits_db: usize,
    /// Digit-workload query count.
    pub digits_queries: usize,
    /// Points per synthetic digit shape.
    pub points_per_shape: usize,
    /// Time-series database size.
    pub series_db: usize,
    /// Time-series query count.
    pub series_queries: usize,
    /// Time-series base length.
    pub series_length: usize,
    /// Training / evaluation scale.
    pub scale: WorkloadScale,
}

impl HarnessScale {
    /// A scale that finishes in a few seconds; used by the Criterion benches
    /// and smoke tests.
    pub fn tiny() -> Self {
        Self {
            name: "tiny",
            digits_db: 60,
            digits_queries: 8,
            points_per_shape: 16,
            series_db: 80,
            series_queries: 8,
            series_length: 32,
            scale: WorkloadScale {
                candidate_pool: 30,
                training_pool: 30,
                training_triples: 200,
                rounds: 8,
                candidates_per_round: 15,
                intervals_per_candidate: 5,
                kmax: 5,
                dims_to_evaluate: vec![4, 8],
                threads: 4,
            },
        }
    }

    /// The default scale of the harness binaries: minutes per figure on a
    /// laptop, large enough to show the paper's trends.
    pub fn bench() -> Self {
        Self {
            name: "bench",
            digits_db: 400,
            digits_queries: 60,
            points_per_shape: 24,
            series_db: 600,
            series_queries: 80,
            series_length: 64,
            scale: WorkloadScale {
                candidate_pool: 120,
                training_pool: 120,
                training_triples: 3_000,
                rounds: 32,
                candidates_per_round: 50,
                intervals_per_candidate: 10,
                kmax: 50,
                dims_to_evaluate: vec![4, 8, 16, 24, 32],
                threads: 8,
            },
        }
    }

    /// A larger scale, closer in spirit to the paper (still far from 60,000
    /// MNIST images — see DESIGN.md §4).
    pub fn large() -> Self {
        Self {
            name: "large",
            digits_db: 1_200,
            digits_queries: 150,
            points_per_shape: 32,
            series_db: 2_000,
            series_queries: 200,
            series_length: 96,
            scale: WorkloadScale {
                candidate_pool: 250,
                training_pool: 250,
                training_triples: 10_000,
                rounds: 48,
                candidates_per_round: 100,
                intervals_per_candidate: 12,
                kmax: 50,
                dims_to_evaluate: vec![4, 8, 16, 32, 48],
                threads: 8,
            },
        }
    }

    /// Pick a scale from the `QSE_SCALE` environment variable (`tiny`,
    /// `bench`, `large`); defaults to [`HarnessScale::bench`].
    pub fn from_env() -> Self {
        match std::env::var("QSE_SCALE").as_deref() {
            Ok("tiny") => Self::tiny(),
            Ok("large") => Self::large(),
            _ => Self::bench(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered_by_size() {
        let t = HarnessScale::tiny();
        let b = HarnessScale::bench();
        let l = HarnessScale::large();
        assert!(t.digits_db < b.digits_db && b.digits_db < l.digits_db);
        assert!(t.scale.training_triples < b.scale.training_triples);
        assert!(b.scale.training_triples < l.scale.training_triples);
    }

    #[test]
    fn env_scale_defaults_to_bench() {
        // The test environment does not set QSE_SCALE.
        if std::env::var("QSE_SCALE").is_err() {
            assert_eq!(HarnessScale::from_env().name, "bench");
        }
    }
}
