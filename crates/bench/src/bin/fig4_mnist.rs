//! Regenerates Figure 4: exact-distance cost vs k on the synthetic-MNIST /
//! shape-context workload for FastMap, Ra-QI, Se-QI and Se-QS at 90/95/99%
//! accuracy.
//!
//! Usage: `QSE_SCALE=bench cargo run --release -p qse-bench --bin fig4_mnist`

use qse_bench::HarnessScale;
use qse_retrieval::experiments::figures::run_fig4;

fn main() {
    let hs = HarnessScale::from_env();
    eprintln!(
        "[fig4] scale = {} (database {}, queries {}, {} points/shape)",
        hs.name, hs.digits_db, hs.digits_queries, hs.points_per_shape
    );
    let figure = run_fig4(
        hs.digits_db,
        hs.digits_queries,
        hs.points_per_shape,
        &hs.scale,
        2005,
    );
    print!("{}", figure.to_text());
}
