//! Runs the ablation suite: reference-only vs reference+pivot 1-D
//! embeddings, splitter-interval budget, candidates per round, and training
//! triple budget, all measured at k = 1 / 95% accuracy on the digits
//! workload.
//!
//! Usage: `QSE_SCALE=bench cargo run --release -p qse-bench --bin ablation`

use qse_bench::HarnessScale;
use qse_retrieval::experiments::ablation::run_ablation;

fn main() {
    let hs = HarnessScale::from_env();
    eprintln!("[ablation] scale = {}", hs.name);
    let report = run_ablation(
        hs.digits_db.min(300),
        hs.digits_queries.min(40),
        hs.points_per_shape,
        &hs.scale,
        2005,
    );
    print!("{}", report.to_text());
}
