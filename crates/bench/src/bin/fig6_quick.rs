//! Regenerates Figure 6: Se-QS trained with a deliberately small
//! preprocessing budget ("Quick Se-QS") vs regular Se-QS vs FastMap, at 95%
//! accuracy on the digits workload.
//!
//! Usage: `QSE_SCALE=bench cargo run --release -p qse-bench --bin fig6_quick`

use qse_bench::HarnessScale;
use qse_retrieval::experiments::figures::run_fig6;

fn main() {
    let hs = HarnessScale::from_env();
    eprintln!(
        "[fig6] scale = {} (database {}, queries {})",
        hs.name, hs.digits_db, hs.digits_queries
    );
    let figure = run_fig6(
        hs.digits_db,
        hs.digits_queries,
        hs.points_per_shape,
        &hs.scale,
        2005,
    );
    print!("{}", figure.to_text());
}
