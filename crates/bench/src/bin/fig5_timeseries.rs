//! Regenerates Figure 5: exact-distance cost vs k on the time-series /
//! constrained-DTW workload for FastMap, Ra-QI, Se-QI and Se-QS at 90/95/99%
//! accuracy.
//!
//! Usage: `QSE_SCALE=bench cargo run --release -p qse-bench --bin fig5_timeseries`

use qse_bench::HarnessScale;
use qse_retrieval::experiments::figures::run_fig5;

fn main() {
    let hs = HarnessScale::from_env();
    eprintln!(
        "[fig5] scale = {} (database {}, queries {}, length {})",
        hs.name, hs.series_db, hs.series_queries, hs.series_length
    );
    let figure = run_fig5(
        hs.series_db,
        hs.series_queries,
        hs.series_length,
        2,
        &hs.scale,
        2005,
    );
    print!("{}", figure.to_text());
}
