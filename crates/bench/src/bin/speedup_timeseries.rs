//! Regenerates the Section 9 speed-up measurement: the factor by which
//! filter-and-refine retrieval with Se-QS (and FastMap) beats brute-force
//! 1-NN search on the time-series workload.
//!
//! Usage: `QSE_SCALE=bench cargo run --release -p qse-bench --bin speedup_timeseries`

use qse_bench::HarnessScale;
use qse_retrieval::experiments::speedup::run_speedup;

fn main() {
    let hs = HarnessScale::from_env();
    eprintln!("[speedup] scale = {}", hs.name);
    let report = run_speedup(
        hs.series_db,
        hs.series_queries,
        hs.series_length,
        &hs.scale,
        2005,
    );
    print!("{}", report.to_text());
    if let Some(s) = report.speedup_of("Se-QS", 100.0) {
        println!(
            "\nPaper reference point: 51.2x speed-up at 100% 1-NN recall on the original 50-query \
             set (5x for the method of Vlachos et al.). Measured here (reproduction scale): {s:.1}x."
        );
    }
}
