//! Regenerates Table 1: exact-distance counts for k ∈ {1, 10, 50} and
//! accuracy ∈ {90, 95, 99, 100}% on both workloads, for FastMap, Ra-QI,
//! Ra-QS, Se-QI and Se-QS.
//!
//! Usage: `QSE_SCALE=bench cargo run --release -p qse-bench --bin table1`

use qse_bench::HarnessScale;
use qse_retrieval::experiments::table1::run_table1;

fn main() {
    let hs = HarnessScale::from_env();
    eprintln!("[table1] scale = {}", hs.name);
    let table = run_table1(
        hs.digits_db,
        hs.digits_queries,
        hs.points_per_shape,
        hs.series_db,
        hs.series_queries,
        hs.series_length,
        &hs.scale,
        2005,
    );
    print!("{}", table.to_text());
}
