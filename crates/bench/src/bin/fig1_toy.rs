//! Regenerates Figure 1: the unit-square toy example motivating
//! query-sensitive distance measures.
//!
//! Usage: `cargo run --release -p qse-bench --bin fig1_toy [seed ...]`

use qse_retrieval::experiments::fig1::run_fig1;

fn main() {
    let seeds: Vec<u64> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let seeds = if seeds.is_empty() {
        vec![1, 2, 3, 4, 5]
    } else {
        seeds
    };

    let mut wins = 0usize;
    for &seed in &seeds {
        let result = run_fig1(seed);
        println!("=== Figure 1 toy configuration, seed {seed} ===");
        print!("{}", result.to_text());
        let ok = result.query_sensitivity_pays_off();
        println!(
            "query-sensitivity pays off: {}\n",
            if ok { "yes" } else { "no" }
        );
        wins += usize::from(ok);
    }
    println!(
        "Summary: the Figure 1 claim (per-query coordinates beat the global embedding near \
         their reference object) held in {wins}/{} configurations.",
        seeds.len()
    );
}
