//! Reduced-scale end-to-end benchmark of the Figure 5 driver (time series /
//! constrained DTW; FastMap vs Ra-QI vs Se-QI vs Se-QS at 90/95/99%).

use criterion::{criterion_group, criterion_main, Criterion};
use qse_bench::HarnessScale;
use qse_retrieval::experiments::figures::run_fig5;
use std::hint::black_box;

fn bench_fig5(c: &mut Criterion) {
    let hs = HarnessScale::tiny();
    c.bench_function("fig5_timeseries_tiny_scale", |bench| {
        bench.iter(|| {
            black_box(run_fig5(
                hs.series_db,
                hs.series_queries,
                hs.series_length,
                2,
                &hs.scale,
                2005,
            ))
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig5
);
criterion_main!(benches);
