//! Reduced-scale end-to-end benchmark of the Figure 4 driver (synthetic
//! MNIST / shape context; FastMap vs Ra-QI vs Se-QI vs Se-QS at 90/95/99%).
//!
//! The full-scale figure is produced by the `fig4_mnist` binary; this bench
//! keeps every iteration at the `tiny` harness scale so `cargo bench`
//! exercises the complete pipeline in seconds.

use criterion::{criterion_group, criterion_main, Criterion};
use qse_bench::HarnessScale;
use qse_retrieval::experiments::figures::run_fig4;
use std::hint::black_box;

fn bench_fig4(c: &mut Criterion) {
    let hs = HarnessScale::tiny();
    c.bench_function("fig4_digits_tiny_scale", |bench| {
        bench.iter(|| {
            black_box(run_fig4(
                hs.digits_db,
                hs.digits_queries,
                hs.points_per_shape,
                &hs.scale,
                2005,
            ))
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig4
);
criterion_main!(benches);
