//! Micro-benchmarks of the exact distance measures.
//!
//! These quantify the premise of the whole paper: exact distances (shape
//! context with Hungarian matching, constrained DTW) are orders of magnitude
//! more expensive than the L1 comparisons used in the filter step (the paper
//! quotes ~15 shape-context and ~60 cDTW evaluations per second vs ~1M L1
//! distances per second on 2005 hardware).

use criterion::{criterion_group, criterion_main, Criterion};
use qse_dataset::{DigitGenerator, TimeSeriesGenerator};
use qse_distance::{ConstrainedDtw, DistanceMeasure, LpDistance, ShapeContextDistance};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_shape_context(c: &mut Criterion) {
    let generator = DigitGenerator::default();
    let mut rng = StdRng::seed_from_u64(1);
    let a = generator.sample(3, &mut rng);
    let b = generator.sample(8, &mut rng);
    let sc = ShapeContextDistance::new();
    c.bench_function("shape_context_distance_32pts", |bench| {
        bench.iter(|| black_box(sc.distance(black_box(&a), black_box(&b))))
    });
}

fn bench_dtw(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let generator = TimeSeriesGenerator::with_default_config(&mut rng);
    let a = generator.variation(0, &mut rng);
    let b = generator.variation(1, &mut rng);
    let dtw = ConstrainedDtw::paper();
    c.bench_function("constrained_dtw_96pts_band10pct", |bench| {
        bench.iter(|| black_box(dtw.distance(black_box(&a), black_box(&b))))
    });
    let full = ConstrainedDtw::unconstrained();
    c.bench_function("unconstrained_dtw_96pts", |bench| {
        bench.iter(|| black_box(full.distance(black_box(&a), black_box(&b))))
    });
}

fn bench_l1_filter_distance(c: &mut Criterion) {
    // The cheap side of the trade-off: a 100-dimensional L1 distance, the
    // operation the filter step performs once per database object.
    let a: Vec<f64> = (0..100).map(|i| i as f64 * 0.37).collect();
    let b: Vec<f64> = (0..100).map(|i| (i as f64).sin()).collect();
    let l1 = LpDistance::l1();
    c.bench_function("l1_distance_100d", |bench| {
        bench.iter(|| black_box(l1.eval(black_box(&a), black_box(&b))))
    });
}

fn bench_hungarian(c: &mut Criterion) {
    use qse_distance::hungarian::{solve_assignment, CostMatrix};
    let n = 32;
    let mut state = 0x12345678u64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((state >> 33) as f64) / (u32::MAX as f64)
    };
    let costs = CostMatrix::from_rows(n, n, (0..n * n).map(|_| next()).collect());
    c.bench_function("hungarian_assignment_32x32", |bench| {
        bench.iter(|| black_box(solve_assignment(black_box(&costs))))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_shape_context, bench_dtw, bench_l1_filter_distance, bench_hungarian
);
criterion_main!(benches);
