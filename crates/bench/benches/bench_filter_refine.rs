//! Benchmarks of the filter step and of full filter-and-refine retrieval.
//!
//! The paper argues the filter step "always takes negligible time" compared
//! with the handful of exact distances at the embedding and refine steps;
//! these benchmarks quantify that on this implementation: ranking thousands
//! of embedded vectors is microseconds, one shape-context distance is
//! orders of magnitude more.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qse_core::{BoostMapTrainer, TrainerConfig, TrainingData, TripleSampler};
use qse_distance::traits::{FnDistance, MetricProperties};
use qse_retrieval::FilterRefineIndex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn euclid() -> FnDistance<impl Fn(&Vec<f64>, &Vec<f64>) -> f64 + Send + Sync> {
    FnDistance::new(
        "euclid",
        MetricProperties::Metric,
        |a: &Vec<f64>, b: &Vec<f64>| {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt()
        },
    )
}

fn clustered(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let c = rng.gen_range(0..6);
            vec![
                (c % 3) as f64 * 12.0 + rng.gen_range(-1.0..1.0),
                (c / 3) as f64 * 12.0 + rng.gen_range(-1.0..1.0),
            ]
        })
        .collect()
}

fn build_index(db: &[Vec<f64>]) -> FilterRefineIndex<Vec<f64>> {
    let d = euclid();
    let mut rng = StdRng::seed_from_u64(9);
    let pools: Vec<Vec<f64>> = db.iter().take(60).cloned().collect();
    let data = TrainingData::precompute(pools.clone(), pools, &d, 4);
    let triples = TripleSampler::selective(4).sample(&data.train_to_train, 600, &mut rng);
    let model = BoostMapTrainer::new(TrainerConfig::quick()).train(&data, &triples, &mut rng);
    FilterRefineIndex::build_query_sensitive(model, db, &d)
}

fn bench_filter_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("filter_step");
    for &db_size in &[500usize, 2_000, 8_000] {
        let db = clustered(db_size, 1);
        let index = build_index(&db);
        let d = euclid();
        let query = vec![6.0, 6.0];
        group.bench_with_input(
            BenchmarkId::from_parameter(db_size),
            &db_size,
            |bench, _| bench.iter(|| black_box(index.filter_ranking(black_box(&query), &d))),
        );
    }
    group.finish();
}

fn bench_full_retrieval(c: &mut Criterion) {
    let db = clustered(2_000, 2);
    let index = build_index(&db);
    let d = euclid();
    let query = vec![11.5, 0.5];
    c.bench_function("filter_and_refine_k10_p50_db2000", |bench| {
        bench.iter(|| black_box(index.retrieve(black_box(&query), &db, &d, 10, 50)))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_filter_step, bench_full_retrieval
);
criterion_main!(benches);
