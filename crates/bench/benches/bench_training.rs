//! Benchmarks of the training pipeline: distance-matrix precomputation,
//! triple sampling, and boosting rounds for the query-sensitive and
//! query-insensitive trainers (the `O(m · t)` per-round cost of Section 7).

use criterion::{criterion_group, criterion_main, Criterion};
use qse_core::{BoostMapTrainer, QuerySensitivity, TrainerConfig, TrainingData, TripleSampler};
use qse_distance::traits::{FnDistance, MetricProperties};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn euclid() -> FnDistance<impl Fn(&Vec<f64>, &Vec<f64>) -> f64 + Send + Sync> {
    FnDistance::new(
        "euclid",
        MetricProperties::Metric,
        |a: &Vec<f64>, b: &Vec<f64>| {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt()
        },
    )
}

fn objects(n: usize) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(3);
    (0..n)
        .map(|_| {
            let c = rng.gen_range(0..8);
            vec![
                (c % 4) as f64 * 10.0 + rng.gen_range(-1.0..1.0),
                (c / 4) as f64 * 10.0 + rng.gen_range(-1.0..1.0),
            ]
        })
        .collect()
}

fn bench_precompute(c: &mut Criterion) {
    let pool = objects(150);
    let d = euclid();
    c.bench_function("training_data_precompute_150x150", |bench| {
        bench.iter(|| black_box(TrainingData::precompute(pool.clone(), pool.clone(), &d, 4)))
    });
}

fn bench_triple_sampling(c: &mut Criterion) {
    let pool = objects(150);
    let d = euclid();
    let data = TrainingData::precompute(pool.clone(), pool, &d, 4);
    c.bench_function("selective_triple_sampling_2000", |bench| {
        bench.iter(|| {
            let mut rng = StdRng::seed_from_u64(11);
            black_box(TripleSampler::selective(5).sample(&data.train_to_train, 2_000, &mut rng))
        })
    });
}

fn bench_boosting(c: &mut Criterion) {
    let pool = objects(120);
    let d = euclid();
    let data = TrainingData::precompute(pool.clone(), pool, &d, 4);
    let mut rng = StdRng::seed_from_u64(21);
    let triples = TripleSampler::selective(5).sample(&data.train_to_train, 1_000, &mut rng);

    let mut group = c.benchmark_group("boosting_16_rounds_1000_triples");
    for (name, sensitivity) in [
        ("query_sensitive", QuerySensitivity::Sensitive),
        ("query_insensitive", QuerySensitivity::Insensitive),
    ] {
        let config = TrainerConfig {
            rounds: 16,
            candidates_per_round: 30,
            intervals_per_candidate: 8,
            query_sensitivity: sensitivity,
            ..TrainerConfig::default()
        };
        group.bench_function(name, |bench| {
            bench.iter(|| {
                let mut train_rng = StdRng::seed_from_u64(31);
                black_box(BoostMapTrainer::new(config).train(&data, &triples, &mut train_rng))
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_precompute, bench_triple_sampling, bench_boosting
);
criterion_main!(benches);
