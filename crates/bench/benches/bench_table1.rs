//! Reduced-scale end-to-end benchmark of the Table 1 driver (all five
//! methods on both workloads, k ∈ {1, 10, 50}, accuracy ∈ {90, 95, 99, 100}%).

use criterion::{criterion_group, criterion_main, Criterion};
use qse_bench::HarnessScale;
use qse_retrieval::experiments::table1::run_table1;
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let hs = HarnessScale::tiny();
    c.bench_function("table1_both_workloads_tiny_scale", |bench| {
        bench.iter(|| {
            black_box(run_table1(
                hs.digits_db,
                hs.digits_queries,
                hs.points_per_shape,
                hs.series_db,
                hs.series_queries,
                hs.series_length,
                &hs.scale,
                2005,
            ))
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table1
);
criterion_main!(benches);
