//! Benchmark of the Figure 1 toy-example driver (triple-classification error
//! of the global 3-D embedding vs the per-reference 1-D embeddings).

use criterion::{criterion_group, criterion_main, Criterion};
use qse_retrieval::experiments::fig1::run_fig1;
use std::hint::black_box;

fn bench_fig1(c: &mut Criterion) {
    c.bench_function("fig1_toy_configuration", |bench| {
        bench.iter(|| black_box(run_fig1(black_box(7))))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fig1
);
criterion_main!(benches);
