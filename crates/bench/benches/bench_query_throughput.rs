//! Query-engine throughput benchmarks: single-query latency and batched
//! queries/second for the Se-QS (query-sensitive weighted L1) and FastMap
//! (global L1) filter steps, at database sizes 1k and 10k — plus two
//! substrate microbenchmarks:
//!
//! * `filter_kernel/*` — the blocked `WeightedL1::eval_flat` batch kernel
//!   against the row-by-row scalar `eval` loop over the same flat store;
//! * `batch_kernel/*` — the Q×N tiled `WeightedL1::eval_flat_batch` kernel
//!   (256 queries per pass, database rows amortized across a tile of query
//!   rows) against the per-query `eval_flat` loop it batches;
//! * `fanout_substrate/*` — a 256-chunk `par_map` on the persistent worker
//!   pool against the same fan-out on freshly spawned `std::thread::scope`
//!   threads (the substrate the pool replaced);
//! * `store_backend/*` — the Q×N tiled batch kernel over every filter-store
//!   precision (`f64` / `f32` / `u8`-quantized flat stores) at dims 8 and
//!   32, database sizes 1k and 10k: the memory-bandwidth axis of the filter
//!   scan (outputs differ only by the backends' documented rounding, pinned
//!   by the workspace store-backend tests). The `u8int` cells scan the same
//!   `u8` store through the in-domain integer SAD path the retrieval
//!   pipelines dispatch to (`qse_distance::sad`) — no per-value
//!   dequantization — next to the decode-path `u8` cells they replace on
//!   the hot path.
//! * `routed/*` — the cluster-routed candidate-generation layer
//!   (`qse_retrieval::routed`) head-to-head against the unrouted full-scan
//!   pipeline it wraps, on deterministic mixture-of-Gaussians workloads
//!   (dim 64, 10k and 100k rows, 32 well-separated components): one
//!   `fullscan` cell and one `np{n}of{C}` cell per probe width, single
//!   query and 256-query batch, both sides on the `u8` store. The two
//!   database sizes bracket the routing **crossover**: at 10k rows the
//!   per-query routing overhead (centroid ranking + per-cell dispatch)
//!   still eats much of the saved scan work, at 100k rows the sublinear
//!   scan dominates. Setup prints the measured recall@10-vs-n_probe curve
//!   to stderr so the routed bench log records the recall each latency
//!   was bought at.
//! * `startup/*` — build-from-raw vs snapshot restore
//!   (`qse_retrieval::snapshot`) for the routed `u8` index on the 100k-row
//!   dim-64 Gaussian workload: the full pipeline (embed + grid fit +
//!   k-means) against `from_snapshot_bytes` and file-level `load`, the
//!   cold-start path a deployment actually runs.
//!
//! These benchmarks exercise the filter-and-refine hot path end to end —
//! embed the query, O(n) top-p selection over the flat vector store, refine
//! the p survivors — and the batched variants additionally exercise the
//! rayon fan-out of `retrieve_batch`. Run with
//!
//! ```text
//! cargo bench --bench bench_query_throughput
//! RAYON_NUM_THREADS=1 cargo bench --bench bench_query_throughput
//! ```
//!
//! and compare the `batch*` lines to see the scaling with cores — or set
//! `QSE_BENCH_THREAD_SWEEP` to measure the whole scaling curve in **one**
//! invocation: the batched `query_throughput` benchmarks then repeat per
//! thread count (ids gain a `/t{n}` suffix), flipping the substrate's
//! `RAYON_NUM_THREADS` between groups (the persistent pool re-reads it on
//! every parallel call). `QSE_BENCH_THREAD_SWEEP=1,2,4,8` (or any comma
//! list) picks the counts; any other non-empty value means the default
//! `1,2,4,8`:
//!
//! ```text
//! QSE_BENCH_THREAD_SWEEP=1 cargo bench --bench bench_query_throughput query_throughput
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qse_core::{BoostMapTrainer, TrainerConfig, TrainingData, TripleSampler};
use qse_distance::traits::{FnDistance, MetricProperties};
use qse_distance::{FilterElem, FlatStore, FlatVectors, WeightedL1};
use qse_retrieval::FilterRefineIndex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use std::hint::black_box;

const BATCH: usize = 256;
const K: usize = 10;
const P: usize = 50;

fn euclid() -> FnDistance<impl Fn(&Vec<f64>, &Vec<f64>) -> f64 + Send + Sync> {
    FnDistance::new(
        "euclid",
        MetricProperties::Metric,
        |a: &Vec<f64>, b: &Vec<f64>| {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt()
        },
    )
}

fn clustered(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let c = rng.gen_range(0..9);
            vec![
                (c % 3) as f64 * 14.0 + rng.gen_range(-1.0..1.0),
                (c / 3) as f64 * 14.0 + rng.gen_range(-1.0..1.0),
            ]
        })
        .collect()
}

fn queries(n: usize, seed: u64) -> Vec<Vec<f64>> {
    clustered(n, seed ^ 0x0005_1EED)
}

fn seqs_index(db: &[Vec<f64>]) -> FilterRefineIndex<Vec<f64>> {
    let d = euclid();
    let mut rng = StdRng::seed_from_u64(71);
    let pools: Vec<Vec<f64>> = db.iter().take(80).cloned().collect();
    let data = TrainingData::precompute(pools.clone(), pools, &d, 8);
    let triples = TripleSampler::selective(4).sample(&data.train_to_train, 800, &mut rng);
    let model = BoostMapTrainer::new(TrainerConfig::quick()).train(&data, &triples, &mut rng);
    FilterRefineIndex::build_query_sensitive(model, db, &d)
}

fn fastmap_index(db: &[Vec<f64>]) -> FilterRefineIndex<Vec<f64>> {
    use qse_embedding::{FastMap, FastMapConfig};
    let d = euclid();
    let mut rng = StdRng::seed_from_u64(72);
    let sample: Vec<Vec<f64>> = db.iter().take(80).cloned().collect();
    let fm = FastMap::train(
        &sample,
        &d,
        FastMapConfig {
            dimensions: 8,
            pivot_iterations: 4,
        },
        &mut rng,
    );
    FilterRefineIndex::build_global(fm, db, &d)
}

/// Thread counts for the one-invocation scaling sweep, or `None` when the
/// sweep is disabled: parse `QSE_BENCH_THREAD_SWEEP` as a comma list of
/// positive integers (a single count like `16` is honoured as-is); a bare
/// `1` — the documented "just enable it" sentinel — or any non-numeric
/// value means the default `1,2,4,8`.
fn thread_sweep_counts() -> Option<Vec<usize>> {
    let raw = std::env::var("QSE_BENCH_THREAD_SWEEP").ok()?;
    if raw.trim().is_empty() {
        return None;
    }
    let parsed: Vec<usize> = raw
        .split(',')
        .filter_map(|t| t.trim().parse::<usize>().ok())
        .filter(|&t| t >= 1)
        .collect();
    Some(if parsed.is_empty() || parsed == [1] {
        vec![1, 2, 4, 8]
    } else {
        parsed
    })
}

/// Run `body` with the rayon substrate pinned to `threads` workers,
/// restoring the ambient `RAYON_NUM_THREADS` afterwards (the persistent
/// pool re-reads the variable on every parallel call, which is what makes
/// an in-process sweep possible at all).
fn with_threads(threads: usize, body: impl FnOnce()) {
    let previous = std::env::var("RAYON_NUM_THREADS").ok();
    std::env::set_var("RAYON_NUM_THREADS", threads.to_string());
    body();
    match previous {
        Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }
}

fn bench_query_throughput(c: &mut Criterion) {
    let d = euclid();
    let sweep = thread_sweep_counts();
    for &db_size in &[1_000usize, 10_000] {
        let db = clustered(db_size, 1);
        let batch = queries(BATCH, 2);
        let single = batch[0].clone();
        for (method, index) in [("seqs", seqs_index(&db)), ("fastmap", fastmap_index(&db))] {
            let mut group = c.benchmark_group(format!("query_throughput/{method}"));
            group.bench_with_input(
                BenchmarkId::new("single_query_latency", db_size),
                &db_size,
                |b, _| b.iter(|| black_box(index.retrieve(black_box(&single), &db, &d, K, P))),
            );
            match &sweep {
                None => {
                    group.bench_with_input(
                        BenchmarkId::new(format!("batch{BATCH}_queries"), db_size),
                        &db_size,
                        |b, _| {
                            b.iter(|| {
                                black_box(index.retrieve_batch(black_box(&batch), &db, &d, K, P))
                            })
                        },
                    );
                }
                Some(counts) => {
                    // One invocation, whole scaling curve: repeat the batched
                    // benchmark per worker count (the fan-out substrate
                    // re-reads RAYON_NUM_THREADS on every call).
                    for &threads in counts {
                        with_threads(threads, || {
                            group.bench_with_input(
                                BenchmarkId::new(
                                    format!("batch{BATCH}_queries/t{threads}"),
                                    db_size,
                                ),
                                &db_size,
                                |b, _| {
                                    b.iter(|| {
                                        black_box(index.retrieve_batch(
                                            black_box(&batch),
                                            &db,
                                            &d,
                                            K,
                                            P,
                                        ))
                                    })
                                },
                            );
                        });
                    }
                }
            }
            group.finish();
        }
    }
}

/// Kernel vs scalar: score one query against every row of a flat store.
/// `eval_flat` is the blocked lane kernel the filter step runs; the scalar
/// baseline is the row-by-row `eval` loop it replaced (results are
/// bit-identical — asserted by the workspace property tests — so this
/// measures pure kernel speedup).
fn bench_filter_kernel(c: &mut Criterion) {
    const DIM: usize = 8;
    let mut rng = StdRng::seed_from_u64(11);
    let weights: Vec<f64> = (0..DIM).map(|_| rng.gen_range(0.1..2.0)).collect();
    let query: Vec<f64> = (0..DIM).map(|_| rng.gen_range(-10.0..10.0)).collect();
    let d = WeightedL1::new(weights);
    for &db_size in &[1_000usize, 10_000] {
        let rows: Vec<Vec<f64>> = (0..db_size)
            .map(|_| (0..DIM).map(|_| rng.gen_range(-10.0..10.0)).collect())
            .collect();
        let store = FlatVectors::from_rows_with_dim(DIM, rows);
        let mut out = vec![0.0; store.len()];
        let mut group = c.benchmark_group("filter_kernel");
        group.bench_with_input(BenchmarkId::new("eval_flat", db_size), &db_size, |b, _| {
            b.iter(|| {
                d.eval_flat(black_box(&query), black_box(&store), &mut out);
                black_box(out[db_size - 1])
            })
        });
        group.bench_with_input(
            BenchmarkId::new("scalar_rows", db_size),
            &db_size,
            |b, _| {
                b.iter(|| {
                    for (i, slot) in out.iter_mut().enumerate() {
                        *slot = d.eval(black_box(&query), store.row(i));
                    }
                    black_box(out[db_size - 1])
                })
            },
        );
        group.finish();
    }
}

/// Tiled batch kernel vs per-query scans: score a 256-query batch against
/// every row of a flat store. `eval_flat_batch` streams the database once
/// per [`qse_distance::vector::QUERY_TILE`]-query tile; the baseline is the
/// per-query `eval_flat` loop that re-streams the whole store for every
/// query (outputs are bit-identical — asserted by the workspace property
/// tests — so this measures pure tiling speedup).
fn bench_batch_kernel(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(12);
    // dim 8 matches the filter_kernel group; dim 32 is a realistic trained
    // embedding width, where the 10k-row store outgrows the L2 cache and
    // the tile's row-load amortization pays off.
    for &dim in &[8usize, 32] {
        let weights: Vec<f64> = (0..dim).map(|_| rng.gen_range(0.1..2.0)).collect();
        let d = WeightedL1::new(weights);
        let queries = FlatVectors::from_rows_with_dim(
            dim,
            (0..BATCH)
                .map(|_| (0..dim).map(|_| rng.gen_range(-10.0..10.0)).collect())
                .collect(),
        );
        for &db_size in &[1_000usize, 10_000] {
            let rows: Vec<Vec<f64>> = (0..db_size)
                .map(|_| (0..dim).map(|_| rng.gen_range(-10.0..10.0)).collect())
                .collect();
            let store = FlatVectors::from_rows_with_dim(dim, rows);
            let mut out = vec![0.0; BATCH * store.len()];
            let mut group = c.benchmark_group("batch_kernel");
            group.bench_with_input(
                BenchmarkId::new(format!("eval_flat_batch/{BATCH}q/dim{dim}"), db_size),
                &db_size,
                |b, _| {
                    b.iter(|| {
                        d.eval_flat_batch(black_box(&queries), black_box(&store), &mut out);
                        black_box(out[out.len() - 1])
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("per_query_eval_flat/{BATCH}q/dim{dim}"), db_size),
                &db_size,
                |b, _| {
                    b.iter(|| {
                        for (q, slot) in out.chunks_mut(db_size).enumerate() {
                            d.eval_flat(black_box(queries.row(q)), black_box(&store), slot);
                        }
                        black_box(out[out.len() - 1])
                    })
                },
            );
            group.finish();
        }
    }
}

/// How one `store_backend` cell scans its store: the decode-path kernels
/// (`eval_flat*` — exact decoded-row scores), or the backend-dispatched
/// filter path (`eval_filter*` — the in-domain integer SAD kernel on
/// `u8`, labelled `u8int` in the ids, which is what the retrieval
/// pipelines actually run).
#[derive(Clone, Copy)]
enum ScanPath {
    Decode,
    Filter,
}

/// One `store_backend` cell: the tiled-batch and single-query kernels
/// over a `FlatStore<E>` built from the same full-precision rows as every
/// other backend, so the only variables are the bytes the scan streams
/// per coordinate and the `ScanPath` arithmetic. Comparing `u8int`
/// (filter path) to `u8` (decode path) isolates what skipping the
/// per-value dequantization buys; comparing it to `f64` shows whether the
/// compact store is the fastest one outright.
fn bench_store_backend_cell<E: FilterElem>(
    c: &mut Criterion,
    d: &WeightedL1,
    queries: &FlatVectors,
    rows: &[Vec<f64>],
    dim: usize,
    db_size: usize,
    path: ScanPath,
) {
    // The filter path's id gets an `int` suffix (`u8int`): it is only
    // benchmarked where it differs from the decode path.
    let label = match path {
        ScanPath::Decode => E::NAME.to_string(),
        ScanPath::Filter => format!("{}int", E::NAME),
    };
    let store = FlatStore::<E>::from_rows_with_dim(dim, rows.to_vec());
    let mut out = vec![0.0; queries.len() * store.len()];
    let mut group = c.benchmark_group("store_backend");
    group.bench_with_input(
        BenchmarkId::new(
            format!("eval_flat_batch/{label}/{BATCH}q/dim{dim}"),
            db_size,
        ),
        &db_size,
        |b, _| {
            b.iter(|| {
                match path {
                    ScanPath::Decode => {
                        d.eval_flat_batch(black_box(queries), black_box(&store), &mut out)
                    }
                    ScanPath::Filter => {
                        d.eval_filter_batch(black_box(queries), black_box(&store), &mut out)
                    }
                }
                black_box(out[out.len() - 1])
            })
        },
    );
    // The single-query scan streams the whole store once per query (no
    // cross-query amortization), so it is the most bandwidth-sensitive
    // entry point — the one a compact backend helps first.
    let mut single_out = vec![0.0; store.len()];
    group.bench_with_input(
        BenchmarkId::new(format!("eval_flat/{label}/dim{dim}"), db_size),
        &db_size,
        |b, _| {
            b.iter(|| {
                let query = black_box(queries.row(0));
                match path {
                    ScanPath::Decode => d.eval_flat(query, black_box(&store), &mut single_out),
                    ScanPath::Filter => d.eval_filter(query, black_box(&store), &mut single_out),
                }
                black_box(single_out[single_out.len() - 1])
            })
        },
    );
    group.finish();
}

/// Filter-store precision axis: the same Q×N tiled scan over `f64`, `f32`
/// and `u8`-quantized storage. At dim 8 a 10k-row `f64` store (640 KB)
/// already fits in L2, which the ROADMAP flagged as the reason the tiling
/// win did not show there — the compact backends shrink the resident set
/// (320 KB / 80 KB) and the streamed traffic with it. At dim 32 the `f64`
/// store (2.6 MB) outgrows L2 and the bandwidth effect is direct.
fn bench_store_backends(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(13);
    for &dim in &[8usize, 32] {
        let weights: Vec<f64> = (0..dim).map(|_| rng.gen_range(0.1..2.0)).collect();
        let d = WeightedL1::new(weights);
        let queries = FlatVectors::from_rows_with_dim(
            dim,
            (0..BATCH)
                .map(|_| (0..dim).map(|_| rng.gen_range(-10.0..10.0)).collect())
                .collect(),
        );
        for &db_size in &[1_000usize, 10_000] {
            let rows: Vec<Vec<f64>> = (0..db_size)
                .map(|_| (0..dim).map(|_| rng.gen_range(-10.0..10.0)).collect())
                .collect();
            // The filter path only differs from the decode path on u8
            // (it is bit-identical on the exact backends), so only the u8
            // cell gets a second, `u8int`, run.
            bench_store_backend_cell::<f64>(c, &d, &queries, &rows, dim, db_size, ScanPath::Decode);
            bench_store_backend_cell::<f32>(c, &d, &queries, &rows, dim, db_size, ScanPath::Decode);
            bench_store_backend_cell::<u8>(c, &d, &queries, &rows, dim, db_size, ScanPath::Decode);
            bench_store_backend_cell::<u8>(c, &d, &queries, &rows, dim, db_size, ScanPath::Filter);
        }
    }
}

/// Routed vs full scan, head to head in one session (same build, same
/// machine, same workload — wall-clock comparisons across sessions drift):
/// the `u8` global-L1 pipeline over clustered dim-64 Gaussian collections,
/// unrouted and routed at a sweep of probe widths. The 10k/100k size pair
/// brackets the crossover row count; the recall each routed latency buys
/// is measured during setup and printed to stderr (it lands in the CI
/// bench artifact next to the timings).
fn bench_routed(c: &mut Criterion) {
    use qse_dataset::{GaussianMixture, GaussianMixtureConfig};
    use qse_embedding::{FastMap, FastMapConfig};
    use qse_retrieval::{recall_vs_n_probe, RoutedConfig, RoutedIndex};
    const CELLS: usize = 64;
    let d = euclid();
    for &db_size in &[10_000usize, 100_000] {
        let mix = GaussianMixture::generate(GaussianMixtureConfig {
            rows: db_size,
            dim: 64,
            clusters: 32,
            center_box: 10.0,
            spread: 0.5,
            seed: 0xB0B ^ db_size as u64,
        });
        let batch = mix.queries(BATCH, 99);
        let db = mix.points;
        let single = batch[0].clone();
        let fm = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let sample: Vec<Vec<f64>> = db.iter().take(100).cloned().collect();
            FastMap::train(
                &sample,
                &d,
                FastMapConfig {
                    dimensions: 16,
                    pivot_iterations: 3,
                },
                &mut rng,
            )
        };
        let flat = FilterRefineIndex::<_, u8>::build_global_with_store(fm(171), &db, &d);
        let mut routed = RoutedIndex::<_, u8>::build_global_with_store(
            fm(171),
            &db,
            &d,
            RoutedConfig {
                cells: CELLS,
                n_probe: 8,
                ..RoutedConfig::default()
            },
        );
        // The recall context for the latency numbers below, into the
        // bench log (32 queries keep the setup cost negligible).
        let curve = recall_vs_n_probe(&mut routed, &batch[..32], &db, &d, K, P, &[4, 8, 16]);
        eprintln!("routed/recall@{K}/n={db_size}: {curve:?}");

        let mut group = c.benchmark_group("routed");
        group.bench_with_input(
            BenchmarkId::new("single/fullscan/u8", db_size),
            &db_size,
            |b, _| b.iter(|| black_box(flat.retrieve(black_box(&single), &db, &d, K, P))),
        );
        group.bench_with_input(
            BenchmarkId::new(format!("batch{BATCH}/fullscan/u8"), db_size),
            &db_size,
            |b, _| b.iter(|| black_box(flat.retrieve_batch(black_box(&batch), &db, &d, K, P))),
        );
        for &n_probe in &[4usize, 8, 16] {
            routed.set_n_probe(n_probe);
            group.bench_with_input(
                BenchmarkId::new(format!("single/np{n_probe}of{CELLS}/u8"), db_size),
                &db_size,
                |b, _| b.iter(|| black_box(routed.retrieve(black_box(&single), &db, &d, K, P))),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("batch{BATCH}/np{n_probe}of{CELLS}/u8"), db_size),
                &db_size,
                |b, _| {
                    b.iter(|| black_box(routed.retrieve_batch(black_box(&batch), &db, &d, K, P)))
                },
            );
        }
        group.finish();
    }
}

/// Startup axis: build-from-raw vs snapshot restore for the served index
/// (`RoutedIndex<_, u8>` over the 100k-row dim-64 Gaussian workload of
/// the `routed` group — the configuration the snapshot CI step pins).
/// `build_from_raw` pays the full pipeline (embed 100k objects, fit the
/// `u8` grid, k-means the embedded rows, split the cells);
/// `load_from_bytes` deserializes a snapshot already in memory — the
/// format-decode floor; `load_from_file` adds the filesystem read, i.e.
/// the cold-start path a deployment actually runs. Restores are
/// bit-identical to the build by construction (pinned by
/// `tests/snapshot_roundtrip.rs` and the cross-process CI step), so this
/// measures pure startup cost.
fn bench_startup(c: &mut Criterion) {
    use qse_dataset::{GaussianMixture, GaussianMixtureConfig};
    use qse_retrieval::{RoutedConfig, RoutedIndex};
    const DB_SIZE: usize = 100_000;
    let d = euclid();
    let mix = GaussianMixture::generate(GaussianMixtureConfig {
        rows: DB_SIZE,
        dim: 64,
        clusters: 32,
        center_box: 10.0,
        spread: 0.5,
        seed: 0xB0B ^ DB_SIZE as u64,
    });
    let db = mix.points;
    let model = {
        let mut rng = StdRng::seed_from_u64(71);
        let pools: Vec<Vec<f64>> = db.iter().take(80).cloned().collect();
        let data = TrainingData::precompute(pools.clone(), pools, &d, 8);
        let triples = TripleSampler::selective(4).sample(&data.train_to_train, 800, &mut rng);
        BoostMapTrainer::new(TrainerConfig::quick()).train(&data, &triples, &mut rng)
    };
    let config = RoutedConfig {
        cells: 64,
        n_probe: 8,
        ..RoutedConfig::default()
    };
    let index =
        RoutedIndex::<_, u8>::build_query_sensitive_with_store(model.clone(), &db, &d, config);
    let bytes = index
        .to_snapshot_bytes()
        .expect("query-sensitive indexes always snapshot");
    let path = std::env::temp_dir().join(format!("qse-bench-startup-{}", std::process::id()));
    std::fs::write(&path, &bytes).expect("bench snapshot write");
    eprintln!(
        "startup/snapshot: {} rows, {} cells, {} bytes on disk",
        index.len(),
        index.cells(),
        bytes.len()
    );

    let mut group = c.benchmark_group("startup");
    // The raw build costs seconds; a reduced sample count keeps the cell
    // affordable while the loads keep the group's default.
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::new("build_from_raw/u8/dim64", DB_SIZE),
        &DB_SIZE,
        |b, _| {
            b.iter(|| {
                black_box(RoutedIndex::<_, u8>::build_query_sensitive_with_store(
                    black_box(model.clone()),
                    black_box(&db),
                    &d,
                    config,
                ))
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("load_from_bytes/u8/dim64", DB_SIZE),
        &DB_SIZE,
        |b, _| {
            b.iter(|| {
                black_box(
                    RoutedIndex::<Vec<f64>, u8>::from_snapshot_bytes(black_box(&bytes))
                        .expect("bench snapshot bytes are valid"),
                )
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("load_from_file/u8/dim64", DB_SIZE),
        &DB_SIZE,
        |b, _| {
            b.iter(|| {
                black_box(
                    RoutedIndex::<Vec<f64>, u8>::load(black_box(&path))
                        .expect("bench snapshot file is valid"),
                )
            })
        },
    );
    // Zero-copy startup: map the file, verify checksums, point every
    // cell at its slice of the one shared mapping — no element copies.
    // This is the O(1)-in-store-size path; the gap to `load_from_file`
    // is the copy the mapped loader no longer pays.
    group.bench_with_input(
        BenchmarkId::new("load_mmap/u8/dim64", DB_SIZE),
        &DB_SIZE,
        |b, _| {
            b.iter(|| {
                let loaded = RoutedIndex::<Vec<f64>, u8>::load_mmap(black_box(&path))
                    .expect("bench snapshot file is valid");
                debug_assert!(loaded.store_is_mapped());
                black_box(loaded)
            })
        },
    );
    group.finish();
    let _ = std::fs::remove_file(&path);
}

/// Persistent pool vs per-call scoped spawning: fan 256 small work items out
/// across `RAYON_NUM_THREADS` workers. The `scoped_spawn` baseline is
/// exactly what the rayon shim did before the persistent pool: partition
/// into contiguous chunks and `std::thread::scope`-spawn one thread per
/// chunk, per call.
fn bench_fanout_substrate(c: &mut Criterion) {
    const ITEMS: usize = 256;
    let inputs: Vec<u64> = (0..ITEMS as u64).collect();
    let work = |x: &u64| -> u64 {
        // A few hundred ns of arithmetic, standing in for one small query.
        let mut acc = *x;
        for i in 0..200u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        acc
    };
    let mut group = c.benchmark_group("fanout_substrate");
    group.bench_function(format!("pool_par_map/{ITEMS}"), |b| {
        b.iter(|| {
            let out: Vec<u64> = inputs.par_iter().map(work).collect();
            black_box(out)
        })
    });
    group.bench_function(format!("scoped_spawn/{ITEMS}"), |b| {
        b.iter(|| {
            let threads = rayon::current_num_threads();
            if threads <= 1 {
                let out: Vec<u64> = inputs.iter().map(work).collect();
                return black_box(out);
            }
            let chunk = ITEMS.div_ceil(threads);
            let mut out: Vec<u64> = Vec::with_capacity(ITEMS);
            std::thread::scope(|scope| {
                let handles: Vec<_> = inputs
                    .chunks(chunk)
                    .map(|batch| scope.spawn(move || batch.iter().map(work).collect::<Vec<u64>>()))
                    .collect();
                for handle in handles {
                    out.extend(handle.join().expect("scoped worker panicked"));
                }
            });
            black_box(out)
        })
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_query_throughput, bench_filter_kernel, bench_batch_kernel, bench_store_backends, bench_routed, bench_startup, bench_fanout_substrate
);
criterion_main!(benches);
