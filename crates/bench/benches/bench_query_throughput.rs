//! Query-engine throughput benchmarks: single-query latency and batched
//! queries/second for the Se-QS (query-sensitive weighted L1) and FastMap
//! (global L1) filter steps, at database sizes 1k and 10k.
//!
//! These benchmarks exercise the filter-and-refine hot path end to end —
//! embed the query, O(n) top-p selection over the flat vector store, refine
//! the p survivors — and the batched variants additionally exercise the
//! rayon fan-out of `retrieve_batch`. Run with
//!
//! ```text
//! cargo bench --bench bench_query_throughput
//! RAYON_NUM_THREADS=1 cargo bench --bench bench_query_throughput
//! ```
//!
//! and compare the `batch*` lines to see the scaling with cores.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qse_core::{BoostMapTrainer, TrainerConfig, TrainingData, TripleSampler};
use qse_distance::traits::{FnDistance, MetricProperties};
use qse_retrieval::FilterRefineIndex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

const BATCH: usize = 256;
const K: usize = 10;
const P: usize = 50;

fn euclid() -> FnDistance<impl Fn(&Vec<f64>, &Vec<f64>) -> f64 + Send + Sync> {
    FnDistance::new(
        "euclid",
        MetricProperties::Metric,
        |a: &Vec<f64>, b: &Vec<f64>| {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt()
        },
    )
}

fn clustered(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let c = rng.gen_range(0..9);
            vec![
                (c % 3) as f64 * 14.0 + rng.gen_range(-1.0..1.0),
                (c / 3) as f64 * 14.0 + rng.gen_range(-1.0..1.0),
            ]
        })
        .collect()
}

fn queries(n: usize, seed: u64) -> Vec<Vec<f64>> {
    clustered(n, seed ^ 0x0005_1EED)
}

fn seqs_index(db: &[Vec<f64>]) -> FilterRefineIndex<Vec<f64>> {
    let d = euclid();
    let mut rng = StdRng::seed_from_u64(71);
    let pools: Vec<Vec<f64>> = db.iter().take(80).cloned().collect();
    let data = TrainingData::precompute(pools.clone(), pools, &d, 8);
    let triples = TripleSampler::selective(4).sample(&data.train_to_train, 800, &mut rng);
    let model = BoostMapTrainer::new(TrainerConfig::quick()).train(&data, &triples, &mut rng);
    FilterRefineIndex::build_query_sensitive(model, db, &d)
}

fn fastmap_index(db: &[Vec<f64>]) -> FilterRefineIndex<Vec<f64>> {
    use qse_embedding::{FastMap, FastMapConfig};
    let d = euclid();
    let mut rng = StdRng::seed_from_u64(72);
    let sample: Vec<Vec<f64>> = db.iter().take(80).cloned().collect();
    let fm = FastMap::train(
        &sample,
        &d,
        FastMapConfig {
            dimensions: 8,
            pivot_iterations: 4,
        },
        &mut rng,
    );
    FilterRefineIndex::build_global(fm, db, &d)
}

fn bench_query_throughput(c: &mut Criterion) {
    let d = euclid();
    for &db_size in &[1_000usize, 10_000] {
        let db = clustered(db_size, 1);
        let batch = queries(BATCH, 2);
        let single = batch[0].clone();
        for (method, index) in [("seqs", seqs_index(&db)), ("fastmap", fastmap_index(&db))] {
            let mut group = c.benchmark_group(format!("query_throughput/{method}"));
            group.bench_with_input(
                BenchmarkId::new("single_query_latency", db_size),
                &db_size,
                |b, _| b.iter(|| black_box(index.retrieve(black_box(&single), &db, &d, K, P))),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("batch{BATCH}_queries"), db_size),
                &db_size,
                |b, _| b.iter(|| black_box(index.retrieve_batch(black_box(&batch), &db, &d, K, P))),
            );
            group.finish();
        }
    }
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_query_throughput
);
criterion_main!(benches);
