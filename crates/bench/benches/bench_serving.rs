//! Serving-path benchmark: measured p50/p99 latency and queries/second
//! of the HTTP front end, swept over the admission batcher's
//! latency-budget knob — the number that tells you what batch locality
//! costs (per-request latency) and buys (throughput) on this machine.
//!
//! For each budget the bench starts a [`QseServer`] over a routed `u8`
//! index (snapshot-loadable deployment shape), drives it with concurrent
//! keep-alive TCP clients replaying a duplicate-scattered query mix, and
//! prints one row:
//!
//! ```text
//! serving/np6of32/budget500us  p50 1.92ms  p99 6.01ms  3610 req/s  mean batch 5.3  dedupe 31
//! ```
//!
//! Run with `cargo bench -p qse-bench --bench bench_serving`; the
//! `--test` flag (CI's bench smoke) shrinks the workload to a quick
//! single pass. Not a criterion harness: latency percentiles under
//! concurrent load need wall-clock histograms, not per-iteration means.

use qse_core::{BoostMapTrainer, TrainerConfig, TrainingData, TripleSampler};
use qse_dataset::{GaussianMixture, GaussianMixtureConfig};
use qse_distance::LpDistance;
use qse_retrieval::{ConcurrentIndex, DynamicIndex, RoutedConfig, RoutedIndex};
use qse_serve::{BatcherConfig, QseApi, QseServer, ServeConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

const K: usize = 10;
const P: usize = 100;

struct Load {
    rows: usize,
    dim: usize,
    clients: usize,
    requests_per_client: usize,
}

fn train_model(database: &[Vec<f64>], distance: &LpDistance) -> qse_core::QseModel<Vec<f64>> {
    let pool: Vec<Vec<f64>> = database.iter().take(80).cloned().collect();
    let data = TrainingData::precompute(pool.clone(), pool, distance, 6);
    let mut rng = StdRng::seed_from_u64(1717);
    let triples = TripleSampler::selective(4).sample(&data.train_to_train, 600, &mut rng);
    BoostMapTrainer::new(TrainerConfig::quick()).train(&data, &triples, &mut rng)
}

fn build_api(load: &Load) -> (QseApi, Vec<Vec<f64>>) {
    let mix = GaussianMixture::generate(GaussianMixtureConfig {
        rows: load.rows,
        dim: load.dim,
        clusters: 32,
        center_box: 10.0,
        spread: 0.5,
        seed: 0x5EED_CAFE,
    });
    let queries = mix.queries(128, 0xBEEF);
    let distance = LpDistance::l2();
    let model = train_model(&mix.points, &distance);
    let index = RoutedIndex::<_, u8>::build_query_sensitive_with_store(
        model,
        &mix.points,
        &distance,
        RoutedConfig {
            cells: 32,
            n_probe: 6,
            ..RoutedConfig::default()
        },
    );
    let api = QseApi::from_routed(index, mix.points, Box::new(LpDistance::l2()))
        .expect("facade construction");
    (api, queries)
}

fn post(stream: &mut TcpStream, body: &str) -> u16 {
    post_to(stream, "/query", body)
}

fn post_to(stream: &mut TcpStream, path: &str, body: &str) -> u16 {
    stream
        .write_all(
            format!(
                "POST {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .expect("request write");
    // Head, then Content-Length body bytes (keep-alive: the connection
    // carries the next request).
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        stream.read_exact(&mut byte).expect("response head");
        head.push(byte[0]);
    }
    let head = String::from_utf8_lossy(&head).to_string();
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let len: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .and_then(|v| v.trim().parse().ok())
        .expect("Content-Length");
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body).expect("response body");
    status
}

fn query_body(query: &[f64]) -> String {
    let coords: Vec<String> = query.iter().map(|x| format!("{x:?}")).collect();
    format!(r#"{{"query":[{}],"k":{K},"p":{P}}}"#, coords.join(","))
}

fn percentile(sorted: &[Duration], q: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx]
}

/// One bench cell: serve `api` with the given latency budget, drive the
/// concurrent load, report the latency histogram and throughput.
fn run_cell(load: &Load, api: QseApi, queries: &[Vec<f64>], budget: Duration, label: &str) {
    // Pre-rendered bodies with duplicates scattered through the mix
    // (every third request repeats an earlier query), so the dedupe
    // column reflects a realistic repeated-query share.
    let bodies: Vec<String> = (0..load.clients * load.requests_per_client)
        .map(|i| {
            let qi = if i % 3 == 2 { i / 2 } else { i } % queries.len();
            query_body(&queries[qi])
        })
        .collect();

    let mut server = QseServer::start(
        api,
        ServeConfig {
            batcher: BatcherConfig {
                latency_budget: budget,
                max_batch: 64,
                workers: 2,
            },
            ..ServeConfig::default()
        },
    )
    .expect("server start");
    let addr: SocketAddr = server.addr();

    let wall = Instant::now();
    let mut latencies: Vec<Duration> = Vec::with_capacity(bodies.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = bodies
            .chunks(load.requests_per_client)
            .map(|chunk| {
                scope.spawn(move || {
                    let mut stream = TcpStream::connect(addr).expect("connect");
                    stream
                        .set_read_timeout(Some(Duration::from_secs(60)))
                        .unwrap();
                    let mut local = Vec::with_capacity(chunk.len());
                    for body in chunk {
                        let start = Instant::now();
                        let status = post(&mut stream, body);
                        local.push(start.elapsed());
                        assert_eq!(status, 200);
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            latencies.extend(handle.join().expect("client thread"));
        }
    });
    let wall = wall.elapsed();
    latencies.sort();
    let stats = server.batcher_stats();
    println!(
        "serving/{label}  p50 {:.2?}  p99 {:.2?}  {:.0} req/s  mean batch {:.1}  dedupe {}",
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.99),
        latencies.len() as f64 / wall.as_secs_f64(),
        stats.queries as f64 / stats.batches.max(1) as f64,
        stats.deduped
    );
    server.shutdown();
}

/// Open-loop cell: requests fire on a fixed-rate seeded arrival schedule
/// (exponential inter-arrivals — a Poisson process at the offered rate,
/// same seed for every cell) whether or not earlier responses have come
/// back, and every latency is measured from the request's **scheduled**
/// arrival time, not its actual send time. That charges server queueing
/// delay to the requests that suffered it instead of silently slowing
/// the injection down — the coordinated-omission failure mode that makes
/// closed-loop clients understate saturated-tail latency and flatter
/// admission batching far less than it deserves. The printed
/// achieved-vs-offered pair makes saturation explicit: achieved tracking
/// offered means the server kept up; achieved falling short means the
/// offered rate exceeded capacity and the p99 shows the queue.
fn run_open_loop_cell(
    api: QseApi,
    queries: &[Vec<f64>],
    budget: Duration,
    conns: usize,
    offered_qps: f64,
    total: usize,
    label: &str,
) {
    // The full schedule up front: arrival offsets from the common start,
    // dealt round-robin across connections so each carries an equal and
    // deterministic share. Bodies reuse the duplicate-scattered mix.
    let mut rng = StdRng::seed_from_u64(0x0FFE_4ED0);
    let mut offset = Duration::ZERO;
    let mut schedule: Vec<(Duration, String)> = Vec::with_capacity(total);
    for i in 0..total {
        // Exponential inter-arrival: -ln(U) / rate, U in (0, 1].
        let u = 1.0 - rng.next_f64();
        offset += Duration::from_secs_f64(-u.ln() / offered_qps);
        let qi = if i % 3 == 2 { i / 2 } else { i } % queries.len();
        schedule.push((offset, query_body(&queries[qi])));
    }

    let mut server = QseServer::start(
        api,
        ServeConfig {
            batcher: BatcherConfig {
                latency_budget: budget,
                max_batch: 64,
                workers: 2,
            },
            ..ServeConfig::default()
        },
    )
    .expect("server start");
    let addr: SocketAddr = server.addr();

    let start = Instant::now();
    let mut latencies: Vec<Duration> = Vec::with_capacity(total);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                let share: Vec<&(Duration, String)> =
                    schedule.iter().skip(c).step_by(conns).collect();
                scope.spawn(move || {
                    let mut stream = TcpStream::connect(addr).expect("connect");
                    stream
                        .set_read_timeout(Some(Duration::from_secs(60)))
                        .unwrap();
                    let mut local = Vec::with_capacity(share.len());
                    for (arrival, body) in share {
                        if let Some(wait) = arrival.checked_sub(start.elapsed()) {
                            std::thread::sleep(wait);
                        }
                        let status = post(&mut stream, body);
                        // From the scheduled arrival, so time spent
                        // queued behind a busy connection counts too.
                        local.push(start.elapsed().saturating_sub(*arrival));
                        assert_eq!(status, 200);
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            latencies.extend(handle.join().expect("client thread"));
        }
    });
    let wall = start.elapsed();
    latencies.sort();
    let achieved = total as f64 / wall.as_secs_f64();
    let stats = server.batcher_stats();
    println!(
        "serving-open/{label}  p50 {:.2?}  p99 {:.2?}  offered {:.0} req/s  achieved {:.0} req/s ({:.0}%)  mean batch {:.1}",
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.99),
        offered_qps,
        achieved,
        100.0 * achieved / offered_qps,
        stats.queries as f64 / stats.batches.max(1) as f64,
    );
    server.shutdown();
}

/// A concurrent-index facade over the same Gaussian workload: reads
/// drain against epoch snapshots, writes land over HTTP.
fn build_concurrent_api(load: &Load) -> (QseApi, Vec<Vec<f64>>) {
    let mix = GaussianMixture::generate(GaussianMixtureConfig {
        rows: load.rows,
        dim: load.dim,
        clusters: 32,
        center_box: 10.0,
        spread: 0.5,
        seed: 0x5EED_CAFE,
    });
    let queries = mix.queries(128, 0xBEEF);
    let distance = LpDistance::l2();
    let model = train_model(&mix.points, &distance);
    let index = ConcurrentIndex::from_dynamic(DynamicIndex::<_, u8>::with_store(
        model, mix.points, &distance,
    ));
    let api =
        QseApi::from_concurrent(index, Box::new(LpDistance::l2())).expect("facade construction");
    (api, queries)
}

/// Read-latency-under-write cell: the identical closed-loop read drive
/// as [`run_cell`], optionally with a background writer hammering
/// `POST /insert` + `POST /remove` pairs over its own keep-alive
/// connection for the whole run. The with/without pair is the measured
/// price of mutation on the read path — epoch-snapshot publication is
/// the only coupling, so the p99s should sit close together.
fn run_read_while_write_cell(
    load: &Load,
    api: QseApi,
    queries: &[Vec<f64>],
    budget: Duration,
    writer_on: bool,
    label: &str,
) {
    let n = api.len();
    let dim = api.dim();
    let bodies: Vec<String> = (0..load.clients * load.requests_per_client)
        .map(|i| {
            let qi = if i % 3 == 2 { i / 2 } else { i } % queries.len();
            query_body(&queries[qi])
        })
        .collect();

    let mut server = QseServer::start(
        api,
        ServeConfig {
            batcher: BatcherConfig {
                latency_budget: budget,
                max_batch: 64,
                workers: 2,
            },
            ..ServeConfig::default()
        },
    )
    .expect("server start");
    let addr: SocketAddr = server.addr();

    let done = std::sync::atomic::AtomicBool::new(false);
    let wall = Instant::now();
    let mut latencies: Vec<Duration> = Vec::with_capacity(bodies.len());
    let mut writes = 0usize;
    std::thread::scope(|scope| {
        let writer = writer_on.then(|| {
            let done = &done;
            scope.spawn(move || {
                // Insert a far-off object, then remove it again: the
                // writer is the only mutator, so the fresh id is always
                // `n` and the swap-remove takes the same slot back —
                // index length (and so p-validity) never drifts.
                let mut stream = TcpStream::connect(addr).expect("writer connect");
                stream
                    .set_read_timeout(Some(Duration::from_secs(60)))
                    .unwrap();
                let coords: Vec<String> = (0..dim).map(|c| format!("{}.5", 40 + c)).collect();
                let insert = format!(r#"{{"object":[{}]}}"#, coords.join(","));
                let remove = format!(r#"{{"id":{n}}}"#);
                let mut ops = 0usize;
                while !done.load(std::sync::atomic::Ordering::SeqCst) {
                    assert_eq!(post_to(&mut stream, "/insert", &insert), 200);
                    assert_eq!(post_to(&mut stream, "/remove", &remove), 200);
                    ops += 2;
                    std::thread::sleep(Duration::from_millis(1));
                }
                ops
            })
        });
        let handles: Vec<_> = bodies
            .chunks(load.requests_per_client)
            .map(|chunk| {
                scope.spawn(move || {
                    let mut stream = TcpStream::connect(addr).expect("connect");
                    stream
                        .set_read_timeout(Some(Duration::from_secs(60)))
                        .unwrap();
                    let mut local = Vec::with_capacity(chunk.len());
                    for body in chunk {
                        let start = Instant::now();
                        let status = post(&mut stream, body);
                        local.push(start.elapsed());
                        assert_eq!(status, 200);
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            latencies.extend(handle.join().expect("client thread"));
        }
        done.store(true, std::sync::atomic::Ordering::SeqCst);
        if let Some(writer) = writer {
            writes = writer.join().expect("writer thread");
        }
    });
    let wall = wall.elapsed();
    latencies.sort();
    println!(
        "serving-rw/{label}  p50 {:.2?}  p99 {:.2?}  {:.0} req/s  writes {} ({:.0}/s)",
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.99),
        latencies.len() as f64 / wall.as_secs_f64(),
        writes,
        writes as f64 / wall.as_secs_f64(),
    );
    server.shutdown();
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let load = if smoke {
        Load {
            rows: 2_000,
            dim: 16,
            clients: 4,
            requests_per_client: 8,
        }
    } else {
        Load {
            rows: 50_000,
            dim: 32,
            clients: 8,
            requests_per_client: 96,
        }
    };
    let budgets: &[(Duration, &str)] = if smoke {
        &[(Duration::from_micros(500), "budget500us")]
    } else {
        &[
            (Duration::ZERO, "budget0"),
            (Duration::from_micros(250), "budget250us"),
            (Duration::from_micros(500), "budget500us"),
            (Duration::from_millis(2), "budget2ms"),
        ]
    };

    let setup = Instant::now();
    println!(
        "serving bench: routed u8 index, {} rows dim {}, {} clients × {} requests, k={K} p={P}",
        load.rows, load.dim, load.clients, load.requests_per_client
    );
    for (budget, tag) in budgets {
        // Each cell gets a fresh index build (the facade moves into the
        // server); identical seeds make every cell serve identical state.
        let (api, queries) = build_api(&load);
        let label = format!("np6of32/{tag}");
        run_cell(&load, api, &queries, *budget, &label);
    }

    // Open-loop sweep at one batching budget: offered rates straddling
    // the closed-loop throughput, so the output shows both a keeping-up
    // cell (achieved ≈ offered, low p99) and a saturated cell (achieved
    // < offered, queueing-dominated p99).
    let open_budget = Duration::from_micros(500);
    let open_cells: &[(f64, usize, usize)] = if smoke {
        &[(200.0, 4, 32)] // (offered req/s, connections, total requests)
    } else {
        &[
            (1_000.0, 16, 2_400),
            (2_000.0, 16, 2_400),
            (4_000.0, 16, 2_400),
        ]
    };
    for &(offered, conns, total) in open_cells {
        let (api, queries) = build_api(&load);
        let label = format!("np6of32/budget500us/{}qps", offered as u64);
        run_open_loop_cell(api, &queries, open_budget, conns, offered, total, &label);
    }

    // Read-latency-under-write pair over the concurrent index: the same
    // closed-loop drive against the same workload, first with the write
    // handle idle, then with a background writer landing insert/remove
    // pairs over HTTP throughout. The gap between the two p99 columns
    // is what live mutation costs concurrent readers.
    for writer_on in [false, true] {
        let (api, queries) = build_concurrent_api(&load);
        let tag = if writer_on {
            "write-churn"
        } else {
            "writer-idle"
        };
        run_read_while_write_cell(
            &load,
            api,
            &queries,
            Duration::from_micros(500),
            writer_on,
            &format!("flat-u8/budget500us/{tag}"),
        );
    }
    eprintln!("total bench wall time {:.2?}", setup.elapsed());
}
