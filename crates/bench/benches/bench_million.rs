//! Million-row serving sweep: the dim-256 startup/scan/recall/latency/
//! memory Pareto table per filter-store backend.
//!
//! The ROADMAP's million-row scenario, made runnable: a 1M-point
//! Gaussian-mixture database under a 256-reference query-insensitive
//! model (reference-coordinate embedding — cheap to construct at this
//! scale, snapshot-loadable because it is `QseModel`-backed), embedded
//! **once**, then indexed under every store precision from the same
//! embedded rows. Each backend row reports what a deployment cares
//! about:
//!
//! * **startup** — snapshot file size, owned `load` time, zero-copy
//!   `load_mmap` time, and the element heap bytes of both (mapped: 0 —
//!   the u8 store serves 1M × 256 rows off a 256 MB file with element
//!   memory left to the OS page cache);
//! * **scan** — mean per-query filter+refine latency over the mapped
//!   index (the full-database filter scan dominates at this scale);
//! * **recall@10** — against exact brute-force ground truth in the
//!   original space, so the precision/latency/memory trade reads off one
//!   table.
//!
//! Run with `cargo bench -p qse-bench --bench bench_million`; the row
//! count honors `QSE_MILLION_ROWS` (default 1 000 000) so the same sweep
//! scales down to small runners, and the `--test` smoke flag shrinks it
//! to a quick CI pass.

use qse_core::model::TrainingHistory;
use qse_core::{Interval, QseModel, WeakLearner};
use qse_dataset::{GaussianMixture, GaussianMixtureConfig};
use qse_distance::{FilterElem, LpDistance};
use qse_embedding::one_d::Candidate;
use qse_embedding::{Embedding, OneDEmbedding};
use qse_retrieval::FilterRefineIndex;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const K: usize = 10;
const P: usize = 200;
const EMBED_DIM: usize = 256;
const ORIG_DIM: usize = 32;

/// A hand-built query-insensitive model: `EMBED_DIM` reference
/// coordinates with full-interval unit-alpha learners (the same idiom as
/// the workspace store-backend tests). Training a BoostMap model on a
/// million rows is a separate benchmark; here the model only has to give
/// every backend the *same* dim-256 filter geometry.
fn reference_model(references: &[Vec<f64>]) -> QseModel<Vec<f64>> {
    let coordinates: Vec<OneDEmbedding<Vec<f64>>> = references
        .iter()
        .enumerate()
        .map(|(i, r)| OneDEmbedding::reference(Candidate::new(i, r.clone())))
        .collect();
    let learners = (0..references.len())
        .map(|coordinate| WeakLearner {
            coordinate,
            interval: Interval::full(),
            alpha: 1.0,
        })
        .collect();
    QseModel::new(coordinates, learners, TrainingHistory::default())
}

fn brute_force_knn(query: &[f64], db: &[Vec<f64>], d: &LpDistance) -> Vec<usize> {
    let query = query.to_vec();
    let mut scored: Vec<(f64, usize)> = db
        .iter()
        .enumerate()
        .map(|(i, row)| (d.eval(&query, row), i))
        .collect();
    scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    scored.truncate(K);
    scored.into_iter().map(|(_, i)| i).collect()
}

fn snapshot_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("qse-million-{}-{tag}.snap", std::process::id()))
}

/// One Pareto row: index the shared embedded rows under backend `E`,
/// snapshot, time both load paths, and serve the query set off the
/// mapped index.
fn run_backend<E: FilterElem>(
    model: &QseModel<Vec<f64>>,
    embedded: Vec<Vec<f64>>,
    db: &[Vec<f64>],
    queries: &[Vec<f64>],
    truth: &[Vec<usize>],
    d: &LpDistance,
) {
    let built = Instant::now();
    let index =
        FilterRefineIndex::<_, E>::from_vectors_query_sensitive_with_store(model.clone(), embedded);
    let built = built.elapsed();

    let path = snapshot_path(E::NAME);
    let saved = Instant::now();
    index.save(&path).expect("snapshot save");
    let saved = saved.elapsed();
    let file_bytes = std::fs::metadata(&path).expect("snapshot stat").len();

    let owned_t = Instant::now();
    let owned = FilterRefineIndex::<Vec<f64>, E>::load(&path).expect("owned load");
    let owned_t = owned_t.elapsed();

    let mmap_t = Instant::now();
    let mapped = FilterRefineIndex::<Vec<f64>, E>::load_mmap(&path).expect("mmap load");
    let mmap_t = mmap_t.elapsed();

    // The storage representation must be invisible to retrieval: same
    // neighbors, same distances, bit for bit, before anything is timed
    // off the mapped index.
    for q in queries.iter().take(2) {
        assert_eq!(
            owned.retrieve(q, db, d, K, P),
            mapped.retrieve(q, db, d, K, P),
            "mapped retrieval must be bit-identical to owned"
        );
    }

    let mut latency = Duration::ZERO;
    let mut hits = 0usize;
    for (q, t) in queries.iter().zip(truth) {
        let start = Instant::now();
        let outcome = mapped.retrieve(q, db, d, K, P);
        latency += start.elapsed();
        hits += outcome.neighbors.iter().filter(|n| t.contains(n)).count();
    }
    let recall = hits as f64 / (queries.len() * K) as f64;

    println!(
        "million/{:<3}  file {:>7.1} MB  build {:>6.2?}  save {:>6.2?}  load {:>8.2?}  \
         load_mmap {:>8.2?} ({:>4.1}x)  heap owned {:>7.1} MB  heap mapped {} B  \
         query {:>8.2?}  recall@{K} {:.3}",
        E::NAME,
        file_bytes as f64 / 1e6,
        built,
        saved,
        owned_t,
        mmap_t,
        owned_t.as_secs_f64() / mmap_t.as_secs_f64().max(1e-9),
        owned.store_heap_bytes() as f64 / 1e6,
        mapped.store_heap_bytes(),
        latency / queries.len() as u32,
        recall,
    );
    assert!(
        mapped.store_is_mapped() || cfg!(not(all(unix, target_pointer_width = "64"))),
        "the mapped load must actually map on this target"
    );
    drop(mapped);
    let _ = std::fs::remove_file(&path);
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let rows: usize = std::env::var("QSE_MILLION_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 20_000 } else { 1_000_000 });
    let query_count = if smoke { 4 } else { 32 };

    let wall = Instant::now();
    let mix = GaussianMixture::generate(GaussianMixtureConfig {
        rows,
        dim: ORIG_DIM,
        clusters: 64,
        center_box: 10.0,
        spread: 0.5,
        seed: 0x1_000_000,
    });
    let queries = mix.queries(query_count, 0xFEED);
    let d = LpDistance::l2();

    // Evenly strided references cover every mixture mode at any scale.
    let refs: Vec<Vec<f64>> = (0..EMBED_DIM)
        .map(|i| mix.points[i * rows / EMBED_DIM].clone())
        .collect();
    let model = reference_model(&refs);

    let embed_t = Instant::now();
    let embedding = model.embedding();
    let embedded: Vec<Vec<f64>> = mix.points.iter().map(|p| embedding.embed(p, &d)).collect();
    let embed_t = embed_t.elapsed();

    let truth_t = Instant::now();
    let truth: Vec<Vec<usize>> = queries
        .iter()
        .map(|q| brute_force_knn(q, &mix.points, &d))
        .collect();
    let truth_t = truth_t.elapsed();

    println!(
        "million sweep: {rows} rows, original dim {ORIG_DIM} -> embedded dim {EMBED_DIM}, \
         {} queries, k={K} p={P}  (embed {:.2?}, ground truth {:.2?})",
        queries.len(),
        embed_t,
        truth_t
    );

    run_backend::<f64>(&model, embedded.clone(), &mix.points, &queries, &truth, &d);
    run_backend::<f32>(&model, embedded.clone(), &mix.points, &queries, &truth, &d);
    run_backend::<u8>(&model, embedded, &mix.points, &queries, &truth, &d);
    eprintln!("total bench wall time {:.2?}", wall.elapsed());
}
