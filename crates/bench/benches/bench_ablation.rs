//! Reduced-scale benchmark of the ablation driver (reference-only vs
//! reference+pivot embeddings, splitter-interval budget, candidates per
//! round, triple budget).

use criterion::{criterion_group, criterion_main, Criterion};
use qse_bench::HarnessScale;
use qse_retrieval::experiments::ablation::run_ablation;
use std::hint::black_box;

fn bench_ablation(c: &mut Criterion) {
    let hs = HarnessScale::tiny();
    c.bench_function("ablation_suite_tiny_scale", |bench| {
        bench.iter(|| {
            black_box(run_ablation(
                hs.digits_db,
                hs.digits_queries,
                hs.points_per_shape,
                &hs.scale,
                2005,
            ))
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ablation
);
criterion_main!(benches);
