//! Reduced-scale end-to-end benchmark of the Figure 6 driver ("Quick Se-QS"
//! with a small preprocessing budget vs regular Se-QS vs FastMap, 95%
//! accuracy).

use criterion::{criterion_group, criterion_main, Criterion};
use qse_bench::HarnessScale;
use qse_retrieval::experiments::figures::run_fig6;
use std::hint::black_box;

fn bench_fig6(c: &mut Criterion) {
    let hs = HarnessScale::tiny();
    c.bench_function("fig6_quick_vs_regular_tiny_scale", |bench| {
        bench.iter(|| {
            black_box(run_fig6(
                hs.digits_db,
                hs.digits_queries,
                hs.points_per_shape,
                &hs.scale,
                2005,
            ))
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig6
);
criterion_main!(benches);
