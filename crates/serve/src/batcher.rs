//! The admission batcher: concurrently arriving single queries coalesced
//! into micro-batches for the Q×N tiled batch kernel.
//!
//! A single query scans the whole filter store for one output row; the
//! tiled batch kernel amortizes that scan across a tile of query rows, so
//! a served index wants concurrent singles to arrive *together*. The
//! batcher buys that locality with a bounded wait: the first request to
//! arrive opens a batch window, further arrivals join it, and the window
//! closes after [`BatcherConfig::latency_budget`] or when
//! [`BatcherConfig::max_batch`] requests have gathered — whichever comes
//! first. A budget of zero degenerates to immediate per-arrival dispatch.
//!
//! At the moment a window closes the drained requests are grouped by
//! `(k, p)` (the batched pipelines take one `k`/`p` per call) and, within
//! each group, **deduplicated by exact query bits**: equal queries run
//! once and share the result. This is the batch-global form of the
//! per-tile duplicate memo inside `tiled_query_pipeline` — admission sees
//! the whole batch, so duplicates landing in different tiles (which the
//! per-tile memo cannot see) collapse here. Only bit-equal queries are
//! merged, so the reuse is exact, not approximate.
//!
//! Per-query results are **bit-identical to a sequential
//! [`QseApi::try_query`] per request**, whatever the arrival
//! interleaving, worker count or duplicate scatter: the batched pipelines
//! pin batch == sequential, and dedupe only ever reuses a result across
//! equal inputs. The workspace `admission_batching` test asserts exactly
//! this.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use qse_retrieval::QueryError;

use crate::api::{QseApi, QueryResult};

/// What a submitted request can fail with: a typed validation error, or
/// — the armor-plated last resort — a panic caught inside a worker so the
/// service keeps serving.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestError {
    /// The request was rejected by validation or by the index.
    Query(QueryError),
    /// A worker panicked while executing the batch; the message is the
    /// panic payload. The worker survives and keeps draining.
    Internal(String),
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Query(e) => write!(f, "{e}"),
            Self::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for RequestError {}

impl From<QueryError> for RequestError {
    fn from(e: QueryError) -> Self {
        Self::Query(e)
    }
}

/// Knobs of the admission window.
#[derive(Debug, Clone, Copy)]
pub struct BatcherConfig {
    /// How long the first request in a window waits for company — the
    /// bounded latency cost paid for batch locality. Zero dispatches
    /// every arrival immediately.
    pub latency_budget: Duration,
    /// Hard cap on requests per batch; a full window closes early.
    pub max_batch: usize,
    /// Worker threads draining windows. One worker executes one batch at
    /// a time; more workers overlap execution with the next window.
    pub workers: usize,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        Self {
            latency_budget: Duration::from_micros(500),
            max_batch: 64,
            workers: 2,
        }
    }
}

/// Counters the batcher keeps, for health reporting and for the bench
/// suite's dedupe/batching effectiveness lines.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatcherStats {
    /// Batches executed.
    pub batches: u64,
    /// Requests admitted into executed batches.
    pub queries: u64,
    /// Requests answered from another request's result by the
    /// batch-global equal-query dedupe (never ran the pipeline).
    pub deduped: u64,
}

#[derive(Default)]
struct StatCells {
    batches: AtomicU64,
    queries: AtomicU64,
    deduped: AtomicU64,
}

struct Pending {
    query: Vec<f64>,
    k: usize,
    p: usize,
    tx: mpsc::Sender<Result<QueryResult, RequestError>>,
}

struct QueueState {
    queue: VecDeque<Pending>,
    shutdown: bool,
}

struct Shared {
    api: Arc<QseApi>,
    state: Mutex<QueueState>,
    arrived: Condvar,
    config: BatcherConfig,
    stats: StatCells,
}

/// The admission batcher: submit single queries from any number of
/// threads; they execute in coalesced micro-batches on the worker pool.
/// Dropping the batcher drains the queue and joins the workers.
pub struct Batcher {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Batcher {
    /// Start `config.workers` worker threads over `api`.
    pub fn start(api: Arc<QseApi>, config: BatcherConfig) -> Self {
        let config = BatcherConfig {
            max_batch: config.max_batch.max(1),
            workers: config.workers.max(1),
            ..config
        };
        let shared = Arc::new(Shared {
            api,
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            arrived: Condvar::new(),
            config,
            stats: StatCells::default(),
        });
        let workers = (0..config.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Self { shared, workers }
    }

    /// The facade the workers execute against.
    pub fn api(&self) -> &Arc<QseApi> {
        &self.shared.api
    }

    /// Submit one query and block until its batch executes.
    ///
    /// Validation runs synchronously at admission — a malformed request
    /// is rejected here, before it can occupy a batch slot, and the
    /// worker threads only ever see requests the index accepts.
    ///
    /// # Errors
    /// [`RequestError::Query`] for any [`QseApi::validate`] rejection,
    /// [`RequestError::Internal`] if the executing worker panicked.
    pub fn query(&self, query: Vec<f64>, k: usize, p: usize) -> Result<QueryResult, RequestError> {
        self.shared.api.validate(&query, k, p)?;
        let (tx, rx) = mpsc::channel();
        {
            let mut state = lock(&self.shared.state);
            if state.shutdown {
                return Err(RequestError::Internal("the batcher is shut down".into()));
            }
            state.queue.push_back(Pending { query, k, p, tx });
        }
        self.shared.arrived.notify_one();
        rx.recv().unwrap_or_else(|_| {
            Err(RequestError::Internal(
                "the batch executor dropped the request".into(),
            ))
        })
    }

    /// A snapshot of the batching counters.
    pub fn stats(&self) -> BatcherStats {
        BatcherStats {
            batches: self.shared.stats.batches.load(Ordering::Relaxed),
            queries: self.shared.stats.queries.load(Ordering::Relaxed),
            deduped: self.shared.stats.deduped.load(Ordering::Relaxed),
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        lock(&self.shared.state).shutdown = true;
        self.shared.arrived.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn lock(m: &Mutex<QueueState>) -> std::sync::MutexGuard<'_, QueueState> {
    // A worker panic inside the critical section is already converted to
    // a response by catch_unwind; a poisoned queue lock carries no
    // broken invariant worth dying for.
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn worker_loop(shared: &Shared) {
    loop {
        let batch = {
            let mut state = lock(&shared.state);
            // Sleep until something arrives (or shutdown drains us out).
            loop {
                if !state.queue.is_empty() {
                    break;
                }
                if state.shutdown {
                    return;
                }
                state = shared
                    .arrived
                    .wait(state)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
            // A request is waiting: open the batch window and hold it
            // open (releasing the lock while sleeping) until the latency
            // budget runs out or the batch fills.
            let deadline = Instant::now() + shared.config.latency_budget;
            while state.queue.len() < shared.config.max_batch && !state.shutdown {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (next, timeout) = shared
                    .arrived
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                state = next;
                if timeout.timed_out() {
                    break;
                }
                if state.queue.is_empty() {
                    // Another worker drained the window while we slept.
                    break;
                }
            }
            let take = state.queue.len().min(shared.config.max_batch);
            state.queue.drain(..take).collect::<Vec<_>>()
        };
        if batch.is_empty() {
            continue;
        }
        execute_batch(shared, batch);
    }
}

/// Run one drained admission window: group by `(k, p)`, dedupe equal
/// queries within each group, execute each group through the batched
/// pipeline once, fan results back out to every requester.
fn execute_batch(shared: &Shared, batch: Vec<Pending>) {
    shared.stats.batches.fetch_add(1, Ordering::Relaxed);
    shared
        .stats
        .queries
        .fetch_add(batch.len() as u64, Ordering::Relaxed);

    // Group request indexes by (k, p): the batched pipelines take one
    // k/p per call. first-seen order within a group is preserved, so
    // dedupe deterministically reuses the earliest occurrence.
    let mut groups: HashMap<(usize, usize), Vec<usize>> = HashMap::new();
    for (i, pending) in batch.iter().enumerate() {
        groups.entry((pending.k, pending.p)).or_default().push(i);
    }

    for ((k, p), members) in groups {
        // Batch-global equal-query dedupe, keyed on exact f64 bits: a
        // strictly narrower merge than the pipeline's `PartialEq` memo
        // (bits distinguish -0.0 from 0.0 and never match NaN to NaN
        // payload-insensitively), so reuse is always sound.
        let mut unique: Vec<Vec<f64>> = Vec::new();
        let mut slot_of: Vec<usize> = Vec::with_capacity(members.len());
        let mut seen: HashMap<Vec<u64>, usize> = HashMap::new();
        for &i in &members {
            let bits: Vec<u64> = batch[i].query.iter().map(|x| x.to_bits()).collect();
            let slot = *seen.entry(bits).or_insert_with(|| {
                unique.push(batch[i].query.clone());
                unique.len() - 1
            });
            slot_of.push(slot);
        }
        shared
            .stats
            .deduped
            .fetch_add((members.len() - unique.len()) as u64, Ordering::Relaxed);

        // Admission already validated every request, so errors here are
        // unexpected — but they still come back typed, and a panic in
        // the pipeline is caught so the worker (and the service) lives.
        let api = Arc::clone(&shared.api);
        let outcome = catch_unwind(AssertUnwindSafe(|| api.try_query_batch(&unique, k, p)));
        match outcome {
            Ok(Ok(results)) => {
                for (&i, &slot) in members.iter().zip(&slot_of) {
                    let _ = batch[i].tx.send(Ok(results[slot].clone()));
                }
            }
            Ok(Err(e)) => {
                for &i in &members {
                    let _ = batch[i].tx.send(Err(RequestError::Query(e)));
                }
            }
            Err(payload) => {
                let msg = panic_message(payload.as_ref());
                for &i in &members {
                    let _ = batch[i].tx.send(Err(RequestError::Internal(msg.clone())));
                }
            }
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}
