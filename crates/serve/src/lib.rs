//! # qse-serve
//!
//! The query service front end of the Query-Sensitive Embeddings
//! reproduction: what turns an index (or a snapshot file) into a served
//! endpoint.
//!
//! * [`api`] — [`QseApi`], the transport-neutral facade over the index
//!   types (static / cluster-routed / dynamic / concurrent, any store
//!   precision), loadable straight from a snapshot through the single
//!   [`QseApi::load`] entry point; every entry point returns typed
//!   [`QueryError`](qse_retrieval::QueryError)s instead of unwinding.
//!   Over a concurrent index the facade is also the mutation path
//!   ([`QseApi::try_insert`] / [`QseApi::try_remove`]), with reads
//!   draining against pinned epoch snapshots throughout.
//! * [`batcher`] — the admission batcher: concurrently arriving single
//!   queries coalesce into micro-batches under a configurable latency
//!   budget, so the Q×N tiled filter kernel runs at its sweet spot;
//!   equal queries within a batch are deduplicated at admission and
//!   share one result. Per-query answers are bit-identical to
//!   sequential retrieval, whatever the arrival interleaving.
//! * [`http`] — a std-only HTTP/1.1 server on [`std::net::TcpListener`]
//!   (the build environment has no crates-registry access, matching the
//!   `crates/compat` philosophy): a thread-per-connection accept loop
//!   feeding the shared batcher.
//! * [`wire`] — the JSON request/response shapes over the workspace's
//!   dependency-free codec.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod api;
pub mod batcher;
pub mod http;
pub mod wire;

pub use api::{
    IndexInfo, LoadOptions, MutationReport, QseApi, QueryResult, ServeError, SnapshotSource,
};
pub use batcher::{Batcher, BatcherConfig, BatcherStats, RequestError};
pub use http::{QseServer, ServeConfig};
