//! The JSON wire format of the query service.
//!
//! Requests and responses are plain JSON over the workspace's
//! dependency-free codec ([`qse_core::json`]). One request shape:
//!
//! ```json
//! {"query": [0.5, 1.25], "k": 3, "p": 20}
//! ```
//!
//! and two response shapes — a result:
//!
//! ```json
//! {"neighbors": [17, 4, 90], "distances": [0.1, 0.25, 0.3]}
//! ```
//!
//! or a typed error, whose `kind` is a stable machine-readable tag and
//! whose `message` is the same text the library's `Display` produces:
//!
//! ```json
//! {"error": {"kind": "bad_p", "message": "p = 2 must be at least k = 3"}}
//! ```

use qse_core::json::{JsonCodec, JsonValue};
use qse_retrieval::QueryError;

use crate::api::{IndexInfo, MutationReport, QueryResult};
use crate::batcher::RequestError;

/// A decoded `/query` request body.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// The raw query vector.
    pub query: Vec<f64>,
    /// Neighbors wanted.
    pub k: usize,
    /// Filter candidates to refine.
    pub p: usize,
}

/// Decode a `/query` request body. The error string is human-readable
/// and safe to echo back to the client.
///
/// # Errors
/// A description of the first problem found: unparseable JSON, a missing
/// field, or a field of the wrong type.
pub fn parse_query_request(body: &str) -> Result<QueryRequest, String> {
    let value = JsonValue::parse(body).map_err(|e| e.to_string())?;
    let field = |name: &str| value.get(name).map_err(|e| e.to_string());
    let query =
        Vec::<f64>::from_json_value(field("query")?).map_err(|e| format!("field `query`: {e}"))?;
    let k = usize::from_json_value(field("k")?).map_err(|e| format!("field `k`: {e}"))?;
    let p = usize::from_json_value(field("p")?).map_err(|e| format!("field `p`: {e}"))?;
    Ok(QueryRequest { query, k, p })
}

/// Encode a successful query response.
pub fn result_json(result: &QueryResult) -> String {
    JsonValue::Object(vec![
        ("neighbors".into(), result.neighbors.to_json_value()),
        ("distances".into(), result.distances.to_json_value()),
    ])
    .dump()
}

/// Encode an error response: `{"error": {"kind": ..., "message": ...}}`.
pub fn error_json(kind: &str, message: &str) -> String {
    JsonValue::Object(vec![(
        "error".into(),
        JsonValue::Object(vec![
            ("kind".into(), JsonValue::String(kind.into())),
            ("message".into(), JsonValue::String(message.into())),
        ]),
    )])
    .dump()
}

/// Encode the `/healthz` response.
pub fn health_json(backend: &str, len: usize, dim: usize) -> String {
    JsonValue::Object(vec![
        ("status".into(), JsonValue::String("ok".into())),
        ("backend".into(), JsonValue::String(backend.into())),
        ("len".into(), len.to_json_value()),
        ("dim".into(), dim.to_json_value()),
    ])
    .dump()
}

/// Decode a `POST /insert` request body: `{"object": [...]}`.
///
/// # Errors
/// As [`parse_query_request`].
pub fn parse_insert_request(body: &str) -> Result<Vec<f64>, String> {
    let value = JsonValue::parse(body).map_err(|e| e.to_string())?;
    let field = value.get("object").map_err(|e| e.to_string())?;
    Vec::<f64>::from_json_value(field).map_err(|e| format!("field `object`: {e}"))
}

/// Decode a `POST /remove` request body: `{"id": N}`.
///
/// # Errors
/// As [`parse_query_request`].
pub fn parse_remove_request(body: &str) -> Result<usize, String> {
    let value = JsonValue::parse(body).map_err(|e| e.to_string())?;
    let field = value.get("id").map_err(|e| e.to_string())?;
    usize::from_json_value(field).map_err(|e| format!("field `id`: {e}"))
}

/// Encode a successful mutation response:
/// `{"id": ..., "len": ..., "epoch": ...}`.
pub fn mutation_json(report: &MutationReport) -> String {
    JsonValue::Object(vec![
        ("id".into(), report.id.to_json_value()),
        ("len".into(), report.len.to_json_value()),
        ("epoch".into(), JsonValue::Number(report.epoch as f64)),
    ])
    .dump()
}

/// Encode the `GET /info` response (the full [`IndexInfo`] card; `epoch`
/// is `null` for backends without epoch snapshots).
pub fn info_json(info: &IndexInfo) -> String {
    JsonValue::Object(vec![
        ("backend".into(), JsonValue::String(info.backend.into())),
        ("len".into(), info.len.to_json_value()),
        ("dim".into(), info.dim.to_json_value()),
        ("mutable".into(), JsonValue::Bool(info.mutable)),
        (
            "epoch".into(),
            match info.epoch {
                Some(epoch) => JsonValue::Number(epoch as f64),
                None => JsonValue::Null,
            },
        ),
    ])
    .dump()
}

/// The stable machine-readable tag of a [`QueryError`], the `kind` field
/// of the wire error shape.
pub fn query_error_kind(error: &QueryError) -> &'static str {
    match error {
        QueryError::EmptyBatch => "empty_batch",
        QueryError::EmptyIndex => "empty_index",
        QueryError::BadK { .. } => "bad_k",
        QueryError::BadP { .. } => "bad_p",
        QueryError::DimMismatch { .. } => "dim_mismatch",
        QueryError::DatabaseMismatch { .. } => "database_mismatch",
        QueryError::BadPScale { .. } => "bad_p_scale",
        QueryError::BadNProbe { .. } => "bad_n_probe",
        QueryError::RoutingDisabled => "routing_disabled",
        QueryError::BadId { .. } => "bad_id",
        QueryError::MutationUnsupported => "mutation_unsupported",
    }
}

/// The stable tag of a [`RequestError`].
pub fn request_error_kind(error: &RequestError) -> &'static str {
    match error {
        RequestError::Query(e) => query_error_kind(e),
        RequestError::Internal(_) => "internal",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let req = parse_query_request(r#"{"query":[1.5,-2.0],"k":3,"p":10}"#).unwrap();
        assert_eq!(
            req,
            QueryRequest {
                query: vec![1.5, -2.0],
                k: 3,
                p: 10
            }
        );
    }

    #[test]
    fn request_rejections_name_the_problem() {
        assert!(parse_query_request("not json").is_err());
        assert!(parse_query_request(r#"{"k":3,"p":10}"#)
            .unwrap_err()
            .contains("query"));
        assert!(parse_query_request(r#"{"query":[1.0],"k":3.5,"p":10}"#)
            .unwrap_err()
            .contains("`k`"));
        assert!(parse_query_request(r#"{"query":[1.0],"k":3,"p":-2}"#)
            .unwrap_err()
            .contains("`p`"));
        assert!(parse_query_request(r#"{"query":"no","k":3,"p":10}"#)
            .unwrap_err()
            .contains("`query`"));
    }

    #[test]
    fn responses_are_valid_json() {
        let result = QueryResult {
            neighbors: vec![4, 9],
            distances: vec![0.5, 1.25],
        };
        let parsed = JsonValue::parse(&result_json(&result)).unwrap();
        assert_eq!(
            Vec::<usize>::from_json_value(parsed.get("neighbors").unwrap()).unwrap(),
            vec![4, 9]
        );
        let err = JsonValue::parse(&error_json("bad_k", "k must be at least 1")).unwrap();
        assert_eq!(
            err.get("error")
                .unwrap()
                .get("kind")
                .unwrap()
                .as_str()
                .unwrap(),
            "bad_k"
        );
        assert!(JsonValue::parse(&health_json("routed", 10, 2)).is_ok());
    }

    #[test]
    fn error_kinds_are_stable() {
        assert_eq!(query_error_kind(&QueryError::BadK { k: 0 }), "bad_k");
        assert_eq!(
            query_error_kind(&QueryError::DimMismatch {
                expected: 2,
                got: 3
            }),
            "dim_mismatch"
        );
        assert_eq!(
            request_error_kind(&RequestError::Internal("boom".into())),
            "internal"
        );
    }
}
