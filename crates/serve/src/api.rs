//! The transport-neutral serving facade.
//!
//! [`QseApi`] wraps any of the three retrieval index types — static
//! [`FilterRefineIndex`], cluster-routed [`RoutedIndex`], online
//! [`DynamicIndex`] — over any filter-store precision (`f64`/`f32`/`u8`)
//! behind one monomorphic query surface: raw `Vec<f64>` objects in, typed
//! results or [`QueryError`]s out, never a panic. A facade can be built
//! from a live index or loaded straight from a snapshot file, sniffing
//! the index kind and element type from the header bytes — the cold-start
//! path a deployment actually runs.

use std::path::Path;
use std::sync::Arc;

use qse_distance::{DistanceMeasure, FilterElem, MapRegion};
use qse_retrieval::{DynamicIndex, FilterRefineIndex, QueryError, RoutedIndex, SnapshotError};

/// What the serving layer answers a query with: the `k` nearest neighbor
/// ids (indexes into the served database) and their exact distances, both
/// in ascending-distance order under the strict `(distance, index)` total
/// order of the retrieval pipelines.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Database ids of the `k` nearest neighbors.
    pub neighbors: Vec<usize>,
    /// The exact distance to each neighbor, parallel to `neighbors`.
    pub distances: Vec<f64>,
}

/// Why a [`QseApi`] could not be constructed or loaded. Request-time
/// failures are [`QueryError`]s instead — this type covers setup only.
#[derive(Debug)]
pub enum ServeError {
    /// The snapshot bytes failed to load as any known index kind /
    /// element type.
    Snapshot(SnapshotError),
    /// A static or routed snapshot was loaded without the database of raw
    /// objects its refine step needs (dynamic snapshots carry their own).
    DatabaseRequired,
    /// The database of raw objects is unusable: empty, ragged, or the
    /// wrong length for the index it accompanies.
    BadDatabase(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Snapshot(e) => write!(f, "snapshot load failed: {e}"),
            Self::DatabaseRequired => write!(
                f,
                "static and routed snapshots need the database of raw objects to refine against"
            ),
            Self::BadDatabase(reason) => write!(f, "unusable database: {reason}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<SnapshotError> for ServeError {
    fn from(e: SnapshotError) -> Self {
        Self::Snapshot(e)
    }
}

/// The object-safe engine behind [`QseApi`]: one implementation per
/// (index kind × store precision) pair, erased so the serving layer is
/// monomorphic whatever backend the snapshot held.
trait Engine: Send + Sync {
    fn len(&self) -> usize;
    fn kind(&self) -> &'static str;
    fn try_query_batch(
        &self,
        queries: &[Vec<f64>],
        distance: &dyn DistanceMeasure<Vec<f64>>,
        k: usize,
        p: usize,
    ) -> Result<Vec<QueryResult>, QueryError>;
}

struct StaticEngine<E: FilterElem> {
    index: FilterRefineIndex<Vec<f64>, E>,
    database: Vec<Vec<f64>>,
}

impl<E: FilterElem> Engine for StaticEngine<E> {
    fn len(&self) -> usize {
        self.database.len()
    }
    fn kind(&self) -> &'static str {
        "static"
    }
    fn try_query_batch(
        &self,
        queries: &[Vec<f64>],
        distance: &dyn DistanceMeasure<Vec<f64>>,
        k: usize,
        p: usize,
    ) -> Result<Vec<QueryResult>, QueryError> {
        let outcomes = self
            .index
            .try_retrieve_batch(queries, &self.database, distance, k, p)?;
        Ok(outcomes
            .into_iter()
            .map(|o| QueryResult {
                neighbors: o.neighbors,
                distances: o.distances,
            })
            .collect())
    }
}

struct RoutedEngine<E: FilterElem> {
    index: RoutedIndex<Vec<f64>, E>,
    database: Vec<Vec<f64>>,
}

impl<E: FilterElem> Engine for RoutedEngine<E> {
    fn len(&self) -> usize {
        self.database.len()
    }
    fn kind(&self) -> &'static str {
        "routed"
    }
    fn try_query_batch(
        &self,
        queries: &[Vec<f64>],
        distance: &dyn DistanceMeasure<Vec<f64>>,
        k: usize,
        p: usize,
    ) -> Result<Vec<QueryResult>, QueryError> {
        let outcomes = self
            .index
            .try_retrieve_batch(queries, &self.database, distance, k, p)?;
        Ok(outcomes
            .into_iter()
            .map(|o| QueryResult {
                neighbors: o.neighbors,
                distances: o.distances,
            })
            .collect())
    }
}

struct DynamicEngine<E: FilterElem> {
    index: DynamicIndex<Vec<f64>, E>,
}

impl<E: FilterElem> Engine for DynamicEngine<E> {
    fn len(&self) -> usize {
        self.index.len()
    }
    fn kind(&self) -> &'static str {
        "dynamic"
    }
    fn try_query_batch(
        &self,
        queries: &[Vec<f64>],
        distance: &dyn DistanceMeasure<Vec<f64>>,
        k: usize,
        p: usize,
    ) -> Result<Vec<QueryResult>, QueryError> {
        let ids = self.index.try_retrieve_batch(queries, distance, k, p)?;
        let objects = self.index.objects();
        Ok(ids
            .into_iter()
            .zip(queries)
            .map(|(neighbors, query)| {
                // The dynamic index returns ids only; the response's exact
                // distances are recomputed against the live objects — the
                // same measure the refine step just ranked them by.
                let distances = neighbors
                    .iter()
                    .map(|&id| distance.distance(query, &objects[id]))
                    .collect();
                QueryResult {
                    neighbors,
                    distances,
                }
            })
            .collect())
    }
}

/// The transport-neutral query facade: one of the three index types (any
/// store precision) plus the exact distance measure and, for the static
/// kinds, the database of raw objects the refine step re-ranks against.
///
/// Every entry point is fallible — malformed requests come back as typed
/// [`QueryError`]s, so a serving thread never unwinds on user input.
pub struct QseApi {
    engine: Box<dyn Engine>,
    distance: Box<dyn DistanceMeasure<Vec<f64>>>,
    dim: usize,
}

/// Reject databases the refine step cannot serve: empty, ragged, or (when
/// an index is attached) the wrong length.
fn database_dim(database: &[Vec<f64>], index_len: Option<usize>) -> Result<usize, ServeError> {
    let first = match database.first() {
        Some(row) => row.len(),
        None => return Err(ServeError::BadDatabase("the database is empty".into())),
    };
    if let Some(row) = database.iter().find(|row| row.len() != first) {
        return Err(ServeError::BadDatabase(format!(
            "ragged database: found rows of dimensionality {first} and {}",
            row.len()
        )));
    }
    if let Some(expected) = index_len {
        if database.len() != expected {
            return Err(ServeError::BadDatabase(format!(
                "index holds {expected} rows but the database has {} objects",
                database.len()
            )));
        }
    }
    Ok(first)
}

/// `Ok(None)` when the snapshot header names a different kind or element
/// type (so the caller tries the next loader), `Err` on real corruption.
fn shape_or_fail<T>(result: Result<T, SnapshotError>) -> Result<Option<T>, SnapshotError> {
    match result {
        Ok(index) => Ok(Some(index)),
        Err(SnapshotError::KindMismatch { .. } | SnapshotError::BackendMismatch { .. }) => Ok(None),
        Err(e) => Err(e),
    }
}

impl QseApi {
    /// Serve a static [`FilterRefineIndex`] over `database`.
    ///
    /// # Errors
    /// [`ServeError::BadDatabase`] when `database` is empty, ragged, or
    /// not the collection the index was built over (length check).
    pub fn from_static<E: FilterElem>(
        index: FilterRefineIndex<Vec<f64>, E>,
        database: Vec<Vec<f64>>,
        distance: Box<dyn DistanceMeasure<Vec<f64>>>,
    ) -> Result<Self, ServeError> {
        let dim = database_dim(&database, Some(index.len()))?;
        Ok(Self {
            engine: Box::new(StaticEngine { index, database }),
            distance,
            dim,
        })
    }

    /// Serve a cluster-routed [`RoutedIndex`] over `database`.
    ///
    /// # Errors
    /// As [`Self::from_static`].
    pub fn from_routed<E: FilterElem>(
        index: RoutedIndex<Vec<f64>, E>,
        database: Vec<Vec<f64>>,
        distance: Box<dyn DistanceMeasure<Vec<f64>>>,
    ) -> Result<Self, ServeError> {
        let dim = database_dim(&database, Some(index.len()))?;
        Ok(Self {
            engine: Box::new(RoutedEngine { index, database }),
            distance,
            dim,
        })
    }

    /// Serve an online [`DynamicIndex`], which carries its own objects.
    ///
    /// # Errors
    /// [`ServeError::BadDatabase`] when the index is empty or its objects
    /// are ragged.
    pub fn from_dynamic<E: FilterElem>(
        index: DynamicIndex<Vec<f64>, E>,
        distance: Box<dyn DistanceMeasure<Vec<f64>>>,
    ) -> Result<Self, ServeError> {
        let dim = database_dim(index.objects(), None)?;
        Ok(Self {
            engine: Box::new(DynamicEngine { index }),
            distance,
            dim,
        })
    }

    /// Load a facade straight from snapshot bytes, sniffing the index
    /// kind (static / routed / dynamic) and store precision
    /// (`f64`/`f32`/`u8`) by attempting each typed loader — the header
    /// check rejects wrong shapes cheaply, so only the matching decoder
    /// runs. `database` supplies the raw objects for static and routed
    /// snapshots (which store only embedded vectors); dynamic snapshots
    /// carry their own objects and ignore it.
    ///
    /// # Errors
    /// [`ServeError::Snapshot`] on corrupt or unknown bytes,
    /// [`ServeError::DatabaseRequired`] for a static/routed snapshot with
    /// `database` = `None`, [`ServeError::BadDatabase`] as the
    /// constructors.
    pub fn load_snapshot_bytes(
        bytes: &[u8],
        database: Option<Vec<Vec<f64>>>,
        distance: Box<dyn DistanceMeasure<Vec<f64>>>,
    ) -> Result<Self, ServeError> {
        fn need(db: Option<Vec<Vec<f64>>>) -> Result<Vec<Vec<f64>>, ServeError> {
            db.ok_or(ServeError::DatabaseRequired)
        }
        macro_rules! sniff {
            ($elem:ty) => {
                if let Some(ix) = shape_or_fail(
                    FilterRefineIndex::<Vec<f64>, $elem>::from_snapshot_bytes(bytes),
                )? {
                    return Self::from_static(ix, need(database)?, distance);
                }
                if let Some(ix) =
                    shape_or_fail(RoutedIndex::<Vec<f64>, $elem>::from_snapshot_bytes(bytes))?
                {
                    return Self::from_routed(ix, need(database)?, distance);
                }
                if let Some(ix) =
                    shape_or_fail(DynamicIndex::<Vec<f64>, $elem>::from_snapshot_bytes(bytes))?
                {
                    return Self::from_dynamic(ix, distance);
                }
            };
        }
        sniff!(u8);
        sniff!(f32);
        sniff!(f64);
        // Every kind × element attempt reported a shape mismatch — the
        // header is self-inconsistent (each tag individually valid but no
        // loader accepts the pair, which a well-formed snapshot cannot
        // produce). Surface the kind mismatch of the last attempt.
        match FilterRefineIndex::<Vec<f64>, f64>::from_snapshot_bytes(bytes) {
            Err(e) => Err(ServeError::Snapshot(e)),
            Ok(_) => unreachable!("loader succeeded on a retry of rejected bytes"),
        }
    }

    /// [`Self::load_snapshot_bytes`] read from `path`.
    ///
    /// # Errors
    /// As [`Self::load_snapshot_bytes`], plus [`SnapshotError::Io`].
    pub fn load_snapshot(
        path: impl AsRef<Path>,
        database: Option<Vec<Vec<f64>>>,
        distance: Box<dyn DistanceMeasure<Vec<f64>>>,
    ) -> Result<Self, ServeError> {
        let bytes = std::fs::read(path).map_err(SnapshotError::Io)?;
        Self::load_snapshot_bytes(&bytes, database, distance)
    }

    /// [`Self::load_snapshot`] over one shared memory mapping of `path`:
    /// the same kind/backend sniffing, but whichever typed loader matches
    /// borrows its element bytes **zero-copy** out of the mapping — the
    /// server boots in checksum-verification time instead of copy time,
    /// and element memory stays with the OS page cache. Files that cannot
    /// be mapped at all fall back to the copying loader with identical
    /// results, so callers never branch on mapping support.
    ///
    /// # Errors
    /// As [`Self::load_snapshot`].
    pub fn load_snapshot_mmap(
        path: impl AsRef<Path>,
        database: Option<Vec<Vec<f64>>>,
        distance: Box<dyn DistanceMeasure<Vec<f64>>>,
    ) -> Result<Self, ServeError> {
        let region = match MapRegion::map_path(&path) {
            Ok(region) => region,
            Err(_) => return Self::load_snapshot(path, database, distance),
        };
        fn need(db: Option<Vec<Vec<f64>>>) -> Result<Vec<Vec<f64>>, ServeError> {
            db.ok_or(ServeError::DatabaseRequired)
        }
        macro_rules! sniff {
            ($elem:ty) => {
                if let Some(ix) = shape_or_fail(FilterRefineIndex::<Vec<f64>, $elem>::from_mapped(
                    Arc::clone(&region),
                ))? {
                    return Self::from_static(ix, need(database)?, distance);
                }
                if let Some(ix) = shape_or_fail(RoutedIndex::<Vec<f64>, $elem>::from_mapped(
                    Arc::clone(&region),
                ))? {
                    return Self::from_routed(ix, need(database)?, distance);
                }
                if let Some(ix) = shape_or_fail(DynamicIndex::<Vec<f64>, $elem>::from_mapped(
                    Arc::clone(&region),
                ))? {
                    return Self::from_dynamic(ix, distance);
                }
            };
        }
        sniff!(u8);
        sniff!(f32);
        sniff!(f64);
        // Same self-inconsistent-header situation as the owned sniffing
        // path: surface the typed error of a final attempt.
        match FilterRefineIndex::<Vec<f64>, f64>::from_mapped(region) {
            Err(e) => Err(ServeError::Snapshot(e)),
            Ok(_) => unreachable!("loader succeeded on a retry of rejected bytes"),
        }
    }

    /// Number of served objects.
    pub fn len(&self) -> usize {
        self.engine.len()
    }

    /// Whether the facade serves zero objects (never true — construction
    /// rejects empty databases — but the conventional pair to `len`).
    pub fn is_empty(&self) -> bool {
        self.engine.len() == 0
    }

    /// Dimensionality every query must match.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The backend kind, for health reporting: `"static"`, `"routed"` or
    /// `"dynamic"`.
    pub fn backend(&self) -> &'static str {
        self.engine.kind()
    }

    /// The request validation the admission layer runs before enqueueing:
    /// dimensionality, then `k`/`p` against the served collection — the
    /// same checks the index would make, surfaced early so a malformed
    /// request never occupies a batch slot.
    ///
    /// # Errors
    /// [`QueryError::DimMismatch`], [`QueryError::BadK`],
    /// [`QueryError::BadP`].
    pub fn validate(&self, query: &[f64], k: usize, p: usize) -> Result<(), QueryError> {
        if query.len() != self.dim {
            return Err(QueryError::DimMismatch {
                expected: self.dim,
                got: query.len(),
            });
        }
        if k < 1 {
            return Err(QueryError::BadK { k });
        }
        let max = self.engine.len();
        if p < k || p > max {
            return Err(QueryError::BadP { k, p, max });
        }
        Ok(())
    }

    /// Answer one query: the `k` nearest neighbors after refining the
    /// best `p` filter candidates, exactly as the wrapped index's
    /// `retrieve` would.
    ///
    /// # Errors
    /// As [`Self::validate`].
    pub fn try_query(&self, query: &[f64], k: usize, p: usize) -> Result<QueryResult, QueryError> {
        let batch = [query.to_vec()];
        let results = self.try_query_batch(&batch, k, p)?;
        Ok(results.into_iter().next().expect("one query, one result"))
    }

    /// Answer a batch of queries through the wrapped index's batched
    /// pipeline — per-query results are bit-identical to [`Self::try_query`]
    /// (the pipelines pin this at any thread count), which is what lets
    /// the admission batcher coalesce concurrent singles freely.
    ///
    /// # Errors
    /// As [`Self::validate`], plus [`QueryError::EmptyBatch`].
    pub fn try_query_batch(
        &self,
        queries: &[Vec<f64>],
        k: usize,
        p: usize,
    ) -> Result<Vec<QueryResult>, QueryError> {
        if queries.is_empty() {
            return Err(QueryError::EmptyBatch);
        }
        for query in queries {
            self.validate(query, k, p)?;
        }
        self.engine
            .try_query_batch(queries, self.distance.as_ref(), k, p)
    }
}
