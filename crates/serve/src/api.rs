//! The transport-neutral serving facade.
//!
//! [`QseApi`] wraps any of the retrieval index types — static
//! [`FilterRefineIndex`], cluster-routed [`RoutedIndex`], online
//! [`DynamicIndex`], concurrent [`ConcurrentIndex`] — over any
//! filter-store precision (`f64`/`f32`/`u8`) behind one monomorphic query
//! surface: raw `Vec<f64>` objects in, typed results or [`QueryError`]s
//! out, never a panic. A facade can be built from a live index or loaded
//! straight from a snapshot through the one [`QseApi::load`] entry point
//! ([`SnapshotSource`] names the byte source, [`LoadOptions`] carries the
//! distance and the optional raw database), sniffing the index kind and
//! element type from the header bytes — the cold-start path a deployment
//! actually runs.
//!
//! A facade over a [`ConcurrentIndex`] is additionally **mutable**:
//! [`QseApi::try_insert`] / [`QseApi::try_remove`] apply through the
//! index's single write handle while reads keep draining against their
//! pinned epoch snapshots. [`QseApi::info`] reports which capabilities
//! the wrapped backend has.

use std::path::Path;
use std::sync::{Arc, Mutex};

use qse_distance::{DistanceMeasure, FilterElem, MapRegion};
use qse_retrieval::{
    ConcurrentIndex, DynamicIndex, FilterRefineIndex, QueryError, ReadHandle, RoutedIndex,
    SnapshotError, WriteHandle,
};

/// What the serving layer answers a query with: the `k` nearest neighbor
/// ids (indexes into the served database) and their exact distances, both
/// in ascending-distance order under the strict `(distance, index)` total
/// order of the retrieval pipelines.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Database ids of the `k` nearest neighbors.
    pub neighbors: Vec<usize>,
    /// The exact distance to each neighbor, parallel to `neighbors`.
    pub distances: Vec<f64>,
}

/// What the serving layer answers a successful mutation with: the id the
/// mutation touched and the index state it left behind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MutationReport {
    /// The global id the mutation applied to (the assigned id for an
    /// insert, the removed id for a remove — whose slot the last id
    /// takes, swap-remove style).
    pub id: usize,
    /// Live objects after the mutation.
    pub len: usize,
    /// The epoch the mutation published; reads pinned at or after it see
    /// the change.
    pub epoch: u64,
}

/// The identity card of a served index, returned by [`QseApi::info`] and
/// exposed over HTTP as `GET /info` — one struct instead of a growing
/// pile of ad-hoc getters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexInfo {
    /// The backend kind: `"static"`, `"routed"`, `"dynamic"` or
    /// `"concurrent"`.
    pub backend: &'static str,
    /// Number of served objects.
    pub len: usize,
    /// Dimensionality every query (and inserted object) must match.
    pub dim: usize,
    /// Whether [`QseApi::try_insert`] / [`QseApi::try_remove`] are
    /// supported (`true` only for the concurrent backend).
    pub mutable: bool,
    /// The current publish epoch, for backends with epoch snapshots
    /// (`None` elsewhere).
    pub epoch: Option<u64>,
}

/// Why a [`QseApi`] could not be constructed or loaded. Request-time
/// failures are [`QueryError`]s instead — this type covers setup only.
#[derive(Debug)]
pub enum ServeError {
    /// The snapshot bytes failed to load as any known index kind /
    /// element type.
    Snapshot(SnapshotError),
    /// A static or routed snapshot was loaded without the database of raw
    /// objects its refine step needs (dynamic snapshots carry their own).
    DatabaseRequired,
    /// The database of raw objects is unusable: empty, ragged, or the
    /// wrong length for the index it accompanies.
    BadDatabase(String),
    /// The concurrent index's single write handle is already claimed, so
    /// the facade cannot own the mutation path.
    WriterClaimed,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Snapshot(e) => write!(f, "snapshot load failed: {e}"),
            Self::DatabaseRequired => write!(
                f,
                "static and routed snapshots need the database of raw objects to refine against"
            ),
            Self::BadDatabase(reason) => write!(f, "unusable database: {reason}"),
            Self::WriterClaimed => write!(
                f,
                "the concurrent index's write handle is already claimed elsewhere"
            ),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<SnapshotError> for ServeError {
    fn from(e: SnapshotError) -> Self {
        Self::Snapshot(e)
    }
}

/// The object-safe engine behind [`QseApi`]: one implementation per
/// (index kind × store precision) pair, erased so the serving layer is
/// monomorphic whatever backend the snapshot held.
trait Engine: Send + Sync {
    fn len(&self) -> usize;
    fn kind(&self) -> &'static str;
    fn epoch(&self) -> Option<u64> {
        None
    }
    fn mutable(&self) -> bool {
        false
    }
    fn try_query_batch(
        &self,
        queries: &[Vec<f64>],
        distance: &dyn DistanceMeasure<Vec<f64>>,
        k: usize,
        p: usize,
    ) -> Result<Vec<QueryResult>, QueryError>;
    fn try_insert(
        &self,
        _object: Vec<f64>,
        _distance: &dyn DistanceMeasure<Vec<f64>>,
    ) -> Result<MutationReport, QueryError> {
        Err(QueryError::MutationUnsupported)
    }
    fn try_remove(&self, _id: usize) -> Result<MutationReport, QueryError> {
        Err(QueryError::MutationUnsupported)
    }
}

struct StaticEngine<E: FilterElem> {
    index: FilterRefineIndex<Vec<f64>, E>,
    database: Vec<Vec<f64>>,
}

impl<E: FilterElem> Engine for StaticEngine<E> {
    fn len(&self) -> usize {
        self.database.len()
    }
    fn kind(&self) -> &'static str {
        "static"
    }
    fn try_query_batch(
        &self,
        queries: &[Vec<f64>],
        distance: &dyn DistanceMeasure<Vec<f64>>,
        k: usize,
        p: usize,
    ) -> Result<Vec<QueryResult>, QueryError> {
        let outcomes = self
            .index
            .try_retrieve_batch(queries, &self.database, distance, k, p)?;
        Ok(outcomes
            .into_iter()
            .map(|o| QueryResult {
                neighbors: o.neighbors,
                distances: o.distances,
            })
            .collect())
    }
}

struct RoutedEngine<E: FilterElem> {
    index: RoutedIndex<Vec<f64>, E>,
    database: Vec<Vec<f64>>,
}

impl<E: FilterElem> Engine for RoutedEngine<E> {
    fn len(&self) -> usize {
        self.database.len()
    }
    fn kind(&self) -> &'static str {
        "routed"
    }
    fn try_query_batch(
        &self,
        queries: &[Vec<f64>],
        distance: &dyn DistanceMeasure<Vec<f64>>,
        k: usize,
        p: usize,
    ) -> Result<Vec<QueryResult>, QueryError> {
        let outcomes = self
            .index
            .try_retrieve_batch(queries, &self.database, distance, k, p)?;
        Ok(outcomes
            .into_iter()
            .map(|o| QueryResult {
                neighbors: o.neighbors,
                distances: o.distances,
            })
            .collect())
    }
}

struct DynamicEngine<E: FilterElem> {
    index: DynamicIndex<Vec<f64>, E>,
}

impl<E: FilterElem> Engine for DynamicEngine<E> {
    fn len(&self) -> usize {
        self.index.len()
    }
    fn kind(&self) -> &'static str {
        "dynamic"
    }
    fn try_query_batch(
        &self,
        queries: &[Vec<f64>],
        distance: &dyn DistanceMeasure<Vec<f64>>,
        k: usize,
        p: usize,
    ) -> Result<Vec<QueryResult>, QueryError> {
        let ids = self.index.try_retrieve_batch(queries, distance, k, p)?;
        let objects = self.index.objects();
        Ok(ids
            .into_iter()
            .zip(queries)
            .map(|(neighbors, query)| {
                // The dynamic index returns ids only; the response's exact
                // distances are recomputed against the live objects — the
                // same measure the refine step just ranked them by.
                let distances = neighbors
                    .iter()
                    .map(|&id| distance.distance(query, &objects[id]))
                    .collect();
                QueryResult {
                    neighbors,
                    distances,
                }
            })
            .collect())
    }
}

/// The concurrent engine: reads pin epoch snapshots through the cheap
/// read handle; mutations serialize on the facade-owned write handle.
/// Readers and the writer never contend — an in-flight query keeps its
/// pinned snapshot whatever the writer publishes meanwhile.
struct ConcurrentEngine<E: FilterElem> {
    reader: ReadHandle<Vec<f64>, E>,
    writer: Mutex<WriteHandle<Vec<f64>, E>>,
}

impl<E: FilterElem> Engine for ConcurrentEngine<E> {
    fn len(&self) -> usize {
        self.reader.len()
    }
    fn kind(&self) -> &'static str {
        "concurrent"
    }
    fn epoch(&self) -> Option<u64> {
        Some(self.reader.epoch())
    }
    fn mutable(&self) -> bool {
        true
    }
    fn try_query_batch(
        &self,
        queries: &[Vec<f64>],
        distance: &dyn DistanceMeasure<Vec<f64>>,
        k: usize,
        p: usize,
    ) -> Result<Vec<QueryResult>, QueryError> {
        // One snapshot for the whole batch: ids, the re-validation of
        // k/p against the epoch's true length (admission validated
        // against a possibly newer one — a lost race is a typed error,
        // never a panic), and the response's exact distances all come
        // from the same pinned epoch.
        let snapshot = self.reader.snapshot();
        let ids = snapshot.try_retrieve_batch(queries, distance, k, p)?;
        Ok(ids
            .into_iter()
            .zip(queries)
            .map(|(neighbors, query)| {
                let distances = neighbors
                    .iter()
                    .map(|&id| distance.distance(query, snapshot.object(id)))
                    .collect();
                QueryResult {
                    neighbors,
                    distances,
                }
            })
            .collect())
    }
    fn try_insert(
        &self,
        object: Vec<f64>,
        distance: &dyn DistanceMeasure<Vec<f64>>,
    ) -> Result<MutationReport, QueryError> {
        let mut writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let id = writer.insert(object, distance);
        Ok(MutationReport {
            id,
            len: writer.len(),
            epoch: writer.epoch(),
        })
    }
    fn try_remove(&self, id: usize) -> Result<MutationReport, QueryError> {
        let mut writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        writer.try_remove(id)?;
        Ok(MutationReport {
            id,
            len: writer.len(),
            epoch: writer.epoch(),
        })
    }
}

/// The transport-neutral query facade: one of the index types (any
/// store precision) plus the exact distance measure and, for the static
/// kinds, the database of raw objects the refine step re-ranks against.
///
/// Every entry point is fallible — malformed requests come back as typed
/// [`QueryError`]s, so a serving thread never unwinds on user input.
pub struct QseApi {
    engine: Box<dyn Engine>,
    distance: Box<dyn DistanceMeasure<Vec<f64>>>,
    dim: usize,
}

/// Reject databases the refine step cannot serve: empty, ragged, or (when
/// an index is attached) the wrong length.
fn database_dim(database: &[Vec<f64>], index_len: Option<usize>) -> Result<usize, ServeError> {
    let first = match database.first() {
        Some(row) => row.len(),
        None => return Err(ServeError::BadDatabase("the database is empty".into())),
    };
    if let Some(row) = database.iter().find(|row| row.len() != first) {
        return Err(ServeError::BadDatabase(format!(
            "ragged database: found rows of dimensionality {first} and {}",
            row.len()
        )));
    }
    if let Some(expected) = index_len {
        if database.len() != expected {
            return Err(ServeError::BadDatabase(format!(
                "index holds {expected} rows but the database has {} objects",
                database.len()
            )));
        }
    }
    Ok(first)
}

/// Where [`QseApi::load`] reads snapshot bytes from.
#[derive(Debug, Clone, Copy)]
pub enum SnapshotSource<'a> {
    /// Bytes already in memory (a network fetch, an embedded asset).
    Bytes(&'a [u8]),
    /// Read the whole file into memory, then decode.
    File(&'a Path),
    /// Map the file and let the matching typed loader borrow its element
    /// bytes **zero-copy** out of the mapping — checksum-verification
    /// startup time instead of copy time, element memory left with the
    /// OS page cache. Files that cannot be mapped fall back to the
    /// copying [`SnapshotSource::File`] path with identical results, so
    /// callers never branch on mapping support.
    Mmap(&'a Path),
}

/// Everything [`QseApi::load`] needs besides the bytes: the exact
/// distance measure (always), and the database of raw objects that
/// static and routed snapshots refine against (dynamic snapshots carry
/// their own objects and ignore it).
pub struct LoadOptions {
    /// Raw objects for static/routed snapshots; `None` is fine for
    /// dynamic ones.
    pub database: Option<Vec<Vec<f64>>>,
    /// The exact distance the refine step re-ranks with.
    pub distance: Box<dyn DistanceMeasure<Vec<f64>>>,
}

impl LoadOptions {
    /// Options with no database attached.
    pub fn new(distance: Box<dyn DistanceMeasure<Vec<f64>>>) -> Self {
        Self {
            database: None,
            distance,
        }
    }

    /// Attach the database of raw objects (required for static and
    /// routed snapshots).
    #[must_use]
    pub fn with_database(mut self, database: Vec<Vec<f64>>) -> Self {
        self.database = Some(database);
        self
    }
}

/// `Ok(None)` when the snapshot header names a different kind or element
/// type (so the caller tries the next loader), `Err` on real corruption.
fn shape_or_fail<T>(result: Result<T, SnapshotError>) -> Result<Option<T>, SnapshotError> {
    match result {
        Ok(index) => Ok(Some(index)),
        Err(SnapshotError::KindMismatch { .. } | SnapshotError::BackendMismatch { .. }) => Ok(None),
        Err(e) => Err(e),
    }
}

impl QseApi {
    /// Serve a static [`FilterRefineIndex`] over `database`.
    ///
    /// # Errors
    /// [`ServeError::BadDatabase`] when `database` is empty, ragged, or
    /// not the collection the index was built over (length check).
    pub fn from_static<E: FilterElem>(
        index: FilterRefineIndex<Vec<f64>, E>,
        database: Vec<Vec<f64>>,
        distance: Box<dyn DistanceMeasure<Vec<f64>>>,
    ) -> Result<Self, ServeError> {
        let dim = database_dim(&database, Some(index.len()))?;
        Ok(Self {
            engine: Box::new(StaticEngine { index, database }),
            distance,
            dim,
        })
    }

    /// Serve a cluster-routed [`RoutedIndex`] over `database`.
    ///
    /// # Errors
    /// As [`Self::from_static`].
    pub fn from_routed<E: FilterElem>(
        index: RoutedIndex<Vec<f64>, E>,
        database: Vec<Vec<f64>>,
        distance: Box<dyn DistanceMeasure<Vec<f64>>>,
    ) -> Result<Self, ServeError> {
        let dim = database_dim(&database, Some(index.len()))?;
        Ok(Self {
            engine: Box::new(RoutedEngine { index, database }),
            distance,
            dim,
        })
    }

    /// Serve an online [`DynamicIndex`], which carries its own objects.
    ///
    /// # Errors
    /// [`ServeError::BadDatabase`] when the index is empty or its objects
    /// are ragged.
    pub fn from_dynamic<E: FilterElem>(
        index: DynamicIndex<Vec<f64>, E>,
        distance: Box<dyn DistanceMeasure<Vec<f64>>>,
    ) -> Result<Self, ServeError> {
        let dim = database_dim(index.objects(), None)?;
        Ok(Self {
            engine: Box::new(DynamicEngine { index }),
            distance,
            dim,
        })
    }

    /// Serve a [`ConcurrentIndex`], claiming its single write handle —
    /// the facade becomes the mutation path ([`Self::try_insert`] /
    /// [`Self::try_remove`]) while queries keep draining against epoch
    /// snapshots through a read handle. Reads never block on writes; a
    /// query admitted just before a remove shrank the index resolves as
    /// a typed [`QueryError`] against its own snapshot, never a panic.
    ///
    /// # Errors
    /// [`ServeError::BadDatabase`] when the index is empty (the query
    /// dimensionality would be unknowable) or its objects are ragged;
    /// [`ServeError::WriterClaimed`] when some other holder already owns
    /// the write handle.
    pub fn from_concurrent<E: FilterElem>(
        index: ConcurrentIndex<Vec<f64>, E>,
        distance: Box<dyn DistanceMeasure<Vec<f64>>>,
    ) -> Result<Self, ServeError> {
        let snapshot = index.snapshot();
        if snapshot.is_empty() {
            return Err(ServeError::BadDatabase("the database is empty".into()));
        }
        let dim = snapshot.object(0).len();
        for g in 1..snapshot.len() {
            let got = snapshot.object(g).len();
            if got != dim {
                return Err(ServeError::BadDatabase(format!(
                    "ragged database: found rows of dimensionality {dim} and {got}"
                )));
            }
        }
        let writer = index.try_writer().ok_or(ServeError::WriterClaimed)?;
        Ok(Self {
            engine: Box::new(ConcurrentEngine {
                reader: index.reader(),
                writer: Mutex::new(writer),
            }),
            distance,
            dim,
        })
    }

    /// **The** snapshot entry point: load a facade from any
    /// [`SnapshotSource`], sniffing the index kind (static / routed /
    /// dynamic) and store precision (`f64`/`f32`/`u8`) by attempting
    /// each typed loader — the header check rejects wrong shapes
    /// cheaply, so only the matching decoder runs.
    /// (`load_snapshot_bytes`, `load_snapshot` and `load_snapshot_mmap`
    /// survive as thin wrappers over this.)
    ///
    /// # Errors
    /// [`ServeError::Snapshot`] on corrupt or unknown bytes (plus
    /// [`SnapshotError::Io`] for an unreadable [`SnapshotSource::File`]),
    /// [`ServeError::DatabaseRequired`] for a static/routed snapshot
    /// without [`LoadOptions::database`], [`ServeError::BadDatabase`] as
    /// the constructors.
    pub fn load(source: SnapshotSource<'_>, options: LoadOptions) -> Result<Self, ServeError> {
        let LoadOptions { database, distance } = options;
        match source {
            SnapshotSource::Bytes(bytes) => Self::sniff_bytes(bytes, database, distance),
            SnapshotSource::File(path) => {
                let bytes = std::fs::read(path).map_err(SnapshotError::Io)?;
                Self::sniff_bytes(&bytes, database, distance)
            }
            SnapshotSource::Mmap(path) => Self::sniff_mapped(path, database, distance),
        }
    }

    /// [`Self::load`] from [`SnapshotSource::Bytes`] — the historical
    /// name, kept as a thin wrapper.
    ///
    /// # Errors
    /// As [`Self::load`].
    pub fn load_snapshot_bytes(
        bytes: &[u8],
        database: Option<Vec<Vec<f64>>>,
        distance: Box<dyn DistanceMeasure<Vec<f64>>>,
    ) -> Result<Self, ServeError> {
        Self::load(
            SnapshotSource::Bytes(bytes),
            LoadOptions { database, distance },
        )
    }

    fn sniff_bytes(
        bytes: &[u8],
        database: Option<Vec<Vec<f64>>>,
        distance: Box<dyn DistanceMeasure<Vec<f64>>>,
    ) -> Result<Self, ServeError> {
        fn need(db: Option<Vec<Vec<f64>>>) -> Result<Vec<Vec<f64>>, ServeError> {
            db.ok_or(ServeError::DatabaseRequired)
        }
        macro_rules! sniff {
            ($elem:ty) => {
                if let Some(ix) = shape_or_fail(
                    FilterRefineIndex::<Vec<f64>, $elem>::from_snapshot_bytes(bytes),
                )? {
                    return Self::from_static(ix, need(database)?, distance);
                }
                if let Some(ix) =
                    shape_or_fail(RoutedIndex::<Vec<f64>, $elem>::from_snapshot_bytes(bytes))?
                {
                    return Self::from_routed(ix, need(database)?, distance);
                }
                if let Some(ix) =
                    shape_or_fail(DynamicIndex::<Vec<f64>, $elem>::from_snapshot_bytes(bytes))?
                {
                    return Self::from_dynamic(ix, distance);
                }
            };
        }
        sniff!(u8);
        sniff!(f32);
        sniff!(f64);
        // Every kind × element attempt reported a shape mismatch — the
        // header is self-inconsistent (each tag individually valid but no
        // loader accepts the pair, which a well-formed snapshot cannot
        // produce). Surface the kind mismatch of the last attempt.
        match FilterRefineIndex::<Vec<f64>, f64>::from_snapshot_bytes(bytes) {
            Err(e) => Err(ServeError::Snapshot(e)),
            Ok(_) => unreachable!("loader succeeded on a retry of rejected bytes"),
        }
    }

    /// [`Self::load`] from [`SnapshotSource::File`] — the historical
    /// name, kept as a thin wrapper.
    ///
    /// # Errors
    /// As [`Self::load`].
    pub fn load_snapshot(
        path: impl AsRef<Path>,
        database: Option<Vec<Vec<f64>>>,
        distance: Box<dyn DistanceMeasure<Vec<f64>>>,
    ) -> Result<Self, ServeError> {
        Self::load(
            SnapshotSource::File(path.as_ref()),
            LoadOptions { database, distance },
        )
    }

    /// [`Self::load`] from [`SnapshotSource::Mmap`] — the historical
    /// name, kept as a thin wrapper.
    ///
    /// # Errors
    /// As [`Self::load`].
    pub fn load_snapshot_mmap(
        path: impl AsRef<Path>,
        database: Option<Vec<Vec<f64>>>,
        distance: Box<dyn DistanceMeasure<Vec<f64>>>,
    ) -> Result<Self, ServeError> {
        Self::load(
            SnapshotSource::Mmap(path.as_ref()),
            LoadOptions { database, distance },
        )
    }

    fn sniff_mapped(
        path: &Path,
        database: Option<Vec<Vec<f64>>>,
        distance: Box<dyn DistanceMeasure<Vec<f64>>>,
    ) -> Result<Self, ServeError> {
        let region = match MapRegion::map_path(path) {
            Ok(region) => region,
            Err(_) => return Self::load_snapshot(path, database, distance),
        };
        fn need(db: Option<Vec<Vec<f64>>>) -> Result<Vec<Vec<f64>>, ServeError> {
            db.ok_or(ServeError::DatabaseRequired)
        }
        macro_rules! sniff {
            ($elem:ty) => {
                if let Some(ix) = shape_or_fail(FilterRefineIndex::<Vec<f64>, $elem>::from_mapped(
                    Arc::clone(&region),
                ))? {
                    return Self::from_static(ix, need(database)?, distance);
                }
                if let Some(ix) = shape_or_fail(RoutedIndex::<Vec<f64>, $elem>::from_mapped(
                    Arc::clone(&region),
                ))? {
                    return Self::from_routed(ix, need(database)?, distance);
                }
                if let Some(ix) = shape_or_fail(DynamicIndex::<Vec<f64>, $elem>::from_mapped(
                    Arc::clone(&region),
                ))? {
                    return Self::from_dynamic(ix, distance);
                }
            };
        }
        sniff!(u8);
        sniff!(f32);
        sniff!(f64);
        // Same self-inconsistent-header situation as the owned sniffing
        // path: surface the typed error of a final attempt.
        match FilterRefineIndex::<Vec<f64>, f64>::from_mapped(region) {
            Err(e) => Err(ServeError::Snapshot(e)),
            Ok(_) => unreachable!("loader succeeded on a retry of rejected bytes"),
        }
    }

    /// The served index's identity card: backend kind, size,
    /// dimensionality, mutability, epoch — one struct for health
    /// reporting and the `GET /info` route, instead of a getter per
    /// field. ([`Self::len`] / [`Self::dim`] / [`Self::backend`] remain
    /// as shorthands for the hot fields.)
    pub fn info(&self) -> IndexInfo {
        IndexInfo {
            backend: self.engine.kind(),
            len: self.engine.len(),
            dim: self.dim,
            mutable: self.engine.mutable(),
            epoch: self.engine.epoch(),
        }
    }

    /// Number of served objects (`info().len`).
    pub fn len(&self) -> usize {
        self.engine.len()
    }

    /// Whether the facade serves zero objects — possible only for a
    /// churned-empty concurrent backend (construction rejects empty
    /// databases, but removes can drain one).
    pub fn is_empty(&self) -> bool {
        self.engine.len() == 0
    }

    /// Dimensionality every query must match (`info().dim`).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The backend kind (`info().backend`): `"static"`, `"routed"`,
    /// `"dynamic"` or `"concurrent"`.
    pub fn backend(&self) -> &'static str {
        self.engine.kind()
    }

    /// Insert one object online (concurrent backend only): embed, append
    /// under the shared encode grid, publish a new epoch — queries in
    /// flight keep their pinned snapshots.
    ///
    /// # Errors
    /// [`QueryError::DimMismatch`] when the object's dimensionality is
    /// wrong, [`QueryError::MutationUnsupported`] on immutable backends.
    pub fn try_insert(&self, object: Vec<f64>) -> Result<MutationReport, QueryError> {
        if object.len() != self.dim {
            return Err(QueryError::DimMismatch {
                expected: self.dim,
                got: object.len(),
            });
        }
        self.engine.try_insert(object, self.distance.as_ref())
    }

    /// Remove the object with global id `id` (concurrent backend only;
    /// swap-remove — the last id takes the removed slot, exactly as
    /// [`DynamicIndex::remove`]).
    ///
    /// # Errors
    /// [`QueryError::BadId`] when `id` is not live,
    /// [`QueryError::MutationUnsupported`] on immutable backends.
    pub fn try_remove(&self, id: usize) -> Result<MutationReport, QueryError> {
        self.engine.try_remove(id)
    }

    /// The request validation the admission layer runs before enqueueing:
    /// dimensionality, then `k`/`p` against the served collection — the
    /// same checks the index would make, surfaced early so a malformed
    /// request never occupies a batch slot.
    ///
    /// # Errors
    /// [`QueryError::DimMismatch`], [`QueryError::BadK`],
    /// [`QueryError::BadP`].
    pub fn validate(&self, query: &[f64], k: usize, p: usize) -> Result<(), QueryError> {
        if query.len() != self.dim {
            return Err(QueryError::DimMismatch {
                expected: self.dim,
                got: query.len(),
            });
        }
        if k < 1 {
            return Err(QueryError::BadK { k });
        }
        let max = self.engine.len();
        if p < k || p > max {
            return Err(QueryError::BadP { k, p, max });
        }
        Ok(())
    }

    /// Answer one query: the `k` nearest neighbors after refining the
    /// best `p` filter candidates, exactly as the wrapped index's
    /// `retrieve` would.
    ///
    /// # Errors
    /// As [`Self::validate`].
    pub fn try_query(&self, query: &[f64], k: usize, p: usize) -> Result<QueryResult, QueryError> {
        let batch = [query.to_vec()];
        let results = self.try_query_batch(&batch, k, p)?;
        Ok(results.into_iter().next().expect("one query, one result"))
    }

    /// Answer a batch of queries through the wrapped index's batched
    /// pipeline — per-query results are bit-identical to [`Self::try_query`]
    /// (the pipelines pin this at any thread count), which is what lets
    /// the admission batcher coalesce concurrent singles freely.
    ///
    /// # Errors
    /// As [`Self::validate`], plus [`QueryError::EmptyBatch`].
    pub fn try_query_batch(
        &self,
        queries: &[Vec<f64>],
        k: usize,
        p: usize,
    ) -> Result<Vec<QueryResult>, QueryError> {
        if queries.is_empty() {
            return Err(QueryError::EmptyBatch);
        }
        for query in queries {
            self.validate(query, k, p)?;
        }
        self.engine
            .try_query_batch(queries, self.distance.as_ref(), k, p)
    }
}
