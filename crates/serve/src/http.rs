//! A std-only HTTP/1.1 front end over the admission batcher.
//!
//! The build environment has no crates-registry access, so — like the
//! `crates/compat` shims — the server is hand-rolled on
//! [`std::net::TcpListener`]: an accept loop hands each connection to its
//! own thread, and every request a connection thread decodes is submitted
//! to the shared [`Batcher`], where concurrently arriving singles
//! coalesce into micro-batches for the tiled kernel.
//!
//! Routes:
//!
//! * `POST /query` — body `{"query": [...], "k": K, "p": P}`; answers
//!   `200` with `{"neighbors": [...], "distances": [...]}` or `400` with
//!   the typed error shape (see [`crate::wire`]).
//! * `GET /healthz` — `200` with backend kind, object count and
//!   dimensionality.
//! * `GET /info` — the full [`IndexInfo`](crate::api::IndexInfo) card
//!   (backend, len, dim, mutability, epoch).
//! * `POST /insert` — body `{"object": [...]}`; appends to a concurrent
//!   backend and answers `{"id": ..., "len": ..., "epoch": ...}`. Reads
//!   keep draining against their pinned epoch snapshots while the write
//!   applies — mutations go straight to the facade, never through the
//!   read batcher's admission queue.
//! * `POST /remove` — body `{"id": N}`; swap-removes the live id, same
//!   response shape. Both mutation routes answer
//!   `{"error": {"kind": "mutation_unsupported", ...}}` on the immutable
//!   backends and `"bad_id"` for a stale id.
//!
//! Whatever a client sends — garbage bytes, oversized bodies, malformed
//! JSON, out-of-range parameters — the connection answers with a typed
//! error (or drops a connection that cannot even carry a response) and
//! the process keeps serving. Request handling is additionally wrapped in
//! `catch_unwind`, so even a bug reached by a hostile payload answers
//! `500` instead of killing the connection thread.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::api::QseApi;
use crate::batcher::{Batcher, BatcherConfig, BatcherStats, RequestError};
use crate::wire;

/// Server knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port `0` picks an ephemeral port (the bound address
    /// is available from [`QseServer::addr`]).
    pub addr: String,
    /// Admission-batching knobs, [`BatcherConfig::latency_budget`] being
    /// the one that trades per-request latency for batch locality.
    pub batcher: BatcherConfig,
    /// Per-connection socket read timeout; a stalled or abandoned
    /// connection frees its thread after this long.
    pub read_timeout: Duration,
    /// Largest accepted request body, in bytes.
    pub max_body: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            batcher: BatcherConfig::default(),
            read_timeout: Duration::from_secs(10),
            max_body: 1 << 20,
        }
    }
}

/// The running server: an accept loop feeding per-connection threads,
/// all of them submitting into one shared [`Batcher`]. Dropping the
/// handle shuts the server down and joins the accept loop.
pub struct QseServer {
    addr: SocketAddr,
    /// Shared with the accept thread so [`Self::shutdown`] can unblock a
    /// thread parked in `accept()` by shutting the socket down directly
    /// (see [`wake::unblock_accept`]).
    listener: Arc<TcpListener>,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    batcher: Arc<Batcher>,
}

impl QseServer {
    /// Bind `config.addr` and start serving `api`.
    ///
    /// # Errors
    /// Any [`std::io::Error`] from binding the listener.
    pub fn start(api: QseApi, config: ServeConfig) -> std::io::Result<Self> {
        let listener = Arc::new(TcpListener::bind(&config.addr)?);
        let addr = listener.local_addr()?;
        let batcher = Arc::new(Batcher::start(Arc::new(api), config.batcher));
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept = {
            let listener = Arc::clone(&listener);
            let batcher = Arc::clone(&batcher);
            let shutdown = Arc::clone(&shutdown);
            let read_timeout = config.read_timeout;
            let max_body = config.max_body;
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let batcher = Arc::clone(&batcher);
                    std::thread::spawn(move || {
                        let _ = stream.set_read_timeout(Some(read_timeout));
                        let _ = stream.set_nodelay(true);
                        serve_connection(&batcher, stream, max_body);
                    });
                }
            })
        };
        Ok(Self {
            addr,
            listener,
            shutdown,
            accept: Some(accept),
            batcher,
        })
    }

    /// The bound address (resolves port `0` binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served facade.
    pub fn api(&self) -> &Arc<QseApi> {
        self.batcher.api()
    }

    /// Admission-batching counters, for the bench suite and health
    /// reporting.
    pub fn batcher_stats(&self) -> BatcherStats {
        self.batcher.stats()
    }

    /// Stop accepting, unblock the accept loop and join it. Idempotent;
    /// also run by `Drop`. Prompt by construction: the accept thread is
    /// unblocked directly (see [`wake::unblock_accept`]), not by waiting
    /// for the next client connection to arrive.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept.take() {
            wake::unblock_accept(&self.listener);
            let _ = handle.join();
        }
    }
}

impl Drop for QseServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Unblocking a thread parked in `accept()`.
///
/// On unix the listening socket is shut down directly (`shutdown(2)` on
/// its fd, the same libc-free FFI pattern as `qse_distance`'s mmap
/// loader): every pending and future `accept` on it fails immediately,
/// whatever address it was bound to. Elsewhere the historical self-
/// connect runs — hardened to dial loopback when the bind address is
/// unspecified (`0.0.0.0` is not connectable on every platform) and to
/// give up after a short timeout instead of wedging `shutdown()` behind
/// an unreachable address.
#[cfg(unix)]
mod wake {
    use std::net::TcpListener;
    use std::os::unix::io::AsRawFd;

    mod ffi {
        use std::os::raw::c_int;
        pub const SHUT_RDWR: c_int = 2;
        extern "C" {
            pub fn shutdown(fd: c_int, how: c_int) -> c_int;
        }
    }

    pub fn unblock_accept(listener: &TcpListener) {
        // The fd stays owned (and open) for the listener's lifetime; the
        // shared Arc guarantees it outlives this call, so the fd cannot
        // have been reused. Failure is fine — the accept loop then just
        // waits for the next connection, the historical behavior.
        unsafe { ffi::shutdown(listener.as_raw_fd(), ffi::SHUT_RDWR) };
    }
}

#[cfg(not(unix))]
mod wake {
    use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
    use std::time::Duration;

    pub fn unblock_accept(listener: &TcpListener) {
        let Ok(mut addr) = listener.local_addr() else {
            return;
        };
        if addr.ip().is_unspecified() {
            let loopback = match addr {
                SocketAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
            };
            addr.set_ip(loopback);
        }
        let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(250));
    }
}

/// One decoded request head.
struct RequestHead {
    method: String,
    path: String,
    content_length: Option<usize>,
    close: bool,
}

/// What reading a request head can yield.
enum ReadHead {
    /// A parseable head (the body, if any, is still on the wire).
    Head(RequestHead),
    /// Clean end of stream before any bytes — the client is done.
    Eof,
    /// Unparseable bytes; answer 400 and drop the connection (the wire
    /// position is unknown, so it cannot carry another request).
    Malformed(&'static str),
}

const MAX_LINE: usize = 8 << 10;
const MAX_HEADERS: usize = 64;

fn serve_connection(batcher: &Batcher, stream: TcpStream, max_body: usize) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = write_half;
    loop {
        let head = match read_head(&mut reader) {
            ReadHead::Head(head) => head,
            ReadHead::Eof => return,
            ReadHead::Malformed(reason) => {
                let body = wire::error_json("bad_request", reason);
                let _ = write_response(&mut writer, 400, "Bad Request", &body, true);
                return;
            }
        };
        // Read (and bound) the body before dispatching, so the wire is
        // positioned at the next request whatever the handler answers.
        let body = match head.content_length {
            Some(len) if len > max_body => {
                let body = wire::error_json("bad_request", "request body too large");
                let _ = write_response(&mut writer, 413, "Payload Too Large", &body, true);
                return;
            }
            Some(len) => {
                let mut buf = vec![0u8; len];
                if reader.read_exact(&mut buf).is_err() {
                    return;
                }
                match String::from_utf8(buf) {
                    Ok(text) => Some(text),
                    Err(_) => {
                        let body = wire::error_json("bad_request", "request body is not UTF-8");
                        let _ = write_response(&mut writer, 400, "Bad Request", &body, true);
                        return;
                    }
                }
            }
            None => None,
        };
        // A handler bug reached by a hostile payload answers 500; the
        // connection (and the process) keeps serving.
        let (status, reason, response) = catch_unwind(AssertUnwindSafe(|| {
            dispatch(batcher, &head.method, &head.path, body.as_deref())
        }))
        .unwrap_or_else(|_| {
            (
                500,
                "Internal Server Error",
                wire::error_json("internal", "request handler panicked"),
            )
        });
        if write_response(&mut writer, status, reason, &response, head.close).is_err() {
            return;
        }
        if head.close {
            return;
        }
    }
}

fn dispatch(
    batcher: &Batcher,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> (u16, &'static str, String) {
    match (method, path) {
        ("GET", "/healthz") => {
            let api = batcher.api();
            let info = api.info();
            (
                200,
                "OK",
                wire::health_json(info.backend, info.len, info.dim),
            )
        }
        ("GET", "/info") => (200, "OK", wire::info_json(&batcher.api().info())),
        ("POST", "/insert") => {
            // Mutations bypass the batcher: they serialize on the
            // facade's write handle, and the admission queue keeps
            // draining reads against pinned snapshots meanwhile.
            let Some(body) = body else {
                return (
                    411,
                    "Length Required",
                    wire::error_json("bad_request", "POST /insert needs a Content-Length body"),
                );
            };
            let object = match wire::parse_insert_request(body) {
                Ok(object) => object,
                Err(reason) => {
                    return (400, "Bad Request", wire::error_json("bad_request", &reason))
                }
            };
            match batcher.api().try_insert(object) {
                Ok(report) => (200, "OK", wire::mutation_json(&report)),
                Err(e) => (
                    400,
                    "Bad Request",
                    wire::error_json(wire::query_error_kind(&e), &e.to_string()),
                ),
            }
        }
        ("POST", "/remove") => {
            let Some(body) = body else {
                return (
                    411,
                    "Length Required",
                    wire::error_json("bad_request", "POST /remove needs a Content-Length body"),
                );
            };
            let id = match wire::parse_remove_request(body) {
                Ok(id) => id,
                Err(reason) => {
                    return (400, "Bad Request", wire::error_json("bad_request", &reason))
                }
            };
            match batcher.api().try_remove(id) {
                Ok(report) => (200, "OK", wire::mutation_json(&report)),
                Err(e) => (
                    400,
                    "Bad Request",
                    wire::error_json(wire::query_error_kind(&e), &e.to_string()),
                ),
            }
        }
        ("POST", "/query") => {
            let Some(body) = body else {
                return (
                    411,
                    "Length Required",
                    wire::error_json("bad_request", "POST /query needs a Content-Length body"),
                );
            };
            let request = match wire::parse_query_request(body) {
                Ok(request) => request,
                Err(reason) => {
                    return (400, "Bad Request", wire::error_json("bad_request", &reason))
                }
            };
            match batcher.query(request.query, request.k, request.p) {
                Ok(result) => (200, "OK", wire::result_json(&result)),
                Err(e @ RequestError::Query(_)) => (
                    400,
                    "Bad Request",
                    wire::error_json(wire::request_error_kind(&e), &e.to_string()),
                ),
                Err(e @ RequestError::Internal(_)) => (
                    500,
                    "Internal Server Error",
                    wire::error_json(wire::request_error_kind(&e), &e.to_string()),
                ),
            }
        }
        _ => (
            404,
            "Not Found",
            wire::error_json("not_found", "no such route"),
        ),
    }
}

fn read_head(reader: &mut BufReader<TcpStream>) -> ReadHead {
    let line = match read_line(reader) {
        Ok(Some(line)) => line,
        Ok(None) => return ReadHead::Eof,
        Err(reason) => return ReadHead::Malformed(reason),
    };
    if line.is_empty() {
        return ReadHead::Malformed("empty request line");
    }
    let mut parts = line.split(' ');
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return ReadHead::Malformed("request line is not `METHOD PATH VERSION`");
    };
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return ReadHead::Malformed("request line is not HTTP/1.x");
    }
    let http10 = version == "HTTP/1.0";
    let mut content_length = None;
    let mut close = http10;
    for _ in 0..MAX_HEADERS {
        let header = match read_line(reader) {
            Ok(Some(line)) => line,
            Ok(None) => return ReadHead::Malformed("connection closed inside headers"),
            Err(reason) => return ReadHead::Malformed(reason),
        };
        if header.is_empty() {
            return ReadHead::Head(RequestHead {
                method: method.to_string(),
                path: path.to_string(),
                content_length,
                close,
            });
        }
        let Some((name, value)) = header.split_once(':') else {
            return ReadHead::Malformed("header line has no colon");
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        if name == "content-length" {
            match value.parse::<usize>() {
                Ok(len) => content_length = Some(len),
                Err(_) => return ReadHead::Malformed("unparseable Content-Length"),
            }
        } else if name == "connection" {
            let value = value.to_ascii_lowercase();
            if value == "close" {
                close = true;
            } else if value == "keep-alive" {
                close = false;
            }
        }
    }
    ReadHead::Malformed("too many header lines")
}

/// One CRLF- (or bare-LF-) terminated line, without its terminator.
/// `Ok(None)` is clean EOF before any byte; a line longer than
/// [`MAX_LINE`] or EOF mid-line is malformed.
fn read_line(reader: &mut BufReader<TcpStream>) -> Result<Option<String>, &'static str> {
    let mut buf = Vec::new();
    let mut limited = reader.by_ref().take((MAX_LINE + 1) as u64);
    match limited.read_until(b'\n', &mut buf) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(_) => return Err("read failed"),
    }
    if buf.last() != Some(&b'\n') {
        return Err(if buf.len() > MAX_LINE {
            "line too long"
        } else {
            "connection closed mid-line"
        });
    }
    buf.pop();
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| "line is not UTF-8")
}

fn write_response(
    writer: &mut TcpStream,
    status: u16,
    reason: &str,
    body: &str,
    close: bool,
) -> std::io::Result<()> {
    let connection = if close { "close" } else { "keep-alive" };
    write!(
        writer,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n{body}",
        body.len()
    )?;
    writer.flush()
}
