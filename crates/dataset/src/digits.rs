//! Synthetic handwritten digits.
//!
//! The paper's first dataset is MNIST — 60,000 database images and 10,000
//! query images of isolated handwritten digits — compared with the Shape
//! Context Distance (Section 9). We cannot ship MNIST, so this module builds
//! the closest synthetic equivalent that exercises the same code path:
//!
//! * each digit class 0–9 has a hand-designed *stroke template* (a set of
//!   polylines / arcs in a normalized box, similar to how fonts and
//!   handwriting models describe glyphs),
//! * a sample is produced by jittering the template (global affine: slant,
//!   rotation, anisotropic scaling; per-stroke deformation; per-point noise)
//!   and re-sampling a fixed number of points along the strokes,
//! * the result is a [`PointSet`] labeled with its digit class, which is
//!   exactly the representation the Shape Context Distance consumes (the
//!   original method samples ~100 edge points from each MNIST image).
//!
//! What matters for reproducing the paper's retrieval results is that the
//! workload has (a) an expensive non-metric exact distance and (b) strong
//! cluster structure (10 classes) with large intra-class variation. Both
//! hold here; see DESIGN.md §4 for the substitution argument.

use qse_distance::shape_context::{Point2, PointSet};
use rand::Rng;

/// Configuration of the synthetic digit generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DigitGeneratorConfig {
    /// Number of sample points per generated shape (the paper's shape
    /// context uses 100 per image; 32–64 keeps the `O(n³)` Hungarian matching
    /// affordable at reproduction scale).
    pub points_per_shape: usize,
    /// Standard deviation of the per-point Gaussian jitter, in units of the
    /// unit digit box.
    pub point_noise: f64,
    /// Maximum slant (shear) applied to a sample, in radians.
    pub max_slant: f64,
    /// Maximum rotation applied to a sample, in radians.
    pub max_rotation: f64,
    /// Maximum relative deviation of the per-axis scale (0.2 = ±20%).
    pub max_scale_jitter: f64,
    /// Amplitude of the smooth per-stroke deformation field.
    pub stroke_warp: f64,
}

impl Default for DigitGeneratorConfig {
    fn default() -> Self {
        Self {
            points_per_shape: 32,
            point_noise: 0.015,
            max_slant: 0.35,
            max_rotation: 0.12,
            max_scale_jitter: 0.18,
            stroke_warp: 0.06,
        }
    }
}

/// A polyline stroke in the unit box `[0,1] × [0,1]` (y grows upward).
#[derive(Debug, Clone)]
struct Stroke {
    points: Vec<(f64, f64)>,
}

impl Stroke {
    fn line(points: &[(f64, f64)]) -> Self {
        Self {
            points: points.to_vec(),
        }
    }

    /// An arc of an ellipse centred at `(cx, cy)` with radii `(rx, ry)` from
    /// angle `a0` to `a1` (radians), sampled with `n` points.
    fn arc(cx: f64, cy: f64, rx: f64, ry: f64, a0: f64, a1: f64, n: usize) -> Self {
        let points = (0..n)
            .map(|i| {
                let t = a0 + (a1 - a0) * i as f64 / (n - 1) as f64;
                (cx + rx * t.cos(), cy + ry * t.sin())
            })
            .collect();
        Self { points }
    }

    fn length(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| {
                let dx = w[1].0 - w[0].0;
                let dy = w[1].1 - w[0].1;
                (dx * dx + dy * dy).sqrt()
            })
            .sum()
    }

    /// Point at arc-length parameter `t ∈ [0, 1]` along the stroke.
    fn at(&self, t: f64) -> (f64, f64) {
        let total = self.length();
        if total <= 0.0 {
            return self.points[0];
        }
        let mut remaining = t.clamp(0.0, 1.0) * total;
        for w in self.points.windows(2) {
            let dx = w[1].0 - w[0].0;
            let dy = w[1].1 - w[0].1;
            let seg = (dx * dx + dy * dy).sqrt();
            if remaining <= seg || seg == 0.0 {
                let f = if seg == 0.0 { 0.0 } else { remaining / seg };
                return (w[0].0 + f * dx, w[0].1 + f * dy);
            }
            remaining -= seg;
        }
        *self.points.last().expect("strokes are non-empty")
    }
}

/// The stroke template of one digit class.
#[derive(Debug, Clone)]
struct DigitTemplate {
    strokes: Vec<Stroke>,
}

impl DigitTemplate {
    fn total_length(&self) -> f64 {
        self.strokes.iter().map(Stroke::length).sum()
    }
}

use std::f64::consts::PI;

fn templates() -> Vec<DigitTemplate> {
    let arc = Stroke::arc;
    vec![
        // 0: a tall ellipse.
        DigitTemplate {
            strokes: vec![arc(0.5, 0.5, 0.32, 0.45, 0.0, 2.0 * PI, 40)],
        },
        // 1: a vertical bar with a small flag.
        DigitTemplate {
            strokes: vec![
                Stroke::line(&[(0.55, 0.95), (0.55, 0.05)]),
                Stroke::line(&[(0.38, 0.78), (0.55, 0.95)]),
            ],
        },
        // 2: top arc, diagonal, bottom bar.
        DigitTemplate {
            strokes: vec![
                arc(0.5, 0.72, 0.3, 0.23, PI, 0.0, 16),
                Stroke::line(&[(0.8, 0.72), (0.72, 0.45), (0.3, 0.1)]),
                Stroke::line(&[(0.3, 0.1), (0.8, 0.1)]),
            ],
        },
        // 3: two right-facing arcs.
        DigitTemplate {
            strokes: vec![
                arc(0.45, 0.72, 0.28, 0.22, 0.75 * PI, -0.4 * PI, 16),
                arc(0.45, 0.28, 0.32, 0.26, 0.4 * PI, -0.75 * PI, 16),
            ],
        },
        // 4: two straight strokes and the vertical.
        DigitTemplate {
            strokes: vec![
                Stroke::line(&[(0.62, 0.95), (0.2, 0.38), (0.82, 0.38)]),
                Stroke::line(&[(0.62, 0.6), (0.62, 0.05)]),
            ],
        },
        // 5: top bar, left vertical, lower bowl.
        DigitTemplate {
            strokes: vec![
                Stroke::line(&[(0.75, 0.92), (0.3, 0.92), (0.3, 0.55)]),
                arc(0.48, 0.32, 0.3, 0.28, 0.55 * PI, -0.85 * PI, 20),
            ],
        },
        // 6: a descending curve into a lower loop.
        DigitTemplate {
            strokes: vec![
                Stroke::line(&[(0.66, 0.93), (0.38, 0.55), (0.33, 0.35)]),
                arc(0.5, 0.3, 0.22, 0.24, 0.0, 2.0 * PI, 28),
            ],
        },
        // 7: top bar and a long diagonal.
        DigitTemplate {
            strokes: vec![Stroke::line(&[(0.2, 0.92), (0.8, 0.92), (0.42, 0.05)])],
        },
        // 8: two stacked loops.
        DigitTemplate {
            strokes: vec![
                arc(0.5, 0.7, 0.24, 0.21, 0.0, 2.0 * PI, 24),
                arc(0.5, 0.27, 0.28, 0.24, 0.0, 2.0 * PI, 26),
            ],
        },
        // 9: an upper loop with a tail.
        DigitTemplate {
            strokes: vec![
                arc(0.5, 0.68, 0.24, 0.23, 0.0, 2.0 * PI, 28),
                Stroke::line(&[(0.73, 0.62), (0.62, 0.28), (0.5, 0.05)]),
            ],
        },
    ]
}

/// Generator of synthetic handwritten-digit point sets.
#[derive(Debug, Clone)]
pub struct DigitGenerator {
    config: DigitGeneratorConfig,
    templates: Vec<DigitTemplate>,
}

impl Default for DigitGenerator {
    fn default() -> Self {
        Self::new(DigitGeneratorConfig::default())
    }
}

impl DigitGenerator {
    /// Create a generator with the given configuration.
    ///
    /// # Panics
    /// Panics if `points_per_shape < 4`.
    pub fn new(config: DigitGeneratorConfig) -> Self {
        assert!(
            config.points_per_shape >= 4,
            "need at least 4 points per shape"
        );
        Self {
            config,
            templates: templates(),
        }
    }

    /// The generator configuration.
    pub fn config(&self) -> &DigitGeneratorConfig {
        &self.config
    }

    /// Generate one sample of digit `digit` (0–9).
    ///
    /// # Panics
    /// Panics if `digit > 9`.
    pub fn sample<R: Rng>(&self, digit: u8, rng: &mut R) -> PointSet {
        assert!(digit <= 9, "digit must be in 0..=9, got {digit}");
        let cfg = &self.config;
        let template = &self.templates[digit as usize];

        // Global affine jitter parameters.
        let slant = rng.gen_range(-cfg.max_slant..=cfg.max_slant);
        let rot = rng.gen_range(-cfg.max_rotation..=cfg.max_rotation);
        let sx = 1.0 + rng.gen_range(-cfg.max_scale_jitter..=cfg.max_scale_jitter);
        let sy = 1.0 + rng.gen_range(-cfg.max_scale_jitter..=cfg.max_scale_jitter);
        let (sin_r, cos_r) = rot.sin_cos();
        // Smooth stroke deformation: a low-frequency sinusoidal displacement
        // field with random phase and direction.
        let warp_amp = cfg.stroke_warp;
        let phase_x = rng.gen_range(0.0..(2.0 * PI));
        let phase_y = rng.gen_range(0.0..(2.0 * PI));
        let freq_x = rng.gen_range(1.0..3.0);
        let freq_y = rng.gen_range(1.0..3.0);

        // Distribute the sample points over the strokes proportionally to
        // stroke length.
        let total_len = template.total_length();
        let mut points = Vec::with_capacity(cfg.points_per_shape);
        let stroke_count = template.strokes.len();
        let mut allocated = 0usize;
        for (si, stroke) in template.strokes.iter().enumerate() {
            let share = if si + 1 == stroke_count {
                cfg.points_per_shape - allocated
            } else {
                ((stroke.length() / total_len) * cfg.points_per_shape as f64).round() as usize
            };
            let share = share.max(2).min(cfg.points_per_shape - allocated);
            allocated += share;
            for i in 0..share {
                let t = if share == 1 {
                    0.5
                } else {
                    i as f64 / (share - 1) as f64
                };
                let (mut x, mut y) = stroke.at(t);
                // Smooth deformation.
                x += warp_amp * (freq_x * y * 2.0 * PI + phase_x).sin();
                y += warp_amp * (freq_y * x * 2.0 * PI + phase_y).sin();
                // Center, apply slant / rotation / scale, re-center.
                let (cx, cy) = (x - 0.5, y - 0.5);
                let xs = cx + slant * cy;
                let (xr, yr) = (cos_r * xs - sin_r * cy, sin_r * xs + cos_r * cy);
                let (xf, yf) = (xr * sx + 0.5, yr * sy + 0.5);
                // Per-point noise.
                let nx = gaussian(rng) * cfg.point_noise;
                let ny = gaussian(rng) * cfg.point_noise;
                points.push(Point2::new(xf + nx, yf + ny));
            }
            if allocated >= cfg.points_per_shape {
                break;
            }
        }
        PointSet::with_label(points, digit)
    }

    /// Generate `count` samples with labels cycling uniformly over 0–9.
    pub fn generate<R: Rng>(&self, count: usize, rng: &mut R) -> Vec<PointSet> {
        (0..count)
            .map(|i| self.sample((i % 10) as u8, rng))
            .collect()
    }

    /// Generate `count` samples with uniformly random labels.
    pub fn generate_random_labels<R: Rng>(&self, count: usize, rng: &mut R) -> Vec<PointSet> {
        (0..count)
            .map(|_| self.sample(rng.gen_range(0..10u8), rng))
            .collect()
    }
}

/// Standard normal sample via Box–Muller (avoids an extra `rand_distr`
/// dependency).
fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qse_distance::{DistanceMeasure, ShapeContextDistance};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sample_has_requested_point_count_and_label() {
        let g = DigitGenerator::default();
        let mut rng = StdRng::seed_from_u64(1);
        for digit in 0..10u8 {
            let s = g.sample(digit, &mut rng);
            assert_eq!(s.len(), g.config().points_per_shape);
            assert_eq!(s.label, Some(digit));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let g = DigitGenerator::default();
        let a = g.generate(20, &mut StdRng::seed_from_u64(42));
        let b = g.generate(20, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    fn points_stay_in_a_reasonable_box() {
        let g = DigitGenerator::default();
        let mut rng = StdRng::seed_from_u64(9);
        for s in g.generate(50, &mut rng) {
            for p in s.points() {
                assert!(p.x > -0.6 && p.x < 1.6, "x out of range: {}", p.x);
                assert!(p.y > -0.6 && p.y < 1.6, "y out of range: {}", p.y);
            }
        }
    }

    #[test]
    fn cycled_labels_are_uniform() {
        let g = DigitGenerator::default();
        let mut rng = StdRng::seed_from_u64(3);
        let samples = g.generate(100, &mut rng);
        let mut counts = [0usize; 10];
        for s in &samples {
            counts[s.label.unwrap() as usize] += 1;
        }
        assert!(counts.iter().all(|c| *c == 10));
    }

    #[test]
    fn intra_class_distance_is_smaller_than_inter_class_on_average() {
        // The property the whole MNIST experiment relies on: samples of the
        // same digit are closer (under shape context) than samples of
        // different digits, on average.
        let g = DigitGenerator::default();
        let mut rng = StdRng::seed_from_u64(17);
        let sc = ShapeContextDistance::new();
        let mut intra = Vec::new();
        let mut inter = Vec::new();
        let per_class = 3;
        let classes: Vec<Vec<PointSet>> = (0..5u8)
            .map(|d| (0..per_class).map(|_| g.sample(d, &mut rng)).collect())
            .collect();
        for (ci, class) in classes.iter().enumerate() {
            for i in 0..class.len() {
                for j in (i + 1)..class.len() {
                    intra.push(sc.distance(&class[i], &class[j]));
                }
                for other in classes.iter().skip(ci + 1) {
                    inter.push(sc.distance(&class[i], &other[0]));
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&intra) < mean(&inter),
            "intra-class mean {} should be below inter-class mean {}",
            mean(&intra),
            mean(&inter)
        );
    }

    #[test]
    #[should_panic(expected = "digit must be in 0..=9")]
    fn rejects_out_of_range_digit() {
        let g = DigitGenerator::default();
        let _ = g.sample(10, &mut StdRng::seed_from_u64(0));
    }

    #[test]
    #[should_panic(expected = "at least 4 points")]
    fn rejects_too_few_points() {
        let _ = DigitGenerator::new(DigitGeneratorConfig {
            points_per_shape: 2,
            ..Default::default()
        });
    }
}
