//! # qse-dataset
//!
//! Synthetic workload generators for the reproduction of *Query-Sensitive
//! Embeddings* (SIGMOD 2005).
//!
//! The paper evaluates on two datasets we cannot redistribute (the MNIST
//! image database under the Shape Context Distance, and the time-series
//! database of Vlachos et al. under constrained DTW) plus a small 2-D toy
//! example (Figure 1). This crate provides faithful synthetic substitutes:
//!
//! * [`digits`] — a generative model of handwritten digits: per-digit stroke
//!   templates sampled into 2-D point sets with affine jitter, stroke
//!   deformation and point noise. Consumed through
//!   [`qse_distance::ShapeContextDistance`], exactly like MNIST images are in
//!   the paper.
//! * [`timeseries`] — the expansion recipe of the paper's time-series
//!   database: a library of seed patterns grown into a large collection by
//!   adding *"small variations in the original patterns as well as additions
//!   of random compression and decompression in time"*.
//! * [`toy2d`] — the unit-square toy configuration of Figure 1 (20 database
//!   points, 3 of them reference objects, 10 queries).
//! * [`gaussian`] — deterministic mixture-of-Gaussians collections with
//!   exact generative ground truth (component labels and centers): the
//!   clustered high-dimensional stress workload the cluster-routed
//!   retrieval layer is measured against.
//! * [`dataset`] — the [`dataset::Dataset`] container splitting objects into
//!   database / queries, and samplers for the training subsets `Xtr` and `C`
//!   used by the BoostMap-style training algorithms (Section 7).
//!
//! All generators are deterministic given a seed.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dataset;
pub mod digits;
pub mod gaussian;
pub mod timeseries;
pub mod toy2d;

pub use dataset::{Dataset, TrainingPools};
pub use digits::{DigitGenerator, DigitGeneratorConfig};
pub use gaussian::{GaussianMixture, GaussianMixtureConfig};
pub use timeseries::{TimeSeriesGenerator, TimeSeriesGeneratorConfig};
pub use toy2d::{toy_configuration, ToyConfiguration};
