//! The 2-D toy configuration of Figure 1.
//!
//! Figure 1 of the paper motivates query-sensitive distance measures with a
//! toy example: the space is the unit square under the Euclidean distance,
//! there are *"twenty database objects, three of which (indicated as r1, r2,
//! r3) are selected as reference objects"* and *"ten query objects, three of
//! which are marked as q1, q2, q3"*. The three reference objects define a
//! 3-D embedding compared with L1; the figure then reports the fraction of
//! the 3,800 triples `(q, a, b)` on which the global embedding and each 1-D
//! embedding fail, overall and restricted to queries near each reference
//! object.
//!
//! The paper does not list the exact coordinates, so [`toy_configuration`]
//! generates a layout with the same structure (uniform points in the unit
//! square, each marked query placed close to its designated reference
//! object) from a fixed seed; the experiment driver then reproduces the
//! qualitative result: near each `r_i`, the single coordinate `F^{r_i}` beats
//! the full 3-D embedding, while globally the 3-D embedding is best.

use qse_distance::traits::{DistanceMeasure, MetricProperties};
use rand::Rng;

/// A point of the toy 2-D space.
pub type Point = [f64; 2];

/// Euclidean distance on the toy 2-D space.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Euclidean2D;

impl DistanceMeasure<Point> for Euclidean2D {
    fn distance(&self, a: &Point, b: &Point) -> f64 {
        let dx = a[0] - b[0];
        let dy = a[1] - b[1];
        (dx * dx + dy * dy).sqrt()
    }
    fn properties(&self) -> MetricProperties {
        MetricProperties::Metric
    }
    fn name(&self) -> &'static str {
        "euclidean-2d"
    }
}

/// The Figure 1 toy configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ToyConfiguration {
    /// The twenty database points.
    pub database: Vec<Point>,
    /// Indices (into `database`) of the three reference objects r1, r2, r3.
    pub reference_indices: [usize; 3],
    /// The ten query points.
    pub queries: Vec<Point>,
    /// Indices (into `queries`) of the three marked queries q1, q2, q3, each
    /// of which lies close to the same-numbered reference object.
    pub marked_query_indices: [usize; 3],
}

impl ToyConfiguration {
    /// The three reference points themselves.
    pub fn references(&self) -> [Point; 3] {
        [
            self.database[self.reference_indices[0]],
            self.database[self.reference_indices[1]],
            self.database[self.reference_indices[2]],
        ]
    }

    /// Total number of `(q, a, b)` triples with `q` a query and `{a, b}` an
    /// unordered pair of distinct database objects — 3,800 for the paper's
    /// 10 queries and 20 database points.
    pub fn triple_count(&self) -> usize {
        let n = self.database.len();
        self.queries.len() * n * (n - 1) / 2
    }
}

/// Generate a Figure 1-style configuration.
///
/// * `database_size` database points and `query_count` queries are drawn
///   uniformly from the unit square,
/// * three well-separated database points are chosen as reference objects,
/// * the first three queries are repositioned to lie within `closeness` of
///   r1, r2 and r3 respectively (these are the marked queries q1, q2, q3).
pub fn toy_configuration<R: Rng>(
    database_size: usize,
    query_count: usize,
    closeness: f64,
    rng: &mut R,
) -> ToyConfiguration {
    assert!(database_size >= 4, "need at least 4 database points");
    assert!(query_count >= 3, "need at least 3 queries");
    assert!(
        closeness > 0.0 && closeness < 0.5,
        "closeness must be in (0, 0.5)"
    );

    let database: Vec<Point> = (0..database_size)
        .map(|_| [rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)])
        .collect();

    // Pick three mutually far-apart database points as reference objects via
    // a greedy max-min sweep (the figure's r1, r2, r3 are spread out).
    let d = Euclidean2D;
    let first = 0usize;
    let second = (0..database_size)
        .max_by(|&a, &b| {
            d.distance(&database[first], &database[a])
                .total_cmp(&d.distance(&database[first], &database[b]))
        })
        .expect("non-empty database");
    let third = (0..database_size)
        .filter(|&i| i != first && i != second)
        .max_by(|&a, &b| {
            let da = d
                .distance(&database[first], &database[a])
                .min(d.distance(&database[second], &database[a]));
            let db = d
                .distance(&database[first], &database[b])
                .min(d.distance(&database[second], &database[b]));
            da.total_cmp(&db)
        })
        .expect("at least four database points");
    let reference_indices = [first, second, third];

    let mut queries: Vec<Point> = (0..query_count)
        .map(|_| [rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)])
        .collect();
    // Reposition the first three queries next to their reference objects.
    for (qi, &ri) in reference_indices.iter().enumerate() {
        let r = database[ri];
        let angle = rng.gen_range(0.0..(2.0 * std::f64::consts::PI));
        let radius = rng.gen_range(0.0..closeness);
        queries[qi] = [
            (r[0] + radius * angle.cos()).clamp(0.0, 1.0),
            (r[1] + radius * angle.sin()).clamp(0.0, 1.0),
        ];
    }

    ToyConfiguration {
        database,
        reference_indices,
        queries,
        marked_query_indices: [0, 1, 2],
    }
}

/// The exact configuration scale used by the paper's Figure 1: 20 database
/// points, 10 queries, marked queries within 0.08 of their reference objects.
pub fn paper_figure1<R: Rng>(rng: &mut R) -> ToyConfiguration {
    toy_configuration(20, 10, 0.08, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_scale_matches_figure1() {
        let cfg = paper_figure1(&mut StdRng::seed_from_u64(1));
        assert_eq!(cfg.database.len(), 20);
        assert_eq!(cfg.queries.len(), 10);
        // 10 queries × C(20, 2) pairs = 1900 pairs → the paper counts ordered
        // "q closer to a than b" triples over unordered pairs: 10 × 190 = 1900?
        // The paper says 3800 triples, i.e. it counts both orderings of the
        // pair. Our triple_count counts unordered pairs:
        assert_eq!(cfg.triple_count(), 1900);
    }

    #[test]
    fn marked_queries_are_close_to_their_references() {
        let cfg = paper_figure1(&mut StdRng::seed_from_u64(7));
        let d = Euclidean2D;
        let refs = cfg.references();
        for (slot, &qi) in cfg.marked_query_indices.iter().enumerate() {
            let dist = d.distance(&cfg.queries[qi], &refs[slot]);
            assert!(
                dist <= 0.08 + 1e-9,
                "marked query {slot} is {dist} from its reference"
            );
        }
    }

    #[test]
    fn references_are_distinct_and_spread_out() {
        let cfg = paper_figure1(&mut StdRng::seed_from_u64(3));
        let [a, b, c] = cfg.reference_indices;
        assert!(a != b && b != c && a != c);
        let d = Euclidean2D;
        let refs = cfg.references();
        assert!(d.distance(&refs[0], &refs[1]) > 0.3);
        assert!(d.distance(&refs[0], &refs[2]) > 0.2);
        assert!(d.distance(&refs[1], &refs[2]) > 0.2);
    }

    #[test]
    fn all_points_are_in_the_unit_square() {
        let cfg = toy_configuration(50, 20, 0.1, &mut StdRng::seed_from_u64(9));
        for p in cfg.database.iter().chain(&cfg.queries) {
            assert!((0.0..=1.0).contains(&p[0]));
            assert!((0.0..=1.0).contains(&p[1]));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = paper_figure1(&mut StdRng::seed_from_u64(42));
        let b = paper_figure1(&mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least 3 queries")]
    fn rejects_too_few_queries() {
        let _ = toy_configuration(20, 2, 0.1, &mut StdRng::seed_from_u64(0));
    }
}
