//! Synthetic time-series database.
//!
//! The paper's second dataset is the time-series database of Vlachos et al.
//! (SIGKDD 2003): *"various real datasets were used as seeds for generating
//! a large number of time-series that are variations of the original
//! sequences. Multiple copies of every real sequence were constructed by
//! incorporating small variations in the original patterns as well as
//! additions of random compression and decompression in time"* (Section 9).
//!
//! We reproduce that expansion recipe. Because the real seed sequences are
//! not redistributable, the seed library here consists of structured
//! generators with very different temporal signatures (sine mixtures, random
//! walks, cylinder–bell–funnel patterns, AR(2) processes, chirps). Each
//! database sequence is a seed rendered with small pattern variation, random
//! time compression/decompression, amplitude scaling and additive noise, then
//! mean-normalized per dimension exactly as the paper describes.

use qse_distance::dtw::TimeSeries;
use rand::Rng;
use std::f64::consts::PI;

/// Configuration of the synthetic time-series generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeSeriesGeneratorConfig {
    /// Nominal sequence length before random time compression/decompression.
    /// The paper's sequences average ~500 points; the default here is shorter
    /// to keep the `O(len · band)` cDTW affordable at reproduction scale.
    pub base_length: usize,
    /// Dimensionality of each sample (the paper's sequences are
    /// multi-dimensional).
    pub dimensions: usize,
    /// Number of distinct seed patterns in the library.
    pub seed_patterns: usize,
    /// Standard deviation of additive Gaussian noise.
    pub noise: f64,
    /// Maximum relative change of the overall duration due to random time
    /// compression/decompression (0.2 = ±20%).
    pub max_time_warp: f64,
    /// Maximum relative amplitude scaling (0.2 = ±20%).
    pub max_amplitude_scale: f64,
    /// Whether to mean-normalize each dimension, as the paper does.
    pub mean_normalize: bool,
}

impl Default for TimeSeriesGeneratorConfig {
    fn default() -> Self {
        Self {
            base_length: 96,
            dimensions: 2,
            seed_patterns: 16,
            noise: 0.05,
            max_time_warp: 0.2,
            max_amplitude_scale: 0.25,
            mean_normalize: true,
        }
    }
}

/// Families of seed patterns; each seed instance fixes random parameters of
/// one family.
#[derive(Debug, Clone)]
enum SeedPattern {
    /// Sum of a few sinusoids with fixed frequencies/phases per dimension.
    SineMixture {
        freqs: Vec<Vec<f64>>,
        phases: Vec<Vec<f64>>,
        amps: Vec<Vec<f64>>,
    },
    /// A smoothed random walk (fixed increments replayed each render).
    RandomWalk { increments: Vec<Vec<f64>> },
    /// Cylinder–bell–funnel style events (plateau / ramp up / ramp down).
    CylinderBellFunnel {
        kind: u8,
        start: f64,
        duration: f64,
        amplitude: f64,
    },
    /// Second-order autoregressive process with fixed innovations.
    Ar2 {
        a1: f64,
        a2: f64,
        innovations: Vec<Vec<f64>>,
    },
    /// Linear chirp (frequency sweeps over time).
    Chirp { f0: f64, f1: f64, amp: f64 },
}

/// A seed: one pattern instance plus an identifier.
#[derive(Debug, Clone)]
pub struct Seed {
    /// Index of the seed in the library; doubles as a "class" label.
    pub id: usize,
    pattern: SeedPattern,
}

impl Seed {
    /// Render the ideal (noise-free) value of this seed at normalized time
    /// `t ∈ [0, 1]`, for the requested dimensionality.
    fn value_at(&self, t: f64, dims: usize) -> Vec<f64> {
        match &self.pattern {
            SeedPattern::SineMixture {
                freqs,
                phases,
                amps,
            } => (0..dims)
                .map(|d| {
                    freqs[d]
                        .iter()
                        .zip(&phases[d])
                        .zip(&amps[d])
                        .map(|((f, p), a)| a * (2.0 * PI * f * t + p).sin())
                        .sum()
                })
                .collect(),
            SeedPattern::RandomWalk { increments } => (0..dims)
                .map(|d| {
                    let steps = increments[d].len();
                    let upto = ((t * steps as f64) as usize).min(steps);
                    increments[d][..upto].iter().sum()
                })
                .collect(),
            SeedPattern::CylinderBellFunnel {
                kind,
                start,
                duration,
                amplitude,
            } => {
                let in_event = t >= *start && t <= start + duration;
                let base = if in_event {
                    let local = (t - start) / duration;
                    match kind % 3 {
                        0 => *amplitude,                // cylinder
                        1 => amplitude * local,         // bell (ramp up)
                        _ => amplitude * (1.0 - local), // funnel (ramp down)
                    }
                } else {
                    0.0
                };
                (0..dims).map(|d| base * (1.0 + 0.25 * d as f64)).collect()
            }
            SeedPattern::Ar2 {
                a1,
                a2,
                innovations,
            } => (0..dims)
                .map(|d| {
                    let steps = innovations[d].len();
                    let upto = ((t * steps as f64) as usize).min(steps);
                    let mut prev1 = 0.0;
                    let mut prev2 = 0.0;
                    for e in &innovations[d][..upto] {
                        let x = a1 * prev1 + a2 * prev2 + e;
                        prev2 = prev1;
                        prev1 = x;
                    }
                    prev1
                })
                .collect(),
            SeedPattern::Chirp { f0, f1, amp } => (0..dims)
                .map(|d| {
                    let f = f0 + (f1 - f0) * t;
                    amp * (2.0 * PI * f * t + d as f64 * 0.5).sin()
                })
                .collect(),
        }
    }
}

/// Generator of synthetic time series following the paper's expansion recipe.
#[derive(Debug, Clone)]
pub struct TimeSeriesGenerator {
    config: TimeSeriesGeneratorConfig,
    seeds: Vec<Seed>,
}

impl TimeSeriesGenerator {
    /// Build a generator with a freshly sampled seed library.
    ///
    /// # Panics
    /// Panics if the configuration is degenerate (zero length, dimensions or
    /// seed patterns).
    pub fn new<R: Rng>(config: TimeSeriesGeneratorConfig, rng: &mut R) -> Self {
        assert!(config.base_length >= 8, "base_length must be at least 8");
        assert!(config.dimensions >= 1, "dimensions must be at least 1");
        assert!(config.seed_patterns >= 1, "need at least one seed pattern");
        let seeds = (0..config.seed_patterns)
            .map(|id| Seed {
                id,
                pattern: random_pattern(id, config.dimensions, config.base_length, rng),
            })
            .collect();
        Self { config, seeds }
    }

    /// Generator with the default configuration.
    pub fn with_default_config<R: Rng>(rng: &mut R) -> Self {
        Self::new(TimeSeriesGeneratorConfig::default(), rng)
    }

    /// The generator configuration.
    pub fn config(&self) -> &TimeSeriesGeneratorConfig {
        &self.config
    }

    /// The seed library.
    pub fn seeds(&self) -> &[Seed] {
        &self.seeds
    }

    /// Render one variation of seed `seed_id`.
    ///
    /// The variation applies (in order): random overall time
    /// compression/decompression, a smooth local time warp, amplitude
    /// scaling, additive Gaussian noise, and optional per-dimension mean
    /// normalization.
    ///
    /// # Panics
    /// Panics if `seed_id` is out of range.
    pub fn variation<R: Rng>(&self, seed_id: usize, rng: &mut R) -> TimeSeries {
        assert!(seed_id < self.seeds.len(), "seed_id {seed_id} out of range");
        let cfg = &self.config;
        let seed = &self.seeds[seed_id];

        // Random global compression / decompression of the duration.
        let warp = 1.0 + rng.gen_range(-cfg.max_time_warp..=cfg.max_time_warp);
        let length = ((cfg.base_length as f64) * warp).round().max(8.0) as usize;
        // Smooth local warp: time runs faster/slower along the sequence.
        let local_amp = rng.gen_range(0.0..cfg.max_time_warp);
        let local_phase = rng.gen_range(0.0..(2.0 * PI));
        let amp_scale = 1.0 + rng.gen_range(-cfg.max_amplitude_scale..=cfg.max_amplitude_scale);

        let mut values = Vec::with_capacity(length);
        for i in 0..length {
            let t = i as f64 / (length - 1) as f64;
            // Local compression/decompression: perturb the time axis with a
            // smooth periodic displacement, keeping it within [0, 1].
            let t_warped =
                (t + local_amp * 0.2 * (2.0 * PI * t + local_phase).sin()).clamp(0.0, 1.0);
            let mut v = seed.value_at(t_warped, cfg.dimensions);
            for x in &mut v {
                *x = *x * amp_scale + gaussian(rng) * cfg.noise;
            }
            values.push(v);
        }
        let series = TimeSeries::new(values);
        if cfg.mean_normalize {
            series.mean_normalized()
        } else {
            series
        }
    }

    /// Generate a database of `count` sequences by cycling through the seed
    /// library, returning each sequence together with the id of the seed it
    /// was grown from.
    pub fn generate<R: Rng>(&self, count: usize, rng: &mut R) -> Vec<(TimeSeries, usize)> {
        (0..count)
            .map(|i| {
                let seed_id = i % self.seeds.len();
                (self.variation(seed_id, rng), seed_id)
            })
            .collect()
    }

    /// Generate a database of `count` sequences, discarding the seed labels.
    pub fn generate_unlabeled<R: Rng>(&self, count: usize, rng: &mut R) -> Vec<TimeSeries> {
        self.generate(count, rng)
            .into_iter()
            .map(|(s, _)| s)
            .collect()
    }
}

fn random_pattern<R: Rng>(id: usize, dims: usize, base_length: usize, rng: &mut R) -> SeedPattern {
    match id % 5 {
        0 => {
            let mk =
                |rng: &mut R| -> Vec<f64> { (0..3).map(|_| rng.gen_range(0.5..6.0)).collect() };
            SeedPattern::SineMixture {
                freqs: (0..dims).map(|_| mk(rng)).collect(),
                phases: (0..dims)
                    .map(|_| (0..3).map(|_| rng.gen_range(0.0..(2.0 * PI))).collect())
                    .collect(),
                amps: (0..dims)
                    .map(|_| (0..3).map(|_| rng.gen_range(0.2..1.0)).collect())
                    .collect(),
            }
        }
        1 => SeedPattern::RandomWalk {
            increments: (0..dims)
                .map(|_| (0..base_length).map(|_| gaussian(rng) * 0.15).collect())
                .collect(),
        },
        2 => SeedPattern::CylinderBellFunnel {
            kind: rng.gen_range(0..3),
            start: rng.gen_range(0.1..0.4),
            duration: rng.gen_range(0.2..0.5),
            amplitude: rng.gen_range(0.8..2.0),
        },
        3 => SeedPattern::Ar2 {
            a1: rng.gen_range(0.3..0.7),
            a2: rng.gen_range(-0.4..0.2),
            innovations: (0..dims)
                .map(|_| (0..base_length).map(|_| gaussian(rng) * 0.3).collect())
                .collect(),
        },
        _ => SeedPattern::Chirp {
            f0: rng.gen_range(0.5..2.0),
            f1: rng.gen_range(3.0..8.0),
            amp: rng.gen_range(0.5..1.5),
        },
    }
}

fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qse_distance::{ConstrainedDtw, DistanceMeasure};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn generator(seed: u64) -> TimeSeriesGenerator {
        TimeSeriesGenerator::with_default_config(&mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn variations_have_expected_shape() {
        let g = generator(1);
        let mut rng = StdRng::seed_from_u64(2);
        let s = g.variation(0, &mut rng);
        assert_eq!(s.dim(), g.config().dimensions);
        let base = g.config().base_length as f64;
        let warp = g.config().max_time_warp;
        assert!((s.len() as f64) >= base * (1.0 - warp) - 1.0);
        assert!((s.len() as f64) <= base * (1.0 + warp) + 1.0);
    }

    #[test]
    fn mean_normalization_is_applied() {
        let g = generator(3);
        let mut rng = StdRng::seed_from_u64(4);
        let s = g.variation(1, &mut rng);
        for d in 0..s.dim() {
            let mean: f64 = s.samples().iter().map(|v| v[d]).sum::<f64>() / s.len() as f64;
            assert!(mean.abs() < 1e-9, "dimension {d} mean {mean}");
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let g = generator(5);
        let a = g.generate(12, &mut StdRng::seed_from_u64(10));
        let b = g.generate(12, &mut StdRng::seed_from_u64(10));
        assert_eq!(a, b);
    }

    #[test]
    fn labels_cycle_over_seed_library() {
        let g = generator(6);
        let mut rng = StdRng::seed_from_u64(11);
        let db = g.generate(32, &mut rng);
        assert_eq!(db[0].1, 0);
        assert_eq!(db[1].1, 1);
        assert_eq!(db[16].1, 0);
    }

    #[test]
    fn same_seed_variations_are_closer_under_dtw_than_different_seeds() {
        // The cluster structure the retrieval experiments rely on.
        let g = generator(7);
        let mut rng = StdRng::seed_from_u64(13);
        let dtw = ConstrainedDtw::paper();
        let mut intra = Vec::new();
        let mut inter = Vec::new();
        let per_seed = 3;
        let seeds = 4;
        let samples: Vec<Vec<TimeSeries>> = (0..seeds)
            .map(|sid| (0..per_seed).map(|_| g.variation(sid, &mut rng)).collect())
            .collect();
        for (si, group) in samples.iter().enumerate() {
            for i in 0..group.len() {
                for j in (i + 1)..group.len() {
                    intra.push(dtw.distance(&group[i], &group[j]));
                }
                for other in samples.iter().skip(si + 1) {
                    inter.push(dtw.distance(&group[i], &other[0]));
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&intra) < mean(&inter),
            "intra {} should be below inter {}",
            mean(&intra),
            mean(&inter)
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_unknown_seed_id() {
        let g = generator(8);
        let _ = g.variation(10_000, &mut StdRng::seed_from_u64(0));
    }

    #[test]
    #[should_panic(expected = "at least 8")]
    fn rejects_degenerate_length() {
        let cfg = TimeSeriesGeneratorConfig {
            base_length: 2,
            ..Default::default()
        };
        let _ = TimeSeriesGenerator::new(cfg, &mut StdRng::seed_from_u64(0));
    }
}
