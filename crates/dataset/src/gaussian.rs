//! Deterministic mixture-of-Gaussians workloads — the clustered
//! high-dimensional stress collection the cluster-routed retrieval layer
//! (`qse_retrieval::routed`) is measured against.
//!
//! The generator draws `rows` points from a mixture of `clusters`
//! isotropic Gaussians whose centers are themselves drawn uniformly from
//! a hypercube. Cluster structure is the knob that matters for routing:
//! tight, well-separated clusters (`spread` small relative to
//! `center_box`) are the friendly regime where a coarse partition
//! captures almost all of a query's neighbors in a few cells; large
//! `spread` smears the mixture toward the adversarial uniform case.
//!
//! Everything is deterministic given the config's seed (Box–Muller over
//! the seeded [`StdRng`] stream), and the generator keeps the **exact
//! generative ground truth** — each point's mixture component and every
//! component center — so tests can assert against the true cluster
//! structure rather than a re-estimated one. Dimensionalities of 64/256
//! and row counts up to 100k are the intended operating range (one 100k
//! × 64 draw is ~6.4M normal samples — well under a second).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of one [`GaussianMixture::generate`] draw.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianMixtureConfig {
    /// Number of points to draw.
    pub rows: usize,
    /// Dimensionality of the space.
    pub dim: usize,
    /// Number of mixture components.
    pub clusters: usize,
    /// Component centers are uniform in `[-center_box, center_box]^dim`.
    pub center_box: f64,
    /// Per-coordinate standard deviation within a component.
    pub spread: f64,
    /// Seed of the whole draw.
    pub seed: u64,
}

impl Default for GaussianMixtureConfig {
    fn default() -> Self {
        Self {
            rows: 10_000,
            dim: 64,
            clusters: 16,
            center_box: 10.0,
            spread: 0.5,
            seed: 0xC1A5,
        }
    }
}

/// A drawn mixture-of-Gaussians collection with its generative ground
/// truth.
#[derive(Debug, Clone, PartialEq)]
pub struct GaussianMixture {
    /// The drawn points, `config.rows` of them.
    pub points: Vec<Vec<f64>>,
    /// `labels[i]` is the mixture component point `i` was drawn from —
    /// the exact cluster ground truth.
    pub labels: Vec<usize>,
    /// The component centers, `config.clusters` of them.
    pub centers: Vec<Vec<f64>>,
    config: GaussianMixtureConfig,
}

/// One standard-normal sample via Box–Muller (the workspace `rand` shim
/// has no normal distribution; two uniforms per sample keep the stream
/// deterministic and simple).
#[inline]
fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    // u1 ∈ (0, 1]: guard the log against exactly 0.0.
    let u1: f64 = 1.0 - rng.gen_range(0.0..1.0f64);
    let u2: f64 = rng.gen_range(0.0..1.0f64);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

impl GaussianMixture {
    /// Draw a collection under `config`. Deterministic: one seeded
    /// [`StdRng`] stream drives centers, component choices and point
    /// offsets in a fixed order.
    ///
    /// # Panics
    /// Panics if `rows`, `dim` or `clusters` is zero, or `spread` /
    /// `center_box` is negative or non-finite.
    pub fn generate(config: GaussianMixtureConfig) -> Self {
        assert!(config.rows >= 1, "rows must be at least 1");
        assert!(config.dim >= 1, "dim must be at least 1");
        assert!(config.clusters >= 1, "clusters must be at least 1");
        assert!(
            config.center_box.is_finite() && config.center_box >= 0.0,
            "center_box must be finite and non-negative"
        );
        assert!(
            config.spread.is_finite() && config.spread >= 0.0,
            "spread must be finite and non-negative"
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let centers: Vec<Vec<f64>> = (0..config.clusters)
            .map(|_| {
                (0..config.dim)
                    .map(|_| rng.gen_range(-config.center_box..=config.center_box))
                    .collect()
            })
            .collect();
        let mut points = Vec::with_capacity(config.rows);
        let mut labels = Vec::with_capacity(config.rows);
        for _ in 0..config.rows {
            let c = rng.gen_range(0..config.clusters);
            labels.push(c);
            points.push(
                centers[c]
                    .iter()
                    .map(|&m| m + config.spread * standard_normal(&mut rng))
                    .collect(),
            );
        }
        Self {
            points,
            labels,
            centers,
            config,
        }
    }

    /// The config this collection was drawn under.
    pub fn config(&self) -> &GaussianMixtureConfig {
        &self.config
    }

    /// Draw `count` query points from the **same mixture** (same centers
    /// and spread) under an independent seed — the matched query workload
    /// for recall/latency measurements. Deterministic given `seed`.
    pub fn queries(&self, count: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                let c = rng.gen_range(0..self.centers.len());
                self.centers[c]
                    .iter()
                    .map(|&m| m + self.config.spread * standard_normal(&mut rng))
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let config = GaussianMixtureConfig {
            rows: 200,
            dim: 8,
            clusters: 5,
            ..GaussianMixtureConfig::default()
        };
        let a = GaussianMixture::generate(config);
        let b = GaussianMixture::generate(config);
        assert_eq!(a, b);
        assert_eq!(a.queries(20, 7), b.queries(20, 7));
        // A different seed moves the draw.
        let c = GaussianMixture::generate(GaussianMixtureConfig {
            seed: config.seed + 1,
            ..config
        });
        assert_ne!(a.points, c.points);
    }

    #[test]
    fn shapes_and_labels_are_consistent() {
        let config = GaussianMixtureConfig {
            rows: 500,
            dim: 16,
            clusters: 7,
            ..GaussianMixtureConfig::default()
        };
        let mix = GaussianMixture::generate(config);
        assert_eq!(mix.points.len(), 500);
        assert_eq!(mix.labels.len(), 500);
        assert_eq!(mix.centers.len(), 7);
        assert!(mix.points.iter().all(|p| p.len() == 16));
        assert!(mix.labels.iter().all(|&l| l < 7));
        // All components appear in a draw this large.
        let mut seen = mix.labels.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 7);
    }

    #[test]
    fn points_stay_near_their_generative_centers() {
        // With spread ≪ center separation, each point's nearest center is
        // its own component for the overwhelming majority of draws; on a
        // fixed seed we can assert it outright.
        let mix = GaussianMixture::generate(GaussianMixtureConfig {
            rows: 400,
            dim: 32,
            clusters: 6,
            center_box: 10.0,
            spread: 0.3,
            seed: 42,
        });
        let nearest = |p: &[f64]| {
            (0..mix.centers.len())
                .min_by(|&a, &b| {
                    let da: f64 = p
                        .iter()
                        .zip(&mix.centers[a])
                        .map(|(x, y)| (x - y) * (x - y))
                        .sum();
                    let db: f64 = p
                        .iter()
                        .zip(&mix.centers[b])
                        .map(|(x, y)| (x - y) * (x - y))
                        .sum();
                    da.total_cmp(&db)
                })
                .unwrap()
        };
        for (p, &label) in mix.points.iter().zip(&mix.labels) {
            assert_eq!(nearest(p), label);
        }
    }

    #[test]
    fn zero_spread_degenerates_to_the_centers() {
        let mix = GaussianMixture::generate(GaussianMixtureConfig {
            rows: 50,
            dim: 4,
            clusters: 3,
            spread: 0.0,
            ..GaussianMixtureConfig::default()
        });
        for (p, &label) in mix.points.iter().zip(&mix.labels) {
            assert_eq!(*p, mix.centers[label]);
        }
    }

    #[test]
    #[should_panic(expected = "clusters must be at least 1")]
    fn rejects_zero_clusters() {
        let _ = GaussianMixture::generate(GaussianMixtureConfig {
            clusters: 0,
            ..GaussianMixtureConfig::default()
        });
    }
}
