//! The [`Dataset`] container and training-pool sampling.
//!
//! The paper's retrieval experiments always have a *database* (the
//! collection searched at query time) and a disjoint *query set* used only
//! for evaluation: *"Query objects from the test set were not used in any
//! part of the training algorithm"* (Section 9). Training additionally draws
//! two subsets of the database (Section 7):
//!
//! * `C` — candidate objects used as reference objects and pivot objects for
//!   the 1D embeddings, and
//! * `Xtr` — training objects from which training triples are formed.

use rand::seq::SliceRandom;
use rand::Rng;

/// A retrieval workload: a database of objects plus held-out query objects.
#[derive(Debug, Clone)]
pub struct Dataset<O> {
    database: Vec<O>,
    queries: Vec<O>,
}

impl<O> Dataset<O> {
    /// Build a dataset from a database and a disjoint query set.
    ///
    /// # Panics
    /// Panics if either collection is empty.
    pub fn new(database: Vec<O>, queries: Vec<O>) -> Self {
        assert!(!database.is_empty(), "the database must not be empty");
        assert!(!queries.is_empty(), "the query set must not be empty");
        Self { database, queries }
    }

    /// The searchable database objects.
    pub fn database(&self) -> &[O] {
        &self.database
    }

    /// The held-out query objects.
    pub fn queries(&self) -> &[O] {
        &self.queries
    }

    /// Number of database objects (the paper's brute-force cost per query).
    pub fn database_size(&self) -> usize {
        self.database.len()
    }

    /// Number of query objects.
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    /// Split a single object collection into a database and a query set by
    /// drawing `query_count` objects at random without replacement, as the
    /// paper does when it *"merged the query set and the database, and from
    /// the merged set ... chose (randomly) a new set of 1,000 queries"*.
    ///
    /// # Panics
    /// Panics if `query_count` is zero or leaves an empty database.
    pub fn split_random<R: Rng>(mut objects: Vec<O>, query_count: usize, rng: &mut R) -> Self {
        assert!(query_count > 0, "query_count must be positive");
        assert!(
            query_count < objects.len(),
            "query_count ({query_count}) must leave a non-empty database (total {})",
            objects.len()
        );
        objects.shuffle(rng);
        let queries = objects.split_off(objects.len() - query_count);
        Self::new(objects, queries)
    }

    /// Sample the training pools `C` (candidate reference/pivot objects) and
    /// `Xtr` (training-triple objects) from the database, by index, without
    /// replacement within each pool.
    ///
    /// The paper notes that *"If time and memory resources are not limited,
    /// then we can set both C and Xtr equal to the entire database"*;
    /// requesting pools at least as large as the database does exactly that.
    pub fn sample_training_pools<R: Rng>(
        &self,
        candidate_count: usize,
        training_count: usize,
        rng: &mut R,
    ) -> TrainingPools {
        TrainingPools {
            candidate_indices: sample_indices(self.database.len(), candidate_count, rng),
            training_indices: sample_indices(self.database.len(), training_count, rng),
        }
    }
}

/// Indices (into the database) of the two training pools of Section 7.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrainingPools {
    /// `C`: candidate objects used to define 1D embeddings.
    pub candidate_indices: Vec<usize>,
    /// `Xtr`: objects from which training triples are drawn.
    pub training_indices: Vec<usize>,
}

fn sample_indices<R: Rng>(population: usize, count: usize, rng: &mut R) -> Vec<usize> {
    let mut all: Vec<usize> = (0..population).collect();
    if count >= population {
        return all;
    }
    all.shuffle(rng);
    all.truncate(count);
    all.sort_unstable();
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn split_random_partitions_without_loss() {
        let mut rng = StdRng::seed_from_u64(7);
        let objects: Vec<u32> = (0..100).collect();
        let ds = Dataset::split_random(objects, 25, &mut rng);
        assert_eq!(ds.database_size(), 75);
        assert_eq!(ds.query_count(), 25);
        let mut all: Vec<u32> = ds.database().iter().chain(ds.queries()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let objects: Vec<u32> = (0..50).collect();
        let a = Dataset::split_random(objects.clone(), 10, &mut StdRng::seed_from_u64(3));
        let b = Dataset::split_random(objects, 10, &mut StdRng::seed_from_u64(3));
        assert_eq!(a.queries(), b.queries());
        assert_eq!(a.database(), b.database());
    }

    #[test]
    fn training_pools_are_subsets_of_database() {
        let mut rng = StdRng::seed_from_u64(11);
        let ds = Dataset::new((0..40).collect::<Vec<u32>>(), vec![100, 101]);
        let pools = ds.sample_training_pools(10, 15, &mut rng);
        assert_eq!(pools.candidate_indices.len(), 10);
        assert_eq!(pools.training_indices.len(), 15);
        assert!(pools.candidate_indices.iter().all(|i| *i < 40));
        assert!(pools.training_indices.iter().all(|i| *i < 40));
        // No duplicates within a pool.
        let mut c = pools.candidate_indices.clone();
        c.dedup();
        assert_eq!(c.len(), 10);
    }

    #[test]
    fn oversized_pools_use_the_whole_database() {
        let mut rng = StdRng::seed_from_u64(5);
        let ds = Dataset::new((0..8).collect::<Vec<u32>>(), vec![99]);
        let pools = ds.sample_training_pools(100, 100, &mut rng);
        assert_eq!(pools.candidate_indices, (0..8).collect::<Vec<_>>());
        assert_eq!(pools.training_indices, (0..8).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "non-empty database")]
    fn split_rejects_query_count_too_large() {
        let _ = Dataset::split_random(
            (0..5).collect::<Vec<u32>>(),
            5,
            &mut StdRng::seed_from_u64(0),
        );
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn rejects_empty_database() {
        let _: Dataset<u32> = Dataset::new(vec![], vec![1]);
    }
}
