//! A minimal, self-contained stand-in for the parts of the `criterion` API
//! used by this workspace (the build environment has no access to a crates
//! registry; see `crates/compat/README.md`).
//!
//! Each benchmark runs one warm-up iteration followed by `sample_size` timed
//! iterations and prints the mean and minimum wall-clock time per iteration.
//! This is deliberately simpler than real criterion (no bootstrap statistics,
//! no HTML reports) but produces honest, comparable numbers and keeps the
//! `criterion_group!` / `criterion_main!` bench targets runnable with
//! `cargo bench`.
//!
//! Like real criterion, passing `--test` to a bench binary (i.e.
//! `cargo bench -- --test`) switches to **smoke-test mode**: every benchmark
//! routine executes exactly once, untimed, and reports `ok` instead of a
//! measurement. CI runs the bench suite this way so the benchmark code
//! cannot bit-rot without ever paying for real measurements.
//!
//! Also like real criterion, positional (non-flag) command-line arguments
//! are benchmark **name filters**: `cargo bench --bench b some_group` runs
//! only the benchmarks whose full id contains one of the given substrings
//! (real criterion matches regexes; the shim keeps honest substring
//! semantics). Setup code outside `bench_function` still runs — filtering
//! skips the measured routines and their reports.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// `true` when the bench binary was invoked with `--test` (smoke-test mode:
/// run every routine once, untimed).
fn test_mode_from_args() -> bool {
    std::env::args().any(|arg| arg == "--test")
}

/// Benchmark-name filters from the command line: every positional
/// (non-flag) argument is a substring filter against full benchmark ids.
/// (Cargo forwards e.g. `cargo bench --bench b store_backend` to the bench
/// binary as `store_backend --bench`, so flags must be skipped.)
fn filters_from_args() -> Vec<String> {
    std::env::args()
        .skip(1)
        .filter(|arg| !arg.starts_with('-'))
        .collect()
}

/// Benchmark driver configuration and sink.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Option<Duration>,
    test_mode: bool,
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: None,
            test_mode: test_mode_from_args(),
            filters: filters_from_args(),
        }
    }
}

impl Criterion {
    /// Number of timed iterations per benchmark (at least 1).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Upper bound on total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = Some(d);
        self
    }

    /// Accepted for compatibility; warm-up is fixed to one iteration.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for compatibility; command-line arguments are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// `true` if a benchmark with this full id should run under the
    /// command-line name filters (no filters = run everything).
    fn matches(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f.as_str()))
    }

    /// Run one benchmark (skipped silently if the command-line name
    /// filters exclude its id, like real criterion).
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if !self.matches(id) {
            return self;
        }
        let mut bencher = Bencher::new(self.sample_size, self.measurement_time, self.test_mode);
        f(&mut bencher);
        bencher.report(id);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            test_mode: self.test_mode,
            criterion: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Option<Duration>,
    test_mode: bool,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Record the throughput denominator (printed alongside timings).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run one benchmark within the group (skipped if the command-line
    /// name filters exclude the full `group/id`).
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = format!("{}/{}", self.name, id);
        if !self.criterion.matches(&full_id) {
            return self;
        }
        let mut bencher = Bencher::new(self.sample_size, self.measurement_time, self.test_mode);
        f(&mut bencher);
        bencher.report(&full_id);
        self
    }

    /// Run one parameterized benchmark within the group (skipped if the
    /// command-line name filters exclude the full `group/id`).
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full_id = format!("{}/{}", self.name, id.0);
        if !self.criterion.matches(&full_id) {
            return self;
        }
        let mut bencher = Bencher::new(self.sample_size, self.measurement_time, self.test_mode);
        f(&mut bencher, input);
        bencher.report(&full_id);
        self
    }

    /// Finish the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifier of a parameterized benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self(format!("{function_name}/{parameter}"))
    }

    /// Identifier carrying only the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

/// Times the benchmark routine.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Option<Duration>,
    test_mode: bool,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(sample_size: usize, measurement_time: Option<Duration>, test_mode: bool) -> Self {
        Self {
            sample_size,
            measurement_time,
            test_mode,
            samples: Vec::new(),
        }
    }

    /// Run the routine once for warm-up, then `sample_size` timed times
    /// (stopping early if the configured measurement time is exhausted). In
    /// smoke-test mode (`--test`) the single warm-up execution is all that
    /// runs.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        black_box(routine());
        if self.test_mode {
            return;
        }
        let budget = self.measurement_time.unwrap_or(Duration::from_secs(3600));
        let started = Instant::now();
        for done in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if done + 1 < self.sample_size && started.elapsed() > budget {
                break;
            }
        }
    }

    fn report(&self, id: &str) {
        if self.test_mode {
            println!("{id:<55} ok (smoke test, 1 iteration)");
            return;
        }
        if self.samples.is_empty() {
            println!("{id:<55} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().copied().unwrap_or_default();
        println!(
            "{id:<55} time: [mean {} | min {}] ({} samples)",
            format_duration(mean),
            format_duration(min),
            self.samples.len()
        );
    }
}

/// Throughput annotation (accepted, not currently printed).
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} us", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Define a function running a list of benchmark targets, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the `main` of a `harness = false` bench target, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_routine() {
        let mut c = Criterion::default().sample_size(3);
        let mut count = 0u32;
        c.bench_function("smoke", |b| b.iter(|| count += 1));
        // 1 warm-up + 3 samples.
        assert_eq!(count, 4);
    }

    #[test]
    fn groups_run_parameterized_benchmarks() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        let mut hits = 0u32;
        group.bench_with_input(BenchmarkId::from_parameter(7), &7usize, |b, &n| {
            b.iter(|| hits += n as u32)
        });
        group.finish();
        assert_eq!(hits, 7 * 3);
    }

    #[test]
    fn smoke_test_mode_runs_the_routine_exactly_once_untimed() {
        let mut bencher = Bencher::new(5, None, true);
        let mut count = 0u32;
        bencher.iter(|| count += 1);
        assert_eq!(count, 1, "smoke mode must run exactly one iteration");
        assert!(bencher.samples.is_empty(), "smoke mode records no samples");
    }

    #[test]
    fn name_filters_skip_non_matching_benchmarks() {
        let mut c = Criterion::default().sample_size(2);
        c.filters = vec!["keep".into()];
        let mut kept = 0u32;
        let mut skipped = 0u32;
        c.bench_function("keep_this", |b| b.iter(|| kept += 1));
        c.bench_function("drop_this", |b| b.iter(|| skipped += 1));
        let mut group = c.benchmark_group("keep_group");
        let mut grouped = 0u32;
        group.bench_with_input(BenchmarkId::from_parameter(1), &1usize, |b, _| {
            b.iter(|| grouped += 1)
        });
        group.finish();
        let mut group = c.benchmark_group("other_group");
        let mut other = 0u32;
        group.bench_function("nope", |b| b.iter(|| other += 1));
        group.finish();
        assert_eq!(kept, 3, "matching top-level benchmark must run");
        assert_eq!(skipped, 0, "non-matching benchmark must be skipped");
        assert_eq!(grouped, 3, "group prefix participates in matching");
        assert_eq!(other, 0, "non-matching group benchmark must be skipped");
    }

    #[test]
    fn duration_formatting_scales() {
        assert!(format_duration(Duration::from_nanos(10)).ends_with("ns"));
        assert!(format_duration(Duration::from_micros(10)).ends_with("us"));
        assert!(format_duration(Duration::from_millis(10)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(10)).ends_with(" s"));
    }
}
