//! A minimal, self-contained stand-in for the parts of the `rand` crate API
//! used by this workspace (the build environment has no access to a crates
//! registry; see `crates/compat/README.md`).
//!
//! Provided surface:
//!
//! * [`Rng`] — `gen_range` over integer and float ranges, `gen_bool`;
//! * [`SeedableRng::seed_from_u64`];
//! * [`rngs::StdRng`] — a xoshiro256++ generator seeded via SplitMix64;
//! * [`seq::SliceRandom`] — `shuffle` and `choose_multiple`.
//!
//! All generators are deterministic given a seed. Streams are **not**
//! bit-compatible with the real `rand` crate (different core generator),
//! which only matters for code that hard-codes expected sequences — nothing
//! in this workspace does.

#![warn(missing_docs)]

/// A source of randomness. The single required method is [`Rng::next_u64`];
/// everything else is derived from it.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform sample from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool requires a probability, got {p}"
        );
        self.next_f64() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A range that uniform samples of type `T` can be drawn from.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` below `bound` without modulo bias (Lemire-style rejection).
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection zone keeps the distribution exactly uniform.
    let zone = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        if x >= zone {
            return x % bound;
        }
    }
}

/// Types with a uniform sampler over an interval. Implemented for the
/// primitive integers and floats; [`SampleRange`] is blanket-implemented
/// over it for `Range` / `RangeInclusive`, which keeps float-literal type
/// inference working exactly as with the real `rand` crate.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`); callers guarantee the interval is non-empty.
    fn sample_in<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = (hi as i128 - lo as i128) as u64;
                if inclusive {
                    if span == u64::MAX {
                        return (rng.next_u64() as i128 + lo as i128) as $t;
                    }
                    (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
                } else {
                    (lo as i128 + uniform_below(rng, span) as i128) as $t
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

impl SampleUniform for f64 {
    fn sample_in<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
        lo + (hi - lo) * rng.next_f64()
    }
}

impl SampleUniform for f32 {
    fn sample_in<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
        lo + (hi - lo) * rng.next_f64() as f32
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from an empty range");
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample from an empty range");
        T::sample_in(rng, start, end, true)
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            Self {
                s: core::array::from_fn(|_| splitmix64(&mut state)),
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Random operations on slices.
pub mod seq {
    use super::Rng;

    /// `shuffle` and `choose_multiple` on slices, mirroring
    /// `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// An iterator over `amount` distinct elements drawn uniformly
        /// without replacement (fewer if the slice is shorter).
        fn choose_multiple<R: Rng + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> SliceChooseIter<'_, Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose_multiple<R: Rng + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> SliceChooseIter<'_, T> {
            let amount = amount.min(self.len());
            // Partial Fisher–Yates over the index vector.
            let mut indices: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = i + super::uniform_below(rng, (indices.len() - i) as u64) as usize;
                indices.swap(i, j);
            }
            indices.truncate(amount);
            SliceChooseIter {
                slice: self,
                indices: indices.into_iter(),
            }
        }
    }

    /// Iterator returned by [`SliceRandom::choose_multiple`].
    pub struct SliceChooseIter<'a, T> {
        slice: &'a [T],
        indices: std::vec::IntoIter<usize>,
    }

    impl<'a, T> Iterator for SliceChooseIter<'a, T> {
        type Item = &'a T;
        fn next(&mut self) -> Option<&'a T> {
            self.indices.next().map(|i| &self.slice[i])
        }
        fn size_hint(&self) -> (usize, Option<usize>) {
            self.indices.size_hint()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-2.5..7.5f64);
            assert!((-2.5..7.5).contains(&y));
            let z = rng.gen_range(-3..4i32);
            assert!((-3..4).contains(&z));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!(
            (2200..2800).contains(&hits),
            "gen_bool(0.25) hit {hits}/10000"
        );
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut StdRng::seed_from_u64(9));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_multiple_is_without_replacement() {
        let v: Vec<u32> = (0..30).collect();
        let mut rng = StdRng::seed_from_u64(11);
        let picked: Vec<u32> = v.choose_multiple(&mut rng, 12).copied().collect();
        assert_eq!(picked.len(), 12);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 12);
    }

    #[test]
    fn rng_works_through_mutable_references() {
        fn draw<R: Rng>(rng: &mut R) -> usize {
            rng.gen_range(0..10usize)
        }
        let mut rng = StdRng::seed_from_u64(3);
        let via_ref = draw(&mut rng);
        assert!(via_ref < 10);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn rejects_empty_ranges() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(5..5usize);
    }
}
