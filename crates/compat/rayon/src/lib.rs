//! A minimal, self-contained stand-in for the parts of the `rayon` API used
//! by this workspace (the build environment has no access to a crates
//! registry; see `crates/compat/README.md`).
//!
//! Execution model: every parallel stage partitions its input into
//! contiguous chunks — one per worker — and runs them on a **lazily
//! initialized persistent worker pool**, concatenating results **in input
//! order**. That makes `collect` order-stable, exactly like real rayon's
//! indexed parallel iterators, so callers can build bit-deterministic
//! reductions on top (see `qse-core::trainer`).
//!
//! The pool (see [`pool`]) is created on the first parallel call that wants
//! more than one thread and lives for the rest of the process: workers park
//! on a condition variable when idle and are fed jobs through a shared
//! injector queue, so steady-state parallel calls pay a channel push + wake
//! instead of a `std::thread::spawn` per chunk. The calling thread always
//! executes the first chunk itself and *helps drain the queue* while waiting
//! for the remaining chunks, which keeps nested parallel calls
//! deadlock-free. Panics inside a chunk are caught, forwarded, and re-thrown
//! on the calling thread with their original payload.
//!
//! The worker count is `RAYON_NUM_THREADS` when set (a value of `1` disables
//! parallelism entirely), otherwise [`std::thread::available_parallelism`].
//! The variable is re-read on every parallel call, so tests can flip it at
//! run time; the pool only ever grows (workers are cheap to keep parked).

#![warn(missing_docs)]

use std::num::NonZeroUsize;

/// The number of worker threads parallel calls will use: the
/// `RAYON_NUM_THREADS` environment variable when set to a positive integer,
/// otherwise the machine's available parallelism.
pub fn current_num_threads() -> usize {
    match std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1),
    }
}

/// The persistent worker pool every parallel primitive executes on.
///
/// Design (documented in detail in `crates/compat/README.md`):
///
/// * **Lazy init** — nothing is spawned until the first parallel call with
///   `current_num_threads() > 1`; the registry lives in a `OnceLock` and
///   grows on demand (never shrinks), up to [`MAX_WORKERS`].
/// * **Channel-fed** — jobs are lifetime-erased `Box<dyn FnOnce()>` values
///   pushed onto one shared FIFO injector (mutex + condvar); idle workers
///   park on the condvar and cost no CPU.
/// * **Scoped semantics without scoped threads** — a parallel call submits
///   its chunks, runs the first chunk inline, then blocks until a per-call
///   latch counts every chunk done. Because the call never returns (or
///   unwinds) before the latch closes, chunk closures may safely borrow the
///   caller's stack even though the workers are plain `'static` threads.
/// * **Help-first waiting** — while blocked on its latch the caller pops and
///   runs queued jobs, so a nested parallel call issued from inside a worker
///   can always make progress even when every worker is busy.
/// * **Shutdown** — workers are detached daemon threads parked on the
///   condvar; they hold no resources beyond their stacks and exit with the
///   process. There is deliberately no teardown path (mirroring rayon's
///   global pool).
pub mod pool {
    use std::any::Any;
    use std::collections::VecDeque;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
    use std::time::Duration;

    /// Hard cap on pool growth, far above any sane `RAYON_NUM_THREADS`.
    pub const MAX_WORKERS: usize = 256;

    /// A lifetime-erased unit of work.
    type Job = Box<dyn FnOnce() + Send + 'static>;

    /// Lock a mutex, ignoring poisoning (jobs catch panics internally, and
    /// every critical section here is panic-free anyway).
    fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
        mutex
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// The shared injector queue workers feed from.
    struct Injector {
        queue: Mutex<VecDeque<Job>>,
        job_ready: Condvar,
    }

    /// The process-global pool: the injector plus the grow-only worker count.
    pub(crate) struct Registry {
        injector: Injector,
        spawned: Mutex<usize>,
    }

    static REGISTRY: OnceLock<Registry> = OnceLock::new();

    /// The lazily-created global registry.
    pub(crate) fn registry() -> &'static Registry {
        REGISTRY.get_or_init(|| Registry {
            injector: Injector {
                queue: Mutex::new(VecDeque::new()),
                job_ready: Condvar::new(),
            },
            spawned: Mutex::new(0),
        })
    }

    /// The number of worker threads currently spawned (0 until the first
    /// multi-threaded parallel call). Exposed for tests and diagnostics.
    pub fn spawned_workers() -> usize {
        REGISTRY.get().map_or(0, |r| *lock(&r.spawned))
    }

    impl Registry {
        /// Grow the pool so at least `wanted` workers exist (capped at
        /// [`MAX_WORKERS`]; the cap is safe because waiting callers drain
        /// the queue themselves).
        pub(crate) fn ensure_workers(&'static self, wanted: usize) {
            let wanted = wanted.min(MAX_WORKERS);
            let mut spawned = lock(&self.spawned);
            while *spawned < wanted {
                *spawned += 1;
                let id = *spawned;
                std::thread::Builder::new()
                    .name(format!("qse-rayon-worker-{id}"))
                    .spawn(move || self.worker_loop())
                    .expect("rayon: failed to spawn pool worker");
            }
        }

        fn worker_loop(&'static self) {
            loop {
                let job = {
                    let mut queue = lock(&self.injector.queue);
                    loop {
                        if let Some(job) = queue.pop_front() {
                            break job;
                        }
                        queue = self
                            .injector
                            .job_ready
                            .wait(queue)
                            .unwrap_or_else(|poisoned| poisoned.into_inner());
                    }
                };
                // Jobs wrap user code in `catch_unwind`, so this cannot take
                // the worker down.
                job();
            }
        }

        fn inject(&'static self, job: Job) {
            lock(&self.injector.queue).push_back(job);
            self.injector.job_ready.notify_one();
        }

        fn try_pop(&'static self) -> Option<Job> {
            lock(&self.injector.queue).pop_front()
        }

        /// Block until `latch` closes, executing queued jobs while waiting
        /// (help-first scheduling: this is what makes nested parallel calls
        /// deadlock-free even with every worker busy).
        fn help_until_done(&'static self, latch: &Latch) {
            loop {
                if latch.is_done() {
                    return;
                }
                match self.try_pop() {
                    Some(job) => job(),
                    None => latch.park_briefly(),
                }
            }
        }
    }

    /// Per-call completion latch: counts outstanding jobs and records the
    /// first panic payload.
    struct LatchState {
        remaining: usize,
        panic: Option<Box<dyn Any + Send>>,
    }

    struct Latch {
        state: Mutex<LatchState>,
        done: Condvar,
    }

    impl Latch {
        fn new(jobs: usize) -> Self {
            Self {
                state: Mutex::new(LatchState {
                    remaining: jobs,
                    panic: None,
                }),
                done: Condvar::new(),
            }
        }

        fn is_done(&self) -> bool {
            lock(&self.state).remaining == 0
        }

        fn park_briefly(&self) {
            let state = lock(&self.state);
            if state.remaining > 0 {
                // The timeout only matters in the rare window where a job is
                // injected elsewhere between our queue check and this wait;
                // completion of our own jobs notifies immediately.
                let _ = self
                    .done
                    .wait_timeout(state, Duration::from_micros(200))
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        }

        fn record_panic(&self, payload: Box<dyn Any + Send>) {
            let mut state = lock(&self.state);
            state.panic.get_or_insert(payload);
        }

        fn complete_one(&self) {
            let mut state = lock(&self.state);
            state.remaining -= 1;
            if state.remaining == 0 {
                self.done.notify_all();
            }
        }

        fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
            lock(&self.state).panic.take()
        }
    }

    /// Erase the environment lifetime of a job so it can cross into the
    /// `'static` worker pool.
    ///
    /// # Safety
    /// The caller must not return (or unwind) before the job has finished
    /// executing; [`run_batch`] guarantees this by blocking on a latch that
    /// only closes after the job's final statement.
    unsafe fn erase<'env>(job: Box<dyn FnOnce() + Send + 'env>) -> Job {
        std::mem::transmute(job)
    }

    /// Run every task to completion — the first inline on the calling
    /// thread, the rest on pool workers — and return their results in task
    /// order. Blocks until all tasks are done; if any task panicked, the
    /// first panic payload is re-thrown here (after all tasks finished, so
    /// borrowed environments stay valid throughout).
    ///
    /// This is the single execution primitive behind `join`, `par_map` and
    /// `par_chunks_mut`.
    pub(crate) fn run_batch<'env, T, F>(tasks: Vec<F>) -> Vec<T>
    where
        T: Send + 'env,
        F: FnOnce() -> T + Send + 'env,
    {
        let count = tasks.len();
        if count == 0 {
            return Vec::new();
        }
        if count == 1 {
            let mut tasks = tasks;
            return vec![(tasks.pop().expect("count checked above"))()];
        }
        let registry = registry();
        registry.ensure_workers(count - 1);
        let latch = Arc::new(Latch::new(count - 1));
        let slots: Vec<Arc<Mutex<Option<T>>>> =
            (1..count).map(|_| Arc::new(Mutex::new(None))).collect();
        let mut tasks = tasks.into_iter();
        let first = tasks.next().expect("count checked above");
        for (task, slot) in tasks.zip(&slots) {
            let slot = Arc::clone(slot);
            let latch = Arc::clone(&latch);
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                match catch_unwind(AssertUnwindSafe(task)) {
                    Ok(value) => *lock(&slot) = Some(value),
                    Err(payload) => latch.record_panic(payload),
                }
                // Release the slot (which may hold a `'env`-bound value)
                // BEFORE the latch closes: once it does, a sibling panic can
                // unwind the caller and free `'env` data, and this worker
                // must no longer own anything that borrows it. (The task
                // itself was consumed by `catch_unwind` above; the remaining
                // latch Arc is `'static`.)
                drop(slot);
                latch.complete_one();
            });
            // SAFETY: `help_until_done` below blocks until the latch has
            // counted this job's completion, so every borrow the job
            // captures outlives its execution.
            registry.inject(unsafe { erase(job) });
        }
        let first_result = catch_unwind(AssertUnwindSafe(first));
        registry.help_until_done(&latch);
        if let Some(payload) = latch.take_panic() {
            resume_unwind(payload);
        }
        let first_value = match first_result {
            Ok(value) => value,
            Err(payload) => resume_unwind(payload),
        };
        let mut out = Vec::with_capacity(count);
        out.push(first_value);
        for slot in &slots {
            out.push(
                lock(slot)
                    .take()
                    .expect("pool job completed without storing a result"),
            );
        }
        out
    }
}

/// Either of two result types — internal plumbing for [`join`].
enum Either<A, B> {
    A(A),
    B(B),
}

/// Run two closures, potentially in parallel, and return both results.
///
/// The first closure always runs on the calling thread; the second runs on a
/// pool worker when `current_num_threads() > 1`. On that pooled path both
/// closures are executed to completion even if one panics (the panic is then
/// re-thrown with its original payload); at one thread execution is
/// sequential — like real rayon's fallback — so a panic in the first closure
/// prevents the second from starting.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    type Task<'env, RA, RB> = Box<dyn FnOnce() -> Either<RA, RB> + Send + 'env>;
    let tasks: Vec<Task<'_, RA, RB>> = vec![
        Box::new(move || Either::A(a())),
        Box::new(move || Either::B(b())),
    ];
    let mut results = pool::run_batch(tasks);
    let rb = match results.pop() {
        Some(Either::B(rb)) => rb,
        _ => unreachable!("task order is preserved"),
    };
    let ra = match results.pop() {
        Some(Either::A(ra)) => ra,
        _ => unreachable!("task order is preserved"),
    };
    (ra, rb)
}

/// Map `f` over owned items on pool workers; output preserves input order.
fn parallel_map_vec<T, U, F>(items: Vec<T>, f: &F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let threads = current_num_threads();
    let len = items.len();
    if threads <= 1 || len <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = len.div_ceil(threads);
    let mut batches: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let batch: Vec<T> = it.by_ref().take(chunk).collect();
        if batch.is_empty() {
            break;
        }
        batches.push(batch);
    }
    let tasks: Vec<Box<dyn FnOnce() -> Vec<U> + Send + '_>> = batches
        .into_iter()
        .map(|batch| {
            Box::new(move || batch.into_iter().map(f).collect::<Vec<U>>())
                as Box<dyn FnOnce() -> Vec<U> + Send + '_>
        })
        .collect();
    let mut out = Vec::with_capacity(len);
    for batch in pool::run_batch(tasks) {
        out.extend(batch);
    }
    out
}

/// Apply `f` to every `(index, chunk)` of `slice.chunks_mut(size)` on pool
/// workers (chunks are disjoint, so this is safe to parallelize).
fn parallel_chunks_mut<T, F>(slice: &mut [T], size: usize, f: &F)
where
    T: Send,
    F: Fn((usize, &mut [T])) + Sync,
{
    let size = size.max(1);
    let threads = current_num_threads();
    let total_chunks = slice.len().div_ceil(size);
    if threads <= 1 || total_chunks <= 1 {
        for (i, chunk) in slice.chunks_mut(size).enumerate() {
            f((i, chunk));
        }
        return;
    }
    // Hand each worker a contiguous band of whole chunks.
    let chunks_per_band = total_chunks.div_ceil(threads);
    let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(threads);
    let mut rest = slice;
    let mut first_chunk = 0usize;
    while !rest.is_empty() {
        let band_len = (chunks_per_band * size).min(rest.len());
        let (band, tail) = rest.split_at_mut(band_len);
        rest = tail;
        let start = first_chunk;
        first_chunk += band_len.div_ceil(size);
        tasks.push(Box::new(move || {
            for (offset, chunk) in band.chunks_mut(size).enumerate() {
                f((start + offset, chunk));
            }
        }));
    }
    pool::run_batch(tasks);
}

/// Parallel iterator traits and adapters.
pub mod iter {
    use super::{parallel_chunks_mut, parallel_map_vec};

    /// An eager, order-preserving parallel iterator. Adapters are lazy;
    /// [`ParallelIterator::drive`] (called by the terminal operations)
    /// materializes the pipeline, running `map`/`for_each` stages on worker
    /// threads.
    pub trait ParallelIterator: Sized {
        /// Item type produced by this stage.
        type Item: Send;

        /// Materialize all items, in input order, applying parallel stages.
        fn drive(self) -> Vec<Self::Item>;

        /// Map every item through `f` in parallel.
        fn map<U, F>(self, f: F) -> Map<Self, F>
        where
            U: Send,
            F: Fn(Self::Item) -> U + Sync,
        {
            Map { base: self, f }
        }

        /// Pair every item with its index.
        fn enumerate(self) -> Enumerate<Self> {
            Enumerate { base: self }
        }

        /// Consume every item in parallel.
        fn for_each<F>(self, f: F)
        where
            F: Fn(Self::Item) + Sync,
        {
            let _ = Map {
                base: self,
                f: |item| f(item),
            }
            .drive();
        }

        /// Collect the items (order-stable) into `C`.
        fn collect<C>(self) -> C
        where
            C: FromParallelIterator<Self::Item>,
        {
            C::from_ordered_vec(self.drive())
        }
    }

    /// Collection types a parallel iterator can be collected into.
    pub trait FromParallelIterator<T> {
        /// Build the collection from the already-ordered items.
        fn from_ordered_vec(items: Vec<T>) -> Self;
    }

    impl<T: Send> FromParallelIterator<T> for Vec<T> {
        fn from_ordered_vec(items: Vec<T>) -> Self {
            items
        }
    }

    /// Lazy `map` adapter.
    pub struct Map<I, F> {
        base: I,
        f: F,
    }

    impl<I, U, F> ParallelIterator for Map<I, F>
    where
        I: ParallelIterator,
        U: Send,
        F: Fn(I::Item) -> U + Sync,
    {
        type Item = U;
        fn drive(self) -> Vec<U> {
            parallel_map_vec(self.base.drive(), &self.f)
        }
    }

    /// Lazy `enumerate` adapter.
    pub struct Enumerate<I> {
        base: I,
    }

    impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
        type Item = (usize, I::Item);
        fn drive(self) -> Vec<(usize, I::Item)> {
            self.base.drive().into_iter().enumerate().collect()
        }
    }

    /// Leaf iterator over a shared slice.
    pub struct SliceIter<'a, T> {
        slice: &'a [T],
    }

    impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
        type Item = &'a T;
        fn drive(self) -> Vec<&'a T> {
            self.slice.iter().collect()
        }
    }

    /// Leaf iterator over an owned vector.
    pub struct VecIter<T> {
        items: Vec<T>,
    }

    impl<T: Send> ParallelIterator for VecIter<T> {
        type Item = T;
        fn drive(self) -> Vec<T> {
            self.items
        }
    }

    /// Leaf iterator over a `usize` range.
    pub struct RangeIter {
        range: std::ops::Range<usize>,
    }

    impl ParallelIterator for RangeIter {
        type Item = usize;
        fn drive(self) -> Vec<usize> {
            self.range.collect()
        }
    }

    /// Types convertible into a parallel iterator by value.
    pub trait IntoParallelIterator {
        /// Item type of the resulting iterator.
        type Item: Send;
        /// Concrete iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Convert into a parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = VecIter<T>;
        fn into_par_iter(self) -> VecIter<T> {
            VecIter { items: self }
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Item = usize;
        type Iter = RangeIter;
        fn into_par_iter(self) -> RangeIter {
            RangeIter { range: self }
        }
    }

    impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
        type Item = &'a T;
        type Iter = SliceIter<'a, T>;
        fn into_par_iter(self) -> SliceIter<'a, T> {
            SliceIter { slice: self }
        }
    }

    /// `par_iter` on slice-like types.
    pub trait IntoParallelRefIterator<'a> {
        /// Item type (a shared reference).
        type Item: Send;
        /// Concrete iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Borrowing parallel iterator.
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        type Iter = SliceIter<'a, T>;
        fn par_iter(&'a self) -> SliceIter<'a, T> {
            SliceIter { slice: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        type Iter = SliceIter<'a, T>;
        fn par_iter(&'a self) -> SliceIter<'a, T> {
            SliceIter { slice: self }
        }
    }

    /// `par_chunks_mut` on mutable slices.
    pub trait ParallelSliceMut<T: Send> {
        /// Parallel iterator over disjoint mutable chunks of `chunk_size`
        /// elements (the last chunk may be shorter).
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMut<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMut<'_, T> {
            ChunksMut {
                slice: self,
                size: chunk_size,
            }
        }
    }

    /// Parallel mutable-chunk iterator (supports `enumerate().for_each(..)`
    /// and `for_each(..)`).
    pub struct ChunksMut<'a, T> {
        slice: &'a mut [T],
        size: usize,
    }

    impl<'a, T: Send> ChunksMut<'a, T> {
        /// Pair every chunk with its index.
        pub fn enumerate(self) -> EnumerateChunksMut<'a, T> {
            EnumerateChunksMut { inner: self }
        }

        /// Consume every chunk in parallel.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&mut [T]) + Sync,
        {
            parallel_chunks_mut(self.slice, self.size, &|(_, chunk): (usize, &mut [T])| {
                f(chunk)
            });
        }
    }

    /// Enumerated parallel mutable-chunk iterator.
    pub struct EnumerateChunksMut<'a, T> {
        inner: ChunksMut<'a, T>,
    }

    impl<'a, T: Send> EnumerateChunksMut<'a, T> {
        /// Consume every `(index, chunk)` pair in parallel.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn((usize, &mut [T])) + Sync,
        {
            parallel_chunks_mut(self.inner.slice, self.inner.size, &f);
        }
    }
}

/// The traits a caller needs in scope, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
        ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_over_ranges_and_vecs() {
        let squares: Vec<usize> = (0..257).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares.len(), 257);
        assert_eq!(squares[16], 256);
        let owned: Vec<String> = vec!["a".to_string(), "b".to_string()]
            .into_par_iter()
            .map(|s| s + "!")
            .collect();
        assert_eq!(owned, vec!["a!", "b!"]);
    }

    #[test]
    fn enumerate_attaches_input_indices() {
        let v = [10, 20, 30];
        let pairs: Vec<(usize, i32)> = v.par_iter().enumerate().map(|(i, &x)| (i, x)).collect();
        assert_eq!(pairs, vec![(0, 10), (1, 20), (2, 30)]);
    }

    #[test]
    fn par_chunks_mut_touches_every_chunk_exactly_once() {
        let mut data = vec![0u64; 103];
        data.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for x in chunk.iter_mut() {
                *x = i as u64 + 1;
            }
        });
        for (j, x) in data.iter().enumerate() {
            assert_eq!(*x, (j / 10) as u64 + 1);
        }
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = super::join(|| 6 * 7, || "ok");
        assert_eq!(a, 42);
        assert_eq!(b, "ok");
    }

    #[test]
    fn pool_survives_repeated_calls() {
        // Exercise the persistent pool across many batches; results must be
        // stable every time (the conformance suite covers the rest).
        for round in 0..50u64 {
            let out: Vec<u64> = (0..97u64)
                .map(|i| i + round)
                .collect::<Vec<_>>()
                .into_par_iter()
                .map(|x| x * 3)
                .collect();
            assert_eq!(out, (0..97).map(|i| (i + round) * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn nested_parallel_calls_complete() {
        // A parallel call inside a parallel call must not deadlock: the
        // waiting caller helps drain the injector queue.
        let out: Vec<usize> = (0..8)
            .into_par_iter()
            .map(|i| {
                let inner: Vec<usize> = (0..16).into_par_iter().map(|j| i * 16 + j).collect();
                inner.into_iter().sum::<usize>()
            })
            .collect();
        let expect: Vec<usize> = (0..8)
            .map(|i| (0..16).map(|j| i * 16 + j).sum::<usize>())
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn respects_thread_count_of_one() {
        std::env::set_var("RAYON_NUM_THREADS", "1");
        let out: Vec<usize> = (0..100).into_par_iter().map(|i| i + 1).collect();
        std::env::remove_var("RAYON_NUM_THREADS");
        assert_eq!(out, (1..=100).collect::<Vec<_>>());
        assert!(super::current_num_threads() >= 1);
    }
}
