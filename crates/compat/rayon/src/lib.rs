//! A minimal, self-contained stand-in for the parts of the `rayon` API used
//! by this workspace (the build environment has no access to a crates
//! registry; see `crates/compat/README.md`).
//!
//! Execution model: every parallel stage partitions its input into
//! contiguous chunks — one per worker — and runs them on
//! [`std::thread::scope`] threads, concatenating results **in input order**.
//! That makes `collect` order-stable, exactly like real rayon's indexed
//! parallel iterators, so callers can build bit-deterministic reductions on
//! top (see `qse-core::trainer`).
//!
//! The worker count is `RAYON_NUM_THREADS` when set (a value of `1` disables
//! parallelism entirely), otherwise [`std::thread::available_parallelism`].
//! The variable is re-read on every parallel call, so tests can flip it at
//! run time.

#![warn(missing_docs)]

use std::num::NonZeroUsize;

/// The number of worker threads parallel calls will use: the
/// `RAYON_NUM_THREADS` environment variable when set to a positive integer,
/// otherwise the machine's available parallelism.
pub fn current_num_threads() -> usize {
    match std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1),
    }
}

/// Run two closures, potentially in parallel, and return both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        let rb = hb.join().expect("rayon: joined task panicked");
        (ra, rb)
    })
}

/// Map `f` over owned items on worker threads; output preserves input order.
fn parallel_map_vec<T, U, F>(items: Vec<T>, f: &F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let threads = current_num_threads();
    let len = items.len();
    if threads <= 1 || len <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = len.div_ceil(threads);
    let mut batches: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let batch: Vec<T> = it.by_ref().take(chunk).collect();
        if batch.is_empty() {
            break;
        }
        batches.push(batch);
    }
    let mut out = Vec::with_capacity(len);
    std::thread::scope(|scope| {
        let handles: Vec<_> = batches
            .into_iter()
            .map(|batch| scope.spawn(move || batch.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("rayon: worker thread panicked"));
        }
    });
    out
}

/// Apply `f` to every `(index, chunk)` of `slice.chunks_mut(size)` on worker
/// threads (chunks are disjoint, so this is safe to parallelize).
fn parallel_chunks_mut<T, F>(slice: &mut [T], size: usize, f: &F)
where
    T: Send,
    F: Fn((usize, &mut [T])) + Sync,
{
    let size = size.max(1);
    let threads = current_num_threads();
    let total_chunks = slice.len().div_ceil(size);
    if threads <= 1 || total_chunks <= 1 {
        for (i, chunk) in slice.chunks_mut(size).enumerate() {
            f((i, chunk));
        }
        return;
    }
    // Hand each worker a contiguous band of whole chunks.
    let chunks_per_band = total_chunks.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut rest = slice;
        let mut first_chunk = 0usize;
        while !rest.is_empty() {
            let band_len = (chunks_per_band * size).min(rest.len());
            let (band, tail) = rest.split_at_mut(band_len);
            rest = tail;
            let start = first_chunk;
            first_chunk += band_len.div_ceil(size);
            scope.spawn(move || {
                for (offset, chunk) in band.chunks_mut(size).enumerate() {
                    f((start + offset, chunk));
                }
            });
        }
    });
}

/// Parallel iterator traits and adapters.
pub mod iter {
    use super::{parallel_chunks_mut, parallel_map_vec};

    /// An eager, order-preserving parallel iterator. Adapters are lazy;
    /// [`ParallelIterator::drive`] (called by the terminal operations)
    /// materializes the pipeline, running `map`/`for_each` stages on worker
    /// threads.
    pub trait ParallelIterator: Sized {
        /// Item type produced by this stage.
        type Item: Send;

        /// Materialize all items, in input order, applying parallel stages.
        fn drive(self) -> Vec<Self::Item>;

        /// Map every item through `f` in parallel.
        fn map<U, F>(self, f: F) -> Map<Self, F>
        where
            U: Send,
            F: Fn(Self::Item) -> U + Sync,
        {
            Map { base: self, f }
        }

        /// Pair every item with its index.
        fn enumerate(self) -> Enumerate<Self> {
            Enumerate { base: self }
        }

        /// Consume every item in parallel.
        fn for_each<F>(self, f: F)
        where
            F: Fn(Self::Item) + Sync,
        {
            let _ = Map {
                base: self,
                f: |item| f(item),
            }
            .drive();
        }

        /// Collect the items (order-stable) into `C`.
        fn collect<C>(self) -> C
        where
            C: FromParallelIterator<Self::Item>,
        {
            C::from_ordered_vec(self.drive())
        }
    }

    /// Collection types a parallel iterator can be collected into.
    pub trait FromParallelIterator<T> {
        /// Build the collection from the already-ordered items.
        fn from_ordered_vec(items: Vec<T>) -> Self;
    }

    impl<T: Send> FromParallelIterator<T> for Vec<T> {
        fn from_ordered_vec(items: Vec<T>) -> Self {
            items
        }
    }

    /// Lazy `map` adapter.
    pub struct Map<I, F> {
        base: I,
        f: F,
    }

    impl<I, U, F> ParallelIterator for Map<I, F>
    where
        I: ParallelIterator,
        U: Send,
        F: Fn(I::Item) -> U + Sync,
    {
        type Item = U;
        fn drive(self) -> Vec<U> {
            parallel_map_vec(self.base.drive(), &self.f)
        }
    }

    /// Lazy `enumerate` adapter.
    pub struct Enumerate<I> {
        base: I,
    }

    impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
        type Item = (usize, I::Item);
        fn drive(self) -> Vec<(usize, I::Item)> {
            self.base.drive().into_iter().enumerate().collect()
        }
    }

    /// Leaf iterator over a shared slice.
    pub struct SliceIter<'a, T> {
        slice: &'a [T],
    }

    impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
        type Item = &'a T;
        fn drive(self) -> Vec<&'a T> {
            self.slice.iter().collect()
        }
    }

    /// Leaf iterator over an owned vector.
    pub struct VecIter<T> {
        items: Vec<T>,
    }

    impl<T: Send> ParallelIterator for VecIter<T> {
        type Item = T;
        fn drive(self) -> Vec<T> {
            self.items
        }
    }

    /// Leaf iterator over a `usize` range.
    pub struct RangeIter {
        range: std::ops::Range<usize>,
    }

    impl ParallelIterator for RangeIter {
        type Item = usize;
        fn drive(self) -> Vec<usize> {
            self.range.collect()
        }
    }

    /// Types convertible into a parallel iterator by value.
    pub trait IntoParallelIterator {
        /// Item type of the resulting iterator.
        type Item: Send;
        /// Concrete iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Convert into a parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = VecIter<T>;
        fn into_par_iter(self) -> VecIter<T> {
            VecIter { items: self }
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Item = usize;
        type Iter = RangeIter;
        fn into_par_iter(self) -> RangeIter {
            RangeIter { range: self }
        }
    }

    impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
        type Item = &'a T;
        type Iter = SliceIter<'a, T>;
        fn into_par_iter(self) -> SliceIter<'a, T> {
            SliceIter { slice: self }
        }
    }

    /// `par_iter` on slice-like types.
    pub trait IntoParallelRefIterator<'a> {
        /// Item type (a shared reference).
        type Item: Send;
        /// Concrete iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Borrowing parallel iterator.
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        type Iter = SliceIter<'a, T>;
        fn par_iter(&'a self) -> SliceIter<'a, T> {
            SliceIter { slice: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        type Iter = SliceIter<'a, T>;
        fn par_iter(&'a self) -> SliceIter<'a, T> {
            SliceIter { slice: self }
        }
    }

    /// `par_chunks_mut` on mutable slices.
    pub trait ParallelSliceMut<T: Send> {
        /// Parallel iterator over disjoint mutable chunks of `chunk_size`
        /// elements (the last chunk may be shorter).
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMut<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMut<'_, T> {
            ChunksMut {
                slice: self,
                size: chunk_size,
            }
        }
    }

    /// Parallel mutable-chunk iterator (supports `enumerate().for_each(..)`
    /// and `for_each(..)`).
    pub struct ChunksMut<'a, T> {
        slice: &'a mut [T],
        size: usize,
    }

    impl<'a, T: Send> ChunksMut<'a, T> {
        /// Pair every chunk with its index.
        pub fn enumerate(self) -> EnumerateChunksMut<'a, T> {
            EnumerateChunksMut { inner: self }
        }

        /// Consume every chunk in parallel.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&mut [T]) + Sync,
        {
            parallel_chunks_mut(self.slice, self.size, &|(_, chunk): (usize, &mut [T])| {
                f(chunk)
            });
        }
    }

    /// Enumerated parallel mutable-chunk iterator.
    pub struct EnumerateChunksMut<'a, T> {
        inner: ChunksMut<'a, T>,
    }

    impl<'a, T: Send> EnumerateChunksMut<'a, T> {
        /// Consume every `(index, chunk)` pair in parallel.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn((usize, &mut [T])) + Sync,
        {
            parallel_chunks_mut(self.inner.slice, self.inner.size, &f);
        }
    }
}

/// The traits a caller needs in scope, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
        ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_over_ranges_and_vecs() {
        let squares: Vec<usize> = (0..257).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares.len(), 257);
        assert_eq!(squares[16], 256);
        let owned: Vec<String> = vec!["a".to_string(), "b".to_string()]
            .into_par_iter()
            .map(|s| s + "!")
            .collect();
        assert_eq!(owned, vec!["a!", "b!"]);
    }

    #[test]
    fn enumerate_attaches_input_indices() {
        let v = [10, 20, 30];
        let pairs: Vec<(usize, i32)> = v.par_iter().enumerate().map(|(i, &x)| (i, x)).collect();
        assert_eq!(pairs, vec![(0, 10), (1, 20), (2, 30)]);
    }

    #[test]
    fn par_chunks_mut_touches_every_chunk_exactly_once() {
        let mut data = vec![0u64; 103];
        data.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for x in chunk.iter_mut() {
                *x = i as u64 + 1;
            }
        });
        for (j, x) in data.iter().enumerate() {
            assert_eq!(*x, (j / 10) as u64 + 1);
        }
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = super::join(|| 6 * 7, || "ok");
        assert_eq!(a, 42);
        assert_eq!(b, "ok");
    }

    #[test]
    fn respects_thread_count_of_one() {
        std::env::set_var("RAYON_NUM_THREADS", "1");
        let out: Vec<usize> = (0..100).into_par_iter().map(|i| i + 1).collect();
        std::env::remove_var("RAYON_NUM_THREADS");
        assert_eq!(out, (1..=100).collect::<Vec<_>>());
        assert!(super::current_num_threads() >= 1);
    }
}
