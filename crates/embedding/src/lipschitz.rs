//! Lipschitz / Bourgain-style reference-set embeddings and a SparseMap-style
//! greedy variant.
//!
//! The related-work section of the paper (Section 2) lists Lipschitz
//! embeddings, Bourgain embeddings and SparseMap among the existing
//! embedding methods that, like the proposed method, can handle online
//! queries by comparing the query against a small set of reference objects.
//! We implement them both as additional baselines for ablation benchmarks
//! and as a sanity check of the shared [`Embedding`] interface.
//!
//! A Lipschitz embedding is defined by reference *sets* `A_1, ..., A_d`:
//! the i-th coordinate of `F(x)` is `min_{r ∈ A_i} DX(x, r)`. Bourgain's
//! construction draws the sets with exponentially increasing sizes; the
//! singleton special case recovers the reference-object embeddings of
//! Section 3.1. SparseMap approximates the same construction while greedily
//! limiting the number of exact distances spent per object; our variant
//! caps the number of reference objects consulted per coordinate.

use crate::traits::Embedding;
use qse_distance::DistanceMeasure;
use rand::seq::SliceRandom;
use rand::Rng;

/// A Lipschitz embedding defined by explicit reference sets.
#[derive(Debug, Clone, PartialEq)]
pub struct LipschitzEmbedding<O> {
    reference_sets: Vec<Vec<O>>,
}

impl<O: Clone + Send + Sync> LipschitzEmbedding<O> {
    /// Build an embedding from explicit reference sets.
    ///
    /// # Panics
    /// Panics if there are no sets or any set is empty.
    pub fn new(reference_sets: Vec<Vec<O>>) -> Self {
        assert!(
            !reference_sets.is_empty(),
            "need at least one reference set"
        );
        assert!(
            reference_sets.iter().all(|s| !s.is_empty()),
            "reference sets must be non-empty"
        );
        Self { reference_sets }
    }

    /// Bourgain-style construction: for set sizes `2^1, 2^2, ..., 2^k` draw
    /// `sets_per_size` random subsets of the sample each, giving a
    /// `k · sets_per_size`-dimensional embedding.
    pub fn bourgain<R: Rng>(
        sample: &[O],
        max_size_exponent: u32,
        sets_per_size: usize,
        rng: &mut R,
    ) -> Self {
        assert!(!sample.is_empty(), "need a non-empty sample");
        assert!(
            max_size_exponent >= 1 && sets_per_size >= 1,
            "degenerate Bourgain parameters"
        );
        let mut sets = Vec::new();
        for exp in 1..=max_size_exponent {
            let size = (1usize << exp).min(sample.len());
            for _ in 0..sets_per_size {
                let set: Vec<O> = sample.choose_multiple(rng, size).cloned().collect();
                sets.push(set);
            }
        }
        Self::new(sets)
    }

    /// The reference sets.
    pub fn reference_sets(&self) -> &[Vec<O>] {
        &self.reference_sets
    }
}

impl<O: Clone + Send + Sync> Embedding<O> for LipschitzEmbedding<O> {
    fn dim(&self) -> usize {
        self.reference_sets.len()
    }

    fn embed(&self, object: &O, distance: &dyn DistanceMeasure<O>) -> Vec<f64> {
        self.reference_sets
            .iter()
            .map(|set| {
                set.iter()
                    .map(|r| distance.distance(object, r))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect()
    }

    fn embedding_cost(&self) -> usize {
        self.reference_sets.iter().map(Vec::len).sum()
    }
}

/// A SparseMap-style embedding: Lipschitz reference sets whose per-coordinate
/// size is capped, bounding the number of exact distances spent per embedded
/// object.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMapEmbedding<O> {
    inner: LipschitzEmbedding<O>,
}

impl<O: Clone + Send + Sync> SparseMapEmbedding<O> {
    /// Build a SparseMap-style embedding with `dimensions` coordinates, each
    /// using at most `max_refs_per_coordinate` reference objects drawn from
    /// the sample.
    ///
    /// # Panics
    /// Panics if the sample is empty or either parameter is zero.
    pub fn train<R: Rng>(
        sample: &[O],
        dimensions: usize,
        max_refs_per_coordinate: usize,
        rng: &mut R,
    ) -> Self {
        assert!(!sample.is_empty(), "need a non-empty sample");
        assert!(
            dimensions >= 1 && max_refs_per_coordinate >= 1,
            "degenerate parameters"
        );
        let mut sets = Vec::with_capacity(dimensions);
        for i in 0..dimensions {
            // Later coordinates get (geometrically) larger sets, capped.
            let target = ((i / 2) + 1).min(max_refs_per_coordinate).min(sample.len());
            let set: Vec<O> = sample.choose_multiple(rng, target).cloned().collect();
            sets.push(set);
        }
        Self {
            inner: LipschitzEmbedding::new(sets),
        }
    }
}

impl<O: Clone + Send + Sync> Embedding<O> for SparseMapEmbedding<O> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }
    fn embed(&self, object: &O, distance: &dyn DistanceMeasure<O>) -> Vec<f64> {
        self.inner.embed(object, distance)
    }
    fn embedding_cost(&self) -> usize {
        self.inner.embedding_cost()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qse_distance::{CountingDistance, LpDistance};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn euclid() -> LpDistance {
        LpDistance::l2()
    }

    fn sample() -> Vec<Vec<f64>> {
        (0..32)
            .map(|i| vec![(i % 8) as f64, (i / 8) as f64])
            .collect()
    }

    #[test]
    fn coordinate_is_min_distance_to_reference_set() {
        let e = LipschitzEmbedding::new(vec![
            vec![vec![0.0, 0.0], vec![10.0, 0.0]],
            vec![vec![5.0, 5.0]],
        ]);
        let v = e.embed(&vec![1.0, 0.0], &euclid());
        assert_eq!(v.len(), 2);
        assert!((v[0] - 1.0).abs() < 1e-12);
        assert!((v[1] - (4.0_f64 * 4.0 + 5.0 * 5.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn lipschitz_coordinates_never_exceed_true_distance_differences() {
        // The defining Lipschitz property: |F_i(x) - F_i(y)| <= D(x, y) for a
        // metric D.
        let refs = sample();
        let mut rng = StdRng::seed_from_u64(1);
        let e = LipschitzEmbedding::bourgain(&refs, 3, 2, &mut rng);
        let d = euclid();
        let xs = [vec![0.5, 0.5], vec![3.0, 1.0], vec![7.0, 3.0]];
        for x in &xs {
            for y in &xs {
                let fx = e.embed(x, &d);
                let fy = e.embed(y, &d);
                let dxy = d.eval(x, y);
                for (a, b) in fx.iter().zip(&fy) {
                    assert!((a - b).abs() <= dxy + 1e-9);
                }
            }
        }
    }

    #[test]
    fn bourgain_dimensionality_and_cost() {
        let refs = sample();
        let mut rng = StdRng::seed_from_u64(2);
        let e = LipschitzEmbedding::bourgain(&refs, 3, 2, &mut rng);
        assert_eq!(e.dim(), 6);
        // Set sizes are 2,2,4,4,8,8 → total 28 distances per embedded object.
        assert_eq!(e.embedding_cost(), 28);
        let counting = CountingDistance::new(euclid());
        let _ = e.embed(&vec![0.0, 0.0], &counting);
        assert_eq!(counting.count(), 28);
    }

    #[test]
    fn sparsemap_caps_reference_budget() {
        let refs = sample();
        let mut rng = StdRng::seed_from_u64(3);
        let e = SparseMapEmbedding::train(&refs, 8, 3, &mut rng);
        assert_eq!(e.dim(), 8);
        assert!(e.embedding_cost() <= 8 * 3);
        let v = e.embed(&vec![2.0, 2.0], &euclid());
        assert_eq!(v.len(), 8);
        assert!(v.iter().all(|x| x.is_finite() && *x >= 0.0));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_reference_set() {
        let _: LipschitzEmbedding<Vec<f64>> = LipschitzEmbedding::new(vec![vec![]]);
    }
}
