//! The [`Embedding`] trait.

use qse_distance::{DistanceMeasure, FilterElem, FlatStore, FlatVectors};
use rayon::prelude::*;

/// A function `F : X → R^d` mapping objects into a real vector space.
///
/// Embedding a previously unseen object requires measuring a few exact
/// distances `DX` between that object and stored reference / pivot objects;
/// [`Embedding::embedding_cost`] reports how many, because that cost is part
/// of the paper's per-query budget (*"retrieval time is dominated by the few
/// exact distance computations we need to perform at the embedding step and
/// the refine step"*, Section 8).
pub trait Embedding<O>: Send + Sync {
    /// Output dimensionality `d`.
    fn dim(&self) -> usize;

    /// Embed `object`, evaluating exact distances through `distance`.
    fn embed(&self, object: &O, distance: &dyn DistanceMeasure<O>) -> Vec<f64>;

    /// Number of exact distance computations needed to embed one new object.
    fn embedding_cost(&self) -> usize;

    /// Embed a whole collection, fanned out across rayon worker threads.
    ///
    /// Results are in input order and identical to mapping [`Self::embed`]
    /// sequentially; exact-distance accounting stays correct because
    /// [`qse_distance::CountingDistance`] counts atomically.
    fn embed_all(&self, objects: &[O], distance: &dyn DistanceMeasure<O>) -> Vec<Vec<f64>>
    where
        O: Sync,
    {
        objects
            .par_iter()
            .map(|o| self.embed(o, distance))
            .collect()
    }

    /// Embed a whole query batch into one flat row-major [`FlatVectors`]
    /// buffer (row `q` is `F(queries[q])`), ready for the Q×N tiled filter
    /// kernel `qse_distance::WeightedL1::eval_flat_batch`.
    ///
    /// Embedding fans out across rayon worker threads via
    /// [`Self::embed_all`]; each row is bit-identical to [`Self::embed`] on
    /// that query, and the buffer carries [`Self::dim`] explicitly so empty
    /// batches still produce a store of the right width.
    fn embed_queries(&self, queries: &[O], distance: &dyn DistanceMeasure<O>) -> FlatVectors
    where
        O: Sync,
    {
        FlatVectors::from_rows_with_dim(self.dim(), self.embed_all(queries, distance))
    }

    /// Embed a whole *database* into a flat store of the chosen filter
    /// precision `E` — the indexing-time counterpart of
    /// [`Self::embed_queries`] (queries always stay `f64`; only the stored
    /// database side is compressed).
    ///
    /// Embedding fans out across rayon worker threads via
    /// [`Self::embed_all`]; the full-precision rows are then encoded under
    /// parameters fitted over the whole collection (the `u8` backend fits
    /// its per-coordinate quantization grid here). The buffer carries
    /// [`Self::dim`] explicitly so empty collections still produce a store
    /// of the right width.
    fn embed_store<E: FilterElem>(
        &self,
        objects: &[O],
        distance: &dyn DistanceMeasure<O>,
    ) -> FlatStore<E>
    where
        Self: Sized,
        O: Sync,
    {
        FlatStore::from_rows_with_dim(self.dim(), self.embed_all(objects, distance))
    }
}

impl<O, E: Embedding<O> + ?Sized> Embedding<O> for Box<E> {
    fn dim(&self) -> usize {
        (**self).dim()
    }
    fn embed(&self, object: &O, distance: &dyn DistanceMeasure<O>) -> Vec<f64> {
        (**self).embed(object, distance)
    }
    fn embedding_cost(&self) -> usize {
        (**self).embedding_cost()
    }
}

impl<O, E: Embedding<O> + ?Sized> Embedding<O> for std::sync::Arc<E> {
    fn dim(&self) -> usize {
        (**self).dim()
    }
    fn embed(&self, object: &O, distance: &dyn DistanceMeasure<O>) -> Vec<f64> {
        (**self).embed(object, distance)
    }
    fn embedding_cost(&self) -> usize {
        (**self).embedding_cost()
    }
}
