//! FastMap (Faloutsos & Lin, SIGMOD 1995).
//!
//! FastMap is the external baseline in every experiment of the paper
//! (Figures 4–6, Table 1). It maps objects into `R^d` one coordinate at a
//! time: each coordinate picks two far-apart *pivot objects* with a heuristic,
//! projects every object onto the "line" between them (Eq. 2 of the paper),
//! and then recurses on the *residual* space where the component along that
//! line has been projected out:
//!
//! `D'(x, y)² = D(x, y)² − (F(x) − F(y))²`
//!
//! With a non-Euclidean `D` the residual can go negative; like standard
//! FastMap implementations we clamp it at zero. Training touches only a
//! sample of the database (the paper runs FastMap *"on a subset of the
//! database, containing 5,000 objects"*); embedding a query costs exactly two
//! exact distance computations per dimension.

use crate::traits::Embedding;
use qse_distance::DistanceMeasure;
use rand::Rng;

/// Configuration of FastMap construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FastMapConfig {
    /// Output dimensionality.
    pub dimensions: usize,
    /// Iterations of the "choose distant objects" heuristic per dimension
    /// (the original paper uses a small constant, typically 5).
    pub pivot_iterations: usize,
}

impl Default for FastMapConfig {
    fn default() -> Self {
        Self {
            dimensions: 16,
            pivot_iterations: 5,
        }
    }
}

/// One FastMap coordinate: a pair of pivot objects, their residual-space
/// distance, and the pivots' own coordinates in all *previous* dimensions
/// (needed to compute residual distances to a new query object).
#[derive(Debug, Clone, PartialEq)]
struct FastMapLevel<O> {
    pivot_a: O,
    pivot_b: O,
    /// Residual-space distance between the pivots at this level.
    d_ab: f64,
    /// Coordinates of pivot A in dimensions `0..level`.
    coords_a: Vec<f64>,
    /// Coordinates of pivot B in dimensions `0..level`.
    coords_b: Vec<f64>,
}

/// A trained FastMap embedding.
#[derive(Debug, Clone, PartialEq)]
pub struct FastMap<O> {
    levels: Vec<FastMapLevel<O>>,
}

impl<O: Clone + Send + Sync> FastMap<O> {
    /// Train a FastMap embedding on `sample` (a subset of the database).
    ///
    /// Construction cost is `O(dimensions · pivot_iterations · |sample|)`
    /// exact distance computations.
    ///
    /// # Panics
    /// Panics if the sample has fewer than two objects or the configuration
    /// asks for zero dimensions.
    pub fn train<R: Rng>(
        sample: &[O],
        distance: &dyn DistanceMeasure<O>,
        config: FastMapConfig,
        rng: &mut R,
    ) -> Self {
        assert!(
            sample.len() >= 2,
            "FastMap needs at least two sample objects"
        );
        assert!(
            config.dimensions >= 1,
            "FastMap needs at least one dimension"
        );
        let n = sample.len();
        // coords[i] = coordinates assigned to sample object i so far.
        let mut coords: Vec<Vec<f64>> = vec![Vec::with_capacity(config.dimensions); n];
        let mut levels: Vec<FastMapLevel<O>> = Vec::with_capacity(config.dimensions);

        // Residual distance between sample objects i and j given the
        // coordinates assigned so far.
        let residual = |coords: &Vec<Vec<f64>>, i: usize, j: usize, d: f64| -> f64 {
            let mut d2 = d * d;
            for (ci, cj) in coords[i].iter().zip(&coords[j]) {
                d2 -= (ci - cj) * (ci - cj);
            }
            d2.max(0.0).sqrt()
        };

        for _ in 0..config.dimensions {
            // "Choose distant objects" heuristic: start from a random object,
            // repeatedly jump to the farthest object in residual space.
            let mut a = rng.gen_range(0..n);
            let mut b = a;
            for _ in 0..config.pivot_iterations.max(1) {
                b = (0..n)
                    .max_by(|&p, &q| {
                        let dp = residual(&coords, a, p, distance.distance(&sample[a], &sample[p]));
                        let dq = residual(&coords, a, q, distance.distance(&sample[a], &sample[q]));
                        dp.total_cmp(&dq)
                    })
                    .expect("non-empty sample");
                if b == a {
                    break;
                }
                std::mem::swap(&mut a, &mut b);
            }
            let d_ab = residual(&coords, a, b, distance.distance(&sample[a], &sample[b]));
            if d_ab <= f64::EPSILON {
                // The residual space has collapsed: all remaining structure is
                // captured. Assign zero for this and all later coordinates.
                for c in &mut coords {
                    c.push(0.0);
                }
                levels.push(FastMapLevel {
                    pivot_a: sample[a].clone(),
                    pivot_b: sample[b].clone(),
                    d_ab: 0.0,
                    coords_a: coords[a][..coords[a].len() - 1].to_vec(),
                    coords_b: coords[b][..coords[b].len() - 1].to_vec(),
                });
                continue;
            }
            // Project every sample object onto the line a-b in residual space.
            let new_coords: Vec<f64> = (0..n)
                .map(|i| {
                    let d_ia = residual(&coords, i, a, distance.distance(&sample[i], &sample[a]));
                    let d_ib = residual(&coords, i, b, distance.distance(&sample[i], &sample[b]));
                    (d_ia * d_ia + d_ab * d_ab - d_ib * d_ib) / (2.0 * d_ab)
                })
                .collect();
            levels.push(FastMapLevel {
                pivot_a: sample[a].clone(),
                pivot_b: sample[b].clone(),
                d_ab,
                coords_a: coords[a].clone(),
                coords_b: coords[b].clone(),
            });
            for (c, x) in coords.iter_mut().zip(new_coords) {
                c.push(x);
            }
        }
        Self { levels }
    }

    /// A lower-dimensional FastMap consisting of the first `dim` levels.
    ///
    /// # Panics
    /// Panics if `dim` is zero or exceeds the trained dimensionality.
    pub fn prefix(&self, dim: usize) -> Self {
        assert!(
            dim >= 1 && dim <= self.levels.len(),
            "invalid prefix length {dim}"
        );
        Self {
            levels: self.levels[..dim].to_vec(),
        }
    }
}

impl<O: Clone + Send + Sync> Embedding<O> for FastMap<O> {
    fn dim(&self) -> usize {
        self.levels.len()
    }

    fn embed(&self, object: &O, distance: &dyn DistanceMeasure<O>) -> Vec<f64> {
        let mut coords = Vec::with_capacity(self.levels.len());
        for level in &self.levels {
            if level.d_ab <= f64::EPSILON {
                coords.push(0.0);
                continue;
            }
            // Exact distances to the two pivots, then project in residual
            // space using the query's and the pivots' earlier coordinates.
            let d_qa = distance.distance(object, &level.pivot_a);
            let d_qb = distance.distance(object, &level.pivot_b);
            let mut d_qa2 = d_qa * d_qa;
            let mut d_qb2 = d_qb * d_qb;
            for (k, q_k) in coords.iter().enumerate() {
                if k < level.coords_a.len() {
                    d_qa2 -= (q_k - level.coords_a[k]) * (q_k - level.coords_a[k]);
                }
                if k < level.coords_b.len() {
                    d_qb2 -= (q_k - level.coords_b[k]) * (q_k - level.coords_b[k]);
                }
            }
            let d_qa2 = d_qa2.max(0.0);
            let d_qb2 = d_qb2.max(0.0);
            coords.push((d_qa2 + level.d_ab * level.d_ab - d_qb2) / (2.0 * level.d_ab));
        }
        coords
    }

    fn embedding_cost(&self) -> usize {
        2 * self.levels.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qse_distance::traits::{FnDistance, MetricProperties};
    use qse_distance::{CountingDistance, LpDistance};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn euclid() -> LpDistance {
        LpDistance::l2()
    }

    fn grid_sample() -> Vec<Vec<f64>> {
        let mut out = Vec::new();
        for i in 0..6 {
            for j in 0..6 {
                out.push(vec![i as f64, j as f64 * 0.5]);
            }
        }
        out
    }

    #[test]
    fn preserves_euclidean_distances_on_euclidean_data() {
        // On genuinely 2-D Euclidean data, a 2-D FastMap should reproduce
        // pairwise distances almost exactly.
        let sample = grid_sample();
        let mut rng = StdRng::seed_from_u64(1);
        let fm = FastMap::train(
            &sample,
            &euclid(),
            FastMapConfig {
                dimensions: 2,
                pivot_iterations: 5,
            },
            &mut rng,
        );
        let embedded: Vec<Vec<f64>> = sample.iter().map(|o| fm.embed(o, &euclid())).collect();
        let l2 = LpDistance::l2();
        let mut max_err: f64 = 0.0;
        for i in 0..sample.len() {
            for j in (i + 1)..sample.len() {
                let orig = l2.eval(&sample[i], &sample[j]);
                let emb = l2.eval(&embedded[i], &embedded[j]);
                max_err = max_err.max((orig - emb).abs());
            }
        }
        assert!(max_err < 1e-6, "max distortion {max_err}");
    }

    #[test]
    fn embedding_cost_is_two_per_dimension() {
        let sample = grid_sample();
        let mut rng = StdRng::seed_from_u64(2);
        let fm = FastMap::train(
            &sample,
            &euclid(),
            FastMapConfig {
                dimensions: 4,
                pivot_iterations: 3,
            },
            &mut rng,
        );
        assert_eq!(fm.embedding_cost(), 8);
        let counting = CountingDistance::new(euclid());
        let _ = fm.embed(&vec![1.5, 1.5], &counting);
        assert_eq!(counting.count(), 8);
    }

    #[test]
    fn prefix_matches_leading_coordinates() {
        let sample = grid_sample();
        let mut rng = StdRng::seed_from_u64(3);
        let fm = FastMap::train(
            &sample,
            &euclid(),
            FastMapConfig {
                dimensions: 3,
                pivot_iterations: 3,
            },
            &mut rng,
        );
        let p = fm.prefix(2);
        let q = vec![2.2, 0.7];
        let full = fm.embed(&q, &euclid());
        let pref = p.embed(&q, &euclid());
        assert_eq!(pref.len(), 2);
        assert!((full[0] - pref[0]).abs() < 1e-12);
        assert!((full[1] - pref[1]).abs() < 1e-12);
    }

    #[test]
    fn handles_degenerate_all_identical_sample() {
        let sample = vec![vec![1.0, 1.0]; 5];
        let mut rng = StdRng::seed_from_u64(4);
        let fm = FastMap::train(
            &sample,
            &euclid(),
            FastMapConfig {
                dimensions: 3,
                pivot_iterations: 2,
            },
            &mut rng,
        );
        let v = fm.embed(&vec![2.0, 2.0], &euclid());
        assert_eq!(v.len(), 3);
        assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn works_with_non_metric_distances() {
        // Squared differences violate the triangle inequality; FastMap must
        // still produce finite coordinates thanks to residual clamping.
        let sq = FnDistance::new(
            "sq",
            MetricProperties::SymmetricNonMetric,
            |a: &f64, b: &f64| (a - b) * (a - b),
        );
        let sample: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let mut rng = StdRng::seed_from_u64(5);
        let fm = FastMap::train(
            &sample,
            &sq,
            FastMapConfig {
                dimensions: 4,
                pivot_iterations: 3,
            },
            &mut rng,
        );
        for x in [0.0, 3.3, 19.0, 25.0] {
            let v = fm.embed(&x, &sq);
            assert!(
                v.iter().all(|c| c.is_finite()),
                "non-finite embedding for {x}: {v:?}"
            );
        }
    }

    #[test]
    fn nearest_neighbor_is_roughly_preserved() {
        // Embedded nearest neighbors should usually agree with the original
        // space on easy Euclidean data.
        let sample = grid_sample();
        let mut rng = StdRng::seed_from_u64(6);
        let fm = FastMap::train(
            &sample,
            &euclid(),
            FastMapConfig {
                dimensions: 2,
                pivot_iterations: 5,
            },
            &mut rng,
        );
        let embedded: Vec<Vec<f64>> = sample.iter().map(|o| fm.embed(o, &euclid())).collect();
        let l2 = LpDistance::l2();
        let mut agree = 0;
        for (qi, q) in sample.iter().enumerate() {
            let nn_orig = (0..sample.len())
                .filter(|&i| i != qi)
                .min_by(|&a, &b| {
                    l2.eval(q, &sample[a])
                        .partial_cmp(&l2.eval(q, &sample[b]))
                        .unwrap()
                })
                .unwrap();
            let nn_emb = (0..sample.len())
                .filter(|&i| i != qi)
                .min_by(|&a, &b| {
                    l2.eval(&embedded[qi], &embedded[a])
                        .partial_cmp(&l2.eval(&embedded[qi], &embedded[b]))
                        .unwrap()
                })
                .unwrap();
            if l2.eval(q, &sample[nn_emb]) <= l2.eval(q, &sample[nn_orig]) + 1e-9 {
                agree += 1;
            }
        }
        assert!(
            agree as f64 >= 0.9 * sample.len() as f64,
            "agreement {agree}/{}",
            sample.len()
        );
    }

    #[test]
    #[should_panic(expected = "at least two sample objects")]
    fn rejects_tiny_samples() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = FastMap::train(&[vec![0.0]], &euclid(), FastMapConfig::default(), &mut rng);
    }
}
