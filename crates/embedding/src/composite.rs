//! Multi-dimensional embeddings assembled from 1-D embeddings.
//!
//! Both the original BoostMap and the query-sensitive method of the paper
//! output an embedding of the form `F_out(x) = (F_1(x), ..., F_d(x))` where
//! each `F_i` is a 1-D reference or pivot embedding (Section 5.4). Several
//! coordinates frequently share reference / pivot objects, so embedding a new
//! object needs at most — and often fewer than — `2d` exact distance
//! computations; [`CompositeEmbedding`] de-duplicates those lookups, which is
//! what the per-query cost accounting of the evaluation harness relies on.

use crate::one_d::OneDEmbedding;
use crate::traits::Embedding;
use qse_distance::DistanceMeasure;
use std::collections::HashMap;

/// A `d`-dimensional embedding defined coordinate-wise by 1-D embeddings.
#[derive(Debug, Clone, PartialEq)]
pub struct CompositeEmbedding<O> {
    coordinates: Vec<OneDEmbedding<O>>,
}

impl<O: Clone> CompositeEmbedding<O> {
    /// Build a composite embedding from its coordinate functions.
    ///
    /// # Panics
    /// Panics if no coordinates are supplied.
    pub fn new(coordinates: Vec<OneDEmbedding<O>>) -> Self {
        assert!(
            !coordinates.is_empty(),
            "an embedding needs at least one coordinate"
        );
        Self { coordinates }
    }

    /// The coordinate functions.
    pub fn coordinates(&self) -> &[OneDEmbedding<O>] {
        &self.coordinates
    }

    /// A new embedding consisting of the first `dim` coordinates. Because
    /// boosting adds coordinates sequentially, prefixes of a trained
    /// embedding are themselves valid (lower-dimensional) embeddings; the
    /// parameter sweeps of Section 9 rely on this.
    ///
    /// # Panics
    /// Panics if `dim` is zero or larger than the current dimensionality.
    pub fn prefix(&self, dim: usize) -> Self {
        assert!(
            dim >= 1 && dim <= self.coordinates.len(),
            "invalid prefix length {dim}"
        );
        Self {
            coordinates: self.coordinates[..dim].to_vec(),
        }
    }

    /// The distinct candidate objects referenced by the coordinate functions,
    /// as `(candidate id, object)` pairs in first-use order.
    pub fn unique_candidates(&self) -> Vec<(usize, &O)> {
        let mut seen = HashMap::new();
        let mut out = Vec::new();
        for coord in &self.coordinates {
            match coord {
                OneDEmbedding::Reference { reference } => {
                    if seen.insert(reference.id, ()).is_none() {
                        out.push((reference.id, &reference.object));
                    }
                }
                OneDEmbedding::Pivot { x1, x2, .. } => {
                    if seen.insert(x1.id, ()).is_none() {
                        out.push((x1.id, &x1.object));
                    }
                    if seen.insert(x2.id, ()).is_none() {
                        out.push((x2.id, &x2.object));
                    }
                }
            }
        }
        out
    }
}

impl<O: Clone + Send + Sync> Embedding<O> for CompositeEmbedding<O> {
    fn dim(&self) -> usize {
        self.coordinates.len()
    }

    fn embed(&self, object: &O, distance: &dyn DistanceMeasure<O>) -> Vec<f64> {
        // Measure the distance to every distinct candidate exactly once.
        let mut cache: HashMap<usize, f64> = HashMap::new();
        for (id, candidate) in self.unique_candidates() {
            cache.insert(id, distance.distance(object, candidate));
        }
        let lookup = |id: usize| cache.get(&id).copied();
        self.coordinates
            .iter()
            .map(|c| c.value_from_lookup(&lookup))
            .collect()
    }

    fn embedding_cost(&self) -> usize {
        self.unique_candidates().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::one_d::Candidate;
    use qse_distance::counting::CountingDistance;
    use qse_distance::traits::{FnDistance, MetricProperties};

    fn abs() -> FnDistance<impl Fn(&f64, &f64) -> f64 + Send + Sync> {
        FnDistance::new("abs", MetricProperties::Metric, |a: &f64, b: &f64| {
            (a - b).abs()
        })
    }

    fn example() -> CompositeEmbedding<f64> {
        CompositeEmbedding::new(vec![
            OneDEmbedding::reference(Candidate::new(0, 0.0)),
            OneDEmbedding::reference(Candidate::new(1, 10.0)),
            OneDEmbedding::pivot(Candidate::new(0, 0.0), Candidate::new(2, 4.0), 4.0),
        ])
    }

    #[test]
    fn embeds_coordinate_wise() {
        let e = example();
        let v = e.embed(&3.0, &abs());
        assert_eq!(v.len(), 3);
        assert_eq!(v[0], 3.0);
        assert_eq!(v[1], 7.0);
        // Pivot projection of x=3 onto [0, 4] in 1-D Euclidean space is 3.
        assert!((v[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn deduplicates_candidate_distances() {
        let e = example();
        // Candidates are {0, 10, 4} → 3 unique objects even though the pivot
        // coordinate references candidate 0 again.
        assert_eq!(e.embedding_cost(), 3);
        let counting = CountingDistance::new(abs());
        let _ = e.embed(&5.0, &counting);
        assert_eq!(counting.count(), 3);
    }

    #[test]
    fn prefix_takes_leading_coordinates() {
        let e = example();
        let p = e.prefix(2);
        assert_eq!(p.dim(), 2);
        assert_eq!(p.embed(&3.0, &abs()), vec![3.0, 7.0]);
        assert_eq!(p.embedding_cost(), 2);
    }

    #[test]
    fn unique_candidates_in_first_use_order() {
        let e = example();
        let ids: Vec<usize> = e.unique_candidates().iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "at least one coordinate")]
    fn rejects_empty_embedding() {
        let _: CompositeEmbedding<f64> = CompositeEmbedding::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "invalid prefix length")]
    fn rejects_out_of_range_prefix() {
        let _ = example().prefix(10);
    }
}
