//! Seeded, deterministic k-means over embedded vectors — the coarse
//! quantizer behind the cluster-routed (IVF-style) retrieval layer.
//!
//! The router partitions the embedded database into `k` cells so the
//! filter scan can visit only the cells nearest to a query instead of the
//! whole collection (`qse_retrieval::routed`). Everything here is plain
//! std + the workspace shims, and **deterministic** for a fixed seed at
//! any thread count:
//!
//! * initialization is k-means++ driven by the seeded [`StdRng`] —
//!   sequential by construction;
//! * Lloyd assignment is embarrassingly parallel (each point's nearest
//!   centroid is independent), so fanning it out over rayon cannot
//!   reorder anything;
//! * centroid updates accumulate **sequentially in point order**, keeping
//!   one canonical `f64` summation order exactly like the workspace's
//!   filter kernels.
//!
//! Ties in the nearest-centroid test break toward the lower centroid
//! index (a strict `<` on squared distance), so assignments — and with
//! them the whole fit — are a pure function of `(rows, config)`.

use qse_distance::FlatVectors;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Configuration of one [`KMeans::fit`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KMeansConfig {
    /// Number of cells `k` (clamped to the number of rows at fit time).
    pub cells: usize,
    /// Seed of the k-means++ initialization.
    pub seed: u64,
    /// Maximum Lloyd iterations (the fit stops early once assignments
    /// stabilize).
    pub max_iters: usize,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        Self {
            cells: 16,
            seed: 0x5EED,
            max_iters: 25,
        }
    }
}

/// A fitted coarse quantizer: `k` centroids in embedded space.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeans {
    centroids: FlatVectors,
}

/// Squared Euclidean distance between two equal-length rows (the k-means
/// objective's metric; routing at query time ranks centroids by the
/// *filter* distance instead — see `qse_retrieval::routed`).
#[inline]
fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

impl KMeans {
    /// Fit `config.cells` centroids over `rows` with seeded k-means++
    /// initialization followed by Lloyd iterations. Deterministic for a
    /// fixed `(rows, config)` at any thread count (see the module docs).
    ///
    /// `cells` is clamped to the number of rows (every centroid can then
    /// own at least one point); a cluster that still ends up empty keeps
    /// its previous centroid.
    ///
    /// # Panics
    /// Panics if `rows` is empty or `config.cells` is zero.
    pub fn fit(rows: &FlatVectors, config: KMeansConfig) -> Self {
        assert!(!rows.is_empty(), "cannot fit k-means over an empty store");
        assert!(config.cells >= 1, "cells must be at least 1");
        let n = rows.len();
        let dim = rows.dim();
        let k = config.cells.min(n);
        let mut rng = StdRng::seed_from_u64(config.seed);

        // k-means++ seeding: first centroid uniform, then proportional to
        // the squared distance to the nearest chosen centroid.
        let mut centroid_rows: Vec<Vec<f64>> = Vec::with_capacity(k);
        let first = rng.gen_range(0..n);
        centroid_rows.push(rows.row(first).to_vec());
        let mut nearest_sq: Vec<f64> = (0..n)
            .map(|i| sq_dist(rows.row(i), &centroid_rows[0]))
            .collect();
        while centroid_rows.len() < k {
            let total: f64 = nearest_sq.iter().sum();
            let pick = if total > 0.0 {
                // Walk the cumulative mass; the final fallback covers the
                // rounding tail.
                let target = rng.gen_range(0.0..total);
                let mut acc = 0.0;
                let mut chosen = n - 1;
                for (i, &d) in nearest_sq.iter().enumerate() {
                    acc += d;
                    if target < acc {
                        chosen = i;
                        break;
                    }
                }
                chosen
            } else {
                // Every point coincides with a centroid already; any pick
                // works, keep it deterministic.
                rng.gen_range(0..n)
            };
            let row = rows.row(pick).to_vec();
            for (i, slot) in nearest_sq.iter_mut().enumerate() {
                let d = sq_dist(rows.row(i), &row);
                if d < *slot {
                    *slot = d;
                }
            }
            centroid_rows.push(row);
        }

        // Lloyd iterations: parallel assignment, sequential (point-order)
        // accumulation, early exit once assignments stop moving.
        let mut centroids = FlatVectors::from_rows_with_dim(dim, centroid_rows);
        let mut assignment = vec![usize::MAX; n];
        for _ in 0..config.max_iters {
            let next = Self::assign_all_to(&centroids, rows);
            if next == assignment {
                break;
            }
            assignment = next;
            let mut sums = vec![0.0f64; k * dim];
            let mut counts = vec![0usize; k];
            for (i, &c) in assignment.iter().enumerate() {
                counts[c] += 1;
                let row = rows.row(i);
                let sum = &mut sums[c * dim..(c + 1) * dim];
                for (s, v) in sum.iter_mut().zip(row) {
                    *s += v;
                }
            }
            let mut updated: Vec<Vec<f64>> = Vec::with_capacity(k);
            for c in 0..k {
                if counts[c] == 0 {
                    // Empty cluster: keep the previous centroid.
                    updated.push(centroids.row(c).to_vec());
                } else {
                    let inv = 1.0 / counts[c] as f64;
                    updated.push(
                        sums[c * dim..(c + 1) * dim]
                            .iter()
                            .map(|s| s * inv)
                            .collect(),
                    );
                }
            }
            centroids = FlatVectors::from_rows_with_dim(dim, updated);
        }
        Self { centroids }
    }

    /// Reassemble a quantizer from previously fitted centroids — the
    /// snapshot load path (`qse_retrieval::snapshot`). The rows are adopted
    /// verbatim, so assignments are bit-identical to the quantizer the
    /// centroids came from.
    ///
    /// # Panics
    /// Panics if `centroids` is empty (a fitted quantizer always has at
    /// least one cell).
    pub fn from_centroids(centroids: FlatVectors) -> Self {
        assert!(
            !centroids.is_empty(),
            "a quantizer needs at least one centroid"
        );
        Self { centroids }
    }

    /// The fitted centroids (flat row-major, one row per cell).
    pub fn centroids(&self) -> &FlatVectors {
        &self.centroids
    }

    /// Number of cells `k`.
    pub fn cells(&self) -> usize {
        self.centroids.len()
    }

    /// Embedding dimensionality the quantizer was fitted on.
    pub fn dim(&self) -> usize {
        self.centroids.dim()
    }

    /// The cell of one embedded row: the nearest centroid by squared
    /// Euclidean distance, ties toward the lower index.
    ///
    /// # Panics
    /// Panics if `row` does not match the fitted dimensionality.
    pub fn assign(&self, row: &[f64]) -> usize {
        assert_eq!(
            row.len(),
            self.dim(),
            "row/centroid dimensionality mismatch"
        );
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for c in 0..self.centroids.len() {
            let d = sq_dist(row, self.centroids.row(c));
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        best
    }

    /// The cell of every row of `rows`, fanned out over the worker pool
    /// (per-point work is independent, so the result is deterministic at
    /// any thread count).
    ///
    /// # Panics
    /// Panics if `rows` does not match the fitted dimensionality.
    pub fn assign_all(&self, rows: &FlatVectors) -> Vec<usize> {
        assert_eq!(
            rows.dim(),
            self.dim(),
            "row/centroid dimensionality mismatch"
        );
        Self::assign_all_to(&self.centroids, rows)
    }

    fn assign_all_to(centroids: &FlatVectors, rows: &FlatVectors) -> Vec<usize> {
        (0..rows.len())
            .into_par_iter()
            .map(|i| {
                let row = rows.row(i);
                let mut best = 0usize;
                let mut best_d = f64::INFINITY;
                for c in 0..centroids.len() {
                    let d = sq_dist(row, centroids.row(c));
                    if d < best_d {
                        best_d = d;
                        best = c;
                    }
                }
                best
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_rows(clusters: usize, per: usize, dim: usize) -> FlatVectors {
        // Well-separated blobs: cluster c lives around 100·c in every
        // coordinate with a small deterministic wobble.
        let rows: Vec<Vec<f64>> = (0..clusters * per)
            .map(|i| {
                let c = i % clusters;
                (0..dim)
                    .map(|j| 100.0 * c as f64 + ((i * dim + j) as f64 * 0.7).sin())
                    .collect()
            })
            .collect();
        FlatVectors::from_rows(rows)
    }

    #[test]
    fn fit_is_deterministic_for_a_fixed_seed() {
        let rows = blob_rows(4, 30, 6);
        let config = KMeansConfig {
            cells: 4,
            seed: 9,
            max_iters: 20,
        };
        let a = KMeans::fit(&rows, config);
        let b = KMeans::fit(&rows, config);
        assert_eq!(a, b);
        assert_eq!(a.assign_all(&rows), b.assign_all(&rows));
    }

    #[test]
    fn well_separated_blobs_are_recovered() {
        let clusters = 5;
        let per = 40;
        let rows = blob_rows(clusters, per, 4);
        let km = KMeans::fit(
            &rows,
            KMeansConfig {
                cells: clusters,
                seed: 3,
                max_iters: 30,
            },
        );
        let assignment = km.assign_all(&rows);
        // Every true blob must map onto exactly one cell (blobs are 100
        // apart; wobble is ±1) and distinct blobs onto distinct cells.
        let mut cell_of_blob = vec![usize::MAX; clusters];
        for (i, &cell) in assignment.iter().enumerate() {
            let blob = i % clusters;
            if cell_of_blob[blob] == usize::MAX {
                cell_of_blob[blob] = cell;
            }
            assert_eq!(cell_of_blob[blob], cell, "blob {blob} split across cells");
        }
        let mut seen = cell_of_blob.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), clusters, "blobs merged into one cell");
    }

    #[test]
    fn cells_clamp_to_the_number_of_rows() {
        let rows = FlatVectors::from_rows(vec![vec![0.0, 0.0], vec![5.0, 5.0]]);
        let km = KMeans::fit(
            &rows,
            KMeansConfig {
                cells: 10,
                seed: 1,
                max_iters: 5,
            },
        );
        assert_eq!(km.cells(), 2);
        assert_ne!(km.assign(&[0.1, -0.1]), km.assign(&[4.9, 5.2]));
    }

    #[test]
    fn assign_matches_assign_all() {
        let rows = blob_rows(3, 25, 5);
        let km = KMeans::fit(
            &rows,
            KMeansConfig {
                cells: 3,
                seed: 7,
                max_iters: 15,
            },
        );
        let all = km.assign_all(&rows);
        for (i, &cell) in all.iter().enumerate() {
            assert_eq!(cell, km.assign(rows.row(i)), "row {i}");
        }
    }

    #[test]
    fn from_centroids_reproduces_assignments() {
        let rows = blob_rows(3, 20, 4);
        let km = KMeans::fit(
            &rows,
            KMeansConfig {
                cells: 3,
                seed: 2,
                max_iters: 10,
            },
        );
        let rebuilt = KMeans::from_centroids(km.centroids().clone());
        assert_eq!(rebuilt, km);
        assert_eq!(rebuilt.assign_all(&rows), km.assign_all(&rows));
    }

    #[test]
    #[should_panic(expected = "at least one centroid")]
    fn from_centroids_rejects_an_empty_store() {
        let _ = KMeans::from_centroids(FlatVectors::with_dim(2));
    }

    #[test]
    #[should_panic(expected = "empty store")]
    fn fit_rejects_an_empty_store() {
        let _ = KMeans::fit(&FlatVectors::with_dim(3), KMeansConfig::default());
    }

    #[test]
    fn degenerate_identical_rows_still_fit() {
        // All points coincide: total k-means++ mass is zero after the
        // first pick; the fallback path must still produce k centroids.
        let rows = FlatVectors::from_rows(vec![vec![2.0, 2.0]; 8]);
        let km = KMeans::fit(
            &rows,
            KMeansConfig {
                cells: 3,
                seed: 11,
                max_iters: 5,
            },
        );
        assert_eq!(km.cells(), 3);
        assert_eq!(km.assign(&[2.0, 2.0]), 0, "ties break toward cell 0");
    }
}
