//! # qse-embedding
//!
//! Embedding framework for the reproduction of *Query-Sensitive Embeddings*
//! (SIGMOD 2005).
//!
//! An *embedding* maps objects of an arbitrary space `X` (with an expensive
//! distance `DX`) into `R^d`, where distances are cheap. This crate provides
//! the building blocks and baselines the paper uses:
//!
//! * [`traits::Embedding`] — the common interface: embed an object by
//!   spending a small, known number of exact distance computations.
//! * [`one_d`] — the two families of 1-D embeddings of Section 3.1:
//!   reference-object embeddings `F^r(x) = DX(x, r)` (Eq. 1) and FastMap-style
//!   pivot "line projection" embeddings `F^{x1,x2}` (Eq. 2). These are the
//!   weak-classifier building blocks of BoostMap and of the query-sensitive
//!   method in `qse-core`.
//! * [`composite`] — a d-dimensional embedding assembled from 1-D embeddings,
//!   with de-duplicated exact-distance accounting (embedding a query costs at
//!   most `2d` exact distances, as stated in Section 7).
//! * [`fastmap`] — the FastMap algorithm of Faloutsos & Lin (1995), the
//!   external baseline in every experiment of Section 9.
//! * [`lipschitz`] — Lipschitz / Bourgain-style reference-set embeddings
//!   (related work, Section 2), plus a SparseMap-style greedy variant.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod composite;
pub mod fastmap;
pub mod kmeans;
pub mod lipschitz;
pub mod one_d;
pub mod traits;

pub use composite::CompositeEmbedding;
pub use fastmap::{FastMap, FastMapConfig};
pub use kmeans::{KMeans, KMeansConfig};
pub use lipschitz::{LipschitzEmbedding, SparseMapEmbedding};
pub use one_d::OneDEmbedding;
pub use traits::Embedding;
