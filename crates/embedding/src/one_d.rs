//! One-dimensional embeddings (Section 3.1 of the paper).
//!
//! Two families are defined from *candidate objects* of the original space:
//!
//! * **Reference-object embeddings** (Eq. 1): given a reference object `r`,
//!   `F^r(x) = DX(x, r)`. Costs one exact distance per embedded object.
//! * **Pivot ("line projection") embeddings** (Eq. 2): given two pivot
//!   objects `x1, x2`, the embedding is the projection of `x` onto the line
//!   `x1 x2`, computed from the three pairwise distances via the law of
//!   cosines. Costs two exact distances per embedded object (the pivot–pivot
//!   distance is precomputed once).
//!
//! Both act as *weak classifiers* of object triples `(q, a, b)` (Section
//! 3.2): `F̃(q, a, b) = |F(q) − F(b)| − |F(q) − F(a)|` is positive when the
//! embedding maps `q` closer to `a`.

use crate::traits::Embedding;
use qse_distance::DistanceMeasure;

/// A candidate object tagged with the identifier it had in the candidate set
/// `C` it was drawn from. The identifier lets composite embeddings
/// de-duplicate exact distance computations when several 1-D embeddings share
/// a reference or pivot object.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate<O> {
    /// Identifier of the object within its candidate pool.
    pub id: usize,
    /// The object itself.
    pub object: O,
}

impl<O> Candidate<O> {
    /// Tag `object` with candidate id `id`.
    pub fn new(id: usize, object: O) -> Self {
        Self { id, object }
    }
}

/// A one-dimensional embedding built from candidate objects.
#[derive(Debug, Clone, PartialEq)]
pub enum OneDEmbedding<O> {
    /// `F^r(x) = DX(x, r)` for a reference object `r` (Eq. 1).
    Reference {
        /// The reference (vantage) object.
        reference: Candidate<O>,
    },
    /// `F^{x1,x2}(x)` — projection of `x` onto the "line" between two pivot
    /// objects (Eq. 2).
    Pivot {
        /// First pivot object.
        x1: Candidate<O>,
        /// Second pivot object.
        x2: Candidate<O>,
        /// Precomputed pivot–pivot distance `DX(x1, x2)`.
        d12: f64,
    },
}

impl<O> OneDEmbedding<O> {
    /// Build a reference-object embedding.
    pub fn reference(reference: Candidate<O>) -> Self {
        OneDEmbedding::Reference { reference }
    }

    /// Build a pivot embedding; `d12` must be the exact distance between the
    /// pivots.
    ///
    /// # Panics
    /// Panics if `d12` is not strictly positive (identical pivots give a
    /// degenerate projection).
    pub fn pivot(x1: Candidate<O>, x2: Candidate<O>, d12: f64) -> Self {
        assert!(
            d12.is_finite() && d12 > 0.0,
            "pivot embeddings need a positive pivot-pivot distance, got {d12}"
        );
        OneDEmbedding::Pivot { x1, x2, d12 }
    }

    /// Candidate ids of the objects this embedding must be compared against
    /// when embedding a new object (1 for a reference embedding, 2 for a
    /// pivot embedding).
    pub fn required_candidates(&self) -> Vec<usize> {
        match self {
            OneDEmbedding::Reference { reference } => vec![reference.id],
            OneDEmbedding::Pivot { x1, x2, .. } => vec![x1.id, x2.id],
        }
    }

    /// Number of exact distances needed to embed one new object.
    pub fn cost(&self) -> usize {
        match self {
            OneDEmbedding::Reference { .. } => 1,
            OneDEmbedding::Pivot { .. } => 2,
        }
    }

    /// Compute `F(x)` using the provided distance measure.
    pub fn value(&self, x: &O, distance: &dyn DistanceMeasure<O>) -> f64 {
        match self {
            OneDEmbedding::Reference { reference } => distance.distance(x, &reference.object),
            OneDEmbedding::Pivot { x1, x2, d12 } => {
                let d1 = distance.distance(x, &x1.object);
                let d2 = distance.distance(x, &x2.object);
                Self::pivot_projection(d1, d2, *d12)
            }
        }
    }

    /// Compute `F(x)` from already-measured distances to the candidates this
    /// embedding uses (keyed by candidate id). Used by composite embeddings
    /// and by the trainer, which precompute candidate distances.
    ///
    /// # Panics
    /// Panics if a needed candidate distance is missing.
    pub fn value_from_lookup(&self, lookup: &dyn Fn(usize) -> Option<f64>) -> f64 {
        match self {
            OneDEmbedding::Reference { reference } => lookup(reference.id)
                .unwrap_or_else(|| panic!("missing distance to candidate {}", reference.id)),
            OneDEmbedding::Pivot { x1, x2, d12 } => {
                let d1 = lookup(x1.id)
                    .unwrap_or_else(|| panic!("missing distance to candidate {}", x1.id));
                let d2 = lookup(x2.id)
                    .unwrap_or_else(|| panic!("missing distance to candidate {}", x2.id));
                Self::pivot_projection(d1, d2, *d12)
            }
        }
    }

    /// Eq. 2: `F(x) = (DX(x,x1)² + DX(x1,x2)² − DX(x,x2)²) / (2 DX(x1,x2))`.
    pub fn pivot_projection(d_x_x1: f64, d_x_x2: f64, d12: f64) -> f64 {
        (d_x_x1 * d_x_x1 + d12 * d12 - d_x_x2 * d_x_x2) / (2.0 * d12)
    }

    /// The weak-classifier value `F̃(q, a, b) = |F(q) − F(b)| − |F(q) − F(a)|`
    /// for three already-embedded values (Eq. 3, specialised to 1-D). The
    /// sign estimates whether `q` is closer to `a` (positive) or to `b`
    /// (negative).
    pub fn classifier_value(fq: f64, fa: f64, fb: f64) -> f64 {
        (fq - fb).abs() - (fq - fa).abs()
    }
}

impl<O: Clone + Send + Sync> Embedding<O> for OneDEmbedding<O> {
    fn dim(&self) -> usize {
        1
    }
    fn embed(&self, object: &O, distance: &dyn DistanceMeasure<O>) -> Vec<f64> {
        vec![self.value(object, distance)]
    }
    fn embedding_cost(&self) -> usize {
        self.cost()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qse_distance::traits::{FnDistance, MetricProperties};

    fn euclid1d() -> FnDistance<impl Fn(&f64, &f64) -> f64 + Send + Sync> {
        FnDistance::new("abs", MetricProperties::Metric, |a: &f64, b: &f64| {
            (a - b).abs()
        })
    }

    #[test]
    fn reference_embedding_is_distance_to_reference() {
        let f = OneDEmbedding::reference(Candidate::new(0, 2.0_f64));
        let d = euclid1d();
        assert_eq!(f.value(&5.0, &d), 3.0);
        assert_eq!(f.value(&2.0, &d), 0.0);
        assert_eq!(f.cost(), 1);
        assert_eq!(f.required_candidates(), vec![0]);
    }

    #[test]
    fn pivot_embedding_recovers_projection_on_the_real_line() {
        // In a true 1-D Euclidean space the projection of x onto the segment
        // [x1, x2] is exactly x - x1 (signed), so F(x) should equal |x - x1|
        // for x between the pivots and extrapolate linearly outside.
        let d = euclid1d();
        let x1 = 1.0_f64;
        let x2 = 5.0_f64;
        let f = OneDEmbedding::pivot(Candidate::new(0, x1), Candidate::new(1, x2), 4.0);
        for x in [0.0, 1.0, 2.0, 3.5, 5.0, 7.0] {
            let expected = x - x1;
            assert!(
                (f.value(&x, &d) - expected).abs() < 1e-12,
                "x={x}: {} vs {expected}",
                f.value(&x, &d)
            );
        }
        assert_eq!(f.cost(), 2);
        assert_eq!(f.required_candidates(), vec![0, 1]);
    }

    #[test]
    fn value_from_lookup_matches_direct_value() {
        let d = euclid1d();
        let f = OneDEmbedding::pivot(Candidate::new(3, 0.0_f64), Candidate::new(7, 2.0_f64), 2.0);
        let x = 1.25_f64;
        let lookup = |id: usize| -> Option<f64> {
            match id {
                3 => Some((x - 0.0f64).abs()),
                7 => Some((x - 2.0f64).abs()),
                _ => None,
            }
        };
        assert!((f.value(&x, &d) - f.value_from_lookup(&lookup)).abs() < 1e-12);
    }

    #[test]
    fn classifier_value_sign_reflects_relative_closeness() {
        // q=0, a=1, b=5 on the real line with a reference at 0: q is closer
        // to a, so the classifier must be positive.
        let v = OneDEmbedding::<f64>::classifier_value(0.0, 1.0, 5.0);
        assert!(v > 0.0);
        // And negative when q is closer to b.
        let v = OneDEmbedding::<f64>::classifier_value(0.0, 5.0, 1.0);
        assert!(v < 0.0);
        // Zero when equidistant.
        let v = OneDEmbedding::<f64>::classifier_value(0.0, 2.0, -2.0);
        assert_eq!(v, 0.0);
    }

    #[test]
    fn embedding_trait_implementation() {
        let f = OneDEmbedding::reference(Candidate::new(0, 1.0_f64));
        let d = euclid1d();
        assert_eq!(Embedding::dim(&f), 1);
        assert_eq!(Embedding::embedding_cost(&f), 1);
        assert_eq!(f.embed(&4.0, &d), vec![3.0]);
    }

    #[test]
    #[should_panic(expected = "positive pivot-pivot distance")]
    fn rejects_degenerate_pivots() {
        let _ = OneDEmbedding::pivot(Candidate::new(0, 1.0_f64), Candidate::new(1, 1.0_f64), 0.0);
    }

    #[test]
    #[should_panic(expected = "missing distance")]
    fn lookup_panics_on_missing_candidate() {
        let f = OneDEmbedding::reference(Candidate::new(9, 1.0_f64));
        let _ = f.value_from_lookup(&|_| None);
    }
}
