//! Training triples and the two sampling strategies.
//!
//! AdaBoost is trained on triples `(q, a, b)` of objects from the training
//! pool `Xtr`, labeled `+1` if `q` is closer to `a` and `-1` if `q` is closer
//! to `b` (Section 5.2). The paper contributes a *selective* way of picking
//! those triples (Section 6): `a` is drawn from the `k1` nearest neighbors of
//! `q` within `Xtr` and `b` from outside them, which focuses the embedding on
//! exactly the comparisons that matter for k-nearest-neighbor retrieval. The
//! original BoostMap draws triples uniformly at random.

use qse_distance::DistanceMatrix;
use rand::Rng;

/// A labeled training triple. Indices refer to positions in the training
/// pool `Xtr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrainingTriple {
    /// Index of the "query" object `q`.
    pub q: usize,
    /// Index of object `a`.
    pub a: usize,
    /// Index of object `b`.
    pub b: usize,
    /// `+1` if `q` is closer to `a` than to `b`, `-1` otherwise.
    pub label: i8,
}

impl TrainingTriple {
    /// Label as a float (`+1.0` / `-1.0`), the form AdaBoost consumes.
    pub fn y(&self) -> f64 {
        f64::from(self.label)
    }
}

/// Which triple-sampling strategy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TripleSamplingStrategy {
    /// Uniformly random distinct triples — the original BoostMap ("Ra").
    Random,
    /// The selective strategy of Section 6 ("Se"): `a` among the `k1` nearest
    /// neighbors of `q` in `Xtr`, `b` outside them.
    Selective {
        /// The `k1` parameter: how deep into `q`'s neighbor list `a` may be.
        k1: usize,
    },
}

/// Sampler of labeled training triples over a training pool whose pairwise
/// distances have been precomputed.
#[derive(Debug, Clone)]
pub struct TripleSampler {
    strategy: TripleSamplingStrategy,
}

impl TripleSampler {
    /// Create a sampler with the given strategy.
    pub fn new(strategy: TripleSamplingStrategy) -> Self {
        Self { strategy }
    }

    /// The random (original BoostMap) sampler.
    pub fn random() -> Self {
        Self::new(TripleSamplingStrategy::Random)
    }

    /// The selective sampler of Section 6 with parameter `k1`.
    ///
    /// The paper suggests setting `k1 ≈ kmax · |Xtr| / |database|` so that
    /// `a` is likely to be among the `kmax` nearest database neighbors of
    /// `q`; [`TripleSampler::suggested_k1`] implements that guideline.
    pub fn selective(k1: usize) -> Self {
        assert!(k1 >= 1, "k1 must be at least 1");
        Self::new(TripleSamplingStrategy::Selective { k1 })
    }

    /// The paper's guideline for choosing `k1` (Section 6): if we want to
    /// retrieve up to `kmax` neighbors and `Xtr` holds a fraction
    /// `|Xtr| / |database|` of the database, use `k1 ≈ kmax · |Xtr| /
    /// |database|`, and at least 1.
    pub fn suggested_k1(kmax: usize, training_pool: usize, database_size: usize) -> usize {
        assert!(database_size > 0, "database must not be empty");
        (kmax * training_pool).div_ceil(database_size).max(1)
    }

    /// The strategy this sampler uses.
    pub fn strategy(&self) -> TripleSamplingStrategy {
        self.strategy
    }

    /// Draw `count` labeled triples over a training pool with pairwise
    /// distances `train_to_train`.
    ///
    /// Triples whose two candidate objects are exactly equidistant from `q`
    /// ("type 0" in the paper) carry no information and are re-drawn.
    ///
    /// # Panics
    /// Panics if the pool has fewer than 3 objects, if the matrix is not
    /// square, or (for the selective strategy) if `k1` is too large for the
    /// pool.
    pub fn sample<R: Rng>(
        &self,
        train_to_train: &DistanceMatrix,
        count: usize,
        rng: &mut R,
    ) -> Vec<TrainingTriple> {
        let n = train_to_train.rows();
        assert_eq!(n, train_to_train.cols(), "train_to_train must be square");
        assert!(n >= 3, "need at least 3 training objects to form triples");
        if let TripleSamplingStrategy::Selective { k1 } = self.strategy {
            assert!(
                k1 + 2 <= n,
                "k1 = {k1} is too large for a training pool of {n} objects"
            );
        }

        // For the selective strategy, lazily computed neighbor orderings.
        let mut neighbor_cache: Vec<Option<Vec<usize>>> = vec![None; n];

        let mut triples = Vec::with_capacity(count);
        let mut attempts = 0usize;
        let max_attempts = count.saturating_mul(50).max(1000);
        while triples.len() < count {
            attempts += 1;
            assert!(
                attempts <= max_attempts,
                "could not sample enough informative triples (degenerate distances?)"
            );
            let triple = match self.strategy {
                TripleSamplingStrategy::Random => {
                    let q = rng.gen_range(0..n);
                    let a = rng.gen_range(0..n);
                    let b = rng.gen_range(0..n);
                    if q == a || q == b || a == b {
                        continue;
                    }
                    let dqa = train_to_train.get(q, a);
                    let dqb = train_to_train.get(q, b);
                    if dqa == dqb {
                        continue;
                    }
                    TrainingTriple {
                        q,
                        a,
                        b,
                        label: if dqa < dqb { 1 } else { -1 },
                    }
                }
                TripleSamplingStrategy::Selective { k1 } => {
                    let q = rng.gen_range(0..n);
                    let neighbors = neighbor_cache[q].get_or_insert_with(|| {
                        // Full ordering of the other objects by distance to q
                        // (excluding q itself).
                        let mut order: Vec<usize> = (0..n).filter(|&i| i != q).collect();
                        order.sort_by(|&x, &y| {
                            train_to_train
                                .get(q, x)
                                .total_cmp(&train_to_train.get(q, y))
                                .then(x.cmp(&y))
                        });
                        order
                    });
                    // Steps 2-3: a is the k'-nearest neighbor for k' in 1..=k1.
                    let ka = rng.gen_range(0..k1);
                    // Steps 4-5: b is the k'-nearest neighbor for k' in
                    // (k1+1)..=|Xtr|-1.
                    let kb = rng.gen_range(k1..neighbors.len());
                    let a = neighbors[ka];
                    let b = neighbors[kb];
                    let dqa = train_to_train.get(q, a);
                    let dqb = train_to_train.get(q, b);
                    if dqa == dqb {
                        continue;
                    }
                    TrainingTriple {
                        q,
                        a,
                        b,
                        label: if dqa < dqb { 1 } else { -1 },
                    }
                }
            };
            triples.push(triple);
        }
        triples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qse_distance::traits::{FnDistance, MetricProperties};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn line_matrix(n: usize) -> DistanceMatrix {
        let objects: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let d = FnDistance::new("abs", MetricProperties::Metric, |a: &f64, b: &f64| {
            (a - b).abs()
        });
        DistanceMatrix::compute(&objects, &objects, &d)
    }

    #[test]
    fn random_triples_are_distinct_and_correctly_labeled() {
        let m = line_matrix(20);
        let mut rng = StdRng::seed_from_u64(1);
        let triples = TripleSampler::random().sample(&m, 200, &mut rng);
        assert_eq!(triples.len(), 200);
        for t in &triples {
            assert!(t.q != t.a && t.q != t.b && t.a != t.b);
            let dqa = m.get(t.q, t.a);
            let dqb = m.get(t.q, t.b);
            if t.label == 1 {
                assert!(dqa < dqb);
            } else {
                assert!(dqb < dqa);
            }
        }
    }

    #[test]
    fn selective_triples_respect_the_k1_constraint() {
        let m = line_matrix(30);
        let k1 = 4;
        let mut rng = StdRng::seed_from_u64(2);
        let triples = TripleSampler::selective(k1).sample(&m, 300, &mut rng);
        for t in &triples {
            // Rank of a and b among q's neighbors (1-based, excluding q).
            let rank = |x: usize| {
                (0..30)
                    .filter(|&i| i != t.q)
                    .filter(|&i| {
                        m.get(t.q, i) < m.get(t.q, x) || (m.get(t.q, i) == m.get(t.q, x) && i < x)
                    })
                    .count()
                    + 1
            };
            assert!(rank(t.a) <= k1, "a has rank {} > k1", rank(t.a));
            assert!(rank(t.b) > k1, "b has rank {} <= k1", rank(t.b));
            // Selective triples are always labeled +1 in effect: a is closer.
            assert_eq!(t.label, 1);
        }
    }

    #[test]
    fn suggested_k1_follows_the_papers_guideline() {
        // kmax = 50, |Xtr| one tenth of the database → k1 = 5 (paper example).
        assert_eq!(TripleSampler::suggested_k1(50, 5_000, 50_000), 5);
        // Never below 1.
        assert_eq!(TripleSampler::suggested_k1(1, 10, 10_000), 1);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let m = line_matrix(15);
        let a = TripleSampler::selective(3).sample(&m, 50, &mut StdRng::seed_from_u64(9));
        let b = TripleSampler::selective(3).sample(&m, 50, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "k1 = 20 is too large")]
    fn rejects_oversized_k1() {
        let m = line_matrix(10);
        let _ = TripleSampler::selective(20).sample(&m, 5, &mut StdRng::seed_from_u64(0));
    }

    #[test]
    #[should_panic(expected = "at least 3 training objects")]
    fn rejects_tiny_pools() {
        let m = line_matrix(2);
        let _ = TripleSampler::random().sample(&m, 5, &mut StdRng::seed_from_u64(0));
    }
}
