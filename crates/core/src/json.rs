//! A small, dependency-free JSON codec used to persist trained models.
//!
//! The build environment has no crates-registry access, so `serde_json` is
//! replaced by this hand-rolled value model + recursive-descent parser. One
//! deliberate extension: the non-finite numbers that occur in trained models
//! (splitter intervals store `±∞` bounds) are written as the bare literals
//! `inf`, `-inf` and `nan`, and the parser accepts them back. Everything
//! else is plain JSON. Finite numbers are printed with Rust's shortest
//! round-trip formatting, so parse(print(x)) reproduces `x` bit-exactly and
//! a serialized model deserializes to an **equal** model (asserted by the
//! workspace integration tests).

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number, including the extended literals `inf`, `-inf`, `nan`.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; key order is preserved.
    Object(Vec<(String, JsonValue)>),
}

/// Error raised by parsing or decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    message: String,
}

impl JsonError {
    /// Create an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl std::error::Error for JsonError {}

impl JsonValue {
    /// Serialize to a compact JSON string.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(x) => {
                if x.is_nan() {
                    out.push_str("nan");
                } else if *x == f64::INFINITY {
                    out.push_str("inf");
                } else if *x == f64::NEG_INFINITY {
                    out.push_str("-inf");
                } else {
                    // Shortest round-trip representation.
                    out.push_str(&format!("{x:?}"));
                }
            }
            JsonValue::String(s) => write_string(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON string (accepting the extended number literals).
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_whitespace();
        let value = parser.value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(JsonError::new(format!(
                "trailing characters at byte {}",
                parser.pos
            )));
        }
        Ok(value)
    }

    /// The number held by this value, if any.
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            JsonValue::Number(x) => Ok(*x),
            other => Err(JsonError::new(format!(
                "expected a number, found {other:?}"
            ))),
        }
    }

    /// The array held by this value, if any.
    pub fn as_array(&self) -> Result<&[JsonValue], JsonError> {
        match self {
            JsonValue::Array(items) => Ok(items),
            other => Err(JsonError::new(format!(
                "expected an array, found {other:?}"
            ))),
        }
    }

    /// The string held by this value, if any.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            JsonValue::String(s) => Ok(s),
            other => Err(JsonError::new(format!(
                "expected a string, found {other:?}"
            ))),
        }
    }

    /// Look up a field of an object.
    pub fn get(&self, key: &str) -> Result<&JsonValue, JsonError> {
        match self {
            JsonValue::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| JsonError::new(format!("missing field `{key}`"))),
            other => Err(JsonError::new(format!(
                "expected an object, found {other:?}"
            ))),
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn literal(&mut self, text: &str) -> bool {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') if self.literal("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(JsonValue::Bool(false)),
            Some(b'n') if self.literal("null") => Ok(JsonValue::Null),
            Some(b'n') if self.literal("nan") => Ok(JsonValue::Number(f64::NAN)),
            Some(b'i') if self.literal("inf") => Ok(JsonValue::Number(f64::INFINITY)),
            Some(b'-') if self.bytes[self.pos..].starts_with(b"-inf") => {
                self.pos += 4;
                Ok(JsonValue::Number(f64::NEG_INFINITY))
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(JsonError::new(format!(
                "unexpected input at byte {}",
                self.pos
            ))),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::with_capacity(4);
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => {
                    return Err(JsonError::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::with_capacity(4);
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => {
                    return Err(JsonError::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            // Bulk-copy the longest run of plain ASCII bytes in one
            // append; only quotes, escapes, and non-ASCII bytes drop to
            // the per-character handling below. (Validating UTF-8 one
            // character at a time over the remaining input made string
            // parsing quadratic in document size.)
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b >= 0x80 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .expect("ASCII bytes are valid UTF-8"),
                );
            }
            match self.peek() {
                None => return Err(JsonError::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.hex_escape_after_u()?;
                            let code = if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: must be followed by an
                                // escaped low surrogate; combine the pair.
                                if self.bytes.get(self.pos + 1..self.pos + 3)
                                    != Some(b"\\u".as_slice())
                                {
                                    return Err(JsonError::new("unpaired high surrogate"));
                                }
                                self.pos += 2;
                                let low = self.hex_escape_after_u()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(JsonError::new("invalid low surrogate"));
                                }
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                code
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| JsonError::new("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(JsonError::new("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one non-ASCII UTF-8 character, validating
                    // at most the 4 bytes it can span.
                    let end = (self.pos + 4).min(self.bytes.len());
                    let rest = &self.bytes[self.pos..end];
                    let c = match std::str::from_utf8(rest) {
                        Ok(s) => s.chars().next(),
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&rest[..e.valid_up_to()])
                                .expect("validated prefix")
                                .chars()
                                .next()
                        }
                        Err(_) => None,
                    };
                    let c = c.ok_or_else(|| JsonError::new("invalid UTF-8 in string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Decode the 4 hex digits following the `u` the cursor sits on, leaving
    /// the cursor on the last digit (the caller consumes it like any other
    /// escape character).
    fn hex_escape_after_u(&mut self) -> Result<u32, JsonError> {
        let hex = self
            .bytes
            .get(self.pos + 1..self.pos + 5)
            .ok_or_else(|| JsonError::new("truncated \\u escape"))?;
        let hex = std::str::from_utf8(hex).map_err(|_| JsonError::new("invalid \\u escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| JsonError::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        // Number-body bytes, classified by a table: documents are mostly
        // numbers (model weights), so this scan is the parser's hottest
        // loop and a direct indexed test beats a multi-pattern match.
        const NUM_CHAR: [bool; 256] = {
            let mut t = [false; 256];
            let mut b = b'0';
            while b <= b'9' {
                t[b as usize] = true;
                b += 1;
            }
            t[b'.' as usize] = true;
            t[b'e' as usize] = true;
            t[b'E' as usize] = true;
            t[b'+' as usize] = true;
            t[b'-' as usize] = true;
            t
        };
        let start = self.pos;
        let mut pos = self.pos;
        if self.bytes.get(pos) == Some(&b'-') {
            pos += 1;
        }
        while pos < self.bytes.len() && NUM_CHAR[self.bytes[pos] as usize] {
            pos += 1;
        }
        self.pos = pos;
        let text = std::str::from_utf8(&self.bytes[start..pos])
            .map_err(|_| JsonError::new("invalid number"))?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| JsonError::new(format!("invalid number `{text}`")))
    }
}

/// Types that can round-trip through [`JsonValue`]. This plays the role the
/// `Serialize`/`Deserialize` pair played before the workspace went
/// dependency-free; only the types that are actually persisted implement it.
pub trait JsonCodec: Sized {
    /// Encode `self`.
    fn to_json_value(&self) -> JsonValue;
    /// Decode a value produced by [`JsonCodec::to_json_value`].
    fn from_json_value(value: &JsonValue) -> Result<Self, JsonError>;
}

impl JsonCodec for f64 {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Number(*self)
    }
    fn from_json_value(value: &JsonValue) -> Result<Self, JsonError> {
        value.as_f64()
    }
}

impl JsonCodec for usize {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Number(*self as f64)
    }
    fn from_json_value(value: &JsonValue) -> Result<Self, JsonError> {
        let x = value.as_f64()?;
        if x.fract() != 0.0 || !(0.0..=(u64::MAX as f64)).contains(&x) {
            return Err(JsonError::new(format!(
                "expected a non-negative integer, found {x}"
            )));
        }
        Ok(x as usize)
    }
}

impl JsonCodec for bool {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Bool(*self)
    }
    fn from_json_value(value: &JsonValue) -> Result<Self, JsonError> {
        match value {
            JsonValue::Bool(b) => Ok(*b),
            other => Err(JsonError::new(format!("expected a bool, found {other:?}"))),
        }
    }
}

impl JsonCodec for String {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::String(self.clone())
    }
    fn from_json_value(value: &JsonValue) -> Result<Self, JsonError> {
        value.as_str().map(str::to_owned)
    }
}

impl<T: JsonCodec> JsonCodec for Vec<T> {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(JsonCodec::to_json_value).collect())
    }
    fn from_json_value(value: &JsonValue) -> Result<Self, JsonError> {
        value.as_array()?.iter().map(T::from_json_value).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for x in [
            0.0,
            -1.5,
            1e300,
            1.0 / 3.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ] {
            let text = JsonValue::Number(x).dump();
            let back = JsonValue::parse(&text).expect("parse");
            assert_eq!(back.as_f64().unwrap().to_bits(), x.to_bits(), "{text}");
        }
        let nan = JsonValue::parse("nan").unwrap().as_f64().unwrap();
        assert!(nan.is_nan());
    }

    #[test]
    fn structures_round_trip() {
        let value = JsonValue::Object(vec![
            ("name".into(), JsonValue::String("Se-QS \"model\"\n".into())),
            (
                "values".into(),
                JsonValue::Array(vec![
                    JsonValue::Number(1.25),
                    JsonValue::Bool(true),
                    JsonValue::Null,
                ]),
            ),
            ("empty".into(), JsonValue::Array(vec![])),
        ]);
        let text = value.dump();
        assert_eq!(JsonValue::parse(&text).expect("parse"), value);
    }

    #[test]
    fn parses_standard_json_with_whitespace() {
        let v = JsonValue::parse(" { \"a\" : [ 1 , 2.5e1 , -3 ] , \"b\" : { } } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_f64().unwrap(),
            25.0
        );
    }

    #[test]
    fn codec_vec_round_trips() {
        let xs = vec![1.0, f64::INFINITY, -0.125];
        let back =
            Vec::<f64>::from_json_value(&JsonValue::parse(&xs.to_json_value().dump()).unwrap())
                .unwrap();
        assert_eq!(xs, back);
    }

    #[test]
    fn unicode_escapes_and_surrogate_pairs_parse() {
        let v = JsonValue::parse("\"\\u0041\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "A\u{1F600}");
        assert!(
            JsonValue::parse("\"\\ud83d\"").is_err(),
            "lone high surrogate"
        );
        assert!(
            JsonValue::parse("\"\\ud83d\\u0041\"").is_err(),
            "bad low surrogate"
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "\"abc", "{\"a\" 1}", "1 2", "tru"] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn missing_fields_are_reported() {
        let v = JsonValue::parse("{\"a\":1}").unwrap();
        assert!(v.get("b").is_err());
    }
}
