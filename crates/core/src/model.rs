//! The trained model: embedding `F_out` plus query-sensitive distance
//! `D_out` (Section 5.4).
//!
//! AdaBoost outputs a strong classifier `H = Σ_j α_j Q̃_{F'_j, V_j}`. The
//! paper re-interprets `H` as:
//!
//! * the embedding `F_out(x) = (F_1(x), ..., F_d(x))` over the *distinct*
//!   1-D embeddings appearing in `H`, and
//! * the query-sensitive distance `D_out(q, x) = Σ_i A_i(q) |q_i − x_i|`
//!   where `A_i(q) = Σ_{j : F'_j = F_i ∧ F'_j(q) ∈ V_j} α_j` (Eq. 10–11).
//!
//! Proposition 1 (`F̃_out = H`) guarantees the classification error AdaBoost
//! minimised is exactly a property of `(F_out, D_out)`; the unit tests here
//! and the property tests at the workspace root verify that identity on
//! random models.

use crate::json::{JsonCodec, JsonError, JsonValue};
use crate::weak::Interval;
use qse_distance::{DistanceMeasure, FilterElem, FlatStore, FlatVectors};
use qse_embedding::one_d::Candidate;
use qse_embedding::{CompositeEmbedding, Embedding, OneDEmbedding};

/// One term `α_j · Q̃_{F'_j, V_j}` of the boosted classifier, expressed
/// against the model's list of distinct coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeakLearner {
    /// Index into [`QseModel::coordinates`] of the 1-D embedding `F'_j`.
    pub coordinate: usize,
    /// The splitter interval `V_j`.
    pub interval: Interval,
    /// The classifier weight `α_j` (already folded with any margin
    /// normalisation the trainer applied, so it multiplies raw coordinate
    /// differences).
    pub alpha: f64,
}

/// A query embedded by a [`QseModel`]: its coordinates under `F_out` and the
/// per-coordinate weights `A_i(q)` of the query-sensitive distance.
#[derive(Debug, Clone, PartialEq)]
pub struct EmbeddedQuery {
    /// `F_out(q)`.
    pub coordinates: Vec<f64>,
    /// `A_i(q)` for every coordinate.
    pub weights: Vec<f64>,
}

impl EmbeddedQuery {
    /// `D_out(F_out(q), x)` for a database object's embedding `x` (Eq. 11).
    ///
    /// Delegates to the workspace's canonical blocked weighted-L1 routine
    /// (`qse_distance::vector::weighted_l1_row`), so the result is
    /// bit-identical to what [`Self::score_flat`] writes for the same row.
    ///
    /// # Panics
    /// Panics if `x` has the wrong dimensionality.
    pub fn distance_to(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.coordinates.len(), "dimensionality mismatch");
        qse_distance::vector::weighted_l1_row(&self.weights, &self.coordinates, x)
    }

    /// Score this query against every row of a flat vector store in one
    /// pass: `out[i] = D_out(F_out(q), row_i)`. This is the query-sensitive
    /// filter step's hot kernel — no per-row allocation, blocked
    /// auto-vectorizable reduction, generic over the store's [`FilterElem`]
    /// precision: on the exact (`f64`) backend it is bit-identical to
    /// calling [`Self::distance_to`] row by row, on the compact backends it
    /// scores the decoded rows.
    ///
    /// # Panics
    /// Panics if the store's dimensionality differs from the query's or
    /// `out.len() != vectors.len()`.
    pub fn score_flat<E: FilterElem>(&self, vectors: &FlatStore<E>, out: &mut [f64]) {
        qse_distance::vector::weighted_l1_flat(&self.weights, &self.coordinates, vectors, out)
    }

    /// The **filter-path** counterpart of [`Self::score_flat`]: dispatched
    /// through the store backend's `FilterElem::scan_filter`, so the exact
    /// backends run the decode kernel bit-identically to
    /// [`Self::score_flat`] while `u8` stores are scanned by the in-domain
    /// integer SAD kernel (`qse_distance::sad`) — the query's coordinates
    /// are quantized onto the store's grid and scores carry the documented
    /// query-side quantization error, which the retrieval pipelines'
    /// exact-distance refine step absorbs. This is what the
    /// filter-and-refine indexes call in their filter step.
    ///
    /// # Panics
    /// As [`Self::score_flat`].
    pub fn score_filter<E: FilterElem>(&self, vectors: &FlatStore<E>, out: &mut [f64]) {
        qse_distance::vector::weighted_l1_filter_flat(
            &self.weights,
            &self.coordinates,
            vectors,
            out,
        )
    }
}

/// A whole batch of queries embedded by a [`QseModel`]: coordinates under
/// `F_out` and the per-query weights `A_i(q)` of the query-sensitive
/// distance, both in flat row-major storage (row `q` belongs to query `q`)
/// so the batched filter step can run the Q×N tiled kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct EmbeddedQueryBatch {
    /// `F_out(q)` for every query, one row per query.
    pub coordinates: FlatVectors,
    /// `A_i(q)` for every query, aligned row-for-row with `coordinates`.
    pub weights: FlatVectors,
}

impl EmbeddedQueryBatch {
    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.coordinates.len()
    }

    /// `true` if the batch holds no queries.
    pub fn is_empty(&self) -> bool {
        self.coordinates.is_empty()
    }

    /// Embedding dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.coordinates.dim()
    }

    /// The single-query view of query `q` (copies the two rows).
    ///
    /// # Panics
    /// Panics if `q` is out of bounds.
    pub fn query(&self, q: usize) -> EmbeddedQuery {
        EmbeddedQuery {
            coordinates: self.coordinates.row(q).to_vec(),
            weights: self.weights.row(q).to_vec(),
        }
    }

    /// One *sequential* tile of [`Self::score_flat_batch`]: score only
    /// queries `start..end` on the calling thread, writing the row-major
    /// `(end − start) × vectors.len()` tile into `out`. The batched
    /// retrieval pipelines hand each worker one tile-sized range this way,
    /// so scores land in a small tile-local buffer consumed while still
    /// cache-hot. Bit-identical to the corresponding rows of the full
    /// batch.
    ///
    /// # Panics
    /// Panics on dimensionality mismatch, an out-of-bounds query range, or
    /// `out.len() != (end - start) * vectors.len()`.
    pub fn score_flat_batch_range<E: FilterElem>(
        &self,
        start: usize,
        end: usize,
        vectors: &FlatStore<E>,
        out: &mut [f64],
    ) {
        qse_distance::vector::weighted_l1_flat_batch_per_query_range(
            &self.weights,
            &self.coordinates,
            start,
            end,
            vectors,
            out,
        )
    }

    /// Score every query of the batch against every row of a flat vector
    /// store: `out[q * vectors.len() + i] = D_out(F_out(q_q), row_i)`,
    /// row-major Q×N. This is the batched query-sensitive filter step — the
    /// Q×N tiled kernel with per-query weight rows
    /// (`qse_distance::vector::weighted_l1_flat_batch_per_query`), whose
    /// scores are bit-identical to calling [`EmbeddedQuery::score_flat`]
    /// query by query at any thread count.
    ///
    /// # Panics
    /// Panics if the store's dimensionality differs from the batch's or
    /// `out.len() != self.len() * vectors.len()`.
    pub fn score_flat_batch<E: FilterElem>(&self, vectors: &FlatStore<E>, out: &mut [f64]) {
        qse_distance::vector::weighted_l1_flat_batch_per_query(
            &self.weights,
            &self.coordinates,
            vectors,
            out,
        )
    }

    /// The **filter-path** counterpart of
    /// [`Self::score_flat_batch_range`]: one sequential tile dispatched
    /// through the store backend's `FilterElem::scan_filter_range` —
    /// bit-identical to [`Self::score_flat_batch_range`] on the exact
    /// backends, the tiled integer SAD kernel on `u8` (see
    /// [`EmbeddedQuery::score_filter`]). The batched retrieval pipelines
    /// score their per-tile filter step through this.
    ///
    /// # Panics
    /// As [`Self::score_flat_batch_range`].
    pub fn score_filter_batch_range<E: FilterElem>(
        &self,
        start: usize,
        end: usize,
        vectors: &FlatStore<E>,
        out: &mut [f64],
    ) {
        qse_distance::vector::weighted_l1_filter_batch_per_query_range(
            &self.weights,
            &self.coordinates,
            start,
            end,
            vectors,
            out,
        )
    }

    /// The **filter-path** counterpart of [`Self::score_flat_batch`]
    /// (whole batch, backend-dispatched tiled scan on the persistent
    /// worker pool; see [`EmbeddedQuery::score_filter`]).
    ///
    /// # Panics
    /// As [`Self::score_flat_batch`].
    pub fn score_filter_batch<E: FilterElem>(&self, vectors: &FlatStore<E>, out: &mut [f64]) {
        qse_distance::vector::weighted_l1_filter_batch_per_query(
            &self.weights,
            &self.coordinates,
            vectors,
            out,
        )
    }
}

/// Per-round training diagnostics recorded by the trainer.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrainingHistory {
    /// Weighted training error of the chosen weak classifier at each round.
    pub weak_errors: Vec<f64>,
    /// `Z_j` of the chosen weak classifier at each round.
    pub z_values: Vec<f64>,
    /// Unweighted training-set error of the strong classifier after each
    /// round (fraction of triples misclassified; ties count half).
    pub strong_errors: Vec<f64>,
}

/// A trained query-sensitive (or query-insensitive) embedding model.
#[derive(Debug, Clone, PartialEq)]
pub struct QseModel<O> {
    coordinates: Vec<OneDEmbedding<O>>,
    learners: Vec<WeakLearner>,
    history: TrainingHistory,
}

impl<O: Clone + Send + Sync> QseModel<O> {
    /// Assemble a model from its parts (used by the trainer and by tests).
    ///
    /// # Panics
    /// Panics if there are no learners, no coordinates, or a learner refers
    /// to a coordinate that does not exist.
    pub fn new(
        coordinates: Vec<OneDEmbedding<O>>,
        learners: Vec<WeakLearner>,
        history: TrainingHistory,
    ) -> Self {
        assert!(
            !coordinates.is_empty(),
            "a model needs at least one coordinate"
        );
        assert!(
            !learners.is_empty(),
            "a model needs at least one weak learner"
        );
        assert!(
            learners.iter().all(|l| l.coordinate < coordinates.len()),
            "weak learner refers to a missing coordinate"
        );
        Self {
            coordinates,
            learners,
            history,
        }
    }

    /// Output dimensionality `d` (number of distinct 1-D embeddings).
    pub fn dim(&self) -> usize {
        self.coordinates.len()
    }

    /// Number of boosting rounds `J` (weak learners).
    pub fn rounds(&self) -> usize {
        self.learners.len()
    }

    /// The distinct 1-D embeddings `F_1, ..., F_d`.
    pub fn coordinates(&self) -> &[OneDEmbedding<O>] {
        &self.coordinates
    }

    /// The weak learners `(F'_j, V_j, α_j)`.
    pub fn learners(&self) -> &[WeakLearner] {
        &self.learners
    }

    /// Training diagnostics.
    pub fn history(&self) -> &TrainingHistory {
        &self.history
    }

    /// `true` if any learner uses a bounded splitter, i.e. the distance
    /// measure genuinely depends on the query.
    pub fn is_query_sensitive(&self) -> bool {
        self.learners.iter().any(|l| !l.interval.is_full())
    }

    /// The embedding `F_out` as a [`CompositeEmbedding`].
    pub fn embedding(&self) -> CompositeEmbedding<O> {
        CompositeEmbedding::new(self.coordinates.clone())
    }

    /// Number of exact distance computations needed to embed a query (the
    /// embedding-step part of the paper's per-query budget).
    pub fn embedding_cost(&self) -> usize {
        self.embedding().embedding_cost()
    }

    /// The query-sensitive weights `A_i(q)` for a query whose coordinates
    /// under `F_out` are `query_coordinates` (Eq. 10).
    ///
    /// # Panics
    /// Panics if the coordinate vector has the wrong dimensionality.
    pub fn query_weights(&self, query_coordinates: &[f64]) -> Vec<f64> {
        assert_eq!(
            query_coordinates.len(),
            self.coordinates.len(),
            "dimensionality mismatch"
        );
        let mut weights = vec![0.0; self.coordinates.len()];
        for learner in &self.learners {
            if learner
                .interval
                .accepts(query_coordinates[learner.coordinate])
            {
                weights[learner.coordinate] += learner.alpha;
            }
        }
        weights
    }

    /// Embed a query and compute its query-sensitive weights in one step.
    /// Costs [`Self::embedding_cost`] exact distance computations.
    pub fn embed_query(&self, query: &O, distance: &dyn DistanceMeasure<O>) -> EmbeddedQuery {
        let coordinates = self.embedding().embed(query, distance);
        let weights = self.query_weights(&coordinates);
        EmbeddedQuery {
            coordinates,
            weights,
        }
    }

    /// Embed a whole query batch into flat row-major storage — coordinates
    /// and per-query weights — ready for the Q×N tiled filter kernel.
    ///
    /// The embedding step (the exact-distance part, `queries.len() ×`
    /// [`Self::embedding_cost`] computations in total) fans out across rayon
    /// worker threads; the weight rows are then derived per query with
    /// [`Self::query_weights`]. Row `q` of the result is bit-identical to
    /// [`Self::embed_query`] on `queries[q]`, at any thread count.
    pub fn embed_queries(
        &self,
        queries: &[O],
        distance: &dyn DistanceMeasure<O>,
    ) -> EmbeddedQueryBatch {
        let coordinates = self.embedding().embed_queries(queries, distance);
        let mut weights = FlatVectors::with_dim(self.dim());
        for q in 0..coordinates.len() {
            weights.push(&self.query_weights(coordinates.row(q)));
        }
        EmbeddedQueryBatch {
            coordinates,
            weights,
        }
    }

    /// The boosted classifier `H(q, a, b)` evaluated on already-embedded
    /// coordinate vectors (Eq. 9). Positive means "q is closer to a".
    pub fn classify_embedded(&self, q: &[f64], a: &[f64], b: &[f64]) -> f64 {
        self.learners
            .iter()
            .map(|l| {
                let i = l.coordinate;
                if l.interval.accepts(q[i]) {
                    l.alpha * ((q[i] - b[i]).abs() - (q[i] - a[i]).abs())
                } else {
                    0.0
                }
            })
            .sum()
    }

    /// `D_out(F_out(q), F_out(b)) − D_out(F_out(q), F_out(a))`, i.e. the
    /// classifier `F̃_out` induced by the embedding and the query-sensitive
    /// distance (Eq. 3 with `D = D_out`). Proposition 1 states this equals
    /// [`Self::classify_embedded`]; the equality is exercised by tests.
    pub fn classifier_from_distance(&self, q: &[f64], a: &[f64], b: &[f64]) -> f64 {
        let eq = EmbeddedQuery {
            coordinates: q.to_vec(),
            weights: self.query_weights(q),
        };
        eq.distance_to(b) - eq.distance_to(a)
    }

    /// The model truncated to its first `rounds` weak learners, with unused
    /// coordinates dropped. Because boosting is sequential this is exactly
    /// the model that training would have produced had it stopped early,
    /// which is how the evaluation sweeps embedding dimensionality without
    /// retraining (Section 9).
    ///
    /// # Panics
    /// Panics if `rounds` is zero or exceeds the trained number of rounds.
    pub fn prefix(&self, rounds: usize) -> Self {
        assert!(
            rounds >= 1 && rounds <= self.learners.len(),
            "invalid prefix of {rounds} rounds for a model with {} rounds",
            self.learners.len()
        );
        let kept = &self.learners[..rounds];
        // Re-index the coordinates that survive.
        let mut remap = vec![usize::MAX; self.coordinates.len()];
        let mut coordinates = Vec::new();
        let mut learners = Vec::with_capacity(rounds);
        for l in kept {
            if remap[l.coordinate] == usize::MAX {
                remap[l.coordinate] = coordinates.len();
                coordinates.push(self.coordinates[l.coordinate].clone());
            }
            learners.push(WeakLearner {
                coordinate: remap[l.coordinate],
                ..*l
            });
        }
        let history = TrainingHistory {
            weak_errors: self
                .history
                .weak_errors
                .iter()
                .copied()
                .take(rounds)
                .collect(),
            z_values: self.history.z_values.iter().copied().take(rounds).collect(),
            strong_errors: self
                .history
                .strong_errors
                .iter()
                .copied()
                .take(rounds)
                .collect(),
        };
        Self {
            coordinates,
            learners,
            history,
        }
    }

    /// Serialize the model to a JSON string (for persistence of trained
    /// models between the training and evaluation phases of the benchmarks).
    /// Non-finite interval bounds are written as the extended literals
    /// `inf` / `-inf` (see [`crate::json`]).
    pub fn to_json(&self) -> String
    where
        O: JsonCodec,
    {
        self.to_json_value().dump()
    }

    /// Deserialize a model previously produced by [`Self::to_json`].
    pub fn from_json(json: &str) -> Result<Self, JsonError>
    where
        O: JsonCodec,
    {
        Self::from_json_value(&JsonValue::parse(json)?)
    }
}

impl JsonCodec for Interval {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("lo".into(), JsonValue::Number(self.lo)),
            ("hi".into(), JsonValue::Number(self.hi)),
        ])
    }
    fn from_json_value(value: &JsonValue) -> Result<Self, JsonError> {
        let lo = value.get("lo")?.as_f64()?;
        let hi = value.get("hi")?.as_f64()?;
        if lo.is_nan() || hi.is_nan() || lo > hi {
            return Err(JsonError::new(format!("invalid interval [{lo}, {hi}]")));
        }
        Ok(Interval { lo, hi })
    }
}

impl JsonCodec for WeakLearner {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("coordinate".into(), self.coordinate.to_json_value()),
            ("interval".into(), self.interval.to_json_value()),
            ("alpha".into(), JsonValue::Number(self.alpha)),
        ])
    }
    fn from_json_value(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(WeakLearner {
            coordinate: usize::from_json_value(value.get("coordinate")?)?,
            interval: Interval::from_json_value(value.get("interval")?)?,
            alpha: value.get("alpha")?.as_f64()?,
        })
    }
}

impl JsonCodec for TrainingHistory {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("weak_errors".into(), self.weak_errors.to_json_value()),
            ("z_values".into(), self.z_values.to_json_value()),
            ("strong_errors".into(), self.strong_errors.to_json_value()),
        ])
    }
    fn from_json_value(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(TrainingHistory {
            weak_errors: Vec::from_json_value(value.get("weak_errors")?)?,
            z_values: Vec::from_json_value(value.get("z_values")?)?,
            strong_errors: Vec::from_json_value(value.get("strong_errors")?)?,
        })
    }
}

impl<O: JsonCodec> JsonCodec for Candidate<O> {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("id".into(), self.id.to_json_value()),
            ("object".into(), self.object.to_json_value()),
        ])
    }
    fn from_json_value(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(Candidate::new(
            usize::from_json_value(value.get("id")?)?,
            O::from_json_value(value.get("object")?)?,
        ))
    }
}

impl<O: JsonCodec> JsonCodec for OneDEmbedding<O> {
    fn to_json_value(&self) -> JsonValue {
        match self {
            OneDEmbedding::Reference { reference } => JsonValue::Object(vec![
                ("type".into(), JsonValue::String("reference".into())),
                ("reference".into(), reference.to_json_value()),
            ]),
            OneDEmbedding::Pivot { x1, x2, d12 } => JsonValue::Object(vec![
                ("type".into(), JsonValue::String("pivot".into())),
                ("x1".into(), x1.to_json_value()),
                ("x2".into(), x2.to_json_value()),
                ("d12".into(), JsonValue::Number(*d12)),
            ]),
        }
    }
    fn from_json_value(value: &JsonValue) -> Result<Self, JsonError> {
        match value.get("type")?.as_str()? {
            "reference" => Ok(OneDEmbedding::Reference {
                reference: Candidate::from_json_value(value.get("reference")?)?,
            }),
            "pivot" => Ok(OneDEmbedding::Pivot {
                x1: Candidate::from_json_value(value.get("x1")?)?,
                x2: Candidate::from_json_value(value.get("x2")?)?,
                d12: value.get("d12")?.as_f64()?,
            }),
            other => Err(JsonError::new(format!(
                "unknown 1-D embedding type `{other}`"
            ))),
        }
    }
}

impl<O: JsonCodec + Clone + Send + Sync> JsonCodec for QseModel<O> {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("coordinates".into(), self.coordinates.to_json_value()),
            ("learners".into(), self.learners.to_json_value()),
            ("history".into(), self.history.to_json_value()),
        ])
    }
    fn from_json_value(value: &JsonValue) -> Result<Self, JsonError> {
        let coordinates = Vec::from_json_value(value.get("coordinates")?)?;
        let learners: Vec<WeakLearner> = Vec::from_json_value(value.get("learners")?)?;
        let history = TrainingHistory::from_json_value(value.get("history")?)?;
        if coordinates.is_empty() || learners.is_empty() {
            return Err(JsonError::new(
                "a model needs at least one coordinate and learner",
            ));
        }
        if learners.iter().any(|l| l.coordinate >= coordinates.len()) {
            return Err(JsonError::new(
                "weak learner refers to a missing coordinate",
            ));
        }
        Ok(QseModel {
            coordinates,
            learners,
            history,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qse_distance::traits::{FnDistance, MetricProperties};
    use qse_embedding::one_d::Candidate;

    fn abs() -> FnDistance<impl Fn(&f64, &f64) -> f64 + Send + Sync> {
        FnDistance::new("abs", MetricProperties::Metric, |a: &f64, b: &f64| {
            (a - b).abs()
        })
    }

    /// A small hand-built model over the real line with two reference
    /// coordinates (r=0 and r=10) and three learners.
    fn example_model() -> QseModel<f64> {
        let coordinates = vec![
            OneDEmbedding::reference(Candidate::new(0, 0.0)),
            OneDEmbedding::reference(Candidate::new(1, 10.0)),
        ];
        let learners = vec![
            // Trust coordinate 0 only for queries within distance 3 of r=0.
            WeakLearner {
                coordinate: 0,
                interval: Interval::new(0.0, 3.0),
                alpha: 2.0,
            },
            // Trust coordinate 1 only for queries within distance 3 of r=10.
            WeakLearner {
                coordinate: 1,
                interval: Interval::new(0.0, 3.0),
                alpha: 1.5,
            },
            // A query-insensitive learner on coordinate 0.
            WeakLearner {
                coordinate: 0,
                interval: Interval::full(),
                alpha: 0.5,
            },
        ];
        QseModel::new(coordinates, learners, TrainingHistory::default())
    }

    #[test]
    fn dimensions_and_flags() {
        let m = example_model();
        assert_eq!(m.dim(), 2);
        assert_eq!(m.rounds(), 3);
        assert!(m.is_query_sensitive());
        assert_eq!(m.embedding_cost(), 2);
    }

    #[test]
    fn query_weights_follow_the_splitters() {
        let m = example_model();
        // Query at 1.0: F = (1, 9). Coordinate 0 accepted by both learners on
        // coordinate 0 → weight 2.5; coordinate 1's splitter rejects 9 → 0.
        let w = m.query_weights(&[1.0, 9.0]);
        assert_eq!(w, vec![2.5, 0.0]);
        // Query at 9.0: F = (9, 1). Only the query-insensitive learner fires
        // on coordinate 0, and the coordinate-1 learner fires.
        let w = m.query_weights(&[9.0, 1.0]);
        assert_eq!(w, vec![0.5, 1.5]);
    }

    #[test]
    fn embed_query_combines_embedding_and_weights() {
        let m = example_model();
        let d = abs();
        let eq = m.embed_query(&1.0, &d);
        assert_eq!(eq.coordinates, vec![1.0, 9.0]);
        assert_eq!(eq.weights, vec![2.5, 0.0]);
        // D_out to the embedding of database object 2.0 → (2, 8).
        let dist = eq.distance_to(&[2.0, 8.0]);
        assert!((dist - 2.5 * 1.0).abs() < 1e-12);
    }

    #[test]
    fn embed_queries_matches_embed_query_row_for_row() {
        let m = example_model();
        let d = abs();
        let queries = [1.0, 9.0, 5.0, -3.0, 12.5];
        let batch = m.embed_queries(&queries, &d);
        assert_eq!(batch.len(), queries.len());
        assert_eq!(batch.dim(), m.dim());
        for (q, query) in queries.iter().enumerate() {
            let single = m.embed_query(query, &d);
            assert_eq!(batch.query(q), single, "query {q}");
        }
    }

    #[test]
    fn score_flat_batch_matches_per_query_score_flat() {
        let m = example_model();
        let d = abs();
        let queries = [0.5, 4.0, 9.5];
        let store = FlatVectors::from_rows(vec![vec![2.0, 8.0], vec![7.0, 3.0], vec![0.0, 10.0]]);
        let batch = m.embed_queries(&queries, &d);
        let mut scores = vec![f64::NAN; queries.len() * store.len()];
        batch.score_flat_batch(&store, &mut scores);
        let mut single = vec![f64::NAN; store.len()];
        for (q, query) in queries.iter().enumerate() {
            m.embed_query(query, &d).score_flat(&store, &mut single);
            for (i, score) in single.iter().enumerate() {
                assert_eq!(
                    scores[q * store.len() + i].to_bits(),
                    score.to_bits(),
                    "query {q}, row {i}"
                );
            }
        }
    }

    #[test]
    fn embed_queries_on_empty_batch_keeps_the_model_dimensionality() {
        let m = example_model();
        let batch = m.embed_queries(&[], &abs());
        assert!(batch.is_empty());
        assert_eq!(batch.dim(), m.dim());
        assert_eq!(batch.weights.dim(), m.dim());
    }

    #[test]
    fn proposition_1_holds_on_the_example_model() {
        let m = example_model();
        let d = abs();
        let emb = m.embedding();
        for q in [0.5, 2.0, 5.0, 9.5, 12.0] {
            for a in [1.0, 4.0, 8.0] {
                for b in [0.0, 6.0, 11.0] {
                    let fq = emb.embed(&q, &d);
                    let fa = emb.embed(&a, &d);
                    let fb = emb.embed(&b, &d);
                    let h = m.classify_embedded(&fq, &fa, &fb);
                    let via_distance = m.classifier_from_distance(&fq, &fa, &fb);
                    assert!(
                        (h - via_distance).abs() < 1e-12,
                        "Proposition 1 violated at q={q}, a={a}, b={b}: {h} vs {via_distance}"
                    );
                }
            }
        }
    }

    #[test]
    fn prefix_drops_unused_coordinates_and_keeps_behaviour() {
        let m = example_model();
        let p = m.prefix(1);
        assert_eq!(p.rounds(), 1);
        assert_eq!(p.dim(), 1);
        // The prefix uses only coordinate 0 (reference 0.0); its weights for
        // a query at 1.0 must match the original learner's alpha.
        let w = p.query_weights(&[1.0]);
        assert_eq!(w, vec![2.0]);
    }

    #[test]
    fn json_roundtrip_preserves_the_model() {
        let m = example_model();
        let json = m.to_json();
        let back: QseModel<f64> = QseModel::from_json(&json).expect("deserialize");
        assert_eq!(m, back);
    }

    #[test]
    fn query_insensitive_model_has_constant_weights() {
        let coordinates = vec![OneDEmbedding::reference(Candidate::new(0, 0.0))];
        let learners = vec![WeakLearner {
            coordinate: 0,
            interval: Interval::full(),
            alpha: 1.25,
        }];
        let m = QseModel::new(coordinates, learners, TrainingHistory::default());
        assert!(!m.is_query_sensitive());
        assert_eq!(m.query_weights(&[0.0]), m.query_weights(&[100.0]));
    }

    #[test]
    #[should_panic(expected = "missing coordinate")]
    fn rejects_dangling_learner() {
        let coordinates = vec![OneDEmbedding::reference(Candidate::new(0, 0.0_f64))];
        let learners = vec![WeakLearner {
            coordinate: 3,
            interval: Interval::full(),
            alpha: 1.0,
        }];
        let _ = QseModel::new(coordinates, learners, TrainingHistory::default());
    }

    #[test]
    #[should_panic(expected = "invalid prefix")]
    fn rejects_zero_round_prefix() {
        let _ = example_model().prefix(0);
    }
}
