//! Splitters and query-sensitive weak classifiers (Section 5.1).
//!
//! Given a 1-D embedding `F` and an interval `V ⊂ R`, the *splitter*
//! `S_{F,V}(q)` accepts a query `q` iff `F(q) ∈ V`, and the query-sensitive
//! weak classifier is
//!
//! `Q̃_{F,V}(q, a, b) = S_{F,V}(q) · F̃(q, a, b)`
//!
//! with `F̃(q, a, b) = |F(q) − F(b)| − |F(q) − F(a)|`. The classifier
//! abstains (outputs 0) whenever the query falls outside `V`; that is the
//! mechanism by which the learned distance measure becomes query-sensitive.
//!
//! During training everything is evaluated on precomputed 1-D embedding
//! values, so this module works with plain `f64`s; the binding of weak
//! classifiers to actual [`qse_embedding::OneDEmbedding`]s happens in
//! [`crate::model`].

/// A closed interval `[lo, hi]` of the real line, possibly unbounded (the
/// query-insensitive special case `V = (-∞, +∞)`).
///
/// Unbounded ends are stored as IEEE infinities; the JSON codec of
/// [`crate::json`] writes them as the extended literals `inf` / `-inf`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower end (inclusive); `-∞` for an unbounded-below interval.
    pub lo: f64,
    /// Upper end (inclusive); `+∞` for an unbounded-above interval.
    pub hi: f64,
}

impl Interval {
    /// A bounded interval `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi` or either bound is NaN.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            !lo.is_nan() && !hi.is_nan(),
            "interval bounds must not be NaN"
        );
        assert!(lo <= hi, "interval requires lo <= hi, got [{lo}, {hi}]");
        Self { lo, hi }
    }

    /// The whole real line — the splitter that accepts every query, which
    /// turns a query-sensitive classifier into the query-insensitive
    /// classifier of the original BoostMap.
    pub fn full() -> Self {
        Self {
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
        }
    }

    /// `[0, hi]` — the "within distance τ of the reference object" splitter
    /// used as the motivating example in Section 5.1.
    pub fn below(hi: f64) -> Self {
        Self::new(f64::NEG_INFINITY, hi)
    }

    /// Does the splitter accept a query whose 1-D embedding value is `value`?
    #[inline]
    pub fn accepts(&self, value: f64) -> bool {
        value >= self.lo && value <= self.hi
    }

    /// Is this the unbounded (query-insensitive) interval?
    pub fn is_full(&self) -> bool {
        self.lo == f64::NEG_INFINITY && self.hi == f64::INFINITY
    }
}

/// `F̃(q, a, b) = |F(q) − F(b)| − |F(q) − F(a)|` evaluated on precomputed
/// 1-D embedding values (Eq. 3 specialised to one dimension).
#[inline]
pub fn classifier_margin(fq: f64, fa: f64, fb: f64) -> f64 {
    (fq - fb).abs() - (fq - fa).abs()
}

/// `Q̃_{F,V}(q, a, b)` on precomputed values: the classifier value if the
/// splitter accepts `F(q)`, and 0 (abstention) otherwise (Eq. 5).
#[inline]
pub fn query_sensitive_output(interval: &Interval, fq: f64, fa: f64, fb: f64) -> f64 {
    if interval.accepts(fq) {
        classifier_margin(fq, fa, fb)
    } else {
        0.0
    }
}

/// Weighted classification error of a query-sensitive classifier on a set of
/// triples, given the triples' 1-D embedding values and labels.
///
/// Following the usual convention for abstaining classifiers, an abstention
/// (query outside `V`) and an exact tie both count as half an error. The
/// weights must sum to 1 (AdaBoost maintains this invariant).
pub fn weighted_error(
    interval: &Interval,
    values: &[(f64, f64, f64)],
    labels: &[f64],
    weights: &[f64],
) -> f64 {
    debug_assert_eq!(values.len(), labels.len());
    debug_assert_eq!(values.len(), weights.len());
    let mut error = 0.0;
    for (((fq, fa, fb), y), w) in values.iter().zip(labels).zip(weights) {
        let out = query_sensitive_output(interval, *fq, *fa, *fb);
        if out == 0.0 {
            error += 0.5 * w;
        } else if out.signum() != y.signum() {
            error += w;
        }
    }
    error
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_membership() {
        let v = Interval::new(1.0, 3.0);
        assert!(v.accepts(1.0));
        assert!(v.accepts(2.5));
        assert!(v.accepts(3.0));
        assert!(!v.accepts(0.999));
        assert!(!v.accepts(3.001));
        assert!(!v.is_full());
    }

    #[test]
    fn full_interval_accepts_everything() {
        let v = Interval::full();
        assert!(v.is_full());
        for x in [-1e300, -1.0, 0.0, 42.0, 1e300] {
            assert!(v.accepts(x));
        }
    }

    #[test]
    fn below_interval_models_reference_radius() {
        // F = F^r: "accept q if it is within distance τ of r".
        let v = Interval::below(0.5);
        assert!(v.accepts(0.0));
        assert!(v.accepts(0.5));
        assert!(!v.accepts(0.51));
    }

    #[test]
    fn margin_sign_matches_relative_closeness() {
        // On the real line with F = identity: q=0, a=1, b=4 → q closer to a.
        assert!(classifier_margin(0.0, 1.0, 4.0) > 0.0);
        assert!(classifier_margin(0.0, 4.0, 1.0) < 0.0);
        assert_eq!(classifier_margin(0.0, 2.0, -2.0), 0.0);
    }

    #[test]
    fn query_sensitive_output_abstains_outside_interval() {
        let v = Interval::new(0.0, 1.0);
        assert!(query_sensitive_output(&v, 0.5, 1.0, 4.0) > 0.0);
        assert_eq!(query_sensitive_output(&v, 2.0, 1.0, 4.0), 0.0);
    }

    #[test]
    fn weighted_error_counts_mistakes_abstentions_and_ties() {
        let values = vec![
            (0.0, 1.0, 4.0),  // margin > 0
            (0.0, 4.0, 1.0),  // margin < 0
            (9.0, 8.0, 12.0), // query outside V → abstain
        ];
        let labels = vec![1.0, 1.0, 1.0];
        let weights = vec![1.0 / 3.0; 3];
        let v = Interval::new(-1.0, 1.0);
        // First triple correct, second wrong, third abstains.
        let err = weighted_error(&v, &values, &labels, &weights);
        assert!((err - (1.0 / 3.0 + 0.5 / 3.0)).abs() < 1e-12);
        // The full interval turns the abstention into a correct vote.
        let err_full = weighted_error(&Interval::full(), &values, &labels, &weights);
        assert!((err_full - 1.0 / 3.0) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn rejects_inverted_interval() {
        let _ = Interval::new(2.0, 1.0);
    }
}
