//! # qse-core
//!
//! The primary contribution of *Query-Sensitive Embeddings* (Athitsos,
//! Hadjieleftheriou, Kollios, Sclaroff — SIGMOD 2005): learning, with
//! AdaBoost, both an embedding `F_out : X → R^d` and a **query-sensitive**
//! weighted L1 distance `D_out` to compare embedded objects, plus the
//! selective training-triple sampling of Section 6.
//!
//! ## How the pieces fit together (Section 5)
//!
//! 1. 1-D embeddings (reference-object and pivot embeddings from
//!    `qse-embedding`) act as *weak classifiers* of triples `(q, a, b)`:
//!    is `q` closer to `a` or to `b`?
//! 2. A *splitter* `S_{F,V}(q) = 1 iff F(q) ∈ V` gates each weak classifier
//!    to the region of the space where it is reliable, giving the
//!    query-sensitive weak classifiers `Q̃_{F,V}(q,a,b) = S_{F,V}(q) ·
//!    F̃(q,a,b)` of Section 5.1 ([`weak`]).
//! 3. AdaBoost (Schapire–Singer confidence-rated variant, [`adaboost`])
//!    combines many such weak classifiers into a strong classifier
//!    `H = Σ_j α_j Q̃_{F'_j, V_j}`.
//! 4. `H` is re-interpreted ([`model`]) as an embedding `F_out` (the distinct
//!    1-D embeddings used by `H`) together with the query-sensitive distance
//!    `D_out(q, x) = Σ_i A_i(q) |q_i − x_i|` of Eq. 10–11. Proposition 1 of
//!    the paper — `F̃_out = H` — is verified by the test-suite.
//! 5. Training triples are drawn either uniformly at random (original
//!    BoostMap) or selectively around each training object's k-nearest
//!    neighbors ([`triples`], Section 6).
//!
//! The four method variants of the paper's evaluation (Ra-QI, Ra-QS, Se-QI,
//! Se-QS) are obtained by crossing [`triples::TripleSampler`] choices with
//! the [`trainer::QuerySensitivity`] switch of the trainer.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adaboost;
pub mod json;
pub mod model;
pub mod trainer;
pub mod training_data;
pub mod triples;
pub mod weak;

pub use model::{EmbeddedQuery, EmbeddedQueryBatch, QseModel, WeakLearner};
pub use trainer::{BoostMapTrainer, MethodVariant, QuerySensitivity, TrainerConfig};
pub use training_data::TrainingData;
pub use triples::{TrainingTriple, TripleSampler, TripleSamplingStrategy};
pub use weak::Interval;
