//! The BoostMap / query-sensitive embedding trainer (Sections 5.2–5.4).
//!
//! At each boosting round the trainer:
//!
//! 1. draws a large set of candidate 1-D embeddings (reference-object and
//!    pivot embeddings over the candidate pool `C`),
//! 2. for each candidate, evaluates its values on every object appearing in
//!    a training triple (via the precomputed distance matrices — no exact
//!    distances are spent during training rounds),
//! 3. in query-sensitive mode, searches for the splitter interval `V` with
//!    the lowest weighted training error for that 1-D embedding; in
//!    query-insensitive mode the interval is the whole real line (recovering
//!    the original BoostMap weak classifiers),
//! 4. finds the optimal classifier weight `α` by minimising
//!    `Z(α) = Σ_i w_i exp(−α y_i h(o_i))` (Schapire–Singer),
//! 5. keeps the candidate with the smallest `Z`, adds it to the model and
//!    reweights the training triples.
//!
//! The output is a [`QseModel`]: the distinct 1-D embeddings used by the
//! strong classifier plus the `(coordinate, V_j, α_j)` triples that define
//! the query-sensitive distance `D_out`.
//!
//! ## Parallelism and determinism
//!
//! Step 2–4 dominate training cost (`O(m · t)` per round for `m` candidates
//! and `t` triples) and are embarrassingly parallel across candidates. The
//! trainer therefore **pre-draws** every candidate's randomness (its spec
//! and its splitter-interval parameters) sequentially from the caller's RNG,
//! then evaluates all candidate slots in parallel with rayon, and finally
//! reduces by the strict total order `(Z, slot index)`. Because each slot's
//! evaluation is a pure function of the pre-drawn randomness and the round
//! state, the chosen weak classifier — and hence the whole trained model —
//! is **bit-identical at any thread count** (including
//! `RAYON_NUM_THREADS=1`). This invariant is asserted by the workspace
//! integration tests.

use crate::adaboost::{optimize_alpha, WeightDistribution};
use crate::model::{QseModel, TrainingHistory, WeakLearner};
use crate::training_data::TrainingData;
use crate::triples::{TrainingTriple, TripleSamplingStrategy};
use crate::weak::{classifier_margin, weighted_error, Interval};
use qse_embedding::one_d::{Candidate, OneDEmbedding};
use rand::Rng;
use rayon::prelude::*;
use std::collections::HashMap;

/// Whether the trainer learns splitters (query-sensitive) or plain BoostMap
/// weak classifiers (query-insensitive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuerySensitivity {
    /// Original BoostMap: a single global weighted L1 distance ("QI").
    Insensitive,
    /// The paper's proposal: splitter-gated classifiers and a query-sensitive
    /// distance ("QS").
    Sensitive,
}

/// The four method variants compared throughout Section 9, crossing the
/// triple-sampling strategy (random "Ra" vs selective "Se") with the distance
/// type (query-insensitive "QI" vs query-sensitive "QS").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MethodVariant {
    /// Random triples, query-insensitive distance — the original BoostMap.
    RaQi,
    /// Random triples, query-sensitive distance.
    RaQs,
    /// Selective triples, query-insensitive distance.
    SeQi,
    /// Selective triples, query-sensitive distance — the paper's proposal.
    SeQs,
}

impl MethodVariant {
    /// All four variants in the order used by Table 1.
    pub fn all() -> [MethodVariant; 4] {
        [
            MethodVariant::RaQi,
            MethodVariant::RaQs,
            MethodVariant::SeQi,
            MethodVariant::SeQs,
        ]
    }

    /// The label used in the paper's figures and tables.
    pub fn label(&self) -> &'static str {
        match self {
            MethodVariant::RaQi => "Ra-QI",
            MethodVariant::RaQs => "Ra-QS",
            MethodVariant::SeQi => "Se-QI",
            MethodVariant::SeQs => "Se-QS",
        }
    }

    /// The triple-sampling strategy of this variant (`k1` is only used by the
    /// selective variants).
    pub fn sampling(&self, k1: usize) -> TripleSamplingStrategy {
        match self {
            MethodVariant::RaQi | MethodVariant::RaQs => TripleSamplingStrategy::Random,
            MethodVariant::SeQi | MethodVariant::SeQs => TripleSamplingStrategy::Selective { k1 },
        }
    }

    /// The distance type of this variant.
    pub fn sensitivity(&self) -> QuerySensitivity {
        match self {
            MethodVariant::RaQi | MethodVariant::SeQi => QuerySensitivity::Insensitive,
            MethodVariant::RaQs | MethodVariant::SeQs => QuerySensitivity::Sensitive,
        }
    }
}

/// Trainer configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainerConfig {
    /// Number of boosting rounds `J`. The output model has at most this many
    /// weak learners and at most this many distinct coordinates.
    pub rounds: usize,
    /// Number of candidate 1-D embeddings evaluated per round (the paper's
    /// parameter `m`, set to 2,000 in its large experiments).
    pub candidates_per_round: usize,
    /// Number of random splitter intervals tried per candidate embedding in
    /// query-sensitive mode.
    pub intervals_per_candidate: usize,
    /// Whether to learn splitters (QS) or plain BoostMap classifiers (QI).
    pub query_sensitivity: QuerySensitivity,
    /// Whether pivot ("line projection") embeddings are sampled in addition
    /// to reference-object embeddings.
    pub use_pivot_embeddings: bool,
    /// Upper bound on the per-round classifier weight `α` (after margin
    /// normalisation); caps numerically exploding weights when a weak
    /// classifier is perfect on the reweighted sample.
    pub alpha_max: f64,
    /// Bisection tolerance of the `α` line search.
    pub alpha_tolerance: f64,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        Self {
            rounds: 32,
            candidates_per_round: 100,
            intervals_per_candidate: 16,
            query_sensitivity: QuerySensitivity::Sensitive,
            use_pivot_embeddings: true,
            alpha_max: 8.0,
            alpha_tolerance: 1e-6,
        }
    }
}

impl TrainerConfig {
    /// A configuration suitable for quick unit tests and examples.
    pub fn quick() -> Self {
        Self {
            rounds: 12,
            candidates_per_round: 30,
            intervals_per_candidate: 8,
            ..Self::default()
        }
    }

    /// Flip the query-sensitivity switch.
    pub fn with_sensitivity(mut self, sensitivity: QuerySensitivity) -> Self {
        self.query_sensitivity = sensitivity;
        self
    }

    /// Set the number of boosting rounds.
    pub fn with_rounds(mut self, rounds: usize) -> Self {
        self.rounds = rounds;
        self
    }
}

/// A candidate 1-D embedding expressed against the candidate pool indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Spec {
    Reference { c: usize },
    Pivot { c1: usize, c2: usize },
}

/// Pre-drawn parameters of one splitter interval: two triple indices whose
/// query values bound the interval, and which of the three shapes (below /
/// above / bounded) to build from them.
#[derive(Debug, Clone, Copy)]
struct IntervalDraw {
    q1: usize,
    q2: usize,
    kind: u8,
}

/// Everything random about one candidate slot, drawn sequentially before the
/// parallel evaluation so results cannot depend on thread scheduling.
#[derive(Debug, Clone)]
struct CandidateDraw {
    /// The candidate spec; `None` for degenerate draws, which keep their
    /// slot (and their consumed randomness) but evaluate to nothing.
    spec: Option<Spec>,
    /// Splitter-interval draws (empty in query-insensitive mode).
    intervals: Vec<IntervalDraw>,
}

/// The trainer.
#[derive(Debug, Clone)]
pub struct BoostMapTrainer {
    config: TrainerConfig,
}

impl BoostMapTrainer {
    /// Create a trainer with the given configuration.
    ///
    /// # Panics
    /// Panics if the configuration is degenerate.
    pub fn new(config: TrainerConfig) -> Self {
        assert!(config.rounds >= 1, "need at least one boosting round");
        assert!(
            config.candidates_per_round >= 1,
            "need at least one candidate per round"
        );
        assert!(
            config.intervals_per_candidate >= 1,
            "need at least one interval per candidate"
        );
        assert!(
            config.alpha_max > 0.0 && config.alpha_tolerance > 0.0,
            "invalid alpha search"
        );
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &TrainerConfig {
        &self.config
    }

    /// Train a model on precomputed [`TrainingData`] and labeled triples.
    ///
    /// # Panics
    /// Panics if `triples` is empty or refers to objects outside the training
    /// pool.
    pub fn train<O, R>(
        &self,
        data: &TrainingData<O>,
        triples: &[TrainingTriple],
        rng: &mut R,
    ) -> QseModel<O>
    where
        O: Clone + Send + Sync,
        R: Rng,
    {
        assert!(!triples.is_empty(), "cannot train on an empty triple set");
        let n_train = data.training_count();
        assert!(
            triples
                .iter()
                .all(|t| t.q < n_train && t.a < n_train && t.b < n_train),
            "triple refers to an object outside the training pool"
        );
        let n_cand = data.candidate_count();
        let labels: Vec<f64> = triples.iter().map(TrainingTriple::y).collect();

        let mut distribution = WeightDistribution::uniform(triples.len());
        let mut coordinates: Vec<OneDEmbedding<O>> = Vec::new();
        let mut coordinate_index: HashMap<Spec, usize> = HashMap::new();
        let mut learners: Vec<WeakLearner> = Vec::new();
        let mut history = TrainingHistory::default();
        // Running value of the strong classifier on each training triple, in
        // the *unscaled* coordinate units (matches the output model).
        let mut strong: Vec<f64> = vec![0.0; triples.len()];

        for _round in 0..self.config.rounds {
            // Pre-draw every candidate's randomness sequentially so the RNG
            // stream — and therefore the trained model — does not depend on
            // how the evaluation below is scheduled across threads.
            let draws: Vec<CandidateDraw> = (0..self.config.candidates_per_round)
                .map(|_| self.draw_candidate(n_cand, data, triples.len(), rng))
                .collect();

            // Evaluate every candidate slot in parallel: embedding values on
            // all triples, splitter-interval search, and the α line search.
            let weights = distribution.weights();
            let evaluated: Vec<Option<RoundChoice>> = draws
                .par_iter()
                .map(|draw| {
                    let spec = draw.spec?;
                    let evaluated = self.evaluate_spec(spec, data, triples)?;
                    self.choose_interval_and_alpha(&evaluated, draw, &labels, weights)
                })
                .collect();

            // Deterministic reduce: strict total order on (Z, slot index), so
            // the winner is independent of evaluation order.
            let best = evaluated
                .into_iter()
                .enumerate()
                .filter_map(|(slot, choice)| choice.map(|c| (slot, c)))
                .min_by(|(sa, a), (sb, b)| a.z.total_cmp(&b.z).then(sa.cmp(sb)))
                .map(|(_, choice)| choice);
            let Some(choice) = best else { break };
            if choice.alpha_scaled <= 0.0 || choice.z >= 1.0 - 1e-12 {
                // No candidate reduces the training loss any further.
                break;
            }

            // Record the learner against the unique-coordinate list.
            let coord = *coordinate_index.entry(choice.spec).or_insert_with(|| {
                coordinates.push(self.materialize(choice.spec, data));
                coordinates.len() - 1
            });
            let effective_alpha = choice.alpha_scaled / choice.scale;
            learners.push(WeakLearner {
                coordinate: coord,
                interval: choice.interval,
                alpha: effective_alpha,
            });

            // Update the training-weight distribution using the *scaled*
            // outputs (the same ones the α optimisation saw).
            distribution.update(choice.alpha_scaled, &choice.outputs_scaled, &labels);

            // Diagnostics.
            for (s, h) in strong.iter_mut().zip(&choice.outputs_scaled) {
                *s += choice.alpha_scaled * h;
            }
            let strong_error = strong
                .iter()
                .zip(&labels)
                .map(|(s, y)| {
                    if *s == 0.0 {
                        0.5
                    } else if s.signum() != y.signum() {
                        1.0
                    } else {
                        0.0
                    }
                })
                .sum::<f64>()
                / triples.len() as f64;
            history.weak_errors.push(choice.weak_error);
            history.z_values.push(choice.z);
            history.strong_errors.push(strong_error);
        }

        assert!(
            !learners.is_empty(),
            "training produced no useful weak classifiers; the training data may be degenerate"
        );
        QseModel::new(coordinates, learners, history)
    }

    /// Draw one candidate slot's full randomness: the 1-D embedding spec
    /// (`None` for degenerate draws — identical pivots, zero pivot distance)
    /// plus the splitter-interval parameters used in query-sensitive mode.
    ///
    /// Every slot consumes the same amount of randomness regardless of
    /// whether its spec turns out to be degenerate, so the stream stays
    /// aligned and slot contents depend only on the RNG state at round start.
    fn draw_candidate<O, R: Rng>(
        &self,
        n_cand: usize,
        data: &TrainingData<O>,
        triple_count: usize,
        rng: &mut R,
    ) -> CandidateDraw {
        let want_pivot = self.config.use_pivot_embeddings && n_cand >= 2 && rng.gen_bool(0.5);
        let spec = if want_pivot {
            let c1 = rng.gen_range(0..n_cand);
            let c2 = rng.gen_range(0..n_cand);
            if c1 == c2 || data.cand_to_cand.get(c1, c2) <= 0.0 {
                None
            } else {
                Some(Spec::Pivot { c1, c2 })
            }
        } else {
            Some(Spec::Reference {
                c: rng.gen_range(0..n_cand),
            })
        };
        let intervals = match self.config.query_sensitivity {
            QuerySensitivity::Insensitive => Vec::new(),
            QuerySensitivity::Sensitive => (0..self.config.intervals_per_candidate)
                .map(|_| IntervalDraw {
                    q1: rng.gen_range(0..triple_count),
                    q2: rng.gen_range(0..triple_count),
                    kind: rng.gen_range(0..3u8),
                })
                .collect(),
        };
        CandidateDraw { spec, intervals }
    }

    /// The 1-D embedding value of training object `t` under `spec`, computed
    /// from the precomputed matrices.
    fn spec_value<O>(&self, spec: Spec, data: &TrainingData<O>, t: usize) -> f64 {
        match spec {
            Spec::Reference { c } => data.cand_to_train.get(c, t),
            Spec::Pivot { c1, c2 } => {
                let d12 = data.cand_to_cand.get(c1, c2);
                OneDEmbedding::<O>::pivot_projection(
                    data.cand_to_train.get(c1, t),
                    data.cand_to_train.get(c2, t),
                    d12,
                )
            }
        }
    }

    /// Evaluate a spec on every training triple. Returns `None` if the spec
    /// is completely uninformative (all margins zero).
    fn evaluate_spec<O>(
        &self,
        spec: Spec,
        data: &TrainingData<O>,
        triples: &[TrainingTriple],
    ) -> Option<EvaluatedSpec> {
        let values: Vec<(f64, f64, f64)> = triples
            .iter()
            .map(|t| {
                (
                    self.spec_value(spec, data, t.q),
                    self.spec_value(spec, data, t.a),
                    self.spec_value(spec, data, t.b),
                )
            })
            .collect();
        let margins_raw: Vec<f64> = values
            .iter()
            .map(|(q, a, b)| classifier_margin(*q, *a, *b))
            .collect();
        let scale = margins_raw.iter().map(|m| m.abs()).sum::<f64>() / margins_raw.len() as f64;
        if !(scale.is_finite()) || scale <= 0.0 {
            return None;
        }
        Some(EvaluatedSpec {
            spec,
            values,
            margins_raw,
            scale,
        })
    }

    /// Materialize a spec into an owned [`OneDEmbedding`] over the candidate
    /// objects.
    fn materialize<O: Clone>(&self, spec: Spec, data: &TrainingData<O>) -> OneDEmbedding<O> {
        match spec {
            Spec::Reference { c } => {
                OneDEmbedding::reference(Candidate::new(c, data.candidates[c].clone()))
            }
            Spec::Pivot { c1, c2 } => OneDEmbedding::pivot(
                Candidate::new(c1, data.candidates[c1].clone()),
                Candidate::new(c2, data.candidates[c2].clone()),
                data.cand_to_cand.get(c1, c2),
            ),
        }
    }

    /// For one evaluated candidate embedding, choose the best splitter
    /// interval (by weighted training error) and then the optimal `α` (by
    /// minimising `Z`). All randomness comes pre-drawn in `draw`, so this is
    /// a pure function safe to run on any worker thread. Returns `None` if
    /// nothing useful was found.
    fn choose_interval_and_alpha(
        &self,
        evaluated: &EvaluatedSpec,
        draw: &CandidateDraw,
        labels: &[f64],
        weights: &[f64],
    ) -> Option<RoundChoice> {
        let mut intervals = Vec::with_capacity(draw.intervals.len() + 1);
        intervals.push(Interval::full());
        for d in &draw.intervals {
            let x1 = evaluated.values[d.q1].0;
            let x2 = evaluated.values[d.q2].0;
            let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
            // Mix of bounded intervals and half-lines.
            let interval = match d.kind {
                0 => Interval::new(f64::NEG_INFINITY, hi),
                1 => Interval::new(lo, f64::INFINITY),
                _ => Interval::new(lo, hi),
            };
            intervals.push(interval);
        }

        // Pick the interval with the lowest weighted training error
        // (sequential over this slot's few intervals, so deterministic).
        let (best_interval, best_error) = intervals
            .into_iter()
            .map(|v| {
                let err = weighted_error(&v, &evaluated.values, labels, weights);
                (v, err)
            })
            .min_by(|a, b| a.1.total_cmp(&b.1))?;

        // Scaled classifier outputs under that interval.
        let outputs_scaled: Vec<f64> = evaluated
            .values
            .iter()
            .zip(&evaluated.margins_raw)
            .map(|((q, _, _), m)| {
                if best_interval.accepts(*q) {
                    m / evaluated.scale
                } else {
                    0.0
                }
            })
            .collect();
        let margins: Vec<f64> = outputs_scaled
            .iter()
            .zip(labels)
            .map(|(h, y)| h * y)
            .collect();
        let search = optimize_alpha(
            &margins,
            weights,
            self.config.alpha_max,
            self.config.alpha_tolerance,
        );
        if search.alpha <= 0.0 {
            return None;
        }
        Some(RoundChoice {
            spec: evaluated.spec,
            interval: best_interval,
            alpha_scaled: search.alpha,
            z: search.z,
            scale: evaluated.scale,
            weak_error: best_error,
            outputs_scaled,
        })
    }
}

/// A candidate embedding evaluated on the training triples.
struct EvaluatedSpec {
    spec: Spec,
    /// `(F(q), F(a), F(b))` per triple.
    values: Vec<(f64, f64, f64)>,
    /// Raw classifier margins `F̃(q, a, b)` per triple.
    margins_raw: Vec<f64>,
    /// Mean absolute raw margin, used to normalise outputs for the α search.
    scale: f64,
}

/// The weak classifier chosen at one boosting round.
struct RoundChoice {
    spec: Spec,
    interval: Interval,
    /// α in scaled-output units.
    alpha_scaled: f64,
    z: f64,
    scale: f64,
    weak_error: f64,
    outputs_scaled: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triples::TripleSampler;
    use qse_distance::traits::{FnDistance, MetricProperties};
    use qse_distance::DistanceMeasure;
    use qse_embedding::Embedding;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn abs() -> FnDistance<impl Fn(&f64, &f64) -> f64 + Send + Sync> {
        FnDistance::new("abs", MetricProperties::Metric, |a: &f64, b: &f64| {
            (a - b).abs()
        })
    }

    /// Training data over a 1-D space with two well-separated clusters.
    fn clustered_data(seed: u64) -> (TrainingData<f64>, Vec<TrainingTriple>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut objects: Vec<f64> = Vec::new();
        for i in 0..30 {
            objects.push(i as f64 * 0.1);
            objects.push(100.0 + i as f64 * 0.1);
        }
        let candidates = objects.clone();
        let data = TrainingData::precompute(candidates, objects, &abs(), 1);
        let triples = TripleSampler::selective(5).sample(&data.train_to_train, 400, &mut rng);
        (data, triples)
    }

    #[test]
    fn training_reduces_the_strong_classifier_error() {
        let (data, triples) = clustered_data(1);
        let trainer = BoostMapTrainer::new(TrainerConfig::quick());
        let model = trainer.train(&data, &triples, &mut StdRng::seed_from_u64(2));
        let hist = model.history();
        assert!(!hist.strong_errors.is_empty());
        let first = hist.strong_errors[0];
        let last = *hist.strong_errors.last().unwrap();
        assert!(
            last <= first,
            "strong error should not increase: {first} -> {last}"
        );
        assert!(last < 0.25, "final training error too high: {last}");
        // Every chosen weak classifier must have reduced the loss.
        assert!(hist.z_values.iter().all(|z| *z < 1.0));
    }

    #[test]
    fn query_sensitive_training_produces_splitters() {
        let (data, triples) = clustered_data(3);
        let trainer = BoostMapTrainer::new(TrainerConfig::quick());
        let model = trainer.train(&data, &triples, &mut StdRng::seed_from_u64(4));
        assert!(model.rounds() >= 1);
        assert!(model.dim() >= 1);
        assert!(model.dim() <= model.rounds());
    }

    #[test]
    fn query_insensitive_training_uses_only_full_intervals() {
        let (data, triples) = clustered_data(5);
        let trainer = BoostMapTrainer::new(
            TrainerConfig::quick().with_sensitivity(QuerySensitivity::Insensitive),
        );
        let model = trainer.train(&data, &triples, &mut StdRng::seed_from_u64(6));
        assert!(!model.is_query_sensitive());
        assert!(model.learners().iter().all(|l| l.interval.is_full()));
    }

    #[test]
    fn trained_model_classifies_held_out_triples_well() {
        let (data, triples) = clustered_data(7);
        let trainer = BoostMapTrainer::new(TrainerConfig::quick());
        let model = trainer.train(&data, &triples, &mut StdRng::seed_from_u64(8));
        // Held-out evaluation: fresh objects from the same two clusters.
        let d = abs();
        let emb = model.embedding();
        let mut rng = StdRng::seed_from_u64(9);
        let mut correct = 0;
        let total = 200;
        for _ in 0..total {
            let cluster = |r: &mut StdRng| {
                if r.gen_bool(0.5) {
                    r.gen_range(0.0..3.0)
                } else {
                    r.gen_range(100.0..103.0)
                }
            };
            let q = cluster(&mut rng);
            let a = cluster(&mut rng);
            let b = cluster(&mut rng);
            let dqa = d.distance(&q, &a);
            let dqb = d.distance(&q, &b);
            if dqa == dqb {
                continue;
            }
            let fq = emb.embed(&q, &d);
            let fa = emb.embed(&a, &d);
            let fb = emb.embed(&b, &d);
            let h = model.classify_embedded(&fq, &fa, &fb);
            let predicted_a_closer = h > 0.0;
            if predicted_a_closer == (dqa < dqb) {
                correct += 1;
            }
        }
        assert!(
            correct as f64 >= 0.8 * total as f64,
            "held-out triple accuracy too low: {correct}/{total}"
        );
    }

    #[test]
    fn proposition_1_holds_for_trained_models() {
        let (data, triples) = clustered_data(11);
        let trainer = BoostMapTrainer::new(TrainerConfig::quick());
        let model = trainer.train(&data, &triples, &mut StdRng::seed_from_u64(12));
        let d = abs();
        let emb = model.embedding();
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..50 {
            let q: f64 = rng.gen_range(0.0..103.0);
            let a: f64 = rng.gen_range(0.0..103.0);
            let b: f64 = rng.gen_range(0.0..103.0);
            let fq = emb.embed(&q, &d);
            let fa = emb.embed(&a, &d);
            let fb = emb.embed(&b, &d);
            let h = model.classify_embedded(&fq, &fa, &fb);
            let via_distance = model.classifier_from_distance(&fq, &fa, &fb);
            assert!(
                (h - via_distance).abs() < 1e-9 * (1.0 + h.abs()),
                "Proposition 1 violated: {h} vs {via_distance}"
            );
        }
    }

    #[test]
    fn training_is_deterministic_given_seeds() {
        let (data, triples) = clustered_data(15);
        let trainer = BoostMapTrainer::new(TrainerConfig::quick());
        let a = trainer.train(&data, &triples, &mut StdRng::seed_from_u64(16));
        let b = trainer.train(&data, &triples, &mut StdRng::seed_from_u64(16));
        assert_eq!(a, b);
    }

    #[test]
    fn method_variant_metadata_is_consistent() {
        assert_eq!(MethodVariant::all().len(), 4);
        assert_eq!(MethodVariant::SeQs.label(), "Se-QS");
        assert_eq!(MethodVariant::RaQi.label(), "Ra-QI");
        assert_eq!(
            MethodVariant::SeQs.sensitivity(),
            QuerySensitivity::Sensitive
        );
        assert_eq!(
            MethodVariant::SeQi.sensitivity(),
            QuerySensitivity::Insensitive
        );
        assert_eq!(
            MethodVariant::RaQs.sampling(5),
            TripleSamplingStrategy::Random
        );
        assert_eq!(
            MethodVariant::SeQs.sampling(5),
            TripleSamplingStrategy::Selective { k1: 5 }
        );
    }

    #[test]
    #[should_panic(expected = "empty triple set")]
    fn rejects_empty_triples() {
        let (data, _) = clustered_data(20);
        let trainer = BoostMapTrainer::new(TrainerConfig::quick());
        let _ = trainer.train(&data, &[], &mut StdRng::seed_from_u64(0));
    }

    #[test]
    #[should_panic(expected = "at least one boosting round")]
    fn rejects_zero_rounds() {
        let _ = BoostMapTrainer::new(TrainerConfig {
            rounds: 0,
            ..TrainerConfig::default()
        });
    }
}
